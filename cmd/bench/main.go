// Command bench runs the noc/bench performance suite and writes a JSON
// snapshot, so repeated runs (one per perf-relevant PR) accumulate a
// BENCH_*.json trajectory of the simulator's throughput and allocation
// behavior. The same cases run under `go test -bench=. ./noc/bench/`;
// this binary exists to make machine-readable snapshots one command.
//
// Examples:
//
//	bench -label pr3 -json BENCH_pr3.json
//	bench -benchtime 2s -count 3 -baseline BENCH_pr2.json
//	bench -baseline BENCH_pr2.json -max-alloc-regress 0.10 -json ""   # CI gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"testing"

	"quarc/noc/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	out := flag.String("out", "BENCH_noc.json", "output JSON file (empty skips the JSON snapshot)")
	jsonOut := flag.String("json", "", "output JSON file (alias for -out; takes precedence when set)")
	label := flag.String("label", "", "label stored in the snapshot (e.g. a PR or commit id)")
	benchtime := flag.String("benchtime", "", "per-case benchmark time, as in go test (e.g. 2s or 100x; default 1s)")
	count := flag.Int("count", 1, "run the suite N times and keep each case's fastest run")
	baseline := flag.String("baseline", "", "baseline snapshot to diff against; prints per-case deltas")
	maxAllocRegress := flag.Float64("max-alloc-regress", -1,
		"with -baseline: exit nonzero when any case's allocs/op regresses by more than this fraction (e.g. 0.10; negative disables)")
	maxSpeedRegress := flag.Float64("max-speed-regress", -1,
		"with -baseline: exit nonzero when any case's events/sec throughput drops by more than this fraction (e.g. 0.10; negative disables)")
	parallelSpeedup := flag.Bool("parallel-speedup", true,
		"print the NetworkRun/par-N speedups over the NetworkRun/mesh8 serial baseline")
	// testing.Init registers the testing flags (notably test.benchtime)
	// that testing.Benchmark reads; it must run before flag.Parse.
	testing.Init()
	flag.Parse()

	if *jsonOut != "" || flagWasSet("json") {
		*out = *jsonOut
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			log.Fatalf("invalid -benchtime %q: %v", *benchtime, err)
		}
	}
	if *count < 1 {
		*count = 1
	}

	recs := bench.Measure(bench.Suite())
	for i := 1; i < *count; i++ {
		recs = mergeFastest(recs, bench.Measure(bench.Suite()))
	}

	fmt.Printf("%-20s %14s %14s %12s\n", "case", "ns/op", "B/op", "allocs/op")
	for _, r := range recs {
		fmt.Printf("%-20s %14.0f %14d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Metrics {
			fmt.Printf("    %s = %.4g\n", k, v)
		}
	}

	if *parallelSpeedup {
		printParallelSpeedup(recs)
	}

	failed := false
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		failed = diff(base, recs, *maxAllocRegress, *maxSpeedRegress)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteJSON(f, *label, recs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// printParallelSpeedup renders the intra-run parallel cases against
// their serial baseline (same mesh-8x8 configuration, serial Run):
// wall-clock speedup per shard count. On a single-core runner the
// column reads ≤1x — the synchronization overhead, honestly reported.
func printParallelSpeedup(recs []bench.Record) {
	var serial float64
	for _, r := range recs {
		if r.Name == "NetworkRun/mesh8" {
			serial = r.NsPerOp
		}
	}
	if serial <= 0 {
		return
	}
	fmt.Printf("\n%-20s %10s\n", "parallel case", "speedup")
	for _, r := range recs {
		if !strings.HasPrefix(r.Name, "NetworkRun/par-") || r.NsPerOp <= 0 {
			continue
		}
		fmt.Printf("%-20s %9.2fx\n", r.Name, serial/r.NsPerOp)
	}
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// mergeFastest keeps, per case name, the record with the lowest ns/op —
// repeated -count runs squeeze scheduler and cache noise out of the
// snapshot.
func mergeFastest(a, b []bench.Record) []bench.Record {
	byName := make(map[string]bench.Record, len(b))
	for _, r := range b {
		byName[r.Name] = r
	}
	out := make([]bench.Record, len(a))
	for i, r := range a {
		if o, ok := byName[r.Name]; ok && o.NsPerOp < r.NsPerOp {
			out[i] = o
		} else {
			out[i] = r
		}
	}
	return out
}

func readBaseline(path string) (bench.Report, error) {
	var rep bench.Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("baseline %s: %w", path, err)
	}
	return rep, nil
}

// diff prints per-case deltas against the baseline and returns whether
// the allocs/op or events/sec regression gates (when enabled) tripped.
func diff(base bench.Report, recs []bench.Record, maxAllocRegress, maxSpeedRegress float64) bool {
	byName := make(map[string]bench.Record, len(base.Cases))
	for _, r := range base.Cases {
		byName[r.Name] = r
	}
	fmt.Printf("\nvs baseline %q (%s %s/%s):\n", base.Label, base.GoVersion, base.GOOS, base.GOARCH)
	fmt.Printf("%-20s %12s %12s %9s %12s %12s %9s\n",
		"case", "ns/op old", "ns/op new", "Δ", "allocs old", "allocs new", "Δ")
	failed := false
	for _, r := range recs {
		old, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-20s %12s (new case)\n", r.Name, "-")
			continue
		}
		fmt.Printf("%-20s %12.0f %12.0f %8.1f%% %12d %12d %8.1f%%\n",
			r.Name, old.NsPerOp, r.NsPerOp, pct(r.NsPerOp, old.NsPerOp),
			old.AllocsPerOp, r.AllocsPerOp, pct(float64(r.AllocsPerOp), float64(old.AllocsPerOp)))
		if es, ok := r.Metrics["events/sec"]; ok {
			if oldES, ok := old.Metrics["events/sec"]; ok && oldES > 0 {
				fmt.Printf("    events/sec %.4g -> %.4g (%.2fx)\n", oldES, es, es/oldES)
				if maxSpeedRegress >= 0 && es < oldES*(1-maxSpeedRegress) {
					fmt.Printf("    FAIL: events/sec %.4g is more than %.0f%% below baseline %.4g\n",
						es, maxSpeedRegress*100, oldES)
					failed = true
				}
			}
		}
		if maxAllocRegress >= 0 &&
			float64(r.AllocsPerOp) > float64(old.AllocsPerOp)*(1+maxAllocRegress) {
			fmt.Printf("    FAIL: allocs/op %d exceeds baseline %d by more than %.0f%%\n",
				r.AllocsPerOp, old.AllocsPerOp, maxAllocRegress*100)
			failed = true
		}
	}
	return failed
}

// pct renders new-vs-old as a signed percentage (0 when the base is 0).
func pct(new, old float64) float64 {
	if old == 0 || math.IsNaN(old) {
		return 0
	}
	return (new - old) / old * 100
}
