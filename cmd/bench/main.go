// Command bench runs the noc/bench performance suite and writes a JSON
// snapshot, so repeated runs (one per perf-relevant PR) accumulate a
// BENCH_*.json trajectory of the simulator's throughput and allocation
// behavior. The same cases run under `go test -bench=. ./noc/bench/`;
// this binary exists to make machine-readable snapshots one command.
//
// Example:
//
//	bench -label pr2 -out BENCH_pr2.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"quarc/noc/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")

	out := flag.String("out", "BENCH_noc.json", "output JSON file (empty skips the JSON snapshot)")
	label := flag.String("label", "", "label stored in the snapshot (e.g. a PR or commit id)")
	flag.Parse()

	recs := bench.Measure(bench.Suite())
	fmt.Printf("%-20s %14s %14s %12s\n", "case", "ns/op", "B/op", "allocs/op")
	for _, r := range recs {
		fmt.Printf("%-20s %14.0f %14d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Metrics {
			fmt.Printf("    %s = %.4g\n", k, v)
		}
	}
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteJSON(f, *label, recs); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
