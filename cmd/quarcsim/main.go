// Command quarcsim runs the discrete-event wormhole simulation of one
// Quarc configuration and prints measured latencies with confidence
// intervals, optionally comparing them against the analytical model.
//
// Example:
//
//	quarcsim -n 64 -msg 32 -rate 0.001 -alpha 0.05 -dests 8 -random -compare
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/stats"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quarcsim: ")

	n := flag.Int("n", 16, "network size (multiple of 4, >= 8)")
	msg := flag.Int("msg", 32, "message length in flits")
	rate := flag.Float64("rate", 0.001, "message generation rate per node (messages/cycle)")
	alpha := flag.Float64("alpha", 0.05, "multicast fraction of generated messages")
	dests := flag.Int("dests", 4, "number of multicast destinations")
	random := flag.Bool("random", false, "random destination set (default: localized on the L rim)")
	setSeed := flag.Uint64("set-seed", 1, "seed for the random destination set")
	broadcast := flag.Bool("broadcast", false, "multicast to every node (overrides -dests)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	warmup := flag.Float64("warmup", 20000, "warmup cycles before measurement")
	measure := flag.Float64("measure", 200000, "measurement window in cycles")
	compare := flag.Bool("compare", false, "also evaluate the analytical model")
	detail := flag.Bool("detail", false, "print per-port/per-distance breakdowns and percentiles")
	trace := flag.Int("trace", -1, "trace messages generated at this node (prints up to -trace-limit events)")
	traceLimit := flag.Int("trace-limit", 60, "maximum trace events to print")
	priority := flag.Bool("mc-priority", false, "multicast-first channel arbitration (default FIFO, as in the paper)")
	flag.Parse()

	q, err := topology.NewQuarc(*n)
	if err != nil {
		log.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)

	var set routing.MulticastSet
	switch {
	case *alpha == 0:
		set = routing.NewMulticastSet(topology.QuarcPorts)
	case *broadcast:
		set = rt.BroadcastSet()
	case *random:
		set, err = rt.RandomSet(rand.New(rand.NewPCG(*setSeed, 0)), *dests)
	default:
		set, err = rt.LocalizedSet(topology.PortL, *dests)
	}
	if err != nil {
		log.Fatal(err)
	}

	spec := traffic.Spec{Rate: *rate, MulticastFrac: *alpha, Set: set}
	w, err := traffic.NewWorkload(rt, spec, *seed)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen:            *msg,
		Warmup:            *warmup,
		Measure:           *measure,
		Detail:            *detail,
		TraceEnabled:      *trace >= 0,
		TraceNode:         topology.NodeID(max(*trace, 0)),
		TraceLimit:        *traceLimit,
		MulticastPriority: *priority,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run()

	fmt.Printf("configuration: N=%d msg=%d flits rate=%g alpha=%g set={%s}\n", *n, *msg, *rate, *alpha, set)
	fmt.Printf("simulated:     %.0f cycles, %d events, %d/%d messages completed/generated\n",
		res.Time, res.Events, res.Completed, res.Generated)
	if res.Saturated {
		fmt.Println("result:        SATURATED — injection backlog grew without bound")
		return
	}
	fmt.Printf("unicast:       %.3f ± %.3f cycles (95%% CI, %d messages)\n",
		res.Unicast.Mean(), res.UnicastBM.HalfWidth(1.96), res.Unicast.N())
	if *alpha > 0 && res.Multicast.N() > 0 {
		fmt.Printf("multicast:     %.3f ± %.3f cycles (95%% CI, %d messages)\n",
			res.Multicast.Mean(), res.MulticastBM.HalfWidth(1.96), res.Multicast.N())
	}
	fmt.Printf("peak channel utilization: %.4f\n", res.MaxUtil)
	if *detail && res.Detail != nil {
		fmt.Print(res.Detail.Summary())
	}
	if len(res.Trace) > 0 {
		fmt.Printf("trace of node %d's messages:\n", *trace)
		fmt.Print(wormhole.FormatTrace(rt.Graph(), res.Trace))
	}

	if *compare {
		pred, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: *msg})
		if err != nil {
			log.Fatal(err)
		}
		if pred.Saturated {
			fmt.Println("model:         SATURATED at this rate")
			return
		}
		fmt.Printf("model:         unicast %.3f cycles (rel err %.2f%%)",
			pred.UnicastLatency, 100*stats.RelErr(pred.UnicastLatency, res.Unicast.Mean()))
		if *alpha > 0 {
			fmt.Printf(", multicast %.3f cycles (rel err %.2f%%)",
				pred.MulticastLatency, 100*stats.RelErr(pred.MulticastLatency, res.Multicast.Mean()))
		}
		fmt.Println()
	}
}
