// Command quarcsim runs the discrete-event wormhole simulation of one
// Quarc configuration and prints measured latencies with confidence
// intervals, optionally comparing them against the analytical model.
//
// Example:
//
//	quarcsim -n 64 -msg 32 -rate 0.001 -alpha 0.05 -dests 8 -random -compare
//
// The scenario can also be loaded from a declarative Spec JSON document
// — the same format the quarcd daemon serves — in which case the
// scenario-shaping flags must stay unset:
//
//	quarcsim -spec scenario.json -json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quarcsim: ")

	n := flag.Int("n", 16, "network size (multiple of 4, >= 8)")
	msg := flag.Int("msg", 32, "message length in flits")
	rate := flag.Float64("rate", 0.001, "message generation rate per node (messages/cycle)")
	alpha := flag.Float64("alpha", 0.05, "multicast fraction of generated messages")
	dests := flag.Int("dests", 4, "number of multicast destinations")
	random := flag.Bool("random", false, "random destination set (default: localized on the L rim)")
	setSeed := flag.Uint64("set-seed", 1, "seed for the random destination set")
	broadcast := flag.Bool("broadcast", false, "multicast to every node (overrides -dests)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	warmup := flag.Float64("warmup", 20000, "warmup cycles before measurement")
	measure := flag.Float64("measure", 200000, "measurement window in cycles")
	compare := flag.Bool("compare", false, "also evaluate the analytical model")
	detail := flag.Bool("detail", false, "print per-port/per-distance breakdowns and percentiles")
	trace := flag.Int("trace", -1, "trace messages generated at this node (prints up to -trace-limit events)")
	traceLimit := flag.Int("trace-limit", 60, "maximum trace events to print")
	priority := flag.Bool("mc-priority", false, "multicast-first channel arbitration (default FIFO, as in the paper)")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson, bernoulli, onoff, periodic")
	burst := flag.Float64("burst", 8, "onoff arrivals: mean burst length in messages")
	duty := flag.Float64("duty", 0.5, "onoff arrivals: duty cycle in (0,1]")
	perm := flag.String("perm", "", "spatial pattern for unicast destinations: transpose, bit-reversal, bit-complement, shuffle, tornado (default uniform)")
	record := flag.String("record", "", "record the run's workload trace to this file")
	recordJSONL := flag.Bool("record-jsonl", false, "write the -record trace as JSONL instead of the compact binary format")
	replay := flag.String("replay", "", "replay a workload trace from this file instead of generating traffic")
	specPath := flag.String("spec", "", "load the scenario from a declarative Spec JSON file (the quarcd wire format); scenario flags may not be combined with it")
	jsonOut := flag.Bool("json", false, "print the simulator Result as JSON instead of the human-readable report")
	metrics := flag.Int("metrics", 0, "record a time series with this many buckets (Result JSON gains \"series\"; 0 disables)")
	obsPath := flag.String("obs", "", "append the raw observability record stream to this file (CRC-framed log; implies -metrics)")
	flag.Parse()

	var (
		s        *noc.Scenario
		sp       noc.Spec
		err      error
		captured *noc.TraceWorkload
		// recordAs persists a captured trace after the run: path plus
		// encoding ("" means no recording was requested).
		recordPath string
		recordJSON bool
		replaying  string
	)
	if *specPath != "" {
		// The spec document is the single source of truth; a scenario
		// flag alongside it would silently lose to one of the two, so
		// refuse the combination outright.
		// -obs stays legal alongside -spec: the sink is process-local
		// (a file on this machine), so it has no spec representation.
		allowed := map[string]bool{"spec": true, "compare": true, "json": true, "obs": true}
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			log.Fatalf("-spec is declarative: move %s into the spec document", strings.Join(conflicts, ", "))
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		sp, err = noc.ParseSpec(data)
		if err != nil {
			log.Fatal(err)
		}
		if sp.Record != "" {
			// Fail on an unwritable path before the simulation runs.
			f, err := os.Create(sp.Record)
			if err != nil {
				log.Fatal(err)
			}
			f.Close()
			recordPath = sp.Record
			recordJSON = strings.HasSuffix(sp.Record, ".jsonl")
		}
		replaying = sp.Replay
		if *obsPath != "" && !sp.Metrics {
			// The raw stream needs the recording hooks attached; default
			// bucketing appears in the Result as a bonus.
			sp.Metrics = true
		}
		s, err = sp.Scenario()
		if err != nil {
			log.Fatal(err)
		}
		captured = s.Recording()
	} else {
		opts := []noc.Option{
			noc.Quarc(*n), noc.MsgLen(*msg), noc.Rate(*rate), noc.Alpha(*alpha),
			noc.Seed(*seed), noc.Warmup(*warmup), noc.Measure(*measure),
			noc.Detail(*detail), noc.MulticastPriority(*priority),
		}
		switch *arrival {
		case "onoff":
			opts = append(opts, noc.OnOff(*burst, *duty))
		case "poisson":
			// the default
		default:
			opts = append(opts, noc.Arrival(*arrival))
		}
		if *perm != "" {
			opts = append(opts, noc.Permutation(*perm))
		}
		if *record != "" {
			// Create the output up front so an unwritable path fails before
			// the simulation runs, not after.
			f, err := os.Create(*record)
			if err != nil {
				log.Fatal(err)
			}
			f.Close()
			recordPath, recordJSON = *record, *recordJSONL
			captured = &noc.TraceWorkload{}
			opts = append(opts, noc.Record(captured))
		}
		if *replay != "" {
			f, err := os.Open(*replay)
			if err != nil {
				log.Fatal(err)
			}
			tw, err := noc.ReadTraceWorkload(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, noc.Replay(tw))
			replaying = *replay
		}
		switch {
		case *alpha == 0:
			// no destination set needed
		case *broadcast:
			opts = append(opts, noc.Broadcast())
		case *random:
			opts = append(opts, noc.RandomDests(*dests, *setSeed))
		default:
			opts = append(opts, noc.LocalizedDests(noc.PortL, *dests))
		}
		if *trace >= 0 {
			opts = append(opts, noc.Trace(*trace, *traceLimit))
		}
		if *obsPath != "" && *metrics == 0 {
			*metrics = noc.DefaultMetricsBuckets
		}
		if *metrics > 0 {
			opts = append(opts, noc.Metrics(*metrics))
		}
		s, err = noc.NewScenario(opts...)
		if err != nil {
			log.Fatal(err)
		}
	}

	var obsSink *noc.ObsFileSink
	if *obsPath != "" {
		obsSink, err = noc.CreateObsFile(*obsPath)
		if err != nil {
			log.Fatal(err)
		}
		s, err = s.With(noc.MetricsSink(obsSink))
		if err != nil {
			log.Fatal(err)
		}
	}

	res, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		log.Fatal(err)
	}
	if obsSink != nil {
		if err := obsSink.Close(); err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("observability: raw record stream written to %s\n", *obsPath)
		}
	}
	if captured != nil && recordPath != "" {
		f, err := os.Create(recordPath)
		if err != nil {
			log.Fatal(err)
		}
		var werr error
		if recordJSON {
			werr = captured.WriteJSONL(f)
		} else {
			werr = captured.WriteBinary(f)
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
		if !*jsonOut {
			fmt.Printf("recorded:      %d messages to %s\n", captured.Messages(), recordPath)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	if replaying != "" {
		// The generative knobs are ignored under replay; print the true
		// workload provenance instead.
		fmt.Printf("configuration: N=%d msg=%d flits workload=replay(%s) set={%s}\n",
			s.Nodes(), s.MsgLen(), replaying, s.SetString())
	} else {
		fmt.Printf("configuration: N=%d msg=%d flits rate=%g alpha=%g arrival=%s spatial=%s set={%s}\n",
			s.Nodes(), s.MsgLen(), s.Rate(), s.Alpha(), s.ArrivalName(), s.SpatialName(), s.SetString())
	}
	fmt.Printf("simulated:     %.0f cycles, %d events, %d/%d messages completed/generated\n",
		res.Time, res.Events, res.Completed, res.Generated)
	if res.Saturated {
		fmt.Println("result:        SATURATED — injection backlog grew without bound")
		return
	}
	fmt.Printf("unicast:       %.3f ± %.3f cycles (95%% CI, %d messages)\n",
		res.Unicast, res.UnicastCI, res.UnicastN)
	if s.Alpha() > 0 && res.MulticastN > 0 {
		fmt.Printf("multicast:     %.3f ± %.3f cycles (95%% CI, %d messages)\n",
			res.Multicast, res.MulticastCI, res.MulticastN)
	}
	fmt.Printf("peak channel utilization: %.4f\n", res.MaxUtil)
	if res.Series != nil {
		fmt.Printf("time series:   %s\n", summarizeSeries(res.Series))
	}
	if res.DetailSummary != "" {
		fmt.Print(res.DetailSummary)
	}
	if res.TraceText != "" {
		fmt.Println("trace of generated messages:")
		fmt.Print(res.TraceText)
	}

	if *compare {
		pred, err := noc.Model{}.Evaluate(s)
		if errors.Is(err, noc.ErrModelInapplicable) {
			// Non-poisson arrivals and trace replays are outside the
			// analytical model's scope; say so instead of aborting a run
			// whose simulation half already printed. Any other model
			// error is a real failure and still exits nonzero.
			fmt.Printf("model:         not applicable (%v)\n", err)
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		if pred.Saturated {
			fmt.Println("model:         SATURATED at this rate")
			return
		}
		fmt.Printf("model:         unicast %.3f cycles (rel err %.2f%%)",
			pred.Unicast, 100*noc.RelErr(pred.Unicast, res.Unicast))
		if s.Alpha() > 0 {
			fmt.Printf(", multicast %.3f cycles (rel err %.2f%%)",
				pred.Multicast, 100*noc.RelErr(pred.Multicast, res.Multicast))
		}
		fmt.Println()
	}
}

// summarizeSeries condenses a recorded time series into one human line:
// the bucket grid, the busiest channel-bucket and when it happened, and
// the deepest wait queue. The full series is only emitted under -json.
func summarizeSeries(ts *noc.TimeSeries) string {
	peakUtil, peakAt := 0.0, 0.0
	for _, ch := range ts.ChannelUtil {
		for b, u := range ch {
			if u > peakUtil {
				peakUtil, peakAt = u, (float64(b)+0.5)*ts.BucketWidth
			}
		}
	}
	maxQueue := 0
	for _, q := range ts.QueueMax {
		if q > maxQueue {
			maxQueue = q
		}
	}
	return fmt.Sprintf("%d buckets x %.0f cycles, peak channel util %.3f near t=%.0f, deepest wait queue %d",
		ts.Buckets, ts.BucketWidth, peakUtil, peakAt, maxQueue)
}
