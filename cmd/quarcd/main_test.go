package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"quarc/noc"
	"quarc/noc/service"
)

// buildBinary compiles the quarcd binary once per test run; the e2e
// tests drive the real executable — real listener, real signals, real
// process death — so the durability contract is pinned end to end.
var buildBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "quarcd-e2e")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "quarcd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &exec.Error{Name: "go build: " + string(out), Err: err}
	}
	return bin, nil
})

// daemon is one spawned quarcd process.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon launches quarcd on an ephemeral port and waits for its
// "serving on" log line to learn the bound address.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	bin, err := buildBinary()
	if err != nil {
		t.Fatalf("building quarcd: %v", err)
	}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting quarcd: %v", err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving on "); i >= 0 {
				fields := strings.Fields(line[i+len("serving on "):])
				if len(fields) > 0 {
					select {
					case addrc <- fields[0]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		d.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("quarcd did not report a listen address")
	}
	return d
}

func e2eSpec() noc.Spec {
	return noc.Spec{
		Topology: "quarc", N: 16, Pattern: "localized", Dests: 4,
		MsgLen: 16, Rate: 0.002, Alpha: 0.05,
		Seed: 5, Warmup: 500, Measure: 6000,
	}
}

// directJSON is the in-process ground truth a served result must match
// bitwise.
func directJSON(t *testing.T, sp noc.Spec) string {
	t.Helper()
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	res, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getHealth(t *testing.T, base string) service.Health {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h service.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// countEntries counts durable result files in a store directory.
func countEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".qre") {
			n++
		}
	}
	return n
}

// TestRestartServesFromStore is the crash-restart e2e: a daemon is
// SIGKILLed mid-sweep, a new daemon over the same -store directory
// serves the surviving results warm (source: store), and everything —
// warm or recomputed — is bitwise-identical to in-process evaluation.
func TestRestartServesFromStore(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	dir := t.TempDir()
	sp := e2eSpec()
	rates := make([]float64, 12)
	for i := range rates {
		rates[i] = 0.001 + 0.0005*float64(i)
	}

	d1 := startDaemon(t, "-store", dir, "-workers", "2")
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		body, _ := json.Marshal(service.SweepRequest{Spec: sp, Rates: rates})
		resp, err := http.Post(d1.url+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		// An error is expected: the daemon may die mid-sweep.
	}()

	// Kill the daemon the moment some — not necessarily all — results
	// have been persisted.
	deadline := time.Now().Add(60 * time.Second)
	for countEntries(t, dir) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("store never accumulated 2 entries")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()
	<-sweepDone
	survivors := countEntries(t, dir)
	t.Logf("SIGKILL left %d/%d durable results", survivors, len(rates))

	// Restart over the same directory: surviving points come back warm
	// from the store, the rest recompute; every byte matches direct
	// evaluation.
	d2 := startDaemon(t, "-store", dir, "-workers", "2")
	warm := 0
	for _, r := range rates {
		pt := sp
		pt.Rate = r
		resp, body := postJSON(t, d2.url+"/v1/evaluate", pt)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rate %g: status %d (%s)", r, resp.StatusCode, body)
		}
		switch src := resp.Header.Get(service.HeaderSource); src {
		case string(service.SourceStore):
			warm++
		case string(service.SourceComputed):
		default:
			t.Errorf("rate %g: unexpected source %q", r, src)
		}
		if got, want := string(body), directJSON(t, pt)+"\n"; got != want {
			t.Errorf("rate %g: restarted result differs from direct:\n got:  %s want: %s", r, got, want)
		}
	}
	if warm < 1 {
		t.Errorf("no point was served from the store after restart (%d survivors on disk)", survivors)
	}
	if warm != survivors {
		t.Logf("note: %d warm serves vs %d files on disk", warm, survivors)
	}

	// A full sweep over the mixed warm/cold state is also bitwise-correct.
	resp, body := postJSON(t, d2.url+"/v1/sweep", service.SweepRequest{Spec: sp, Rates: rates})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d (%s)", resp.StatusCode, body)
	}
	var sr service.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		pt := sp
		pt.Rate = r
		got, err := json.Marshal(sr.Points[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != directJSON(t, pt) {
			t.Errorf("sweep rate %g differs from direct", r)
		}
	}

	// This daemon gets the dignified exit: SIGTERM drains and stops.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Errorf("graceful shutdown exit: %v", err)
	}
}

// TestFleetQuickstart is the README fleet scenario end to end: two
// worker daemons, one front with -peers, a sweep through the front
// splits across the workers and answers bitwise-identical to direct
// evaluation.
func TestFleetQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	w1 := startDaemon(t, "-workers", "2")
	w2 := startDaemon(t, "-workers", "2")
	front := startDaemon(t, "-workers", "2", "-peers", w1.url+","+w2.url)

	sp := e2eSpec()
	rates := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006}
	resp, body := postJSON(t, front.url+"/v1/sweep", service.SweepRequest{Spec: sp, Rates: rates})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d (%s)", resp.StatusCode, body)
	}
	var sr service.SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != len(rates) {
		t.Fatalf("got %d points for %d rates", len(sr.Points), len(rates))
	}
	for i, r := range rates {
		pt := sp
		pt.Rate = r
		got, err := json.Marshal(sr.Points[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != directJSON(t, pt) {
			t.Errorf("rate %g: fleet sweep differs from direct", r)
		}
	}

	// The work actually split: both workers evaluated, and the front's
	// healthz reports two closed breakers and zero local evaluations.
	for i, w := range []*daemon{w1, w2} {
		if h := getHealth(t, w.url); h.Stats.Evaluations == 0 {
			t.Errorf("worker %d evaluated nothing", i+1)
		}
	}
	h := getHealth(t, front.url)
	if len(h.Peers) != 2 {
		t.Fatalf("front healthz reports %d peers, want 2", len(h.Peers))
	}
	for _, p := range h.Peers {
		if p.State != "closed" || p.Successes == 0 {
			t.Errorf("front peer %s health = %+v", p.URL, p)
		}
	}
	if h.Stats.Evaluations != 0 {
		t.Errorf("front evaluated %d jobs locally; the fleet should have served all of them", h.Stats.Evaluations)
	}
}
