// Command quarcd serves the quarc evaluation pipeline over HTTP: one
// resident engine with a content-addressed result cache, singleflight
// deduplication and a bounded worker pool (noc/service) behind a small
// JSON API.
//
//	POST /v1/evaluate   one noc.Spec        -> one noc.Result
//	POST /v1/sweep      {spec, rates}       -> one Result per rate
//	GET  /v1/trace/{fp}                     -> the Result (with its recorded
//	                                           time series) of a previous
//	                                           evaluation, by content address
//	GET  /dashboard                         -> static time-series viewer
//	GET  /v1/registry                       -> registered topology/router/
//	                                           pattern/arrival/spatial names
//	GET  /v1/healthz                        -> status + cache/pool stats
//
// A spec evaluated with "metrics": true carries a bucketed time series
// in its Result ("series": per-channel utilization, injections,
// ejections, latency sums, queue occupancy), which /v1/trace re-serves
// by the spec's fingerprint — from the cache, the durable store, or an
// evaluation still in flight. In a fleet, trace queries are forwarded
// to the peer that computed the point.
//
// Example:
//
//	quarcd -addr :8080 -workers 8 -cache 4096 -store /var/lib/quarc &
//	curl -s localhost:8080/v1/evaluate -d '{"topology":"quarc","n":16,"rate":0.002,"alpha":0.05,"pattern":"localized","dests":4}'
//
// With -store, results are persisted to a durable on-disk store keyed
// by the spec's content address: a restarted daemon serves previously
// computed specs warm, bitwise-identical, without re-simulating.
//
// With -peers, this daemon fronts a fleet: sweeps fan per-rate jobs out
// to the peer daemons with retries, hedging and per-peer circuit
// breakers, degrading to local evaluation when no peer can serve:
//
//	quarcd -addr :8081 &
//	quarcd -addr :8082 &
//	quarcd -addr :8080 -peers http://localhost:8081,http://localhost:8082
//
// The same JSON documents drive quarcsim -spec, so a scenario debugged
// on the command line is served unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"quarc/noc/service"
	"quarc/noc/service/fleet"
	"quarc/noc/service/store"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("quarcd: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0: GOMAXPROCS)")
	cache := flag.Int("cache", 1024, "result cache entries")
	scenarios := flag.Int("scenarios", 64, "compiled base-scenario cache entries")
	queue := flag.Int("queue", 0, "pending-job queue depth (0: 4x workers)")
	storeDir := flag.String("store", "", "durable result store directory (empty: memory only)")
	peers := flag.String("peers", "", "comma-separated peer quarcd URLs to fan jobs out to")
	requestTimeout := flag.Duration("request-timeout", 0, "per-evaluation server deadline, answered with 504 (0: none)")
	peerTimeout := flag.Duration("peer-timeout", 30*time.Second, "per-job peer call deadline")
	readTimeout := flag.Duration("read-timeout", time.Minute, "connection read deadline")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "connection write deadline")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.Parse()

	cfg := service.Config{
		CacheEntries:    *cache,
		ScenarioEntries: *scenarios,
		Workers:         *workers,
		QueueDepth:      *queue,
	}
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			log.Fatalf("opening store: %v", err)
		}
		cfg.Store = st
		log.Printf("store %s: %d durable results, %d quarantined", *storeDir, st.Len(), st.Quarantined())
	}
	ev := service.New(cfg)

	var backend service.Backend = ev
	if *peers != "" {
		var urls []string
		for _, u := range strings.Split(*peers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		d, err := fleet.New(fleet.Config{
			Peers:          urls,
			Local:          ev,
			RequestTimeout: *peerTimeout,
			HedgeAfter:     *peerTimeout / 4,
		})
		if err != nil {
			log.Fatalf("fleet: %v", err)
		}
		backend = d
		log.Printf("fleet dispatch to %d peers: %s", len(urls), strings.Join(urls, ", "))
	}

	// An explicit listener (rather than ListenAndServe) pins down the
	// bound address, so ":0" works for tests and the log line names the
	// real port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{
		Handler:           service.NewHandlerConfig(backend, service.HandlerConfig{RequestTimeout: *requestTimeout}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("serving on %s (workers=%d cache=%d)", ln.Addr(), ev.Stats().Workers, *cache)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: report degraded on healthz so fleet breakers
	// and load balancers rotate away, stop accepting, drain in-flight
	// requests within the deadline, then stop the evaluation pool.
	ev.SetDraining(true)
	log.Printf("shutting down (draining up to %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	ev.Close()
	st := ev.Stats()
	log.Printf("stopped: %d evaluations, %d cache hits, %d coalesced, %d store hits",
		st.Evaluations, st.Hits, st.Coalesced, st.StoreHits)
}
