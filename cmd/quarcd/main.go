// Command quarcd serves the quarc evaluation pipeline over HTTP: one
// resident engine with a content-addressed result cache, singleflight
// deduplication and a bounded worker pool (noc/service) behind a small
// JSON API.
//
//	POST /v1/evaluate  one noc.Spec        -> one noc.Result
//	POST /v1/sweep     {spec, rates}       -> one Result per rate
//	GET  /v1/registry                      -> registered topology/router/
//	                                          pattern/arrival/spatial names
//	GET  /v1/healthz                       -> status + cache/pool stats
//
// Example:
//
//	quarcd -addr :8080 -workers 8 -cache 4096 &
//	curl -s localhost:8080/v1/evaluate -d '{"topology":"quarc","n":16,"rate":0.002,"alpha":0.05,"pattern":"localized","dests":4}'
//
// The same JSON documents drive quarcsim -spec, so a scenario debugged
// on the command line is served unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quarc/noc/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("quarcd: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0: GOMAXPROCS)")
	cache := flag.Int("cache", 1024, "result cache entries")
	scenarios := flag.Int("scenarios", 64, "compiled base-scenario cache entries")
	queue := flag.Int("queue", 0, "pending-job queue depth (0: 4x workers)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.Parse()

	ev := service.New(service.Config{
		CacheEntries:    *cache,
		ScenarioEntries: *scenarios,
		Workers:         *workers,
		QueueDepth:      *queue,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(ev),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (workers=%d cache=%d)", *addr, ev.Stats().Workers, *cache)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests within
	// the deadline, then stop the evaluation pool.
	log.Printf("shutting down (draining up to %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	ev.Close()
	st := ev.Stats()
	log.Printf("stopped: %d evaluations, %d cache hits, %d coalesced", st.Evaluations, st.Hits, st.Coalesced)
}
