// Command quarclint runs the repository's own static-analysis pass: the
// syntactic checkers (determinism, hot-path purity, error discipline,
// registry hygiene) and the quarcflow dataflow checkers (pool lifetimes,
// RNG seed provenance, float fold order, shared-state audit) in
// internal/lint, over the packages matched by the given patterns
// (default ./...).
//
// Usage:
//
//	go run ./cmd/quarclint [-json] [-C dir] [-checkers csv] [-timing] [-sharedstate file] [packages...]
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 when the analysis itself failed (unparseable source,
// toolchain errors, an unknown checker name). With -json the diagnostics
// are emitted as one JSON document on stdout — the machine-readable form
// CI uploads as an artifact on failure. -checkers restricts the run to a
// comma-separated subset of the registry; -timing reports per-checker
// wall time on stderr (or in the JSON document); -sharedstate writes the
// mutable-state inventory to the named file ("-" for stdout) in its
// canonical byte form, the same bytes as the committed
// lint/sharedstate.json baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"quarc/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	dir := flag.String("C", ".", "run the analysis rooted at this directory")
	checkersFlag := flag.String("checkers", "", "comma-separated checkers to run (default all)")
	timing := flag.Bool("timing", false, "report per-checker wall time")
	sharedOut := flag.String("sharedstate", "", "write the shared-state inventory to this file (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: quarclint [-json] [-C dir] [-checkers csv] [-timing] [-sharedstate file] [packages...]\n\nCheckers: %v\n", lint.Checkers())
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	base, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
		os.Exit(2)
	}

	cfg := lint.DefaultConfig()
	cfg.BaseDir = base
	if *checkersFlag != "" {
		known := make(map[string]bool)
		for _, name := range lint.Checkers() {
			known[name] = true
		}
		for _, name := range strings.Split(*checkersFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				fmt.Fprintf(os.Stderr, "quarclint: unknown checker %q (known: %s)\n", name, strings.Join(lint.Checkers(), ", "))
				os.Exit(2)
			}
			cfg.Checkers = append(cfg.Checkers, name)
		}
		if len(cfg.Checkers) == 0 {
			fmt.Fprintf(os.Stderr, "quarclint: -checkers named no checkers (known: %s)\n", strings.Join(lint.Checkers(), ", "))
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(base, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
		os.Exit(2)
	}
	report := lint.RunReport(pkgs, cfg)
	diags := report.Diagnostics

	if *sharedOut != "" {
		data := lint.SharedStateJSON(report.SharedState)
		if *sharedOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*sharedOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		doc := struct {
			Diagnostics []lint.Diagnostic    `json:"diagnostics"`
			Count       int                  `json:"count"`
			Timing      []lint.CheckerTiming `json:"timing,omitempty"`
		}{Diagnostics: diags, Count: len(diags)}
		if doc.Diagnostics == nil {
			doc.Diagnostics = []lint.Diagnostic{}
		}
		if *timing {
			doc.Timing = report.Timing
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if *timing {
			for _, t := range report.Timing {
				fmt.Fprintf(os.Stderr, "quarclint: %-16s %8.1fms\n", t.Checker, t.Millis)
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "quarclint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
