// Command quarclint runs the repository's own static-analysis pass: the
// determinism, hot-path purity, error-discipline and registry-hygiene
// checkers in internal/lint, over the packages matched by the given
// patterns (default ./...).
//
// Usage:
//
//	go run ./cmd/quarclint [-json] [-C dir] [packages...]
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 when the analysis itself failed (unparseable source,
// toolchain errors). With -json the diagnostics are emitted as one JSON
// document on stdout — the machine-readable form CI uploads as an
// artifact on failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"quarc/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	dir := flag.String("C", ".", "run the analysis rooted at this directory")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: quarclint [-json] [-C dir] [packages...]\n\nCheckers: %v\n", lint.Checkers())
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	base, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
		os.Exit(2)
	}

	pkgs, err := lint.Load(base, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig()
	cfg.BaseDir = base
	diags := lint.Run(pkgs, cfg)

	if *jsonOut {
		doc := struct {
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
			Count       int               `json:"count"`
		}{Diagnostics: diags, Count: len(diags)}
		if doc.Diagnostics == nil {
			doc.Diagnostics = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "quarclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "quarclint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
