package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"quarc/internal/lint"
)

// buildBinary compiles the quarclint binary once per test run; every
// e2e test drives the real executable so the exit-code contract is
// pinned end to end.
var buildBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "quarclint-e2e")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "quarclint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &exec.Error{Name: "go build: " + string(out), Err: err}
	}
	return bin, nil
})

// runLint executes the built binary and returns stdout, stderr and the
// exit code.
func runLint(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	bin, err := buildBinary()
	if err != nil {
		t.Fatalf("building quarclint: %v", err)
	}
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running quarclint: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

// corpusDir is the known-dirty fixture module: the lint corpus always
// produces errdiscipline and hotpath findings under the default config.
func corpusDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestExitCleanTree(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runLint(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d on the clean fixture, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree produced output: %q", stdout)
	}
}

func TestExitFindings(t *testing.T) {
	stdout, stderr, code := runLint(t, "-C", corpusDir(t), "./...")
	if code != 1 {
		t.Fatalf("exit = %d on the dirty corpus, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "[errdiscipline]") {
		t.Errorf("expected errdiscipline findings in output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "diagnostic(s)") {
		t.Errorf("expected a diagnostic count on stderr, got: %q", stderr)
	}
}

func TestExitUnknownChecker(t *testing.T) {
	_, stderr, code := runLint(t, "-checkers", "nosuchchecker", "-C", corpusDir(t), "./...")
	if code != 2 {
		t.Fatalf("exit = %d for an unknown checker, want 2\nstderr: %s", code, stderr)
	}
	// The error must teach: every known checker is listed.
	for _, name := range lint.Checkers() {
		if !strings.Contains(stderr, name) {
			t.Errorf("unknown-checker error does not list %q: %s", name, stderr)
		}
	}
}

func TestJSONShape(t *testing.T) {
	stdout, _, code := runLint(t, "-json", "-timing", "-C", corpusDir(t), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Diagnostics []lint.Diagnostic    `json:"diagnostics"`
		Count       int                  `json:"count"`
		Timing      []lint.CheckerTiming `json:"timing"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout)
	}
	if doc.Count == 0 || doc.Count != len(doc.Diagnostics) {
		t.Errorf("count = %d with %d diagnostics", doc.Count, len(doc.Diagnostics))
	}
	for _, d := range doc.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Checker == "" || d.Message == "" {
			t.Errorf("diagnostic with empty fields: %+v", d)
		}
	}
	var names []string
	for _, tm := range doc.Timing {
		names = append(names, tm.Checker)
	}
	if strings.Join(names, ",") != strings.Join(lint.Checkers(), ",") {
		t.Errorf("timing names = %v, want every checker in registry order %v", names, lint.Checkers())
	}
}

func TestCheckersSubsetFlag(t *testing.T) {
	stdout, _, code := runLint(t, "-checkers", "errdiscipline", "-json", "-C", corpusDir(t), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("decoding -json output: %v", err)
	}
	for _, d := range doc.Diagnostics {
		if d.Checker != "errdiscipline" && d.Checker != "directive" {
			t.Errorf("checker %q ran despite -checkers errdiscipline: %s", d.Checker, d)
		}
	}
	if len(doc.Diagnostics) == 0 {
		t.Error("errdiscipline reported nothing on the corpus")
	}
}

func TestSharedStateFlag(t *testing.T) {
	// The clean fixture has no packages in the default shared-state
	// scope, so the flag must emit the canonical empty inventory.
	dir, err := filepath.Abs(filepath.Join("testdata", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	stdout, _, code := runLint(t, "-checkers", "sharedstate", "-sharedstate", "-", "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	want := string(lint.SharedStateJSON(nil))
	if stdout != want {
		t.Errorf("-sharedstate - output = %q, want canonical empty inventory %q", stdout, want)
	}
}
