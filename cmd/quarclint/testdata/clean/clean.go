// Package clean is the exit-0 fixture: nothing here trips any checker.
package clean

// Double doubles x.
func Double(x int) int { return 2 * x }
