module quarclint.clean

go 1.22
