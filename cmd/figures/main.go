// Command figures regenerates the paper's evaluation figures: every panel
// of Figure 6 (random multicast destinations) and Figure 7 (localized
// destinations), each as a CSV file plus an ASCII rendering, and a final
// model-vs-simulation agreement table.
//
// Structural figures: -ascii additionally prints the Fig. 2 topology and
// Fig. 3 broadcast walk of a 16-node Quarc as ASCII diagrams.
//
// Example:
//
//	figures -out results/ -quick
//	figures -panel fig6-a
//	figures -ascii
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	out := flag.String("out", "", "directory for CSV output (default: print only)")
	quick := flag.Bool("quick", false, "shorter simulations (coarser confidence intervals)")
	panel := flag.String("panel", "", "run a single panel by ID (e.g. fig6-a)")
	points := flag.Int("points", 0, "rate samples per panel (default 8)")
	parallel := flag.Int("parallel", 1, "panels to run concurrently (0 = GOMAXPROCS)")
	ascii := flag.Bool("ascii", false, "print the structural figures (Fig. 2 topology, Fig. 3 broadcast) and exit")
	sat := flag.Bool("sat", false, "print the saturation-rate study and exit")
	flag.Parse()

	if *sat {
		rows, err := noc.SaturationStudy(
			[]int{16, 32, 64, 128}, []int{16, 32, 48, 64}, []float64{0, 0.03, 0.05, 0.10}, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("model saturation rate by configuration (localized multicast set):")
		fmt.Print(noc.SatTable(rows))
		return
	}

	if *ascii {
		printStructuralFigures()
		return
	}

	effort := noc.DefaultEffort()
	if *quick {
		effort = noc.QuickEffort()
	}

	panels := noc.FigurePanels()
	if *panel != "" {
		p, err := noc.PanelByID(*panel)
		if err != nil {
			log.Fatal(err)
		}
		panels = []noc.Panel{p}
	}

	for i := range panels {
		if *points > 0 {
			panels[i].Points = *points
		}
		fmt.Printf("running %s (N=%d, M=%d flits, alpha=%.0f%%)...\n",
			panels[i].ID, panels[i].N, panels[i].MsgLen, panels[i].Alpha*100)
	}
	results, err := noc.RunFigurePanels(panels, effort, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Print(res.AsciiPlot(72, 18))
		fmt.Println()
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*out, res.Panel().ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.WriteCSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if *out != "" {
		path := filepath.Join(*out, "figures.json")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := noc.WriteFiguresJSON(f, results); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	fmt.Println("model-vs-simulation agreement (relative error over stable points):")
	fmt.Print(noc.FiguresSummary(results))
}

// printStructuralFigures renders the paper's structural figures as ASCII:
// the Quarc topology (Fig. 2a) and the broadcast pattern from node 0 in a
// 16-node network (Fig. 3).
func printStructuralFigures() {
	s, err := noc.NewScenario(noc.Quarc(16), noc.Alpha(1), noc.Broadcast())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 2a — Quarc topology, N=16 (rim links + doubled cross links):")
	fmt.Println()
	fmt.Println("        0  1  2  3")
	fmt.Println("     15 +--+--+--+ 4     every node i also has two parallel")
	fmt.Println("      | .  .  .  . |     cross links to node (i+8) mod 16;")
	fmt.Println("     14.           .5    rim links are bidirectional pairs")
	fmt.Println("      |             |    (one unidirectional channel each")
	fmt.Println("     13.           .6    way) with 2 virtual channels.")
	fmt.Println("      | .  .  .  . |")
	fmt.Println("     12 +--+--+--+ 7")
	fmt.Println("       11 10  9  8")
	fmt.Println()

	fmt.Println("Fig. 3 — broadcast from node 0 (branch endpoints 4, 5, 11, 12):")
	fmt.Println()
	branches, err := s.Branches(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range branches {
		walk := []string{"0"}
		for _, node := range b.Walk {
			walk = append(walk, fmt.Sprint(node))
		}
		fmt.Printf("  port %-2s: %s  (receivers %v)\n",
			b.PortName, strings.Join(walk, " -> "), b.Targets)
	}
	fmt.Println()
	fmt.Println("Every node other than the source is covered exactly once; each branch")
	fmt.Println("is tagged broadcast and ends at the last node of its quadrant, as in")
	fmt.Println("Sec. 3.3.2 of the paper.")
}
