// Command quarcmodel evaluates the paper's analytical model for one Quarc
// configuration and prints the predicted unicast and multicast latencies.
//
// Example:
//
//	quarcmodel -n 64 -msg 32 -rate 0.001 -alpha 0.05 -dests 8 -random
package main

import (
	"flag"
	"fmt"
	"log"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quarcmodel: ")

	n := flag.Int("n", 16, "network size (multiple of 4, >= 8)")
	msg := flag.Int("msg", 32, "message length in flits")
	rate := flag.Float64("rate", 0.001, "message generation rate per node (messages/cycle)")
	alpha := flag.Float64("alpha", 0.05, "multicast fraction of generated messages")
	dests := flag.Int("dests", 4, "number of multicast destinations")
	random := flag.Bool("random", false, "random destination set (default: localized on the L rim)")
	seed := flag.Uint64("seed", 1, "seed for the random destination set")
	broadcast := flag.Bool("broadcast", false, "multicast to every node (overrides -dests)")
	verbose := flag.Bool("v", false, "print per-port branch details")
	flag.Parse()

	opts := []noc.Option{
		noc.Quarc(*n), noc.MsgLen(*msg), noc.Rate(*rate), noc.Alpha(*alpha),
		noc.Detail(*verbose),
	}
	switch {
	case *alpha == 0:
		// no destination set needed
	case *broadcast:
		opts = append(opts, noc.Broadcast())
	case *random:
		opts = append(opts, noc.RandomDests(*dests, *seed))
	default:
		opts = append(opts, noc.LocalizedDests(noc.PortL, *dests))
	}
	s, err := noc.NewScenario(opts...)
	if err != nil {
		log.Fatal(err)
	}

	pred, err := noc.Model{}.Evaluate(s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration: N=%d msg=%d flits rate=%g alpha=%g set={%s}\n",
		*n, *msg, *rate, *alpha, s.SetString())
	fmt.Printf("fixed point:   iterations=%d converged=%v max channel utilization=%.4f\n",
		pred.Iterations, pred.Converged, pred.MaxRho)
	if pred.Saturated {
		fmt.Println("result:        SATURATED — the configuration is outside the model's stability region")
		return
	}
	fmt.Printf("unicast:       average latency %.3f cycles\n", pred.Unicast)
	if *alpha > 0 {
		fmt.Printf("multicast:     average latency %.3f cycles\n", pred.Multicast)
	}
	if *verbose && *alpha > 0 {
		fmt.Println("branches from node 0:")
		for _, b := range pred.Branches {
			fmt.Printf("  port %-2s  hops=%-3d targets=%v  expected path wait=%.3f cycles\n",
				b.PortName, b.Hops, b.Targets, b.Wait)
		}
	}
}
