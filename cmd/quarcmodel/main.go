// Command quarcmodel evaluates the paper's analytical model for one Quarc
// configuration and prints the predicted unicast and multicast latencies.
//
// Example:
//
//	quarcmodel -n 64 -msg 32 -rate 0.001 -alpha 0.05 -dests 8 -random
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quarcmodel: ")

	n := flag.Int("n", 16, "network size (multiple of 4, >= 8)")
	msg := flag.Int("msg", 32, "message length in flits")
	rate := flag.Float64("rate", 0.001, "message generation rate per node (messages/cycle)")
	alpha := flag.Float64("alpha", 0.05, "multicast fraction of generated messages")
	dests := flag.Int("dests", 4, "number of multicast destinations")
	random := flag.Bool("random", false, "random destination set (default: localized on the L rim)")
	seed := flag.Uint64("seed", 1, "seed for the random destination set")
	broadcast := flag.Bool("broadcast", false, "multicast to every node (overrides -dests)")
	verbose := flag.Bool("v", false, "print per-port branch details")
	flag.Parse()

	q, err := topology.NewQuarc(*n)
	if err != nil {
		log.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)

	var set routing.MulticastSet
	switch {
	case *alpha == 0:
		set = routing.NewMulticastSet(topology.QuarcPorts)
	case *broadcast:
		set = rt.BroadcastSet()
	case *random:
		set, err = rt.RandomSet(rand.New(rand.NewPCG(*seed, 0)), *dests)
	default:
		set, err = rt.LocalizedSet(topology.PortL, *dests)
	}
	if err != nil {
		log.Fatal(err)
	}

	in := core.Input{
		Router: rt,
		Spec:   traffic.Spec{Rate: *rate, MulticastFrac: *alpha, Set: set},
		MsgLen: *msg,
	}
	m, err := core.NewModel(in)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration: N=%d msg=%d flits rate=%g alpha=%g set={%s}\n",
		*n, *msg, *rate, *alpha, set)
	fmt.Printf("fixed point:   iterations=%d converged=%v max channel utilization=%.4f\n",
		pred.Iterations, pred.Converged, pred.MaxRho)
	if pred.Saturated {
		fmt.Println("result:        SATURATED — the configuration is outside the model's stability region")
		return
	}
	fmt.Printf("unicast:       average latency %.3f cycles\n", pred.UnicastLatency)
	if *alpha > 0 {
		fmt.Printf("multicast:     average latency %.3f cycles\n", pred.MulticastLatency)
	}
	if *verbose && *alpha > 0 {
		branches, err := rt.MulticastBranches(0, set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("branches from node 0:")
		for _, b := range branches {
			wait := m.PathWait(b.Path)
			fmt.Printf("  port %-2s  hops=%-3d targets=%v  expected path wait=%.3f cycles\n",
				topology.QuarcPortName(b.Port), len(b.Path)-1, b.Targets, wait)
		}
	}
}
