// Command ablations runs the design-choice studies from DESIGN.md §7:
//
//   - abl-oneport: all-port vs one-port Quarc routers under broadcast
//     traffic (the Fig. 1 motivation for multi-port routers)
//   - abl-spidergon: Quarc true broadcast vs Spidergon broadcast-by-
//     consecutive-unicasts (Sec. 3.2)
//   - abl-service: the paper's Eq. 6 service recurrence vs the exact
//     tail-release holding time
//   - ext-mesh: model validity on multi-port mesh and torus (Sec. 5
//     future work)
//   - workload: the same offered load under every arrival process and a
//     selection of permutation patterns (simulator only — the model's
//     M/G/1 machinery is Poisson-only by construction)
//
// Example:
//
//	ablations -which all -n 16 -msg 32
package main

import (
	"flag"
	"fmt"
	"log"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablations: ")

	which := flag.String("which", "all", "study to run: oneport, spidergon, service, mesh, workload, all")
	n := flag.Int("n", 16, "Quarc network size")
	msg := flag.Int("msg", 32, "message length in flits")
	alpha := flag.Float64("alpha", 0.05, "multicast fraction")
	quick := flag.Bool("quick", false, "shorter simulations")
	flag.Parse()

	effort := noc.DefaultEffort()
	if *quick {
		effort = noc.QuickEffort()
	}
	opts := []noc.Option{noc.SimEffort(effort)}

	run := func(name string) bool { return *which == "all" || *which == name }

	if run("oneport") {
		fmt.Printf("== all-port vs one-port Quarc (N=%d, M=%d, alpha=%.0f%% broadcast) ==\n",
			*n, *msg, *alpha*100)
		series, err := noc.OnePortAblation(*n, *msg, *alpha,
			[]float64{0.001, 0.002, 0.004}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(noc.SeriesTable(series))
		fmt.Println()
	}

	if run("spidergon") {
		fmt.Printf("== Quarc broadcast vs Spidergon broadcast-by-unicast (N=%d, M=%d) ==\n", *n, *msg)
		series, err := noc.SpidergonComparison(*n, *msg, *alpha,
			[]float64{0.0005, 0.001}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(noc.SeriesTable(series))
		fmt.Println()
	}

	if run("service") {
		fmt.Printf("== Eq. 6 vs tail-release service recurrence (N=%d, M=%d, unicast) ==\n", *n, *msg)
		points, err := noc.ServiceFormulaAblation(*n, *msg,
			[]float64{0.002, 0.004, 0.006, 0.008}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(noc.ServiceTable(points))
		fmt.Println()
	}

	if run("mesh") {
		fmt.Println("== model validity on mesh and torus (4x4, M=16) ==")
		series, err := noc.MeshExtension(4, 4, 16, *alpha,
			[]float64{0.002, 0.004, 0.008}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(noc.SeriesTable(series))
		fmt.Println()
	}

	if run("workload") {
		fmt.Printf("== workload diversity: arrival x spatial pattern (N=%d, M=%d, sim unicast latency) ==\n",
			*n, *msg)
		series, err := noc.WorkloadAblation(*n, *msg,
			[]float64{0.002, 0.004, 0.006}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(noc.SimSeriesTable(series))
	}
}
