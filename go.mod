module quarc

go 1.22
