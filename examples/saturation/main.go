// Saturation study: where does a Quarc configuration stop being stable,
// and how conservative is the analytical model about it?
//
// The model's service-time fixed point diverges somewhat before the real
// network saturates (its Eq. 6 holding times include downstream blocking,
// so channel utilization hits 1 early). This example finds the model's
// stability boundary for a grid of configurations, then probes the
// simulator just below and well above that boundary to show the margin.
//
// Run with:
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Model stability boundary across the paper's parameter grid:")
	rows, err := noc.SaturationStudy(
		[]int{16, 32, 64}, []int{16, 32, 64}, []float64{0, 0.05, 0.10}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(noc.SatTable(rows))

	fmt.Println("\nNote the aggregate capacity column (sat-rate x N x M flits/cycle):")
	fmt.Println("it stays in a narrow band per alpha — saturation is a bandwidth")
	fmt.Println("limit, so the per-node rate falls as 1/(N·M).")

	// Probe the simulator around the model boundary for one configuration.
	const n, msgLen = 32, 32
	s, err := noc.NewScenario(
		noc.Quarc(n), noc.MsgLen(msgLen), noc.Alpha(0.05),
		noc.LocalizedDests(noc.PortL, 4),
		noc.Seed(55), noc.Warmup(10000), noc.Measure(60000), noc.SatQueue(400),
	)
	if err != nil {
		log.Fatal(err)
	}
	sat, err := noc.SaturationRate(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nN=%d, M=%d, alpha=5%%: model saturation rate = %.5g msg/cycle/node\n", n, msgLen, sat)
	fmt.Println("simulator probes around that boundary:")
	for _, frac := range []float64{0.8, 1.0, 1.3, 1.8} {
		rate := sat * frac
		probe, err := s.With(noc.Rate(rate))
		if err != nil {
			log.Fatal(err)
		}
		res, err := noc.Simulator{}.Evaluate(probe)
		if err != nil {
			log.Fatal(err)
		}
		status := fmt.Sprintf("latency %.1f cycles (peak util %.2f)", res.Unicast, res.MaxUtil)
		if res.Saturated {
			status = "SATURATED (backlog grows without bound)"
		}
		fmt.Printf("  %.2f x model boundary (rate %.5g): %s\n", frac, rate, status)
	}
	fmt.Println("\nThe simulator keeps delivering somewhat past the model's boundary —")
	fmt.Println("the model is conservative, which is the safe direction for a designer")
	fmt.Println("sizing a NoC, and matches how the paper's figures stop at the knee.")
}
