// Quickstart: build a Quarc NoC scenario, evaluate the analytical model at
// one operating point, validate it against the discrete-event simulator,
// and print both sides.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)

	// One scenario drives both engines: a 32-node Quarc with its all-port
	// BRCP router, Poisson sources at 0.002 messages/cycle/node, 5% of
	// messages multicast to four nodes on the left rim, 32-flit messages.
	s, err := noc.NewScenario(
		noc.Quarc(32),
		noc.MsgLen(32),
		noc.Rate(0.002),
		noc.Alpha(0.05),
		noc.LocalizedDests(noc.PortL, 4),
		noc.Seed(2024),
		noc.Warmup(10000),
		noc.Measure(100000),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's analytical model (Eqs. 3-16).
	pred, err := noc.Model{}.Evaluate(s)
	if err != nil {
		log.Fatal(err)
	}

	// The wormhole simulator on the same configuration.
	meas, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Quarc NoC, N=32, msg=32 flits, rate=0.002 msgs/cycle/node, alpha=5%")
	fmt.Printf("  multicast set: %s\n\n", s.SetString())
	fmt.Printf("  %-22s %12s %12s %9s\n", "", "model", "simulation", "rel.err")
	fmt.Printf("  %-22s %12.3f %12.3f %8.2f%%\n", "unicast latency",
		pred.Unicast, meas.Unicast, 100*noc.RelErr(pred.Unicast, meas.Unicast))
	fmt.Printf("  %-22s %12.3f %12.3f %8.2f%%\n", "multicast latency",
		pred.Multicast, meas.Multicast, 100*noc.RelErr(pred.Multicast, meas.Multicast))
	fmt.Printf("\n  simulated %d messages over %.0f cycles (%d events)\n",
		meas.Completed, meas.Time, meas.Events)
}
