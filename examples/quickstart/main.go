// Quickstart: build a Quarc NoC, evaluate the analytical model at one
// operating point, validate it against the discrete-event simulator, and
// print both sides.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/stats"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

func main() {
	log.SetFlags(0)

	// 1. A 32-node Quarc NoC with its all-port router and BRCP routing.
	q, err := topology.NewQuarc(32)
	if err != nil {
		log.Fatal(err)
	}
	router := routing.NewQuarcRouter(q)

	// 2. A workload: Poisson sources at 0.002 messages/cycle/node, 5% of
	// messages multicast to four nodes on the left rim, the rest unicast
	// to uniformly random destinations. Messages are 32 flits.
	set, err := router.LocalizedSet(topology.PortL, 4)
	if err != nil {
		log.Fatal(err)
	}
	spec := traffic.Spec{Rate: 0.002, MulticastFrac: 0.05, Set: set}
	const msgLen = 32

	// 3. The paper's analytical model.
	pred, err := core.Predict(core.Input{Router: router, Spec: spec, MsgLen: msgLen})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The wormhole simulator on the same configuration.
	workload, err := traffic.NewWorkload(router, spec, 2024)
	if err != nil {
		log.Fatal(err)
	}
	network, err := wormhole.New(router.Graph(), workload, wormhole.Config{
		MsgLen:  msgLen,
		Warmup:  10000,
		Measure: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := network.Run()

	// 5. Compare.
	fmt.Println("Quarc NoC, N=32, msg=32 flits, rate=0.002 msgs/cycle/node, alpha=5%")
	fmt.Printf("  multicast set: %s\n\n", set)
	fmt.Printf("  %-22s %12s %12s %9s\n", "", "model", "simulation", "rel.err")
	fmt.Printf("  %-22s %12.3f %12.3f %8.2f%%\n", "unicast latency",
		pred.UnicastLatency, res.Unicast.Mean(),
		100*stats.RelErr(pred.UnicastLatency, res.Unicast.Mean()))
	fmt.Printf("  %-22s %12.3f %12.3f %8.2f%%\n", "multicast latency",
		pred.MulticastLatency, res.Multicast.Mean(),
		100*stats.RelErr(pred.MulticastLatency, res.Multicast.Mean()))
	fmt.Printf("\n  simulated %d messages over %.0f cycles (%d events)\n",
		res.Completed, res.Time, res.Events)
}
