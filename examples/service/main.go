// Service: run the simulation-as-a-service stack in process — the same
// noc/service engine the quarcd daemon serves over HTTP — and show the
// three layers of reuse: a declarative Spec is evaluated cold, served
// again from the content-addressed cache (bitwise identical, orders of
// magnitude faster), and swept across a rate grid on the shared worker
// pool where every point becomes its own cache entry.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"quarc/noc"
	"quarc/noc/service"
)

func main() {
	log.SetFlags(0)

	// The declarative form of a scenario: this exact JSON document also
	// works as `quarcsim -spec` input and as a quarcd request body.
	sp := noc.Spec{
		Topology: "quarc", N: 32,
		Pattern: "localized", Dests: 4,
		MsgLen: 32, Rate: 0.002, Alpha: 0.05,
		Seed: 2024, Warmup: 10000, Measure: 100000,
	}
	doc, _ := sp.CanonicalJSON()
	fmt.Printf("spec %016x:\n  %s\n\n", sp.Fingerprint(), doc)

	ev := service.New(service.Config{Workers: 2, CacheEntries: 256})
	defer ev.Close()
	ctx := context.Background()

	// Cold: compiled, scheduled on the pool, simulated.
	t0 := time.Now()
	cold, src, err := ev.Evaluate(ctx, sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s unicast %.3f  multicast %.3f cycles   (%v)\n",
		src, cold.Unicast, cold.Multicast, time.Since(t0).Round(time.Microsecond))

	// Hot: the same content address hits the cache — bitwise identical.
	t1 := time.Now()
	hot, src, err := ev.Evaluate(ctx, sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s unicast %.3f  multicast %.3f cycles   (%v)\n",
		src, hot.Unicast, hot.Multicast, time.Since(t1).Round(time.Microsecond))
	cb, _ := json.Marshal(cold)
	hb, _ := json.Marshal(hot)
	fmt.Printf("bitwise identical: %v\n\n", string(cb) == string(hb))

	// A sweep schedules one content-addressed job per rate on the shared
	// pool; structurally identical points reuse one compiled topology and
	// the workers' pooled networks.
	rates := []float64{0.001, 0.002, 0.003, 0.004}
	results, err := ev.Sweep(ctx, sp, rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rate      unicast   multicast  (cycles)")
	for i, r := range results {
		fmt.Printf("%.4f   %8.3f   %8.3f\n", rates[i], r.Unicast, r.Multicast)
	}

	st := ev.Stats()
	fmt.Printf("\nstats: %d evaluations, %d cache hits, %d coalesced, %d results cached, %d compiled topologies\n",
		st.Evaluations, st.Hits, st.Coalesced, st.CachedResults, st.CachedScenarios)
}
