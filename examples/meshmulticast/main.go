// Mesh multicast: the paper's stated future work ("investigate the
// validity of the model in other relevant interconnection networks such as
// multi-port mesh and torus").
//
// The analytical model is topology-agnostic: it only needs channel paths
// and rates. This example points it at an 8x8 mesh and torus with XY
// unicast routing and dual-path Hamilton multicast (worms snake along a
// Hamilton path in a dedicated virtual-channel plane, absorbing-and-
// forwarding at targets, just like Quarc BRCP streams on the rim), then
// validates the predictions against the simulator.
//
// Run with:
//
//	go run ./examples/meshmulticast
package main

import (
	"fmt"
	"log"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/stats"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

func study(label string, m *topology.Mesh, rates []float64) {
	router := routing.NewMeshRouter(m)
	// Multicast: 3 targets ahead and 2 behind on the Hamilton path.
	set, err := router.HighLowSet([]int{1, 3, 5}, []int{2, 4})
	if err != nil {
		log.Fatal(err)
	}
	const msgLen = 32
	fmt.Printf("%s (%d nodes), msg=%d flits, alpha=5%%, dual-path multicast:\n", label, m.Nodes(), msgLen)
	fmt.Printf("  %-10s %11s %11s %8s %11s %11s %8s\n",
		"rate", "model-uni", "sim-uni", "err", "model-mc", "sim-mc", "err")
	for _, rate := range rates {
		spec := traffic.Spec{Rate: rate, MulticastFrac: 0.05, Set: set}
		pred, err := core.Predict(core.Input{Router: router, Spec: spec, MsgLen: msgLen})
		if err != nil {
			log.Fatal(err)
		}
		w, err := traffic.NewWorkload(router, spec, 31)
		if err != nil {
			log.Fatal(err)
		}
		nw, err := wormhole.New(router.Graph(), w, wormhole.Config{MsgLen: msgLen, Warmup: 8000, Measure: 80000})
		if err != nil {
			log.Fatal(err)
		}
		res := nw.Run()
		if pred.Saturated || res.Saturated {
			fmt.Printf("  %-10.5g %11s\n", rate, "saturated")
			continue
		}
		fmt.Printf("  %-10.5g %11.2f %11.2f %7.1f%% %11.2f %11.2f %7.1f%%\n",
			rate,
			pred.UnicastLatency, res.Unicast.Mean(),
			100*stats.RelErr(pred.UnicastLatency, res.Unicast.Mean()),
			pred.MulticastLatency, res.Multicast.Mean(),
			100*stats.RelErr(pred.MulticastLatency, res.Multicast.Mean()))
	}
	fmt.Println()
}

func main() {
	log.SetFlags(0)

	mesh, err := topology.NewMesh(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	study("8x8 mesh", mesh, []float64{0.0005, 0.001, 0.002})

	torus, err := topology.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	study("8x8 torus", torus, []float64{0.0005, 0.001, 0.002})

	fmt.Println("The torus's wrap links halve average distance, so at equal rates it")
	fmt.Println("runs at lower latency and saturates later than the mesh. The model's")
	fmt.Println("agreement carries over unchanged — it never referenced Quarc geometry.")
}
