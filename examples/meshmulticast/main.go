// Mesh multicast: the paper's stated future work ("investigate the
// validity of the model in other relevant interconnection networks such as
// multi-port mesh and torus").
//
// The analytical model is topology-agnostic: it only needs channel paths
// and rates. This example points it at an 8x8 mesh and torus with XY
// unicast routing and dual-path Hamilton multicast (worms snake along a
// Hamilton path in a dedicated virtual-channel plane, absorbing-and-
// forwarding at targets, just like Quarc BRCP streams on the rim), then
// validates the predictions against the simulator.
//
// Run with:
//
//	go run ./examples/meshmulticast
package main

import (
	"fmt"
	"log"

	"quarc/noc"
)

func study(label string, topo noc.Option, rates []float64) {
	// Multicast: 3 targets ahead and 2 behind on the Hamilton path.
	s, err := noc.NewScenario(
		topo, noc.MsgLen(32), noc.Alpha(0.05),
		noc.HighLowDests([]int{1, 3, 5}, []int{2, 4}),
		noc.Seed(31), noc.Warmup(8000), noc.Measure(80000),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%d nodes), msg=%d flits, alpha=5%%, dual-path multicast:\n",
		label, s.Nodes(), s.MsgLen())
	fmt.Printf("  %-10s %11s %11s %8s %11s %11s %8s\n",
		"rate", "model-uni", "sim-uni", "err", "model-mc", "sim-mc", "err")
	for _, rate := range rates {
		at, err := s.With(noc.Rate(rate))
		if err != nil {
			log.Fatal(err)
		}
		pred, err := noc.Model{}.Evaluate(at)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := noc.Simulator{}.Evaluate(at)
		if err != nil {
			log.Fatal(err)
		}
		if pred.Saturated || meas.Saturated {
			fmt.Printf("  %-10.5g %11s\n", rate, "saturated")
			continue
		}
		fmt.Printf("  %-10.5g %11.2f %11.2f %7.1f%% %11.2f %11.2f %7.1f%%\n",
			rate,
			pred.Unicast, meas.Unicast, 100*noc.RelErr(pred.Unicast, meas.Unicast),
			pred.Multicast, meas.Multicast, 100*noc.RelErr(pred.Multicast, meas.Multicast))
	}
	fmt.Println()
}

func main() {
	log.SetFlags(0)

	rates := []float64{0.0005, 0.001, 0.002}
	study("8x8 mesh", noc.Mesh(8, 8), rates)
	study("8x8 torus", noc.Torus(8, 8), rates)

	fmt.Println("The torus's wrap links halve average distance, so at equal rates it")
	fmt.Println("runs at lower latency and saturates later than the mesh. The model's")
	fmt.Println("agreement carries over unchanged — it never referenced Quarc geometry.")
}
