// Workloads: drive one topology through the workload-diversity
// registries — every arrival process crossed with a few spatial
// patterns — then capture a bursty run as a trace, replay it, and verify
// the replay reproduces the original result exactly.
//
// Run with:
//
//	go run ./examples/workloads
package main

import (
	"bytes"
	"fmt"
	"log"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)

	fmt.Println("registered arrival processes:", noc.Arrivals())
	fmt.Println("registered spatial patterns: ", noc.Spatials())
	fmt.Println()

	// The base scenario: a 16-node Quarc, 16-flit messages, a fixed
	// offered load. Every variant below changes only when messages are
	// injected (arrival process) or where they go (spatial pattern).
	base, err := noc.NewScenario(
		noc.Quarc(16),
		noc.MsgLen(16),
		noc.Rate(0.004),
		noc.Seed(7),
		noc.Warmup(5000),
		noc.Measure(50000),
	)
	if err != nil {
		log.Fatal(err)
	}

	variants := []struct {
		label string
		opts  []noc.Option
	}{
		{"poisson / uniform (the paper)", nil},
		{"bernoulli / uniform", []noc.Option{noc.Arrival("bernoulli")}},
		{"onoff(16, 0.1) / uniform", []noc.Option{noc.OnOff(16, 0.1)}},
		{"periodic / uniform", []noc.Option{noc.Arrival("periodic")}},
		{"poisson / transpose", []noc.Option{noc.Permutation("transpose")}},
		{"poisson / bit-reversal", []noc.Option{noc.Permutation("bit-reversal")}},
		{"poisson / tornado", []noc.Option{noc.Permutation("tornado")}},
		{"poisson / hotspot(30% -> {3,9})", []noc.Option{
			noc.HotspotDests(0.3, []int{3, 9}, []float64{2, 1})}},
		{"onoff(16, 0.1) / tornado", []noc.Option{noc.OnOff(16, 0.1), noc.Permutation("tornado")}},
	}
	fmt.Printf("%-34s %10s %10s %9s\n", "workload", "unicast", "p99-proxy", "max util")
	for _, v := range variants {
		s, err := base.With(v.opts...)
		if err != nil {
			log.Fatal(err)
		}
		r, err := noc.Simulator{}.Evaluate(s)
		if err != nil {
			log.Fatal(err)
		}
		// The CI half-width stands in for tail spread: bursty arrivals
		// widen it sharply at the same average rate.
		fmt.Printf("%-34s %10.3f %10.3f %9.4f\n", v.label, r.Unicast, r.Unicast+3*r.UnicastCI, r.MaxUtil)
	}
	fmt.Println()

	// Capture the burstiest variant as a trace...
	trace := &noc.TraceWorkload{}
	recScenario, err := base.With(noc.OnOff(16, 0.1), noc.Permutation("tornado"), noc.Record(trace))
	if err != nil {
		log.Fatal(err)
	}
	orig, err := noc.Simulator{}.Evaluate(recScenario)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d messages (%d bytes binary)\n", trace.Messages(), buf.Len())

	// ...read it back and replay it: bitwise the same result.
	loaded, err := noc.ReadTraceWorkload(&buf)
	if err != nil {
		log.Fatal(err)
	}
	repScenario, err := base.With(noc.Replay(loaded))
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := noc.Simulator{}.Evaluate(repScenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: unicast %.6f over %d messages\n", orig.Unicast, orig.Completed)
	fmt.Printf("replayed: unicast %.6f over %d messages\n", replayed.Unicast, replayed.Completed)
	if orig.Unicast == replayed.Unicast && orig.Events == replayed.Events {
		fmt.Println("replay is bitwise-identical to the recorded run")
	} else {
		log.Fatal("replay diverged from the recorded run")
	}
}
