// Broadcast walk-through: reproduces the paper's Fig. 3 broadcast
// semantics step by step, then studies how broadcast latency scales with
// network size and with the broadcast share of traffic.
//
// The Quarc broadcast is a true hardware broadcast: four independent worm
// streams, one per injection port, each covering one quadrant with
// absorb-and-forward at every intermediate node. Contrast this with the
// Spidergon, where broadcast needs N-1 consecutive unicasts.
//
// Run with:
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"quarc/noc"
)

func main() {
	log.SetFlags(0)

	// Part 1: the Fig. 3 walk — who receives what, on which branch.
	s16, err := noc.NewScenario(noc.Quarc(16), noc.Alpha(1), noc.Broadcast())
	if err != nil {
		log.Fatal(err)
	}
	branches, err := s16.Branches(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Broadcast from node 0 in a 16-node Quarc (paper Fig. 3):")
	for _, b := range branches {
		fmt.Printf("  port %-2s covers %v, ends at node %v (%d header hops)\n",
			b.PortName, b.Targets, b.Targets[len(b.Targets)-1], b.Hops)
	}
	fmt.Println()

	// Part 2: zero-load broadcast latency scales with N/4 + msg, because
	// the four branches are independent and each covers one quadrant.
	fmt.Println("Zero-load broadcast latency vs network size (msg = 32 flits):")
	const msgLen = 32
	for _, n := range []int{16, 32, 64, 128} {
		sn, err := noc.NewScenario(
			noc.Quarc(n), noc.MsgLen(msgLen), noc.Rate(1e-9), noc.Alpha(0.5), noc.Broadcast())
		if err != nil {
			log.Fatal(err)
		}
		pred, err := noc.Model{}.Evaluate(sn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-4d  %7.2f cycles  (header depth N/4+1 = %d, + %d flits)\n",
			n, pred.Multicast, n/4+1, msgLen)
	}
	fmt.Println()

	// Part 3: a broadcast storm — raise the broadcast share of traffic and
	// watch latencies in model and simulation.
	fmt.Println("Broadcast storm on N=32, msg=32, rate=0.0008 msgs/cycle/node:")
	fmt.Printf("  %-8s %14s %14s %14s %14s\n",
		"alpha", "model uni", "sim uni", "model bcast", "sim bcast")
	storm, err := noc.NewScenario(
		noc.Quarc(32), noc.MsgLen(msgLen), noc.Rate(0.0008), noc.Broadcast(), noc.Alpha(0.03),
		noc.Seed(7), noc.Warmup(10000), noc.Measure(120000))
	if err != nil {
		log.Fatal(err)
	}
	for _, alpha := range []float64{0.03, 0.05, 0.10, 0.20} {
		at, err := storm.With(noc.Alpha(alpha))
		if err != nil {
			log.Fatal(err)
		}
		pred, err := noc.Model{}.Evaluate(at)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := noc.Simulator{}.Evaluate(at)
		if err != nil {
			log.Fatal(err)
		}
		if pred.Saturated || meas.Saturated {
			fmt.Printf("  %-8.2f %14s\n", alpha, "saturated")
			continue
		}
		fmt.Printf("  %-8.2f %14.2f %14.2f %14.2f %14.2f\n",
			alpha, pred.Unicast, meas.Unicast, pred.Multicast, meas.Multicast)
	}
	fmt.Println("\nEach broadcast loads all four quadrants, so raising alpha pushes the")
	fmt.Println("whole network toward saturation much faster than unicast traffic does.")

	// Part 4: trace one broadcast through the network to see the four
	// asynchronous branches racing — the behaviour the paper's Eq. 12
	// (expected maximum of independent exponentials) models.
	fmt.Println("\nTrace of node 0's messages (first broadcast shown, 4 branches):")
	traced, err := noc.NewScenario(
		noc.Quarc(32), noc.MsgLen(msgLen), noc.Rate(0.0008), noc.Alpha(1), noc.Broadcast(),
		noc.Seed(11), noc.Warmup(0), noc.Measure(30000),
		// A 32-flit broadcast spawns 4 branches; ~24 events cover the
		// first message's injection, forks, absorptions and completion.
		noc.Trace(0, 24))
	if err != nil {
		log.Fatal(err)
	}
	res, err := noc.Simulator{}.Evaluate(traced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.TraceText)
}
