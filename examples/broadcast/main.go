// Broadcast walk-through: reproduces the paper's Fig. 3 broadcast
// semantics step by step, then studies how broadcast latency scales with
// network size and with the broadcast share of traffic.
//
// The Quarc broadcast is a true hardware broadcast: four independent worm
// streams, one per injection port, each covering one quadrant with
// absorb-and-forward at every intermediate node. Contrast this with the
// Spidergon, where broadcast needs N-1 consecutive unicasts.
//
// Run with:
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

func main() {
	log.SetFlags(0)

	// Part 1: the Fig. 3 walk — who receives what, on which branch.
	q, err := topology.NewQuarc(16)
	if err != nil {
		log.Fatal(err)
	}
	router := routing.NewQuarcRouter(q)
	branches, err := router.MulticastBranches(0, router.BroadcastSet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Broadcast from node 0 in a 16-node Quarc (paper Fig. 3):")
	for _, b := range branches {
		fmt.Printf("  port %-2s covers %v, ends at node %v (%d header hops)\n",
			topology.QuarcPortName(b.Port), b.Targets,
			b.Targets[len(b.Targets)-1], len(b.Path)-1)
	}
	fmt.Println()

	// Part 2: zero-load broadcast latency scales with N/4 + msg, because
	// the four branches are independent and each covers one quadrant.
	fmt.Println("Zero-load broadcast latency vs network size (msg = 32 flits):")
	const msgLen = 32
	for _, n := range []int{16, 32, 64, 128} {
		qn, err := topology.NewQuarc(n)
		if err != nil {
			log.Fatal(err)
		}
		rn := routing.NewQuarcRouter(qn)
		pred, err := core.Predict(core.Input{
			Router: rn,
			Spec:   traffic.Spec{Rate: 1e-9, MulticastFrac: 0.5, Set: rn.BroadcastSet()},
			MsgLen: msgLen,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-4d  %7.2f cycles  (header depth N/4+1 = %d, + %d flits)\n",
			n, pred.MulticastLatency, n/4+1, msgLen)
	}
	fmt.Println()

	// Part 3: a broadcast storm — raise the broadcast share of traffic and
	// watch latencies in model and simulation.
	fmt.Println("Broadcast storm on N=32, msg=32, rate=0.0008 msgs/cycle/node:")
	fmt.Printf("  %-8s %14s %14s %14s %14s\n",
		"alpha", "model uni", "sim uni", "model bcast", "sim bcast")
	q32, err := topology.NewQuarc(32)
	if err != nil {
		log.Fatal(err)
	}
	r32 := routing.NewQuarcRouter(q32)
	for _, alpha := range []float64{0.03, 0.05, 0.10, 0.20} {
		spec := traffic.Spec{Rate: 0.0008, MulticastFrac: alpha, Set: r32.BroadcastSet()}
		pred, err := core.Predict(core.Input{Router: r32, Spec: spec, MsgLen: msgLen})
		if err != nil {
			log.Fatal(err)
		}
		w, err := traffic.NewWorkload(r32, spec, 7)
		if err != nil {
			log.Fatal(err)
		}
		nw, err := wormhole.New(r32.Graph(), w, wormhole.Config{MsgLen: msgLen, Warmup: 10000, Measure: 120000})
		if err != nil {
			log.Fatal(err)
		}
		res := nw.Run()
		if pred.Saturated || res.Saturated {
			fmt.Printf("  %-8.2f %14s\n", alpha, "saturated")
			continue
		}
		fmt.Printf("  %-8.2f %14.2f %14.2f %14.2f %14.2f\n",
			alpha, pred.UnicastLatency, res.Unicast.Mean(),
			pred.MulticastLatency, res.Multicast.Mean())
	}
	fmt.Println("\nEach broadcast loads all four quadrants, so raising alpha pushes the")
	fmt.Println("whole network toward saturation much faster than unicast traffic does.")

	// Part 4: trace one broadcast through the network to see the four
	// asynchronous branches racing — the behaviour the paper's Eq. 12
	// (expected maximum of independent exponentials) models.
	fmt.Println("\nTrace of node 0's messages (first broadcast shown, 4 branches):")
	wTrace, err := traffic.NewWorkload(r32, traffic.Spec{Rate: 0.0008, MulticastFrac: 1, Set: r32.BroadcastSet()}, 11)
	if err != nil {
		log.Fatal(err)
	}
	nwTrace, err := wormhole.New(r32.Graph(), wTrace, wormhole.Config{
		MsgLen: msgLen, Warmup: 0, Measure: 30000,
		TraceEnabled: true, TraceNode: 0, TraceLimit: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	resTrace := nwTrace.Run()
	// Show only the first traced message.
	var first []wormhole.TraceEvent
	for _, e := range resTrace.Trace {
		if len(first) > 0 && e.Msg != first[0].Msg {
			break
		}
		first = append(first, e)
	}
	fmt.Print(wormhole.FormatTrace(r32.Graph(), first))
}
