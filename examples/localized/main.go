// Localized vs random multicast destinations: the study behind the split
// between the paper's Figures 6 and 7.
//
// A localized set keeps all targets on one rim, so a multicast sends one
// worm down a single port and its latency is governed by one branch. A
// random set of the same size spreads targets over all four quadrants:
// four shorter branches race, and the multicast waits for the slowest one
// — the expected maximum of independent exponentials (the paper's Eq. 12).
//
// Run with:
//
//	go run ./examples/localized
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

func run(router *routing.QuarcRouter, set routing.MulticastSet, rate float64, label string) {
	const msgLen = 32
	spec := traffic.Spec{Rate: rate, MulticastFrac: 0.05, Set: set}
	pred, err := core.Predict(core.Input{Router: router, Spec: spec, MsgLen: msgLen})
	if err != nil {
		log.Fatal(err)
	}
	w, err := traffic.NewWorkload(router, spec, 99)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := wormhole.New(router.Graph(), w, wormhole.Config{MsgLen: msgLen, Warmup: 10000, Measure: 120000})
	if err != nil {
		log.Fatal(err)
	}
	res := nw.Run()
	if pred.Saturated || res.Saturated {
		fmt.Printf("  %-34s %10s\n", label, "saturated")
		return
	}
	fmt.Printf("  %-34s model %8.2f   sim %8.2f cycles\n",
		label, pred.MulticastLatency, res.Multicast.Mean())
}

func main() {
	log.SetFlags(0)

	q, err := topology.NewQuarc(64)
	if err != nil {
		log.Fatal(err)
	}
	router := routing.NewQuarcRouter(q)

	const k = 6 // multicast destinations per message
	localized, err := router.LocalizedSet(topology.PortL, k)
	if err != nil {
		log.Fatal(err)
	}
	random, err := router.RandomSet(rand.New(rand.NewPCG(3, 1)), k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("N=64 Quarc, msg=32 flits, alpha=5%%, %d multicast destinations\n\n", k)
	fmt.Printf("localized set: %s\n", localized)
	fmt.Printf("random set:    %s\n\n", random)

	for _, rate := range []float64{0.0005, 0.001, 0.0015} {
		fmt.Printf("rate = %g messages/cycle/node:\n", rate)
		run(router, localized, rate, "localized (one rim, Fig. 7 regime)")
		run(router, random, rate, "random (all quadrants, Fig. 6 regime)")
		fmt.Println()
	}

	fmt.Println("The random set pays the max-of-branches wait (Eq. 12) but each branch")
	fmt.Println("is short; the localized set rides one long branch whose last target is")
	fmt.Println("k hops out. Which regime is slower depends on load: at low load the")
	fmt.Println("longer branch dominates, near saturation the four-way race does.")
}
