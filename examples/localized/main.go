// Localized vs random multicast destinations: the study behind the split
// between the paper's Figures 6 and 7.
//
// A localized set keeps all targets on one rim, so a multicast sends one
// worm down a single port and its latency is governed by one branch. A
// random set of the same size spreads targets over all four quadrants:
// four shorter branches race, and the multicast waits for the slowest one
// — the expected maximum of independent exponentials (the paper's Eq. 12).
//
// Run with:
//
//	go run ./examples/localized
package main

import (
	"fmt"
	"log"

	"quarc/noc"
)

func run(s *noc.Scenario, rate float64, label string) {
	at, err := s.With(noc.Rate(rate))
	if err != nil {
		log.Fatal(err)
	}
	pred, err := noc.Model{}.Evaluate(at)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := noc.Simulator{}.Evaluate(at)
	if err != nil {
		log.Fatal(err)
	}
	if pred.Saturated || meas.Saturated {
		fmt.Printf("  %-34s %10s\n", label, "saturated")
		return
	}
	fmt.Printf("  %-34s model %8.2f   sim %8.2f cycles\n",
		label, pred.Multicast, meas.Multicast)
}

func main() {
	log.SetFlags(0)

	const k = 6 // multicast destinations per message
	base := []noc.Option{
		noc.Quarc(64), noc.MsgLen(32), noc.Alpha(0.05),
		noc.Seed(99), noc.Warmup(10000), noc.Measure(120000),
	}
	localized, err := noc.NewScenario(append(base, noc.LocalizedDests(noc.PortL, k))...)
	if err != nil {
		log.Fatal(err)
	}
	random, err := noc.NewScenario(append(base, noc.RandomDests(k, 3))...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("N=64 Quarc, msg=32 flits, alpha=5%%, %d multicast destinations\n\n", k)
	fmt.Printf("localized set: %s\n", localized.SetString())
	fmt.Printf("random set:    %s\n\n", random.SetString())

	for _, rate := range []float64{0.0005, 0.001, 0.0015} {
		fmt.Printf("rate = %g messages/cycle/node:\n", rate)
		run(localized, rate, "localized (one rim, Fig. 7 regime)")
		run(random, rate, "random (all quadrants, Fig. 6 regime)")
		fmt.Println()
	}

	fmt.Println("The random set pays the max-of-branches wait (Eq. 12) but each branch")
	fmt.Println("is short; the localized set rides one long branch whose last target is")
	fmt.Println("k hops out. Which regime is slower depends on load: at low load the")
	fmt.Println("longer branch dominates, near saturation the four-way race does.")
}
