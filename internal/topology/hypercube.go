package topology

import "fmt"

// Hypercube is a d-dimensional binary hypercube with an all-port router:
// one injection/ejection port per dimension. Link class k is the channel
// flipping bit k. Dimension-order (e-cube) routing is deadlock-free
// without virtual channels, so every link has a single VC.
//
// The hypercube is included because the model family the paper builds on
// (Draper-Ghosh, Shahrabi et al.) was originally formulated for
// hypercubes; running the same analytical machinery here checks that the
// implementation is not Quarc-specific.
type Hypercube struct {
	*Graph
	dims int
}

// NewHypercube constructs a hypercube with the given number of dimensions
// (1..16).
func NewHypercube(dims int) (*Hypercube, error) {
	if dims < 1 || dims > 16 {
		return nil, fmt.Errorf("topology: hypercube dimensions must be in 1..16, got %d", dims)
	}
	n := 1 << uint(dims)
	g := NewGraph(fmt.Sprintf("hypercube-%d", dims), n, dims)
	for node := NodeID(0); int(node) < n; node++ {
		for p := 0; p < dims; p++ {
			g.AddInjection(node, p)
			g.AddEjection(node, p)
		}
	}
	for node := NodeID(0); int(node) < n; node++ {
		for d := 0; d < dims; d++ {
			g.AddLink(node, node^NodeID(1<<uint(d)), d, 0)
		}
	}
	return &Hypercube{Graph: g, dims: dims}, nil
}

// Dims returns the number of dimensions.
func (h *Hypercube) Dims() int { return h.dims }

// Dist returns the Hamming distance between two nodes.
func (h *Hypercube) Dist(src, dst NodeID) int {
	x := uint32(src ^ dst)
	d := 0
	for ; x != 0; x &= x - 1 {
		d++
	}
	return d
}

// Diameter returns the network diameter (= dims).
func (h *Hypercube) Diameter() int { return h.dims }
