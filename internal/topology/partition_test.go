package topology

import "testing"

// partitionGraphs returns the graphs the partition invariants are pinned
// on: the paper's Quarc rings and the mesh extension, at two scales each.
func partitionGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	q16, err := NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	q64, err := NewQuarc(64)
	if err != nil {
		t.Fatal(err)
	}
	m44, err := NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	m88, err := NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"quarc-16": q16.Graph, "quarc-64": q64.Graph,
		"mesh-4x4": m44.Graph, "mesh-8x8": m88.Graph,
	}
}

// TestPartitionExactlyOnce pins the ownership invariant the parallel
// engine's safety argument rests on: every node and every channel is
// assigned to exactly one in-range shard, channel ownership follows the
// source router, and shard sizes are balanced to within one node.
func TestPartitionExactlyOnce(t *testing.T) {
	for name, g := range partitionGraphs(t) {
		for _, p := range []int{1, 2, 3, 4, 7, 8} {
			pt := PartitionGraph(g, p)
			if pt.P != p {
				t.Errorf("%s/p=%d: partition reports P=%d", name, p, pt.P)
			}
			if err := pt.Validate(g); err != nil {
				t.Errorf("%s/p=%d: %v", name, p, err)
			}
			nodesPer := make([]int, pt.P)
			for _, s := range pt.Node {
				nodesPer[s]++
			}
			lo, hi := g.Nodes(), 0
			for _, c := range nodesPer {
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			if lo == 0 {
				t.Errorf("%s/p=%d: a shard owns no nodes", name, p)
			}
			if hi-lo > 1 {
				t.Errorf("%s/p=%d: shard sizes range %d..%d, want balanced to within one", name, p, lo, hi)
			}
			for _, c := range g.Channels() {
				if pt.Chan[c.ID] != pt.Node[c.Src] {
					t.Fatalf("%s/p=%d: channel %d owned by shard %d, its source by %d",
						name, p, c.ID, pt.Chan[c.ID], pt.Node[c.Src])
				}
			}
		}
	}
}

// TestPartitionCrossChannels pins the seam count: CrossChannels matches
// a direct recount of the channels whose endpoints live in different
// shards, is zero at p=1, and nonzero for every real cut of a connected
// graph.
func TestPartitionCrossChannels(t *testing.T) {
	for name, g := range partitionGraphs(t) {
		for _, p := range []int{1, 2, 4, 8} {
			pt := PartitionGraph(g, p)
			count := 0
			for _, c := range g.Channels() {
				if pt.Node[c.Src] != pt.Node[c.Dst] {
					count++
				}
			}
			if pt.CrossChannels != count {
				t.Errorf("%s/p=%d: CrossChannels=%d, recount=%d", name, p, pt.CrossChannels, count)
			}
			if p == 1 && count != 0 {
				t.Errorf("%s: single-shard partition has %d cross channels", name, count)
			}
			if p > 1 && count == 0 {
				t.Errorf("%s/p=%d: a real cut of a connected graph has no seam", name, p)
			}
		}
	}
}

// TestPartitionLookahead pins the conservative horizon: strictly
// positive for every partition — a zero lookahead would make every
// window empty — and exactly the one-cycle flit latency today.
func TestPartitionLookahead(t *testing.T) {
	for name, g := range partitionGraphs(t) {
		for _, p := range []int{1, 2, 8} {
			pt := PartitionGraph(g, p)
			if la := pt.Lookahead(); la <= 0 {
				t.Errorf("%s/p=%d: lookahead %v, want > 0", name, p, la)
			} else if la != 1 {
				t.Errorf("%s/p=%d: lookahead %v, want the one-cycle flit latency", name, p, la)
			}
		}
	}
}

// TestPartitionIdentity pins the degenerate partition: p=1 assigns
// everything to shard 0 (the serial engine with extra steps).
func TestPartitionIdentity(t *testing.T) {
	for name, g := range partitionGraphs(t) {
		pt := PartitionGraph(g, 1)
		if pt.P != 1 {
			t.Fatalf("%s: p=1 partition has P=%d", name, pt.P)
		}
		for i, s := range pt.Node {
			if s != 0 {
				t.Fatalf("%s: node %d in shard %d of a single-shard partition", name, i, s)
			}
		}
		for i, s := range pt.Chan {
			if s != 0 {
				t.Fatalf("%s: channel %d in shard %d of a single-shard partition", name, i, s)
			}
		}
	}
}

// TestPartitionClamps pins the p clamp: p below 1 degenerates to the
// identity, p beyond the node count clamps to one node per shard.
func TestPartitionClamps(t *testing.T) {
	g := partitionGraphs(t)["quarc-16"]
	if pt := PartitionGraph(g, 0); pt.P != 1 {
		t.Errorf("p=0 clamps to P=%d, want 1", pt.P)
	}
	if pt := PartitionGraph(g, -3); pt.P != 1 {
		t.Errorf("p=-3 clamps to P=%d, want 1", pt.P)
	}
	pt := PartitionGraph(g, 1000)
	if pt.P != g.Nodes() {
		t.Errorf("p=1000 clamps to P=%d, want %d", pt.P, g.Nodes())
	}
	if err := pt.Validate(g); err != nil {
		t.Error(err)
	}
	seen := make(map[int32]bool)
	for _, s := range pt.Node {
		if seen[s] {
			t.Fatalf("shard %d owns two nodes of a one-node-per-shard partition", s)
		}
		seen[s] = true
	}
}

// TestPartitionValidateRejects pins Validate's error paths: mismatched
// map lengths, out-of-range shards and ownership breaking the
// source-router rule.
func TestPartitionValidateRejects(t *testing.T) {
	g := partitionGraphs(t)["mesh-4x4"]
	good := func() *Partition { return PartitionGraph(g, 4) }
	if err := good().Validate(g); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	cases := []struct {
		name   string
		break_ func(*Partition)
	}{
		{"zero-shards", func(pt *Partition) { pt.P = 0 }},
		{"short-node-map", func(pt *Partition) { pt.Node = pt.Node[:len(pt.Node)-1] }},
		{"short-chan-map", func(pt *Partition) { pt.Chan = pt.Chan[:len(pt.Chan)-1] }},
		{"node-out-of-range", func(pt *Partition) { pt.Node[0] = int32(pt.P) }},
		{"chan-out-of-range", func(pt *Partition) { pt.Chan[0] = -1 }},
		{"chan-wrong-owner", func(pt *Partition) {
			for i, c := range g.Channels() {
				if pt.Node[c.Src] != 0 {
					pt.Chan[i] = 0
					return
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pt := good()
			tc.break_(pt)
			if err := pt.Validate(g); err == nil {
				t.Error("broken partition validated")
			}
		})
	}
}
