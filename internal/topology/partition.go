package topology

import "fmt"

// Partition is a spatial decomposition of a Graph into P shards for
// conservative parallel simulation: every node and every channel is
// owned by exactly one shard. Channels follow their source router —
// the shard that simulates a router arbitrates the channels leaving it
// (and its injection/ejection pairs, whose Src is the local node) — so
// a worm crossing from one shard's region into the next does so by
// requesting a channel the next shard owns.
type Partition struct {
	// P is the shard count, 1 <= P <= Nodes.
	P int
	// Node maps each NodeID to its owning shard.
	Node []int32
	// Chan maps each ChannelID to its owning shard: the shard of the
	// channel's Src router.
	Chan []int32
	// CrossChannels counts channels whose Src and Dst routers live in
	// different shards — the seams where worm-level coalescing
	// de-coalesces and events cross mailboxes.
	CrossChannels int
}

// PartitionGraph decomposes g into p shards of contiguous node blocks:
// node i belongs to shard i*p/n, which balances shard sizes to within
// one node. Contiguous blocks are the right default for the built-in
// topologies — ring-based quarc and row-major meshes both number
// neighbours consecutively, so most links stay shard-internal.
// p is clamped to [1, Nodes].
func PartitionGraph(g *Graph, p int) *Partition {
	n := g.Nodes()
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	pt := &Partition{
		P:    p,
		Node: make([]int32, n),
		Chan: make([]int32, g.NumChannels()),
	}
	for i := 0; i < n; i++ {
		pt.Node[i] = int32(i * p / n)
	}
	for _, c := range g.Channels() {
		pt.Chan[c.ID] = pt.Node[c.Src]
		if pt.Node[c.Src] != pt.Node[c.Dst] {
			pt.CrossChannels++
		}
	}
	return pt
}

// Lookahead returns the conservative synchronization horizon of the
// partition: the minimum simulated latency of any shard-crossing
// interaction. Wormhole channels have a fixed one-cycle flit latency —
// every event a fired event schedules on another router's channels is
// at least one cycle out — so the lookahead is the constant 1,
// independent of the cut. It is exposed as a method (rather than a
// package constant) so virtual-channel or heterogeneous-latency
// topologies can shrink or grow it per partition later.
func (pt *Partition) Lookahead() float64 { return 1 }

// Validate checks the partition invariants: every node and channel
// assigned to a shard in range, and channel ownership consistent with
// the source router's shard.
func (pt *Partition) Validate(g *Graph) error {
	if pt.P < 1 {
		return fmt.Errorf("topology: partition has %d shards", pt.P)
	}
	if len(pt.Node) != g.Nodes() || len(pt.Chan) != g.NumChannels() {
		return fmt.Errorf("topology: partition maps %d nodes/%d channels, graph has %d/%d",
			len(pt.Node), len(pt.Chan), g.Nodes(), g.NumChannels())
	}
	for i, s := range pt.Node {
		if s < 0 || int(s) >= pt.P {
			return fmt.Errorf("topology: node %d assigned to shard %d of %d", i, s, pt.P)
		}
	}
	for i, s := range pt.Chan {
		if s < 0 || int(s) >= pt.P {
			return fmt.Errorf("topology: channel %d assigned to shard %d of %d", i, s, pt.P)
		}
		if want := pt.Node[g.Channel(ChannelID(i)).Src]; s != want {
			return fmt.Errorf("topology: channel %d owned by shard %d, its source router by %d", i, s, want)
		}
	}
	return nil
}
