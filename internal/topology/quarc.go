package topology

import "fmt"

// Quarc port indices. The Quarc all-port router has four injection ports,
// one per quadrant of the network as seen from the local node, and four
// ejection ports, one per physical input direction.
const (
	// PortL serves the "left" quadrant: relative positions 1..N/4 reached
	// clockwise (+1) along the rim.
	PortL = 0
	// PortCL serves the cross-left quadrant: relative positions
	// N/4+1..N/2, reached by the cross-left link followed by rim -1 hops.
	PortCL = 1
	// PortCR serves the cross-right quadrant: relative positions
	// N/2+1..3N/4-1, reached by the cross-right link followed by rim +1
	// hops.
	PortCR = 2
	// PortR serves the "right" quadrant: relative positions 3N/4..N-1
	// reached counter-clockwise (-1) along the rim.
	PortR = 3

	// QuarcPorts is the number of injection/ejection ports per node.
	QuarcPorts = 4
)

// Quarc link direction classes.
const (
	// RimPlus is the clockwise rim link node -> node+1.
	RimPlus = 0
	// RimMinus is the counter-clockwise rim link node -> node-1.
	RimMinus = 1
	// CrossL is the cross link dedicated to cross-left traffic.
	CrossL = 2
	// CrossR is the cross link dedicated to cross-right traffic.
	CrossR = 3
)

// QuarcPortName returns a short human-readable port label matching the
// paper's figure annotations (L, LO, RO, R).
func QuarcPortName(port int) string {
	switch port {
	case PortL:
		return "L"
	case PortCL:
		return "LO"
	case PortCR:
		return "RO"
	case PortR:
		return "R"
	}
	return "?"
}

// Quarc is the Quarc network-on-chip topology (Moadeli et al., 2008): a
// ring of N nodes with clockwise and counter-clockwise rim links plus two
// parallel cross links from every node to the diametrically opposite node,
// attached to an all-port (4-port) router.
//
// Rim links carry two virtual channels with a dateline at node 0 so that
// wormhole routing is deadlock-free, as in the Spidergon. Cross links are
// always a worm's first network hop and need no VCs.
type Quarc struct {
	*Graph
	n int
}

// NewQuarc constructs the Quarc topology with n nodes. n must be a
// multiple of 4 and at least 8 so that the four quadrants are non-empty.
func NewQuarc(n int) (*Quarc, error) { return newQuarc(n, QuarcPorts) }

// NewQuarcOnePort constructs a Quarc variant whose routers have a single
// injection and ejection port, as in the classic one-port architecture of
// the paper's Fig. 1(a). The network links are identical to the all-port
// Quarc; only the PE attachment differs, which is exactly the ablation the
// paper's introduction motivates (multi-port routers remove the injection
// bottleneck of collective operations).
func NewQuarcOnePort(n int) (*Quarc, error) { return newQuarc(n, 1) }

func newQuarc(n, ports int) (*Quarc, error) {
	if n < 8 || n%4 != 0 {
		return nil, fmt.Errorf("topology: quarc size must be a multiple of 4 and >= 8, got %d", n)
	}
	name := fmt.Sprintf("quarc-%d", n)
	if ports == 1 {
		name = fmt.Sprintf("quarc1p-%d", n)
	}
	g := NewGraph(name, n, ports)
	for node := NodeID(0); int(node) < n; node++ {
		for p := 0; p < ports; p++ {
			g.AddInjection(node, p)
			g.AddEjection(node, p)
		}
	}
	half := NodeID(n / 2)
	for node := NodeID(0); int(node) < n; node++ {
		next := (node + 1) % NodeID(n)
		prev := (node - 1 + NodeID(n)) % NodeID(n)
		for vc := 0; vc < 2; vc++ {
			g.AddLink(node, next, RimPlus, vc)
			g.AddLink(node, prev, RimMinus, vc)
		}
		g.AddLink(node, (node+half)%NodeID(n), CrossL, 0)
		g.AddLink(node, (node+half)%NodeID(n), CrossR, 0)
	}
	return &Quarc{Graph: g, n: n}, nil
}

// Quadrant returns the quadrant size N/4.
func (q *Quarc) Quadrant() int { return q.n / 4 }

// Diameter returns the unicast diameter, N/4.
func (q *Quarc) Diameter() int { return q.n / 4 }

// Rel returns the relative position (dst-src) mod N, in 1..N-1 for
// distinct nodes and 0 for dst == src.
func (q *Quarc) Rel(src, dst NodeID) int {
	return int((dst - src + NodeID(q.n)) % NodeID(q.n))
}

// PortFor returns the injection port a unicast from src to dst must take.
func (q *Quarc) PortFor(src, dst NodeID) (int, error) {
	r := q.Rel(src, dst)
	if r == 0 {
		return 0, fmt.Errorf("topology: no port for self destination %d", src)
	}
	return q.PortForRel(r), nil
}

// PortForRel returns the injection port for a destination at relative
// position r (1 <= r <= N-1).
func (q *Quarc) PortForRel(r int) int {
	quad := q.Quadrant()
	switch {
	case r <= quad:
		return PortL
	case r <= 2*quad:
		return PortCL
	case r < 3*quad:
		return PortCR
	default:
		return PortR
	}
}

// DistRel returns the hop count (network link crossings) from a node to a
// destination at relative position r.
func (q *Quarc) DistRel(r int) int {
	quad := q.Quadrant()
	switch {
	case r == 0:
		return 0
	case r <= quad:
		return r
	case r <= 2*quad:
		return 2*quad - r + 1
	case r < 3*quad:
		return r - 2*quad + 1
	default:
		return q.n - r
	}
}

// Dist returns the unicast hop count from src to dst.
func (q *Quarc) Dist(src, dst NodeID) int { return q.DistRel(q.Rel(src, dst)) }

// BranchHopRange returns the inclusive range of branch-hop distances at
// which the given port has receiver nodes. Cross-right streams pass the
// opposite node (hop 1) without it being a member of their quadrant, so
// their receivers start at hop 2.
func (q *Quarc) BranchHopRange(port int) (min, max int) {
	if port == PortCR {
		return 2, q.Quadrant()
	}
	return 1, q.Quadrant()
}

// BranchNode returns the node visited at branch-hop distance hop (>= 1) on
// the given port's stream from src.
func (q *Quarc) BranchNode(src NodeID, port, hop int) (NodeID, error) {
	lo, hi := q.BranchHopRange(port)
	// The CR stream physically visits the opposite node at hop 1 even
	// though that node belongs to the CL quadrant, so hop 1 is still a
	// valid physical position for CR.
	if port == PortCR {
		lo = 1
	}
	if hop < lo || hop > hi {
		return 0, fmt.Errorf("topology: hop %d out of range [%d,%d] for port %s", hop, lo, hi, QuarcPortName(port))
	}
	n := NodeID(q.n)
	half := NodeID(q.n / 2)
	switch port {
	case PortL:
		return (src + NodeID(hop)) % n, nil
	case PortR:
		return (src - NodeID(hop) + n) % n, nil
	case PortCL:
		return (src + half - NodeID(hop-1) + n) % n, nil
	case PortCR:
		return (src + half + NodeID(hop-1)) % n, nil
	}
	return 0, fmt.Errorf("topology: invalid port %d", port)
}

// BranchHopOf returns the branch-hop distance at which dst is visited by
// the stream leaving src on the port that owns dst's quadrant, together
// with that port.
func (q *Quarc) BranchHopOf(src, dst NodeID) (port, hop int, err error) {
	r := q.Rel(src, dst)
	if r == 0 {
		return 0, 0, fmt.Errorf("topology: self destination %d", src)
	}
	port = q.PortForRel(r)
	return port, q.DistRel(r), nil
}

// RimPlusVC returns the virtual channel a worm that started its rim +1
// journey at node start must use on the rim+ link leaving node linkSrc.
// Worms use VC0 until they cross the dateline link (N-1 -> 0), then VC1.
func (q *Quarc) RimPlusVC(start, linkSrc NodeID) int {
	if linkSrc < start {
		return 1 // wrapped past node 0
	}
	return 0
}

// RimMinusVC is the analogous rule for the rim -1 direction, whose
// dateline is the link 0 -> N-1.
func (q *Quarc) RimMinusVC(start, linkSrc NodeID) int {
	if linkSrc > start {
		return 1 // wrapped past node 0 going downwards
	}
	return 0
}
