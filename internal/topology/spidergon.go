package topology

import "fmt"

// Spidergon is the STMicroelectronics Spidergon NoC the Quarc improves on:
// a ring of N nodes (N even) with clockwise and counter-clockwise rim
// links plus a single cross link from every node to the diametrically
// opposite node, attached to a classic one-port router.
//
// Rim links carry two virtual channels with a dateline at node 0, as in
// the original design; the single cross link (class CrossL) is always a
// worm's first network hop and needs no VCs.
type Spidergon struct {
	*Graph
	n int
}

// NewSpidergon constructs the Spidergon topology with n nodes. n must be
// even and at least 6; sizes that are multiples of 4 match the Quarc
// configurations and are what the comparison experiments use.
func NewSpidergon(n int) (*Spidergon, error) {
	if n < 6 || n%2 != 0 {
		return nil, fmt.Errorf("topology: spidergon size must be even and >= 6, got %d", n)
	}
	g := NewGraph(fmt.Sprintf("spidergon-%d", n), n, 1)
	for node := NodeID(0); int(node) < n; node++ {
		g.AddInjection(node, 0)
		g.AddEjection(node, 0)
	}
	half := NodeID(n / 2)
	for node := NodeID(0); int(node) < n; node++ {
		next := (node + 1) % NodeID(n)
		prev := (node - 1 + NodeID(n)) % NodeID(n)
		for vc := 0; vc < 2; vc++ {
			g.AddLink(node, next, RimPlus, vc)
			g.AddLink(node, prev, RimMinus, vc)
		}
		g.AddLink(node, (node+half)%NodeID(n), CrossL, 0)
	}
	return &Spidergon{Graph: g, n: n}, nil
}

// Rel returns the relative position (dst-src) mod N.
func (s *Spidergon) Rel(src, dst NodeID) int {
	return int((dst - src + NodeID(s.n)) % NodeID(s.n))
}

// Dist returns the unicast hop count of the Across-First route from a
// node to a destination at relative position r: destinations within a
// quarter in either rim direction are reached directly; all others cross
// first and then travel the rim.
func (s *Spidergon) DistRel(r int) int {
	n := s.n
	quarter := n / 4
	switch {
	case r == 0:
		return 0
	case r <= quarter:
		return r
	case n-r <= quarter:
		return n - r
	default:
		// Cross (1 hop) then rim to the remainder.
		d := r - n/2
		if d < 0 {
			d = -d
		}
		return 1 + d
	}
}

// Dist returns the unicast hop count from src to dst.
func (s *Spidergon) Dist(src, dst NodeID) int { return s.DistRel(s.Rel(src, dst)) }

// Diameter returns the network diameter of the Across-First routing.
func (s *Spidergon) Diameter() int {
	max := 0
	for r := 1; r < s.n; r++ {
		if d := s.DistRel(r); d > max {
			max = d
		}
	}
	return max
}

// RimPlusVC and RimMinusVC are the dateline rules, identical to the
// Quarc's (both inherit them from the Spidergon design).
func (s *Spidergon) RimPlusVC(start, linkSrc NodeID) int {
	if linkSrc < start {
		return 1
	}
	return 0
}

// RimMinusVC is the dateline rule for the counter-clockwise direction.
func (s *Spidergon) RimMinusVC(start, linkSrc NodeID) int {
	if linkSrc > start {
		return 1
	}
	return 0
}
