// Package topology describes direct interconnection networks as explicit
// sets of unidirectional channels: network links between neighbouring
// routers plus the injection and ejection channels that connect each router
// to its local processing element.
//
// Both the wormhole simulator and the analytical model operate on this
// channel-level view: a message's route is simply an ordered list of
// ChannelIDs (injection channel, network links, ejection channel). Concrete
// topologies (Quarc, Spidergon, mesh, torus, hypercube, ring) construct a
// Graph and expose their geometry to the routing package.
package topology

import "fmt"

// NodeID identifies a router/PE pair. Nodes are numbered 0..N-1.
type NodeID int32

// ChannelID identifies one unidirectional channel (or one virtual channel
// of a physical link) within a Graph.
type ChannelID int32

// None is the invalid channel sentinel.
const None ChannelID = -1

// ChannelKind distinguishes the three channel roles.
type ChannelKind uint8

const (
	// Injection channels connect a PE's transceiver to its router. An
	// all-port router has one injection channel per port.
	Injection ChannelKind = iota
	// Ejection channels connect a router to its local sink.
	Ejection
	// Link channels connect neighbouring routers.
	Link
)

func (k ChannelKind) String() string {
	switch k {
	case Injection:
		return "inj"
	case Ejection:
		return "ej"
	case Link:
		return "link"
	}
	return "?"
}

// Channel is one unidirectional communication resource.
type Channel struct {
	ID   ChannelID
	Kind ChannelKind
	// Src and Dst are the routers the channel connects. For Injection and
	// Ejection channels both equal the local node.
	Src, Dst NodeID
	// Class is a topology-specific direction label (e.g. rim+, cross-left,
	// X+, hypercube dimension). For Injection/Ejection channels it is the
	// port index.
	Class int
	// VC is the virtual-channel index on the physical link (0 for links
	// without virtual channels and for injection/ejection channels).
	VC int
}

// String renders a channel for debugging.
func (c Channel) String() string {
	switch c.Kind {
	case Injection:
		return fmt.Sprintf("inj(%d,p%d)", c.Src, c.Class)
	case Ejection:
		return fmt.Sprintf("ej(%d,p%d)", c.Src, c.Class)
	default:
		return fmt.Sprintf("link(%d->%d,c%d,vc%d)", c.Src, c.Dst, c.Class, c.VC)
	}
}

type linkKey struct {
	src   NodeID
	class int
	vc    int
}

// Graph is a concrete network: a set of channels with lookup indices. Build
// one with NewGraph and the Add* methods; afterwards treat it as read-only.
type Graph struct {
	name     string
	n        int
	ports    int
	channels []Channel
	inj      [][]ChannelID // [node][port]
	ej       [][]ChannelID // [node][port]
	links    map[linkKey]ChannelID
}

// NewGraph creates an empty graph for n nodes with the given number of
// injection/ejection ports per node.
func NewGraph(name string, n, ports int) *Graph {
	if n <= 0 || ports <= 0 {
		panic("topology: nodes and ports must be positive")
	}
	g := &Graph{
		name:  name,
		n:     n,
		ports: ports,
		inj:   make([][]ChannelID, n),
		ej:    make([][]ChannelID, n),
		links: make(map[linkKey]ChannelID),
	}
	for i := range g.inj {
		g.inj[i] = make([]ChannelID, ports)
		g.ej[i] = make([]ChannelID, ports)
		for p := 0; p < ports; p++ {
			g.inj[i][p] = None
			g.ej[i][p] = None
		}
	}
	return g
}

// Name returns the topology name.
func (g *Graph) Name() string { return g.name }

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// Ports returns the number of injection (and ejection) ports per node.
func (g *Graph) Ports() int { return g.ports }

// NumChannels returns the total channel count.
func (g *Graph) NumChannels() int { return len(g.channels) }

// Channel returns the channel with the given id.
func (g *Graph) Channel(id ChannelID) Channel { return g.channels[id] }

// Channels returns the full channel list (do not mutate).
func (g *Graph) Channels() []Channel { return g.channels }

func (g *Graph) add(c Channel) ChannelID {
	c.ID = ChannelID(len(g.channels))
	g.channels = append(g.channels, c)
	return c.ID
}

// AddInjection creates the injection channel for (node, port).
func (g *Graph) AddInjection(node NodeID, port int) ChannelID {
	if g.inj[node][port] != None {
		panic(fmt.Sprintf("topology: duplicate injection channel node=%d port=%d", node, port))
	}
	id := g.add(Channel{Kind: Injection, Src: node, Dst: node, Class: port})
	g.inj[node][port] = id
	return id
}

// AddEjection creates the ejection channel for (node, port).
func (g *Graph) AddEjection(node NodeID, port int) ChannelID {
	if g.ej[node][port] != None {
		panic(fmt.Sprintf("topology: duplicate ejection channel node=%d port=%d", node, port))
	}
	id := g.add(Channel{Kind: Ejection, Src: node, Dst: node, Class: port})
	g.ej[node][port] = id
	return id
}

// AddLink creates a network link src->dst with the given direction class
// and virtual-channel index. A node may have at most one outgoing link per
// (class, vc) pair.
func (g *Graph) AddLink(src, dst NodeID, class, vc int) ChannelID {
	k := linkKey{src: src, class: class, vc: vc}
	if _, dup := g.links[k]; dup {
		panic(fmt.Sprintf("topology: duplicate link src=%d class=%d vc=%d", src, class, vc))
	}
	id := g.add(Channel{Kind: Link, Src: src, Dst: dst, Class: class, VC: vc})
	g.links[k] = id
	return id
}

// Injection returns the injection channel of (node, port).
func (g *Graph) Injection(node NodeID, port int) ChannelID { return g.inj[node][port] }

// Ejection returns the ejection channel of (node, port).
func (g *Graph) Ejection(node NodeID, port int) ChannelID { return g.ej[node][port] }

// LinkFrom returns the link leaving node with the given class and vc, or
// None if absent.
func (g *Graph) LinkFrom(node NodeID, class, vc int) ChannelID {
	if id, ok := g.links[linkKey{src: node, class: class, vc: vc}]; ok {
		return id
	}
	return None
}

// Validate checks structural invariants: every node has all injection and
// ejection channels, link endpoints are in range, and channel IDs are
// consistent with their index.
func (g *Graph) Validate() error {
	for node := 0; node < g.n; node++ {
		for p := 0; p < g.ports; p++ {
			if g.inj[node][p] == None {
				return fmt.Errorf("topology %s: node %d missing injection port %d", g.name, node, p)
			}
			if g.ej[node][p] == None {
				return fmt.Errorf("topology %s: node %d missing ejection port %d", g.name, node, p)
			}
		}
	}
	for i, c := range g.channels {
		if int(c.ID) != i {
			return fmt.Errorf("topology %s: channel %d has inconsistent id %d", g.name, i, c.ID)
		}
		if c.Src < 0 || int(c.Src) >= g.n || c.Dst < 0 || int(c.Dst) >= g.n {
			return fmt.Errorf("topology %s: channel %v endpoint out of range", g.name, c)
		}
	}
	return nil
}
