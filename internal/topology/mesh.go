package topology

import "fmt"

// Mesh/torus link direction classes and port indices. All-port mesh and
// torus routers have one injection/ejection port per direction.
const (
	XPlus  = 0
	XMinus = 1
	YPlus  = 2
	YMinus = 3

	// MeshPorts is the number of injection/ejection ports of the all-port
	// mesh and torus routers.
	MeshPorts = 4
)

// Mesh virtual-channel planes. Unicast XY traffic needs no VCs on a mesh;
// path-based (Hamilton) multicast runs in its own VC plane so the two
// routing schemes cannot form deadlock cycles through each other. The
// torus additionally splits the unicast plane across a dateline.
const (
	// MeshVCUnicast is the unicast plane (XY routing).
	MeshVCUnicast = 0
	// TorusVCUnicastWrapped is the post-dateline unicast plane (torus only).
	TorusVCUnicastWrapped = 1
	// MeshVCMulticast is the Hamilton-path multicast plane.
	MeshVCMulticast = 2
)

// Mesh is a W x H 2D mesh with an all-port (4-port) router per node.
// Node (x, y) has ID y*W + x.
type Mesh struct {
	*Graph
	w, h int
	wrap bool // torus
}

// NewMesh constructs a W x H mesh. Both dimensions must be at least 2.
func NewMesh(w, h int) (*Mesh, error) { return newMesh(w, h, false) }

// NewTorus constructs a W x H torus: a mesh whose rows and columns wrap
// around. Unicast traffic uses two VC planes with a dateline at index 0 in
// each ring, making dimension-order routing deadlock-free.
func NewTorus(w, h int) (*Mesh, error) { return newMesh(w, h, true) }

func newMesh(w, h int, wrap bool) (*Mesh, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("topology: mesh dimensions must be >= 2, got %dx%d", w, h)
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	g := NewGraph(fmt.Sprintf("%s-%dx%d", kind, w, h), w*h, MeshPorts)
	n := w * h
	for node := NodeID(0); int(node) < n; node++ {
		for p := 0; p < MeshPorts; p++ {
			g.AddInjection(node, p)
			g.AddEjection(node, p)
		}
	}
	m := &Mesh{Graph: g, w: w, h: h, wrap: wrap}
	vcs := []int{MeshVCUnicast, MeshVCMulticast}
	if wrap {
		vcs = []int{MeshVCUnicast, TorusVCUnicastWrapped, MeshVCMulticast}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src := m.ID(x, y)
			addBoth := func(dst NodeID, class int) {
				for _, vc := range vcs {
					g.AddLink(src, dst, class, vc)
				}
			}
			if x+1 < w {
				addBoth(m.ID(x+1, y), XPlus)
			} else if wrap {
				addBoth(m.ID(0, y), XPlus)
			}
			if x > 0 {
				addBoth(m.ID(x-1, y), XMinus)
			} else if wrap {
				addBoth(m.ID(w-1, y), XMinus)
			}
			if y+1 < h {
				addBoth(m.ID(x, y+1), YPlus)
			} else if wrap {
				addBoth(m.ID(x, 0), YPlus)
			}
			if y > 0 {
				addBoth(m.ID(x, y-1), YMinus)
			} else if wrap {
				addBoth(m.ID(x, h-1), YMinus)
			}
		}
	}
	return m, nil
}

// W and H return the mesh dimensions.
func (m *Mesh) W() int { return m.w }

// H returns the mesh height.
func (m *Mesh) H() int { return m.h }

// Wrap reports whether the network is a torus.
func (m *Mesh) Wrap() bool { return m.wrap }

// ID returns the node at coordinates (x, y).
func (m *Mesh) ID(x, y int) NodeID { return NodeID(y*m.w + x) }

// XY returns the coordinates of a node.
func (m *Mesh) XY(id NodeID) (x, y int) { return int(id) % m.w, int(id) / m.w }

// Dist returns the dimension-order hop count from src to dst.
func (m *Mesh) Dist(src, dst NodeID) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return m.ringDist(sx, dx, m.w) + m.ringDist(sy, dy, m.h)
}

func (m *Mesh) ringDist(a, b, size int) int {
	d := b - a
	if d < 0 {
		d = -d
	}
	if m.wrap && size-d < d {
		d = size - d
	}
	return d
}

// Diameter returns the unicast diameter.
func (m *Mesh) Diameter() int {
	if m.wrap {
		return m.w/2 + m.h/2
	}
	return m.w - 1 + m.h - 1
}

// HamiltonIndex returns a node's position on the snake-order Hamilton
// path used by dual-path multicast: even rows left-to-right, odd rows
// right-to-left, so consecutive indices are mesh neighbours.
func (m *Mesh) HamiltonIndex(id NodeID) int {
	x, y := m.XY(id)
	if y%2 == 0 {
		return y*m.w + x
	}
	return y*m.w + (m.w - 1 - x)
}

// HamiltonNode is the inverse of HamiltonIndex.
func (m *Mesh) HamiltonNode(idx int) NodeID {
	y := idx / m.w
	x := idx % m.w
	if y%2 == 1 {
		x = m.w - 1 - x
	}
	return m.ID(x, y)
}
