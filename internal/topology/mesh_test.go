package topology

import (
	"testing"
	"testing/quick"
)

func TestNewMeshRejectsBadSizes(t *testing.T) {
	for _, wh := range [][2]int{{1, 4}, {4, 1}, {0, 0}, {-2, 3}} {
		if _, err := NewMesh(wh[0], wh[1]); err == nil {
			t.Errorf("NewMesh(%d,%d) accepted", wh[0], wh[1])
		}
		if _, err := NewTorus(wh[0], wh[1]); err == nil {
			t.Errorf("NewTorus(%d,%d) accepted", wh[0], wh[1])
		}
	}
}

func TestMeshStructure(t *testing.T) {
	m, err := NewMesh(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 12 {
		t.Fatalf("nodes = %d, want 12", m.Nodes())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior node (1,1) has all four outgoing directions on both planes.
	for _, class := range []int{XPlus, XMinus, YPlus, YMinus} {
		if m.LinkFrom(m.ID(1, 1), class, MeshVCUnicast) == None {
			t.Errorf("interior node missing class %d unicast link", class)
		}
		if m.LinkFrom(m.ID(1, 1), class, MeshVCMulticast) == None {
			t.Errorf("interior node missing class %d multicast link", class)
		}
	}
	// Corner (0,0) has no X- or Y- links on a mesh.
	if m.LinkFrom(m.ID(0, 0), XMinus, MeshVCUnicast) != None {
		t.Error("corner has X- link on a mesh")
	}
	if m.LinkFrom(m.ID(0, 0), YMinus, MeshVCUnicast) != None {
		t.Error("corner has Y- link on a mesh")
	}
}

func TestTorusWrapLinks(t *testing.T) {
	tor, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tor.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner (0,0) wraps in all directions on a torus.
	id := tor.LinkFrom(tor.ID(0, 0), XMinus, MeshVCUnicast)
	if id == None {
		t.Fatal("torus corner missing X- wrap link")
	}
	if c := tor.Channel(id); c.Dst != tor.ID(3, 0) {
		t.Errorf("X- wrap goes to %d, want %d", c.Dst, tor.ID(3, 0))
	}
	// Torus links also exist on the wrapped unicast plane.
	if tor.LinkFrom(tor.ID(0, 0), XPlus, TorusVCUnicastWrapped) == None {
		t.Error("torus missing wrapped-plane link")
	}
}

func TestMeshIDXYRoundTrip(t *testing.T) {
	m, err := NewMesh(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 7; y++ {
		for x := 0; x < 5; x++ {
			gx, gy := m.XY(m.ID(x, y))
			if gx != x || gy != y {
				t.Fatalf("XY(ID(%d,%d)) = (%d,%d)", x, y, gx, gy)
			}
		}
	}
}

func TestMeshDist(t *testing.T) {
	m, _ := NewMesh(4, 4)
	if d := m.Dist(m.ID(0, 0), m.ID(3, 3)); d != 6 {
		t.Errorf("mesh dist corner-corner = %d, want 6", d)
	}
	tor, _ := NewTorus(4, 4)
	if d := tor.Dist(tor.ID(0, 0), tor.ID(3, 3)); d != 2 {
		t.Errorf("torus dist corner-corner = %d, want 2 (wrap)", d)
	}
	if m.Diameter() != 6 {
		t.Errorf("mesh diameter = %d, want 6", m.Diameter())
	}
	if tor.Diameter() != 4 {
		t.Errorf("torus diameter = %d, want 4", tor.Diameter())
	}
}

func TestHamiltonPathIsHamiltonian(t *testing.T) {
	m, err := NewMesh(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]bool{}
	prev := NodeID(-1)
	for i := 0; i < m.Nodes(); i++ {
		node := m.HamiltonNode(i)
		if seen[node] {
			t.Fatalf("Hamilton path revisits node %d", node)
		}
		seen[node] = true
		if m.HamiltonIndex(node) != i {
			t.Fatalf("HamiltonIndex(HamiltonNode(%d)) = %d", i, m.HamiltonIndex(node))
		}
		if prev >= 0 {
			// Consecutive Hamilton nodes must be mesh neighbours.
			if m.Dist(prev, node) != 1 {
				t.Fatalf("Hamilton nodes %d and %d not adjacent", prev, node)
			}
		}
		prev = node
	}
	if len(seen) != m.Nodes() {
		t.Fatalf("Hamilton path covers %d nodes, want %d", len(seen), m.Nodes())
	}
}

func TestHypercubeStructure(t *testing.T) {
	h, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 16 {
		t.Fatalf("nodes = %d, want 16", h.Nodes())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every node has one link per dimension, to the bit-flipped neighbour.
	for node := NodeID(0); node < 16; node++ {
		for d := 0; d < 4; d++ {
			id := h.LinkFrom(node, d, 0)
			if id == None {
				t.Fatalf("node %d missing dim %d link", node, d)
			}
			if c := h.Channel(id); c.Dst != node^NodeID(1<<uint(d)) {
				t.Fatalf("dim %d link from %d goes to %d", d, node, c.Dst)
			}
		}
	}
}

func TestHypercubeRejectsBadDims(t *testing.T) {
	for _, d := range []int{0, -1, 17} {
		if _, err := NewHypercube(d); err == nil {
			t.Errorf("NewHypercube(%d) accepted", d)
		}
	}
}

func TestHypercubeDist(t *testing.T) {
	h, _ := NewHypercube(4)
	if d := h.Dist(0, 15); d != 4 {
		t.Errorf("dist(0,15) = %d, want 4", d)
	}
	if d := h.Dist(5, 5); d != 0 {
		t.Errorf("dist(5,5) = %d, want 0", d)
	}
	if h.Diameter() != 4 {
		t.Errorf("diameter = %d, want 4", h.Diameter())
	}
}

func TestSpidergonStructure(t *testing.T) {
	s, err := NewSpidergon(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per node: 1 inj + 1 ej + 2x2 rim VCs + 1 cross = 7 channels.
	if got, want := s.NumChannels(), 16*7; got != want {
		t.Fatalf("channels = %d, want %d", got, want)
	}
}

func TestSpidergonRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 5, 7, 4, -6} {
		if _, err := NewSpidergon(n); err == nil {
			t.Errorf("NewSpidergon(%d) accepted", n)
		}
	}
}

func TestSpidergonDistanceMatchesAcrossFirst(t *testing.T) {
	s, _ := NewSpidergon(16)
	cases := map[int]int{
		1: 1, 4: 4, // rim+
		15: 1, 12: 4, // rim-
		8: 1, 7: 2, 9: 2, 5: 4, 11: 4, 6: 3, 10: 3,
	}
	for r, want := range cases {
		if got := s.DistRel(r); got != want {
			t.Errorf("DistRel(%d) = %d, want %d", r, got, want)
		}
	}
	// Spidergon diameter for N=16 is 1 + N/4 - 1 = 4... the farthest
	// post-cross remainder is N/4-1, so diameter = N/4.
	if d := s.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
}

func TestQuarcOnePortVariant(t *testing.T) {
	q, err := NewQuarcOnePort(16)
	if err != nil {
		t.Fatal(err)
	}
	if q.Ports() != 1 {
		t.Fatalf("one-port quarc has %d ports", q.Ports())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Network links identical to the all-port quarc: 14-2*4-... per node:
	// 1 inj + 1 ej + 4 rim VCs + 2 cross = 8.
	if got, want := q.NumChannels(), 16*8; got != want {
		t.Fatalf("channels = %d, want %d", got, want)
	}
	// Geometry helpers unchanged.
	if q.Diameter() != 4 {
		t.Fatalf("diameter = %d, want 4", q.Diameter())
	}
}

// Property: torus distance is invariant under translation.
func TestTorusVertexSymmetry(t *testing.T) {
	tor, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, shift uint8) bool {
		src := NodeID(int(a) % 16)
		dst := NodeID(int(b) % 16)
		sx, sy := tor.XY(src)
		dx, dy := tor.XY(dst)
		tx, ty := int(shift)%4, int(shift/4)%4
		src2 := tor.ID((sx+tx)%4, (sy+ty)%4)
		dst2 := tor.ID((dx+tx)%4, (dy+ty)%4)
		return tor.Dist(src, dst) == tor.Dist(src2, dst2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
