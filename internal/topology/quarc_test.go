package topology

import (
	"testing"
	"testing/quick"
)

func mustQuarc(t *testing.T, n int) *Quarc {
	t.Helper()
	q, err := NewQuarc(n)
	if err != nil {
		t.Fatalf("NewQuarc(%d): %v", n, err)
	}
	return q
}

func TestNewQuarcRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 4, 6, 10, 13, -8} {
		if _, err := NewQuarc(n); err == nil {
			t.Errorf("NewQuarc(%d) accepted an invalid size", n)
		}
	}
}

func TestNewQuarcAcceptsPaperSizes(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		q := mustQuarc(t, n)
		if q.Nodes() != n {
			t.Errorf("Nodes() = %d, want %d", q.Nodes(), n)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("Validate failed for n=%d: %v", n, err)
		}
	}
}

func TestQuarcChannelCount(t *testing.T) {
	// Per node: 4 inj + 4 ej + 2 rim directions x 2 VCs + 2 cross = 14.
	q := mustQuarc(t, 16)
	if got, want := q.NumChannels(), 16*14; got != want {
		t.Fatalf("channel count = %d, want %d", got, want)
	}
}

func TestQuarcDiameterIsQuarter(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		q := mustQuarc(t, n)
		if q.Diameter() != n/4 {
			t.Errorf("n=%d diameter = %d, want %d", n, q.Diameter(), n/4)
		}
		// Check the diameter is actually attained and never exceeded.
		maxDist := 0
		for r := 1; r < n; r++ {
			if d := q.DistRel(r); d > maxDist {
				maxDist = d
			}
		}
		if maxDist != n/4 {
			t.Errorf("n=%d max unicast distance = %d, want %d", n, maxDist, n/4)
		}
	}
}

func TestQuarcQuadrantsPartitionNetwork(t *testing.T) {
	for _, n := range []int{8, 16, 64} {
		q := mustQuarc(t, n)
		counts := make(map[int]int)
		for r := 1; r < n; r++ {
			counts[q.PortForRel(r)]++
		}
		quad := n / 4
		want := map[int]int{PortL: quad, PortCL: quad, PortCR: quad - 1, PortR: quad}
		for p, w := range want {
			if counts[p] != w {
				t.Errorf("n=%d port %s covers %d nodes, want %d", n, QuarcPortName(p), counts[p], w)
			}
		}
	}
}

// The paper's Fig. 3 example: broadcasting from node 0 in a 16-node Quarc,
// the last nodes visited on the L, LO (cross-left), RO (cross-right) and R
// branches are 4, 5, 11 and 12 respectively.
func TestQuarcFig3BroadcastEndpoints(t *testing.T) {
	q := mustQuarc(t, 16)
	cases := []struct {
		port int
		want NodeID
	}{
		{PortL, 4},
		{PortCL, 5},
		{PortCR, 11},
		{PortR, 12},
	}
	for _, c := range cases {
		_, hi := q.BranchHopRange(c.port)
		got, err := q.BranchNode(0, c.port, hi)
		if err != nil {
			t.Fatalf("BranchNode(0,%s,%d): %v", QuarcPortName(c.port), hi, err)
		}
		if got != c.want {
			t.Errorf("port %s broadcast endpoint = %d, want %d", QuarcPortName(c.port), got, c.want)
		}
	}
}

func TestQuarcBranchNodesCoverNetworkExactlyOnce(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		q := mustQuarc(t, n)
		for src := NodeID(0); int(src) < n; src += NodeID(n / 4) {
			seen := make(map[NodeID]int)
			for port := 0; port < QuarcPorts; port++ {
				lo, hi := q.BranchHopRange(port)
				for hop := lo; hop <= hi; hop++ {
					node, err := q.BranchNode(src, port, hop)
					if err != nil {
						t.Fatalf("BranchNode(%d,%s,%d): %v", src, QuarcPortName(port), hop, err)
					}
					seen[node]++
				}
			}
			if len(seen) != n-1 {
				t.Fatalf("n=%d src=%d: branches reach %d distinct nodes, want %d", n, src, len(seen), n-1)
			}
			for node, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d src=%d: node %d covered %d times", n, src, node, c)
				}
			}
			if _, dup := seen[src]; dup {
				t.Fatalf("n=%d src=%d: source covered by its own broadcast", n, src)
			}
		}
	}
}

func TestQuarcBranchHopOfRoundTrip(t *testing.T) {
	q := mustQuarc(t, 32)
	for src := NodeID(0); int(src) < 32; src++ {
		for dst := NodeID(0); int(dst) < 32; dst++ {
			if src == dst {
				if _, _, err := q.BranchHopOf(src, dst); err == nil {
					t.Fatalf("BranchHopOf(%d,%d) accepted self", src, dst)
				}
				continue
			}
			port, hop, err := q.BranchHopOf(src, dst)
			if err != nil {
				t.Fatalf("BranchHopOf(%d,%d): %v", src, dst, err)
			}
			back, err := q.BranchNode(src, port, hop)
			if err != nil {
				t.Fatalf("BranchNode(%d,%s,%d): %v", src, QuarcPortName(port), hop, err)
			}
			if back != dst {
				t.Fatalf("round trip %d->%d gave %d (port %s hop %d)", src, dst, back, QuarcPortName(port), hop)
			}
			if hop != q.Dist(src, dst) {
				t.Fatalf("hop %d != dist %d for %d->%d", hop, q.Dist(src, dst), src, dst)
			}
		}
	}
}

func TestQuarcDistRelSymmetryProperties(t *testing.T) {
	// Vertex symmetry: distance depends only on the relative position.
	q := mustQuarc(t, 64)
	f := func(src, dst uint8) bool {
		s := NodeID(int(src) % 64)
		d := NodeID(int(dst) % 64)
		if s == d {
			return q.Dist(s, d) == 0
		}
		dist := q.Dist(s, d)
		return dist >= 1 && dist <= 16 && dist == q.DistRel(q.Rel(s, d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuarcVCAssignment(t *testing.T) {
	q := mustQuarc(t, 16)
	// A rim+ journey that does not wrap stays on VC0.
	if vc := q.RimPlusVC(3, 5); vc != 0 {
		t.Errorf("non-wrapping rim+ VC = %d, want 0", vc)
	}
	// After wrapping past node 0 the worm switches to VC1.
	if vc := q.RimPlusVC(14, 1); vc != 1 {
		t.Errorf("wrapped rim+ VC = %d, want 1", vc)
	}
	// Rim- journeys wrap in the other direction.
	if vc := q.RimMinusVC(3, 1); vc != 0 {
		t.Errorf("non-wrapping rim- VC = %d, want 0", vc)
	}
	if vc := q.RimMinusVC(1, 15); vc != 1 {
		t.Errorf("wrapped rim- VC = %d, want 1", vc)
	}
}

func TestQuarcBranchNodeRangeChecks(t *testing.T) {
	q := mustQuarc(t, 16)
	if _, err := q.BranchNode(0, PortL, 0); err == nil {
		t.Error("hop 0 accepted")
	}
	if _, err := q.BranchNode(0, PortL, 5); err == nil {
		t.Error("hop beyond quadrant accepted")
	}
	// CR hop 1 is a legal physical position (the opposite node) even though
	// it is not a CR receiver.
	if _, err := q.BranchNode(0, PortCR, 1); err != nil {
		t.Errorf("CR hop 1 rejected: %v", err)
	}
	if node, _ := q.BranchNode(0, PortCR, 1); node != 8 {
		t.Errorf("CR hop 1 from 0 = %v, want 8", node)
	}
}

func TestGraphValidateCatchesMissingPorts(t *testing.T) {
	g := NewGraph("broken", 2, 1)
	g.AddInjection(0, 0)
	g.AddEjection(0, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a graph with missing ports")
	}
}

func TestGraphDuplicateInjectionPanics(t *testing.T) {
	g := NewGraph("dup", 1, 1)
	g.AddInjection(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate injection channel")
		}
	}()
	g.AddInjection(0, 0)
}

func TestGraphDuplicateLinkPanics(t *testing.T) {
	g := NewGraph("dup", 2, 1)
	g.AddLink(0, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate link")
		}
	}()
	g.AddLink(0, 1, 0, 0)
}

func TestGraphLinkFromLookup(t *testing.T) {
	g := NewGraph("lk", 2, 1)
	id := g.AddLink(0, 1, 3, 1)
	if got := g.LinkFrom(0, 3, 1); got != id {
		t.Fatalf("LinkFrom = %d, want %d", got, id)
	}
	if got := g.LinkFrom(1, 3, 1); got != None {
		t.Fatalf("missing link lookup = %d, want None", got)
	}
}

func TestChannelStringForms(t *testing.T) {
	g := NewGraph("s", 2, 1)
	i := g.AddInjection(0, 0)
	e := g.AddEjection(1, 0)
	l := g.AddLink(0, 1, 2, 1)
	if s := g.Channel(i).String(); s != "inj(0,p0)" {
		t.Errorf("injection string = %q", s)
	}
	if s := g.Channel(e).String(); s != "ej(1,p0)" {
		t.Errorf("ejection string = %q", s)
	}
	if s := g.Channel(l).String(); s != "link(0->1,c2,vc1)" {
		t.Errorf("link string = %q", s)
	}
}

func TestQuarcPortNames(t *testing.T) {
	want := map[int]string{PortL: "L", PortCL: "LO", PortCR: "RO", PortR: "R", 9: "?"}
	for p, w := range want {
		if got := QuarcPortName(p); got != w {
			t.Errorf("QuarcPortName(%d) = %q, want %q", p, got, w)
		}
	}
}
