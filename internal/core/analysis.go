package core

import (
	"fmt"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// MeanDistance returns the average unicast hop count (network link
// crossings) over all ordered source/destination pairs, computed by path
// enumeration over the router. This is the D̄ entering the zero-load
// latency D̄ + 1 + msg (the +1 is the injection-channel crossing).
func MeanDistance(rt routing.Router) (float64, error) {
	n := rt.Graph().Nodes()
	var sum float64
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			p, err := rt.UnicastPath(topology.NodeID(src), topology.NodeID(dst))
			if err != nil {
				return 0, err
			}
			sum += float64(len(p) - 2) // exclude injection and ejection
		}
	}
	return sum / float64(n*(n-1)), nil
}

// ZeroLoadUnicastLatency returns the exact average unicast latency at
// vanishing load: mean distance + 1 (injection) + message drain.
func ZeroLoadUnicastLatency(rt routing.Router, msgLen int) (float64, error) {
	d, err := MeanDistance(rt)
	if err != nil {
		return 0, err
	}
	return d + 1 + float64(msgLen), nil
}

// QuarcMeanDistance is the closed form of the Quarc's average unicast
// distance. With quadrant size Q = N/4 the distance sums per quadrant are
// Q(Q+1)/2 for L and R, Q(Q+1)/2 for the cross-left quadrant, and
// Q(Q+1)/2 - 1 for cross-right (one fewer node), giving
//
//	D̄ = (2Q(Q+1) - 1) / (N - 1).
//
// The Spidergon's Across-First routing yields exactly the same value —
// the Quarc changes the port structure, not the shortest-path distances.
func QuarcMeanDistance(n int) (float64, error) {
	if n < 8 || n%4 != 0 {
		return 0, fmt.Errorf("core: invalid quarc size %d", n)
	}
	q := float64(n / 4)
	return (2*q*(q+1) - 1) / float64(n-1), nil
}

// HypercubeMeanDistance is the closed form of the hypercube's average
// e-cube distance: the mean Hamming distance to a random other node,
// d·2^(d-1) / (2^d - 1).
func HypercubeMeanDistance(dims int) (float64, error) {
	if dims < 1 || dims > 16 {
		return 0, fmt.Errorf("core: invalid hypercube dims %d", dims)
	}
	n := float64(int(1) << uint(dims))
	return float64(dims) * n / 2 / (n - 1), nil
}

// QuarcZeroLoadBroadcastLatency is the exact zero-load latency of a Quarc
// broadcast: the four quadrant branches are independent, each is N/4
// network hops deep plus the injection crossing, and the slowest branch
// defines completion: (N/4 + 1) + msg.
func QuarcZeroLoadBroadcastLatency(n, msgLen int) (float64, error) {
	if n < 8 || n%4 != 0 {
		return 0, fmt.Errorf("core: invalid quarc size %d", n)
	}
	return float64(n/4+1) + float64(msgLen), nil
}

// SpidergonZeroLoadBroadcastLatency is the zero-load latency of the
// Spidergon's broadcast-by-consecutive-unicast: the k-th of the N-1
// unicasts leaves after k-1 injection holding times of msg cycles each,
// and the slowest completion over all k defines the broadcast. At zero
// load unicast k to a destination at distance d_k completes at
// (k-1)·msg + (d_k + 1) + msg; with distances bounded by the diameter the
// last transmission dominates: (N-2)·msg + msg + d + 1 where d is the
// distance of the final destination in transmission order (position
// order, i.e. relative position N-1, at distance 1), giving
// (N-1)·msg + 2.
func SpidergonZeroLoadBroadcastLatency(n, msgLen int) (float64, error) {
	if n < 6 || n%2 != 0 {
		return 0, fmt.Errorf("core: invalid spidergon size %d", n)
	}
	return float64(n-1)*float64(msgLen) + 2, nil
}
