// Package core implements the paper's analytical performance model for
// unicast and multicast communication in wormhole-routed networks with
// asynchronous multi-port routers (Moadeli & Vanderbauwhede, IPDPS 2009).
//
// The model views the network as a network of M/G/1 queues (one per
// channel), propagates wormhole blocking from the destination back to the
// source through a service-time recurrence (Eq. 6), sums per-link header
// waiting times along each path (Eq. 7), and combines the per-port waits of
// a multicast with the expected maximum of independent exponential random
// variables (Eqs. 8-13).
package core

import (
	"fmt"
	"math"
)

// MG1Wait returns the Pollaczek-Khinchine mean waiting time of an M/G/1
// queue with arrival rate lambda, mean service time xbar and service-time
// standard deviation sigma:
//
//	W = λ·x̄²·(1 + σ²/x̄²) / (2(1-λx̄)) = λ·E[x²] / (2(1-ρ))
//
// Note: the paper's Eq. 3 prints the numerator as λρ, which is
// dimensionally inconsistent (see DESIGN.md §2); this is the standard P-K
// formula from the paper's cited source (Kleinrock vol. I). It returns +Inf
// when the queue is unstable (ρ >= 1).
func MG1Wait(lambda, xbar, sigma float64) float64 {
	if lambda < 0 || xbar < 0 {
		panic(fmt.Sprintf("core: negative M/G/1 parameters λ=%v x̄=%v", lambda, xbar))
	}
	if lambda == 0 || xbar == 0 {
		return 0
	}
	rho := lambda * xbar
	if rho >= 1 {
		return math.Inf(1)
	}
	ex2 := xbar*xbar + sigma*sigma
	return lambda * ex2 / (2 * (1 - rho))
}

// MG1WaitPaperEq3 evaluates Eq. 3 exactly as printed in the paper,
//
//	W = λρ·(1 + σ²/x̄²) / (2(1-λx̄))
//
// whose numerator λρ = λ²x̄ differs from the standard Pollaczek-Khinchine
// numerator λ·x̄² by a factor λ/x̄. Since ρ = λx̄ < 1 in the stable region,
// the printed formula underestimates waits by roughly x̄/λ ≫ 1. It is kept
// only so the reproduction can demonstrate the discrepancy empirically
// (see the WaitFormula option and DESIGN.md §2); the model defaults to the
// standard form, which is what the paper's cited source gives.
func MG1WaitPaperEq3(lambda, xbar, sigma float64) float64 {
	if lambda < 0 || xbar < 0 {
		panic(fmt.Sprintf("core: negative M/G/1 parameters λ=%v x̄=%v", lambda, xbar))
	}
	if lambda == 0 || xbar == 0 {
		return 0
	}
	rho := lambda * xbar
	if rho >= 1 {
		return math.Inf(1)
	}
	cv := 1 + sigma*sigma/(xbar*xbar)
	return lambda * rho * cv / (2 * (1 - rho))
}

// ServiceSigma returns the paper's service-time standard deviation
// heuristic σ = x̄ − msg (Eq. 5): the variable part of a channel's holding
// time is its excess over the bare message drain time.
func ServiceSigma(xbar, msgLen float64) float64 {
	s := xbar - msgLen
	if s < 0 {
		return 0
	}
	return s
}

// Utilization returns ρ = λ·x̄ (Eq. 4).
func Utilization(lambda, xbar float64) float64 { return lambda * xbar }
