package core

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

func TestQuarcMeanDistanceClosedForm(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		rt := quarcRouter(t, n)
		enum, err := MeanDistance(rt)
		if err != nil {
			t.Fatal(err)
		}
		closed, err := QuarcMeanDistance(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(enum-closed) > 1e-9 {
			t.Errorf("n=%d: enumerated %v, closed form %v", n, enum, closed)
		}
	}
	if _, err := QuarcMeanDistance(10); err == nil {
		t.Error("invalid size accepted")
	}
}

func TestSpidergonMeanDistanceEqualsQuarc(t *testing.T) {
	// The Quarc preserves the Spidergon's shortest-path distances; only
	// the port structure differs.
	for _, n := range []int{8, 16, 32} {
		s, err := topology.NewSpidergon(n)
		if err != nil {
			t.Fatal(err)
		}
		enum, err := MeanDistance(routing.NewSpidergonRouter(s))
		if err != nil {
			t.Fatal(err)
		}
		closed, err := QuarcMeanDistance(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(enum-closed) > 1e-9 {
			t.Errorf("n=%d: spidergon enumerated %v, quarc closed form %v", n, enum, closed)
		}
	}
}

func TestHypercubeMeanDistanceClosedForm(t *testing.T) {
	for _, dims := range []int{2, 3, 4, 5} {
		h, err := topology.NewHypercube(dims)
		if err != nil {
			t.Fatal(err)
		}
		enum, err := MeanDistance(routing.NewHypercubeRouter(h))
		if err != nil {
			t.Fatal(err)
		}
		closed, err := HypercubeMeanDistance(dims)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(enum-closed) > 1e-9 {
			t.Errorf("dims=%d: enumerated %v, closed form %v", dims, enum, closed)
		}
	}
}

func TestZeroLoadUnicastLatencyMatchesModel(t *testing.T) {
	rt := quarcRouter(t, 32)
	want, err := ZeroLoadUnicastLatency(rt, 48)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(Input{Router: rt, Spec: traffic.Spec{Rate: 1e-12}, MsgLen: 48})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.UnicastLatency-want) > 1e-6 {
		t.Errorf("model zero-load %v, analytic %v", pred.UnicastLatency, want)
	}
}

func TestQuarcZeroLoadBroadcastClosedForm(t *testing.T) {
	// Cross-check the closed form against an actual simulation of a
	// single broadcast.
	for _, n := range []int{16, 32} {
		rt := quarcRouter(t, n)
		want, err := QuarcZeroLoadBroadcastLatency(n, 20)
		if err != nil {
			t.Fatal(err)
		}
		branches, err := rt.MulticastBranches(0, rt.BroadcastSet())
		if err != nil {
			t.Fatal(err)
		}
		src := &oneShot{branches: branches}
		nw, err := wormhole.New(rt.Graph(), src, wormhole.Config{MsgLen: 20, Warmup: 0, Measure: 5000})
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run()
		if got := res.Multicast.Mean(); got != want {
			t.Errorf("n=%d: simulated single broadcast %v, closed form %v", n, got, want)
		}
	}
}

func TestSpidergonZeroLoadBroadcastClosedForm(t *testing.T) {
	s, err := topology.NewSpidergon(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewSpidergonRouter(s)
	want, err := SpidergonZeroLoadBroadcastLatency(16, 20)
	if err != nil {
		t.Fatal(err)
	}
	branches, err := rt.MulticastBranches(0, rt.BroadcastSet())
	if err != nil {
		t.Fatal(err)
	}
	src := &oneShot{branches: branches}
	nw, err := wormhole.New(rt.Graph(), src, wormhole.Config{MsgLen: 20, Warmup: 0, Measure: 5000})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if got := res.Multicast.Mean(); got != want {
		t.Errorf("simulated spidergon broadcast %v, closed form %v", got, want)
	}
}

func TestAnalysisValidation(t *testing.T) {
	if _, err := HypercubeMeanDistance(0); err == nil {
		t.Error("dims 0 accepted")
	}
	if _, err := QuarcZeroLoadBroadcastLatency(10, 16); err == nil {
		t.Error("invalid quarc size accepted")
	}
	if _, err := SpidergonZeroLoadBroadcastLatency(7, 16); err == nil {
		t.Error("odd spidergon size accepted")
	}
}

// oneShot injects a single multicast at t=1.
type oneShot struct {
	branches []routing.Branch
	fired    bool
}

func (s *oneShot) Interarrival(node topology.NodeID) float64 {
	if node == 0 && !s.fired {
		return 1
	}
	return math.Inf(1)
}

func (s *oneShot) Next(node topology.NodeID) ([]routing.Branch, bool) {
	s.fired = true
	return s.branches, true
}
