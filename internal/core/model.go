package core

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// ErrNonPoisson marks model evaluations rejected because the workload's
// arrival process breaks the M/G/1 Poisson assumption — an out-of-scope
// workload, not a defect. Callers that fall back to simulator-only
// output match it with errors.Is.
var ErrNonPoisson = errors.New("the analytical model requires poisson arrivals")

// Input specifies one model evaluation: a routed topology, a workload
// specification and the message length in flits.
type Input struct {
	Router routing.Router
	Spec   traffic.Spec
	MsgLen int
	// Damping is the fixed-point damping factor in (0,1]; 0 selects the
	// default 0.5.
	Damping float64
	// MaxIter bounds the fixed-point iterations; 0 selects the default.
	MaxIter int
	// Tol is the convergence tolerance on service times; 0 selects the
	// default 1e-9.
	Tol float64
	// WaitFormula selects the M/G/1 waiting-time formula; the default is
	// the standard Pollaczek-Khinchine form (see DESIGN.md §2).
	WaitFormula WaitFormula
	// ServiceFormula selects the service-time recurrence; the default is
	// the paper's Eq. 6.
	ServiceFormula ServiceFormula
}

// ServiceFormula selects the channel service-time recurrence.
type ServiceFormula int

const (
	// PaperEq6 is the paper's recurrence, x_i = Σ P(W' + x_j + 1): a
	// channel's holding time includes one cycle per downstream hop. This
	// overestimates the physical holding time (a wormhole channel is
	// released when the tail crosses it, so the per-hop cycles cancel),
	// which makes the model conservative: it saturates slightly before
	// the simulator. It is the default because it is what the paper
	// publishes, and its figures show exactly this conservatism.
	PaperEq6 ServiceFormula = iota
	// TailRelease drops the per-hop +1: x_i = Σ P(W' + x_j) with x = msg
	// at the ejection channel, which telescopes to msg + downstream
	// waits — the exact mean holding time when messages are longer than
	// the remaining path. An ablation (BenchmarkAblationService) compares
	// the two against the simulator.
	TailRelease
)

// WaitFormula selects how channel waiting times are computed.
type WaitFormula int

const (
	// PKStandard is the standard Pollaczek-Khinchine mean wait,
	// W = λ·E[x²]/(2(1-ρ)) — the form the paper's cited source gives and
	// the one that reproduces the simulator. This is the default.
	PKStandard WaitFormula = iota
	// PaperEq3Literal evaluates Eq. 3 exactly as printed in the paper
	// (numerator λρ instead of λx̄²). It exists to demonstrate that the
	// printed formula cannot reproduce the paper's own figures: it
	// underestimates waits by a factor of about x̄/λ.
	PaperEq3Literal
)

// Prediction is the model output for one configuration.
type Prediction struct {
	// UnicastLatency is the average unicast message latency (Eq. 7
	// averaged over all source/destination pairs), in cycles.
	UnicastLatency float64
	// MulticastLatency is the average multicast message latency
	// (Eqs. 13-16), in cycles.
	MulticastLatency float64
	// Saturated reports that some channel's utilization reached 1, i.e.
	// the configuration is beyond the model's stability region; the
	// latencies are +Inf in that case.
	Saturated bool
	// MaxRho is the largest channel utilization λ·x̄ at the fixed point.
	MaxRho float64
	// Iterations is the number of fixed-point sweeps performed.
	Iterations int
	// Converged reports whether the service-time fixed point met the
	// tolerance within MaxIter sweeps.
	Converged bool
}

// channelState carries the per-channel quantities of the model.
type channelState struct {
	lambda  float64 // total arrival rate (messages/cycle)
	service float64 // mean holding time x̄
	wait    float64 // M/G/1 mean wait W
	eject   bool
	// outgoing transitions: next channel index and the flow rate i->j.
	next []transition
}

type transition struct {
	to   int
	rate float64
}

// Model is the assembled analytical model for one Input. Build with
// NewModel, evaluate with Solve; the per-path helpers are exposed so the
// multicast combination and experiments can inspect intermediate values.
type Model struct {
	in       Input
	g        *topology.Graph
	channels []channelState
	// pairRate maps (from<<32 | to) to the flow rate from->to, used for
	// the "exclude own contribution" scaling of path waits.
	pairRate map[uint64]float64
	// multicast branches per source node (nil when α = 0).
	branches [][]routing.Branch
	solved   bool
	pred     Prediction
}

const (
	defaultDamping = 0.5
	defaultMaxIter = 20000
	defaultTol     = 1e-9
)

// NewModel enumerates the workload's flows over the router and assembles
// the per-channel arrival rates and transition structure.
func NewModel(in Input) (*Model, error) {
	if in.Router == nil {
		return nil, fmt.Errorf("core: nil router")
	}
	if err := in.Spec.ValidateFor(in.Router.Graph().Nodes()); err != nil {
		return nil, err
	}
	if a := in.Spec.Arrival; a != "" && a != "poisson" {
		// The M/G/1 waiting-time formulas assume Poisson arrivals; any
		// other registered process invalidates Eq. 3 silently, so fail
		// loudly instead.
		return nil, fmt.Errorf("core: %w, got %q (use the simulator)", ErrNonPoisson, a)
	}
	if in.MsgLen < 2 {
		return nil, fmt.Errorf("core: message length %d too short", in.MsgLen)
	}
	if in.Damping == 0 {
		in.Damping = defaultDamping
	}
	if in.Damping <= 0 || in.Damping > 1 {
		return nil, fmt.Errorf("core: damping %v out of (0,1]", in.Damping)
	}
	if in.MaxIter == 0 {
		in.MaxIter = defaultMaxIter
	}
	if in.Tol == 0 {
		in.Tol = defaultTol
	}
	g := in.Router.Graph()
	m := &Model{
		in:       in,
		g:        g,
		channels: make([]channelState, g.NumChannels()),
		pairRate: make(map[uint64]float64),
	}
	for i := range m.channels {
		m.channels[i].eject = g.Channel(topology.ChannelID(i)).Kind == topology.Ejection
	}

	n := g.Nodes()
	lam := in.Spec.Rate
	alpha := in.Spec.MulticastFrac

	// Unicast flows: per-pair probabilities from the spec (uniform in the
	// paper's setup; skewed under hotspot, permutation or weight-matrix
	// traffic), one O(n) row per source.
	if lam > 0 && alpha < 1 {
		probs := make([]float64, n)
		for src := 0; src < n; src++ {
			in.Spec.UnicastProbRow(n, topology.NodeID(src), probs)
			for dst := 0; dst < n; dst++ {
				p := probs[dst]
				if p == 0 {
					continue
				}
				path, err := in.Router.UnicastPath(topology.NodeID(src), topology.NodeID(dst))
				if err != nil {
					return nil, fmt.Errorf("core: unicast path %d->%d: %w", src, dst, err)
				}
				m.addFlow(path, lam*(1-alpha)*p)
			}
		}
	}

	// Multicast flows: one flow per branch per source at rate λα. Silent
	// sources (permutation self-maps) generate nothing, multicast
	// included, matching the simulator's workload.
	if lam > 0 && alpha > 0 {
		m.branches = make([][]routing.Branch, n)
		for src := 0; src < n; src++ {
			if in.Spec.Silent(topology.NodeID(src)) {
				continue
			}
			branches, err := in.Router.MulticastBranches(topology.NodeID(src), in.Spec.Set)
			if err != nil {
				return nil, fmt.Errorf("core: multicast branches at %d: %w", src, err)
			}
			m.branches[src] = branches
			for _, b := range branches {
				m.addFlow(b.Path, lam*alpha)
			}
		}
	}

	// Materialize the transition lists in sorted key order: ranging the
	// map directly would order each channel's transitions by map hash,
	// and the fixed point sums transition rates in list order — float
	// addition is not associative, so the solution would differ in the
	// low bits from process to process.
	keys := make([]uint64, 0, len(m.pairRate))
	for key := range m.pairRate {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	for _, key := range keys {
		from := int(key >> 32)
		to := int(key & 0xffffffff)
		m.channels[from].next = append(m.channels[from].next, transition{to: to, rate: m.pairRate[key]})
	}
	return m, nil
}

func (m *Model) addFlow(path routing.Path, rate float64) {
	for i, id := range path {
		m.channels[id].lambda += rate
		if i > 0 {
			key := uint64(path[i-1])<<32 | uint64(id)
			m.pairRate[key] += rate
		}
	}
}

// Lambda returns the modeled arrival rate at a channel.
func (m *Model) Lambda(id topology.ChannelID) float64 { return m.channels[id].lambda }

// Service returns the fixed-point mean holding time of a channel (valid
// after Solve).
func (m *Model) Service(id topology.ChannelID) float64 { return m.channels[id].service }

// Wait returns the fixed-point M/G/1 mean waiting time of a channel (valid
// after Solve).
func (m *Model) Wait(id topology.ChannelID) float64 { return m.channels[id].wait }

// Solve runs the service-time fixed point (Eq. 6 with the P-K wait of
// Eq. 3) and computes the unicast (Eq. 7) and multicast (Eqs. 13-16)
// latencies.
func (m *Model) Solve() (Prediction, error) {
	if m.solved {
		return m.pred, nil
	}
	msg := float64(m.in.MsgLen)

	// Initialize every channel's holding time to the bare drain time.
	for i := range m.channels {
		m.channels[i].service = msg
	}

	saturated := false
	iter := 0
	converged := false
	for ; iter < m.in.MaxIter; iter++ {
		// Waits from current services.
		unstable := false
		for i := range m.channels {
			c := &m.channels[i]
			w := m.channelWait(c.lambda, c.service, msg)
			if math.IsInf(w, 1) {
				unstable = true
				w = math.Inf(1)
			}
			c.wait = w
		}
		if unstable {
			saturated = true
			break
		}
		// Service-time sweep (Eq. 6).
		maxDelta := 0.0
		for i := range m.channels {
			c := &m.channels[i]
			if c.eject || c.lambda == 0 {
				continue
			}
			hop := 1.0
			if m.in.ServiceFormula == TailRelease {
				hop = 0
			}
			var x float64
			for _, tr := range c.next {
				b := &m.channels[tr.to]
				p := tr.rate / c.lambda
				scale := 1 - tr.rate/b.lambda
				if scale < 0 {
					scale = 0
				}
				x += p * (scale*b.wait + b.service + hop)
			}
			nx := c.service + m.in.Damping*(x-c.service)
			if d := math.Abs(nx-c.service) / math.Max(1, c.service); d > maxDelta {
				maxDelta = d
			}
			c.service = nx
		}
		if maxDelta < m.in.Tol {
			converged = true
			iter++
			break
		}
	}

	maxRho := 0.0
	for i := range m.channels {
		c := &m.channels[i]
		if rho := c.lambda * c.service; rho > maxRho {
			maxRho = rho
		}
	}
	if maxRho >= 1 {
		saturated = true
	}

	pred := Prediction{Saturated: saturated, MaxRho: maxRho, Iterations: iter, Converged: converged}
	if saturated {
		pred.UnicastLatency = math.Inf(1)
		pred.MulticastLatency = math.Inf(1)
		m.pred, m.solved = pred, true
		return pred, nil
	}

	// Final waits from converged services.
	for i := range m.channels {
		c := &m.channels[i]
		c.wait = m.channelWait(c.lambda, c.service, msg)
	}

	var err error
	pred.UnicastLatency, err = m.unicastLatency()
	if err != nil {
		return pred, err
	}
	pred.MulticastLatency, err = m.multicastLatency()
	if err != nil {
		return pred, err
	}
	m.pred, m.solved = pred, true
	return pred, nil
}

// channelWait applies the configured waiting-time formula to a channel.
func (m *Model) channelWait(lambda, service, msg float64) float64 {
	sigma := ServiceSigma(service, msg)
	if m.in.WaitFormula == PaperEq3Literal {
		return MG1WaitPaperEq3(lambda, service, sigma)
	}
	return MG1Wait(lambda, service, sigma)
}

// PathWait returns the expected total waiting time of a header along a
// path: the full M/G/1 wait at the injection channel (external Poisson
// arrivals) plus, at each subsequent channel, the wait scaled by one minus
// the share of that channel's traffic contributed by the path itself
// (the factor in Eq. 6).
func (m *Model) PathWait(path routing.Path) float64 {
	var total float64
	for i, id := range path {
		c := &m.channels[id]
		if c.lambda == 0 {
			continue
		}
		w := c.wait
		if i > 0 {
			rate := m.pairRate[uint64(path[i-1])<<32|uint64(id)]
			scale := 1 - rate/c.lambda
			if scale < 0 {
				scale = 0
			}
			w *= scale
		}
		total += w
	}
	return total
}

// PathLatency returns the model's expected end-to-end latency of one path:
// ΣW + msg + D, where D = len(path)-1 is the header pipeline depth (the
// simulator's zero-load latency is exactly D + msg).
func (m *Model) PathLatency(path routing.Path) float64 {
	return m.PathWait(path) + float64(m.in.MsgLen) + float64(len(path)-1)
}

// activeSources counts the sources that generate traffic: all of them,
// unless a permutation self-map silences some. Latency averages divide by
// this count, matching the simulator's per-message means (the classic
// no-permutation path keeps the exact n divisor, bitwise).
func (m *Model) activeSources() (int, error) {
	n := m.g.Nodes()
	if m.in.Spec.Perm == nil {
		return n, nil
	}
	active := 0
	for src := 0; src < n; src++ {
		if !m.in.Spec.Silent(topology.NodeID(src)) {
			active++
		}
	}
	if active == 0 {
		return 0, fmt.Errorf("core: the permutation silences every node")
	}
	return active, nil
}

func (m *Model) unicastLatency() (float64, error) {
	n := m.g.Nodes()
	active, err := m.activeSources()
	if err != nil {
		return 0, err
	}
	var sum float64
	probs := make([]float64, n)
	for src := 0; src < n; src++ {
		// Weight each pair by the probability a message takes it, so
		// the average is over messages, as the simulator measures it.
		m.in.Spec.UnicastProbRow(n, topology.NodeID(src), probs)
		for dst := 0; dst < n; dst++ {
			p := probs[dst]
			if p == 0 {
				continue
			}
			path, err := m.in.Router.UnicastPath(topology.NodeID(src), topology.NodeID(dst))
			if err != nil {
				return 0, err
			}
			sum += p * m.PathLatency(path)
		}
	}
	return sum / float64(active), nil
}

func (m *Model) multicastLatency() (float64, error) {
	if m.branches == nil {
		return math.NaN(), nil
	}
	serialized := m.g.Ports() == 1
	n := m.g.Nodes()
	active, err := m.activeSources()
	if err != nil {
		return 0, err
	}
	var sum float64
	for src := 0; src < n; src++ {
		if m.in.Spec.Silent(topology.NodeID(src)) {
			continue
		}
		branches := m.branches[src]
		if len(branches) == 0 {
			return 0, fmt.Errorf("core: node %d has no multicast branches", src)
		}
		if serialized && len(branches) > 1 {
			sum += m.serializedMulticastNode(branches)
			continue
		}
		waits := make([]float64, len(branches))
		maxD := 0
		for i, b := range branches {
			waits[i] = m.PathWait(b.Path)
			if d := len(b.Path) - 1; d > maxD {
				maxD = d
			}
		}
		// Eqs. 13-14: last-of-m exponential wait + msg + max hops.
		sum += MulticastWait(waits) + float64(m.in.MsgLen) + float64(maxD)
	}
	return sum / float64(active), nil
}

// serializedMulticastNode models multicast on a one-port router, which is
// outside the paper's scope (the paper's Eq. 12 machinery assumes
// asynchronous multi-port injection). With a single injection channel the
// m branches of one message queue up behind each other: branch k cannot be
// granted the port before the k-1 earlier branches have released it, each
// holding it for the port's mean holding time x̄. The k-th branch's
// latency is therefore the port wait plus (k-1)·x̄ plus its own network
// traversal, and the multicast completes with the slowest branch. At zero
// load this reduces to (k-1)·msg + msg + D exactly, matching the
// simulator. This extension is what the one-port ablation exercises.
func (m *Model) serializedMulticastNode(branches []routing.Branch) float64 {
	inj := branches[0].Path[0]
	injWait := m.channels[inj].wait
	injHold := m.channels[inj].service
	msg := float64(m.in.MsgLen)
	worst := 0.0
	for k, b := range branches {
		tail := 0.0
		for i, id := range b.Path[1:] {
			c := &m.channels[id]
			if c.lambda == 0 {
				continue
			}
			prev := b.Path[i] // b.Path[1:][i-1+1] == b.Path[i]
			rate := m.pairRate[uint64(prev)<<32|uint64(id)]
			scale := 1 - rate/c.lambda
			if scale < 0 {
				scale = 0
			}
			tail += scale * c.wait
		}
		lat := injWait + float64(k)*injHold + tail + msg + float64(len(b.Path)-1)
		if lat > worst {
			worst = lat
		}
	}
	return worst
}

// Predict is the one-shot convenience: build the model and solve it.
func Predict(in Input) (Prediction, error) {
	m, err := NewModel(in)
	if err != nil {
		return Prediction{}, err
	}
	return m.Solve()
}
