package core

import (
	"fmt"
	"math"
)

// MaxExpRecursive computes the expected time of the last event among m
// independent exponential random variables with the given rates, using the
// paper's recursion (Eq. 12):
//
//	E[max(S)] = 1/Σμ + Σ_i (μ_i/Σμ)·E[max(S \ {i})]
//
// which follows from the memoryless property and the fact that the minimum
// of independent exponentials is exponential (Eqs. 9-11). Subset results
// are memoized over bitmasks, so the cost is O(2^m · m); rates must number
// at most 30. Non-positive rates panic: they indicate a caller bug (a
// deterministic-zero branch must be filtered out first, see MulticastWait).
func MaxExpRecursive(rates []float64) float64 {
	m := len(rates)
	if m == 0 {
		return 0
	}
	if m > 30 {
		panic(fmt.Sprintf("core: MaxExpRecursive with %d rates", m))
	}
	for _, r := range rates {
		if !(r > 0) {
			panic(fmt.Sprintf("core: non-positive exponential rate %v", r))
		}
	}
	memo := make([]float64, 1<<uint(m))
	for i := range memo {
		memo[i] = -1
	}
	var rec func(mask int) float64
	rec = func(mask int) float64 {
		if mask == 0 {
			return 0
		}
		if memo[mask] >= 0 {
			return memo[mask]
		}
		var sum float64
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				sum += rates[i]
			}
		}
		e := 1 / sum
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				e += rates[i] / sum * rec(mask&^(1<<uint(i)))
			}
		}
		memo[mask] = e
		return e
	}
	return rec((1 << uint(m)) - 1)
}

// MaxExpClosedForm computes the same expectation with the
// inclusion-exclusion identity
//
//	E[max] = Σ_{∅≠T⊆S} (−1)^{|T|+1} / Σ_{i∈T} μ_i
//
// It exists as an independent cross-check of the recursion (the two must
// agree to floating-point accuracy; this is property-tested).
func MaxExpClosedForm(rates []float64) float64 {
	m := len(rates)
	if m == 0 {
		return 0
	}
	if m > 30 {
		panic(fmt.Sprintf("core: MaxExpClosedForm with %d rates", m))
	}
	for _, r := range rates {
		if !(r > 0) {
			panic(fmt.Sprintf("core: non-positive exponential rate %v", r))
		}
	}
	var e float64
	for mask := 1; mask < 1<<uint(m); mask++ {
		var sum float64
		bits := 0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				sum += rates[i]
				bits++
			}
		}
		if bits%2 == 1 {
			e += 1 / sum
		} else {
			e -= 1 / sum
		}
	}
	return e
}

// MulticastWait implements Eq. 13: the expected waiting time of the last
// of m independent multicast streams, where waits[c] is the expected total
// header waiting time ΣW along branch c's path. Each wait is mapped to an
// exponential with rate μ_c = 1/ΣW (Eq. 8). Branches with (near-)zero
// expected wait are deterministic at 0 and cannot be the last event unless
// all are zero, so they are filtered before the combination.
func MulticastWait(waits []float64) float64 {
	const eps = 1e-12
	rates := make([]float64, 0, len(waits))
	for _, w := range waits {
		if math.IsInf(w, 1) {
			return math.Inf(1)
		}
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("core: invalid branch wait %v", w))
		}
		if w > eps {
			rates = append(rates, 1/w)
		}
	}
	if len(rates) == 0 {
		return 0
	}
	return MaxExpRecursive(rates)
}
