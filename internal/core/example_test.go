package core_test

import (
	"fmt"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// The one-shot entry point: predict unicast and multicast latency for a
// Quarc configuration.
func ExamplePredict() {
	q, err := topology.NewQuarc(16)
	if err != nil {
		panic(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		panic(err)
	}
	pred, err := core.Predict(core.Input{
		Router: rt,
		Spec:   traffic.Spec{Rate: 0.002, MulticastFrac: 0.05, Set: set},
		MsgLen: 32,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("unicast   %.2f cycles\n", pred.UnicastLatency)
	fmt.Printf("multicast %.2f cycles\n", pred.MulticastLatency)
	fmt.Printf("saturated %v\n", pred.Saturated)
	// Output:
	// unicast   37.66 cycles
	// multicast 38.75 cycles
	// saturated false
}

// The Pollaczek-Khinchine mean waiting time for an M/M/1-like channel
// (σ = x̄) reduces to the textbook ρx̄/(1−ρ).
func ExampleMG1Wait() {
	lambda, xbar := 0.02, 10.0
	w := core.MG1Wait(lambda, xbar, xbar)
	rho := lambda * xbar
	fmt.Printf("W = %.4f (ρx̄/(1-ρ) = %.4f)\n", w, rho*xbar/(1-rho))
	// Output:
	// W = 2.5000 (ρx̄/(1-ρ) = 2.5000)
}

// The expected time of the last of four independent exponential events
// (the paper's Eq. 12): for equal rates it is the harmonic number over
// the rate.
func ExampleMaxExpRecursive() {
	rates := []float64{2, 2, 2, 2}
	e := core.MaxExpRecursive(rates)
	h4 := 1.0 + 1.0/2 + 1.0/3 + 1.0/4
	fmt.Printf("E[max] = %.6f (H_4/μ = %.6f)\n", e, h4/2)
	// Output:
	// E[max] = 1.041667 (H_4/μ = 1.041667)
}

// MulticastWait maps per-branch expected waits to exponential rates and
// combines them (Eqs. 8 and 13). A branch with zero expected wait cannot
// be the last to finish.
func ExampleMulticastWait() {
	fmt.Printf("%.4f\n", core.MulticastWait([]float64{4, 4}))
	fmt.Printf("%.4f\n", core.MulticastWait([]float64{0, 4}))
	// Output:
	// 6.0000
	// 4.0000
}

// Closed-form zero-load analysis: the mean unicast distance of the Quarc
// equals the Spidergon's (the Quarc only changes the port structure), and
// a broadcast is a quadrant-depth pipeline plus the message drain.
func ExampleQuarcMeanDistance() {
	d, err := core.QuarcMeanDistance(16)
	if err != nil {
		panic(err)
	}
	b, err := core.QuarcZeroLoadBroadcastLatency(16, 32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean distance %.4f hops, zero-load broadcast %.0f cycles\n", d, b)
	// Output:
	// mean distance 2.6000 hops, zero-load broadcast 37 cycles
}
