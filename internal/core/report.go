package core

import (
	"fmt"
	"sort"
	"strings"

	"quarc/internal/topology"
)

// ClassStats aggregates the fixed-point quantities of all channels sharing
// one (kind, class) pair — e.g. all rim+ VC0 links, all injection port-L
// channels. Under the paper's symmetric workloads every channel of a class
// carries the same load, so the aggregate is also the per-channel view.
type ClassStats struct {
	Kind  topology.ChannelKind
	Class int
	VC    int
	// Count is the number of channels in the class.
	Count int
	// Lambda, Service, Wait and Rho are per-channel means over the class.
	Lambda  float64
	Service float64
	Wait    float64
	Rho     float64
}

// ClassReport returns the per-class fixed-point table, sorted by kind,
// class, VC. Valid after Solve.
func (m *Model) ClassReport() []ClassStats {
	type key struct {
		kind  topology.ChannelKind
		class int
		vc    int
	}
	acc := map[key]*ClassStats{}
	for i := range m.channels {
		c := m.g.Channel(topology.ChannelID(i))
		k := key{kind: c.Kind, class: c.Class, vc: c.VC}
		st, ok := acc[k]
		if !ok {
			st = &ClassStats{Kind: c.Kind, Class: c.Class, VC: c.VC}
			acc[k] = st
		}
		st.Count++
		st.Lambda += m.channels[i].lambda
		st.Service += m.channels[i].service
		st.Wait += m.channels[i].wait
		st.Rho += m.channels[i].lambda * m.channels[i].service
	}
	out := make([]ClassStats, 0, len(acc))
	for _, st := range acc {
		n := float64(st.Count)
		st.Lambda /= n
		st.Service /= n
		st.Wait /= n
		st.Rho /= n
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].VC < out[j].VC
	})
	return out
}

// FormatClassReport renders the class report as a fixed-width table.
func FormatClassReport(report []ClassStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-3s %-6s %12s %12s %12s %8s\n",
		"kind", "class", "vc", "count", "lambda", "service", "wait", "rho")
	for _, st := range report {
		fmt.Fprintf(&b, "%-6s %-6d %-3d %-6d %12.6g %12.4f %12.4f %8.4f\n",
			st.Kind, st.Class, st.VC, st.Count, st.Lambda, st.Service, st.Wait, st.Rho)
	}
	return b.String()
}
