package core

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

func quarcRouter(t testing.TB, n int) *routing.QuarcRouter {
	t.Helper()
	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewQuarcRouter(q)
}

func TestModelZeroLoadLatencyExact(t *testing.T) {
	rt := quarcRouter(t, 16)
	msg := 16
	in := Input{Router: rt, Spec: traffic.Spec{Rate: 1e-9}, MsgLen: msg}
	m, err := NewModel(in)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Saturated {
		t.Fatal("zero load reported saturated")
	}
	// Expected zero-load latency: mean over pairs of (dist+1) + msg.
	q := rt.Quarc()
	var sum float64
	for r := 1; r < 16; r++ {
		sum += float64(q.DistRel(r) + 1)
	}
	want := sum/15 + float64(msg)
	if math.Abs(pred.UnicastLatency-want) > 1e-3 {
		t.Errorf("zero-load unicast latency = %v, want %v", pred.UnicastLatency, want)
	}
}

func TestModelMonotoneInRate(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, rate := range []float64{0.0005, 0.001, 0.002, 0.004} {
		pred, err := Predict(Input{
			Router: rt,
			Spec:   traffic.Spec{Rate: rate, MulticastFrac: 0.05, Set: set},
			MsgLen: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pred.Saturated {
			t.Fatalf("rate %v unexpectedly saturated (maxRho=%v)", rate, pred.MaxRho)
		}
		if pred.UnicastLatency <= prev {
			t.Errorf("latency not increasing in rate: %v after %v", pred.UnicastLatency, prev)
		}
		if pred.MulticastLatency < pred.UnicastLatency {
			t.Errorf("rate %v: multicast latency %v below unicast %v — the multicast must "+
				"wait for its slowest branch", rate, pred.MulticastLatency, pred.UnicastLatency)
		}
		prev = pred.UnicastLatency
	}
}

func TestModelSaturatesAtHighRate(t *testing.T) {
	rt := quarcRouter(t, 16)
	pred, err := Predict(Input{Router: rt, Spec: traffic.Spec{Rate: 0.5}, MsgLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Saturated {
		t.Fatalf("rate 0.5 not saturated (maxRho=%v)", pred.MaxRho)
	}
	if !math.IsInf(pred.UnicastLatency, 1) {
		t.Errorf("saturated latency = %v, want +Inf", pred.UnicastLatency)
	}
}

func TestModelChannelRatesConservation(t *testing.T) {
	// Total ejection-channel arrival rate must equal the total delivery
	// rate: N·λ·(1−α) unicasts plus N·λ·α multicast branch endpoints.
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortCL, 2)
	if err != nil {
		t.Fatal(err)
	}
	lam, alpha := 0.002, 0.1
	m, err := NewModel(Input{
		Router: rt,
		Spec:   traffic.Spec{Rate: lam, MulticastFrac: alpha, Set: set},
		MsgLen: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	var eject float64
	for _, c := range g.Channels() {
		if c.Kind == topology.Ejection {
			eject += m.Lambda(c.ID)
		}
	}
	branches, err := rt.MulticastBranches(0, set)
	if err != nil {
		t.Fatal(err)
	}
	want := 16 * lam * ((1 - alpha) + alpha*float64(len(branches)))
	if math.Abs(eject-want) > 1e-12 {
		t.Errorf("total ejection rate = %v, want %v", eject, want)
	}
}

func TestModelVertexSymmetry(t *testing.T) {
	// Under uniform traffic with a relative multicast set, all injection
	// channels of the same port must carry identical rates.
	rt := quarcRouter(t, 32)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(Input{
		Router: rt,
		Spec:   traffic.Spec{Rate: 0.001, MulticastFrac: 0.05, Set: set},
		MsgLen: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	for port := 0; port < topology.QuarcPorts; port++ {
		ref := m.Lambda(g.Injection(0, port))
		for node := 1; node < 32; node++ {
			got := m.Lambda(g.Injection(topology.NodeID(node), port))
			if math.Abs(got-ref) > 1e-15 {
				t.Fatalf("injection rate at node %d port %d = %v, node 0 has %v",
					node, port, got, ref)
			}
		}
	}
}

func TestModelInputValidation(t *testing.T) {
	rt := quarcRouter(t, 16)
	if _, err := NewModel(Input{Router: nil, Spec: traffic.Spec{Rate: 0.001}, MsgLen: 16}); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: -1}, MsgLen: 16}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 0.001}, MsgLen: 1}); err == nil {
		t.Error("msgLen 1 accepted")
	}
	if _, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 0.001, MulticastFrac: 0.5}, MsgLen: 16}); err == nil {
		t.Error("multicast without destination set accepted")
	}
	if _, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 0.001}, MsgLen: 16, Damping: 1.5}); err == nil {
		t.Error("damping > 1 accepted")
	}
}

func TestModelNoMulticastGivesNaN(t *testing.T) {
	rt := quarcRouter(t, 16)
	pred, err := Predict(Input{Router: rt, Spec: traffic.Spec{Rate: 0.001}, MsgLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(pred.MulticastLatency) {
		t.Errorf("multicast latency without multicast traffic = %v, want NaN", pred.MulticastLatency)
	}
}

func TestModelSolveIdempotent(t *testing.T) {
	rt := quarcRouter(t, 16)
	m, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 0.002}, MsgLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// MulticastLatency is NaN here (no multicast traffic), so compare
	// fields individually.
	if a.UnicastLatency != b.UnicastLatency || a.MaxRho != b.MaxRho ||
		a.Iterations != b.Iterations || a.Saturated != b.Saturated ||
		math.IsNaN(a.MulticastLatency) != math.IsNaN(b.MulticastLatency) {
		t.Fatalf("Solve not idempotent: %+v vs %+v", a, b)
	}
}

func TestModelBroadcastLatencyDominatesUnicast(t *testing.T) {
	rt := quarcRouter(t, 32)
	pred, err := Predict(Input{
		Router: rt,
		Spec:   traffic.Spec{Rate: 0.001, MulticastFrac: 0.05, Set: rt.BroadcastSet()},
		MsgLen: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Saturated {
		t.Fatal("unexpected saturation")
	}
	// A broadcast waits for the slowest of four full-quadrant branches, so
	// it must exceed the average unicast latency.
	if pred.MulticastLatency <= pred.UnicastLatency {
		t.Errorf("broadcast latency %v <= unicast %v", pred.MulticastLatency, pred.UnicastLatency)
	}
}

func TestModelLargerMessagesRaiseLatency(t *testing.T) {
	rt := quarcRouter(t, 16)
	var prev float64
	for _, msg := range []int{16, 32, 48, 64} {
		pred, err := Predict(Input{Router: rt, Spec: traffic.Spec{Rate: 0.0005}, MsgLen: msg})
		if err != nil {
			t.Fatal(err)
		}
		if pred.UnicastLatency <= prev {
			t.Errorf("msg=%d latency %v not above previous %v", msg, pred.UnicastLatency, prev)
		}
		prev = pred.UnicastLatency
	}
}
