package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMaxExpSingle(t *testing.T) {
	// One exponential: E[max] = 1/μ.
	for _, mu := range []float64{0.1, 1, 5, 100} {
		if got, want := MaxExpRecursive([]float64{mu}), 1/mu; math.Abs(got-want) > 1e-12 {
			t.Errorf("E[max{Exp(%v)}] = %v, want %v", mu, got, want)
		}
	}
}

func TestMaxExpEmpty(t *testing.T) {
	if MaxExpRecursive(nil) != 0 || MaxExpClosedForm(nil) != 0 {
		t.Fatal("empty set must have zero expected max")
	}
}

func TestMaxExpTwoEqualRates(t *testing.T) {
	// For m iid Exp(μ), E[max] = H_m/μ. For m=2: 1.5/μ.
	if got := MaxExpRecursive([]float64{2, 2}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("E[max of 2 iid Exp(2)] = %v, want 0.75", got)
	}
}

func TestMaxExpEqualRatesHarmonic(t *testing.T) {
	// H_m/μ for m equal rates — the classic order-statistics result.
	mu := 3.0
	for m := 1; m <= 8; m++ {
		rates := make([]float64, m)
		h := 0.0
		for i := range rates {
			rates[i] = mu
			h += 1 / float64(i+1)
		}
		want := h / mu
		if got := MaxExpRecursive(rates); math.Abs(got-want) > 1e-10 {
			t.Errorf("m=%d: E[max] = %v, want H_m/μ = %v", m, got, want)
		}
	}
}

func TestMaxExpTwoRatesClosedForm(t *testing.T) {
	// E[max{Exp(a),Exp(b)}] = 1/a + 1/b − 1/(a+b) (Eq. 11 expanded).
	a, b := 0.7, 2.3
	want := 1/a + 1/b - 1/(a+b)
	if got := MaxExpRecursive([]float64{a, b}); math.Abs(got-want) > 1e-12 {
		t.Errorf("recursive = %v, want %v", got, want)
	}
	if got := MaxExpClosedForm([]float64{a, b}); math.Abs(got-want) > 1e-12 {
		t.Errorf("closed form = %v, want %v", got, want)
	}
}

// Property: the paper's recursion (Eq. 12) and the inclusion-exclusion
// closed form agree for arbitrary positive rates.
func TestMaxExpRecursiveMatchesClosedForm(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m := int(mRaw)%8 + 1
		rates := make([]float64, m)
		for i := range rates {
			rates[i] = math.Exp(rng.Float64()*8 - 4) // 0.018 .. 54
		}
		a := MaxExpRecursive(rates)
		b := MaxExpClosedForm(rates)
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: E[max] is at least the largest individual mean and at most the
// sum of the means.
func TestMaxExpBounds(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		m := int(mRaw)%6 + 1
		rates := make([]float64, m)
		largestMean, sumMeans := 0.0, 0.0
		for i := range rates {
			rates[i] = math.Exp(rng.Float64()*6 - 3)
			mean := 1 / rates[i]
			sumMeans += mean
			if mean > largestMean {
				largestMean = mean
			}
		}
		e := MaxExpRecursive(rates)
		return e >= largestMean-1e-12 && e <= sumMeans+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a stream never decreases the expected max.
func TestMaxExpMonotoneInStreams(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		m := rng.IntN(5) + 1
		rates := make([]float64, m)
		for i := range rates {
			rates[i] = math.Exp(rng.Float64()*4 - 2)
		}
		base := MaxExpRecursive(rates)
		more := MaxExpRecursive(append(append([]float64(nil), rates...), math.Exp(rng.Float64()*4-2)))
		return more >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Monte-Carlo check: the analytical expectation matches simulation of
// actual exponential maxima.
func TestMaxExpMatchesMonteCarlo(t *testing.T) {
	rates := []float64{0.5, 1.0, 2.0, 4.0}
	want := MaxExpRecursive(rates)
	rng := rand.New(rand.NewPCG(11, 13))
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		mx := 0.0
		for _, mu := range rates {
			if x := rng.ExpFloat64() / mu; x > mx {
				mx = x
			}
		}
		sum += mx
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Monte Carlo mean %v differs from analytical %v by >2%%", got, want)
	}
}

func TestMaxExpPanicsOnNonPositiveRate(t *testing.T) {
	for _, rates := range [][]float64{{0}, {-1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rates %v did not panic", rates)
				}
			}()
			MaxExpRecursive(rates)
		}()
	}
}

func TestMulticastWaitFiltersZeroBranches(t *testing.T) {
	// A branch with zero expected wait is deterministic at 0 and cannot be
	// the last event; only the positive-wait branches matter.
	w := MulticastWait([]float64{0, 4, 0})
	if w != 4 {
		t.Fatalf("MulticastWait = %v, want 4", w)
	}
	if MulticastWait([]float64{0, 0}) != 0 {
		t.Fatal("all-zero waits must give zero")
	}
	if MulticastWait(nil) != 0 {
		t.Fatal("no branches must give zero")
	}
	if !math.IsInf(MulticastWait([]float64{1, math.Inf(1)}), 1) {
		t.Fatal("infinite branch wait must propagate")
	}
}

func TestMulticastWaitExceedsWorstBranch(t *testing.T) {
	waits := []float64{3, 5, 7, 2}
	w := MulticastWait(waits)
	if w < 7 {
		t.Fatalf("expected max %v below the worst branch mean 7", w)
	}
	if w > 3+5+7+2 {
		t.Fatalf("expected max %v above the sum of means", w)
	}
}

func TestMG1WaitKnownValues(t *testing.T) {
	// M/M/1: σ = x̄ ⇒ E[x²] = 2x̄² ⇒ W = λ·2x̄²/(2(1−ρ)) = ρx̄/(1−ρ).
	lambda, xbar := 0.05, 10.0
	rho := lambda * xbar
	want := rho * xbar / (1 - rho)
	if got := MG1Wait(lambda, xbar, xbar); math.Abs(got-want) > 1e-12 {
		t.Errorf("M/M/1 wait = %v, want %v", got, want)
	}
	// M/D/1: σ = 0 ⇒ W = ρx̄/(2(1−ρ)), half the M/M/1 wait.
	if got := MG1Wait(lambda, xbar, 0); math.Abs(got-want/2) > 1e-12 {
		t.Errorf("M/D/1 wait = %v, want %v", got, want/2)
	}
}

func TestMG1WaitEdges(t *testing.T) {
	if MG1Wait(0, 10, 0) != 0 {
		t.Error("zero arrival rate must give zero wait")
	}
	if !math.IsInf(MG1Wait(0.2, 10, 0), 1) {
		t.Error("ρ >= 1 must give infinite wait")
	}
	if !math.IsInf(MG1Wait(0.1, 10, 0), 1) {
		t.Error("ρ == 1 must give infinite wait")
	}
}

func TestMG1WaitPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative λ did not panic")
		}
	}()
	MG1Wait(-1, 1, 0)
}

func TestServiceSigma(t *testing.T) {
	if got := ServiceSigma(20, 16); got != 4 {
		t.Errorf("σ = %v, want 4", got)
	}
	// Holding time can never be below msg at the fixed point, but guard
	// transient undershoot anyway.
	if got := ServiceSigma(10, 16); got != 0 {
		t.Errorf("σ clamp = %v, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(0.01, 20); got != 0.2 {
		t.Errorf("ρ = %v, want 0.2", got)
	}
}
