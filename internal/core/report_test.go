package core

import (
	"math"
	"strings"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

func TestClassReportStructure(t *testing.T) {
	rt := quarcRouter(t, 16)
	m, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 0.002}, MsgLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	report := m.ClassReport()
	// Quarc classes: 4 injection ports + 4 ejection ports + rim+/rim- x 2
	// VCs + 2 cross = 14 classes.
	if len(report) != 14 {
		t.Fatalf("classes = %d, want 14", len(report))
	}
	var total int
	for _, st := range report {
		total += st.Count
		if st.Rho < 0 || st.Rho >= 1 {
			t.Errorf("class %v rho = %v out of range", st, st.Rho)
		}
		if st.Kind == topology.Ejection && math.Abs(st.Service-16) > 1e-9 {
			t.Errorf("ejection service = %v, want msg=16", st.Service)
		}
	}
	if total != rt.Graph().NumChannels() {
		t.Fatalf("report covers %d channels, want %d", total, rt.Graph().NumChannels())
	}
	txt := FormatClassReport(report)
	if !strings.Contains(txt, "lambda") || !strings.Contains(txt, "inj") {
		t.Errorf("report text incomplete:\n%s", txt)
	}
}

func TestClassReportSymmetricLoads(t *testing.T) {
	// Under uniform traffic the four injection-port classes carry equal
	// unicast load only if the quadrants were equal; the CR quadrant has
	// one fewer node, so its injection rate must be strictly smallest.
	rt := quarcRouter(t, 16)
	m, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 0.002}, MsgLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	var inj [4]float64
	for _, st := range m.ClassReport() {
		if st.Kind == topology.Injection {
			inj[st.Class] = st.Lambda
		}
	}
	if !(inj[topology.PortCR] < inj[topology.PortL]) {
		t.Errorf("CR injection rate %v not below L %v (CR quadrant has N/4-1 nodes)",
			inj[topology.PortCR], inj[topology.PortL])
	}
	if inj[topology.PortL] != inj[topology.PortR] || inj[topology.PortL] != inj[topology.PortCL] {
		t.Errorf("L/R/CL injection rates differ: %v", inj)
	}
}

func TestTailReleaseServiceFormula(t *testing.T) {
	rt := quarcRouter(t, 16)
	spec := traffic.Spec{Rate: 0.004}
	eq6, err := Predict(Input{Router: rt, Spec: spec, MsgLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := Predict(Input{Router: rt, Spec: spec, MsgLen: 32, ServiceFormula: TailRelease})
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 6 holds channels for an extra cycle per downstream hop, so it
	// must predict strictly higher utilization and latency.
	if !(eq6.MaxRho > tail.MaxRho) {
		t.Errorf("Eq.6 rho %v not above tail-release rho %v", eq6.MaxRho, tail.MaxRho)
	}
	if !(eq6.UnicastLatency > tail.UnicastLatency) {
		t.Errorf("Eq.6 latency %v not above tail-release %v", eq6.UnicastLatency, tail.UnicastLatency)
	}
	// At zero load both reduce to the same exact latency.
	z1, err := Predict(Input{Router: rt, Spec: traffic.Spec{Rate: 1e-9}, MsgLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	z2, err := Predict(Input{Router: rt, Spec: traffic.Spec{Rate: 1e-9}, MsgLen: 32, ServiceFormula: TailRelease})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z1.UnicastLatency-z2.UnicastLatency) > 1e-6 {
		t.Errorf("zero-load latencies differ: %v vs %v", z1.UnicastLatency, z2.UnicastLatency)
	}
}

func TestTailReleaseZeroLoadServiceIsMsg(t *testing.T) {
	rt := quarcRouter(t, 16)
	m, err := NewModel(Input{Router: rt, Spec: traffic.Spec{Rate: 1e-12}, MsgLen: 24, ServiceFormula: TailRelease})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	for _, st := range m.ClassReport() {
		if st.Lambda == 0 {
			continue
		}
		if math.Abs(st.Service-24) > 1e-6 {
			t.Errorf("class %v: zero-load tail-release service %v, want msg=24", st, st.Service)
		}
	}
}

// TestOnePortSerializedZeroLoadExact pins the serialized multicast
// extension at zero load: the k-th of m broadcast branches completes at
// (k-1)·msg + msg + D exactly.
func TestOnePortSerializedZeroLoadExact(t *testing.T) {
	q, err := topology.NewQuarcOnePort(16)
	if err != nil {
		t.Fatal(err)
	}
	rtOne := routing.NewQuarcRouter(q)
	pred, err := Predict(Input{
		Router: rtOne,
		Spec:   traffic.Spec{Rate: 1e-12, MulticastFrac: 0.5, Set: rtOne.BroadcastSet()},
		MsgLen: 32,
		// TailRelease makes the injection holding exactly msg at zero
		// load, so the serialized prediction is exact.
		ServiceFormula: TailRelease,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 branches, D = N/4 + 1 = 5, msg = 32: last branch starts after
	// 3 x 32 cycles of injection holding: 96 + 32 + 5 = 133.
	if math.Abs(pred.MulticastLatency-133) > 1e-3 {
		t.Errorf("serialized zero-load broadcast latency = %v, want 133", pred.MulticastLatency)
	}
}
