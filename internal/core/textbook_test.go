package core

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// pairNetwork builds the smallest possible wormhole network: two nodes
// connected by one link in each direction, routed by a TableRouter. On
// this network the model's recurrences collapse to textbook M/G/1
// formulas that can be checked by hand, and the simulator can be compared
// against both.
func pairNetwork(t *testing.T) *routing.TableRouter {
	t.Helper()
	g := topology.NewGraph("pair", 2, 1)
	inj0 := g.AddInjection(0, 0)
	inj1 := g.AddInjection(1, 0)
	ej0 := g.AddEjection(0, 0)
	ej1 := g.AddEjection(1, 0)
	l01 := g.AddLink(0, 1, 0, 0)
	l10 := g.AddLink(1, 0, 0, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rt := routing.NewTableRouter(g)
	if err := rt.SetPath(0, 1, routing.Path{inj0, l01, ej1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetPath(1, 0, routing.Path{inj1, l10, ej0}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Complete(); err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestPairNetworkHandComputation pins the model to a full hand
// derivation. With the tail-release service formula every channel's
// holding time is exactly msg at any load on this network (there is no
// downstream contention: each channel has a single successor fed only by
// itself, so the exclude-own-traffic scaling zeroes the downstream wait).
// Hence every channel is an M/G/1 queue with deterministic-like service
// x̄ = msg, σ = 0: W = λ·msg²/(2(1-λ·msg)), non-zero only at the
// injection channel (link and ejection see only their own flow).
func TestPairNetworkHandComputation(t *testing.T) {
	rt := pairNetwork(t)
	msg := 20.0
	lambda := 0.01
	m, err := NewModel(Input{
		Router:         rt,
		Spec:           traffic.Spec{Rate: lambda},
		MsgLen:         int(msg),
		ServiceFormula: TailRelease,
	})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Saturated {
		t.Fatal("unexpected saturation")
	}

	g := rt.Graph()
	// Services: all msg.
	for _, id := range []topology.ChannelID{g.Injection(0, 0), g.LinkFrom(0, 0, 0), g.Ejection(1, 0)} {
		if got := m.Service(id); math.Abs(got-msg) > 1e-9 {
			t.Errorf("channel %v service = %v, want %v", g.Channel(id), got, msg)
		}
	}
	// Hand P-K wait at the injection channel.
	wantW := lambda * msg * msg / (2 * (1 - lambda*msg))
	if got := m.Wait(g.Injection(0, 0)); math.Abs(got-wantW) > 1e-9 {
		t.Errorf("injection wait = %v, want %v", got, wantW)
	}
	// Path latency: W_inj + msg + depth (the link and ejection waits are
	// fully excluded by the own-traffic scaling).
	wantL := wantW + msg + 2
	if math.Abs(pred.UnicastLatency-wantL) > 1e-9 {
		t.Errorf("unicast latency = %v, want %v", pred.UnicastLatency, wantL)
	}
}

// TestPairNetworkModelVsSim compares model and simulator on the pair
// network across a load sweep. The simulated arrival process at the
// injection channel is exactly Poisson (no network filtering), so this
// isolates the M/G/1 approximation itself.
func TestPairNetworkModelVsSim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	rt := pairNetwork(t)
	const msg = 20
	for _, rate := range []float64{0.005, 0.01, 0.02, 0.03} {
		pred, err := Predict(Input{
			Router:         rt,
			Spec:           traffic.Spec{Rate: rate},
			MsgLen:         msg,
			ServiceFormula: TailRelease,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: rate}, 77)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
			MsgLen: msg, Warmup: 5000, Measure: 200000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run()
		if res.Saturated || pred.Saturated {
			t.Fatalf("rate %v saturated unexpectedly", rate)
		}
		if e := math.Abs(pred.UnicastLatency-res.Unicast.Mean()) / res.Unicast.Mean(); e > 0.02 {
			t.Errorf("rate %v: model %v vs sim %v (err %.4f > 2%%)",
				rate, pred.UnicastLatency, res.Unicast.Mean(), e)
		}
	}
}

func TestTableRouterValidation(t *testing.T) {
	g := topology.NewGraph("pair", 2, 1)
	inj0 := g.AddInjection(0, 0)
	g.AddInjection(1, 0)
	ej0 := g.AddEjection(0, 0)
	ej1 := g.AddEjection(1, 0)
	l01 := g.AddLink(0, 1, 0, 0)
	l10 := g.AddLink(1, 0, 0, 0)
	rt := routing.NewTableRouter(g)

	if err := rt.SetPath(0, 0, routing.Path{inj0, ej0}); err == nil {
		t.Error("self path accepted")
	}
	if err := rt.SetPath(0, 1, routing.Path{inj0}); err == nil {
		t.Error("short path accepted")
	}
	if err := rt.SetPath(0, 1, routing.Path{ej0, l01, ej1}); err == nil {
		t.Error("path not starting with injection accepted")
	}
	if err := rt.SetPath(0, 1, routing.Path{inj0, l10, ej1}); err == nil {
		t.Error("physically broken path accepted")
	}
	if err := rt.SetPath(0, 1, routing.Path{inj0, l01, ej0}); err == nil {
		t.Error("path ending at wrong node accepted")
	}
	if err := rt.Complete(); err == nil {
		t.Error("incomplete table reported complete")
	}
	if _, err := rt.UnicastPath(0, 1); err == nil {
		t.Error("missing path did not error")
	}
	if err := rt.SetPath(0, 1, routing.Path{inj0, l01, ej1}); err != nil {
		t.Fatal(err)
	}
	if port, err := rt.UnicastPort(0, 1); err != nil || port != 0 {
		t.Errorf("port = %d err = %v", port, err)
	}
}

func TestTableRouterFanoutMulticast(t *testing.T) {
	rt := pairNetwork(t)
	set := routing.NewMulticastSet(1).Add(0, 1)
	branches, err := rt.MulticastBranches(0, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 1 || branches[0].Targets[0] != 1 {
		t.Fatalf("branches = %+v", branches)
	}
	if _, err := rt.MulticastBranches(0, routing.NewMulticastSet(2)); err == nil {
		t.Error("wrong port count accepted")
	}
	if _, err := rt.MulticastBranches(0, routing.NewMulticastSet(1).Add(0, 2)); err == nil {
		t.Error("offset wrapping to source accepted")
	}
}
