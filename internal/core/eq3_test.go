package core

import (
	"math"
	"testing"

	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// TestPaperEq3LiteralUnderestimates demonstrates the typo documented in
// DESIGN.md §2: evaluating Eq. 3 exactly as printed (numerator λρ instead
// of the standard λ·x̄²) produces waiting times smaller by a factor ~x̄/λ,
// so the literal formula's latency barely rises with load while the
// standard P-K form — and the simulator — climb steeply.
func TestPaperEq3LiteralUnderestimates(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.Spec{Rate: 0.006, MulticastFrac: 0.05, Set: set}
	std, err := Predict(Input{Router: rt, Spec: spec, MsgLen: 32})
	if err != nil {
		t.Fatal(err)
	}
	lit, err := Predict(Input{Router: rt, Spec: spec, MsgLen: 32, WaitFormula: PaperEq3Literal})
	if err != nil {
		t.Fatal(err)
	}
	if std.Saturated || lit.Saturated {
		t.Fatal("unexpected saturation")
	}
	zeroLoadish := 37.0 // mean depth + msg for this configuration
	stdExcess := std.UnicastLatency - zeroLoadish
	litExcess := lit.UnicastLatency - zeroLoadish
	if !(stdExcess > 5) {
		t.Fatalf("standard P-K queueing excess %v suspiciously small", stdExcess)
	}
	// The literal formula's queueing excess must be at least 10x smaller:
	// it is the standard value scaled by λ/x̄ ≈ 0.006/35.
	if !(litExcess < stdExcess/10) {
		t.Errorf("literal Eq. 3 excess %v not dramatically below standard %v", litExcess, stdExcess)
	}
}

// TestWaitFormulaPointwise pins the two formulas' algebraic relationship:
// paper-literal = standard × λ/x̄.
func TestWaitFormulaPointwise(t *testing.T) {
	lambda, xbar, sigma := 0.004, 40.0, 8.0
	std := MG1Wait(lambda, xbar, sigma)
	lit := MG1WaitPaperEq3(lambda, xbar, sigma)
	want := std * lambda / xbar
	if math.Abs(lit-want) > 1e-12*want {
		t.Fatalf("literal = %v, want standard×λ/x̄ = %v", lit, want)
	}
}

func TestPaperEq3Edges(t *testing.T) {
	if MG1WaitPaperEq3(0, 10, 0) != 0 {
		t.Error("zero arrivals must give zero wait")
	}
	if !math.IsInf(MG1WaitPaperEq3(0.2, 10, 0), 1) {
		t.Error("ρ >= 1 must give infinite wait")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative λ did not panic")
		}
	}()
	MG1WaitPaperEq3(-1, 1, 0)
}
