package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// MemorySink accumulates records in memory. Safe for concurrent
// Append; Records snapshots are safe to read after the producing
// collectors have flushed.
type MemorySink struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Append implements Sink.
func (m *MemorySink) Append(batch []Record) error {
	m.mu.Lock()
	m.recs = append(m.recs, batch...)
	m.mu.Unlock()
	return nil
}

// Records returns the accumulated records (the live slice: do not
// append concurrently with reading it).
func (m *MemorySink) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recs
}

// Len returns the number of accumulated records.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Tee fans batches out to every sink, stopping at the first error.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

// Append implements Sink.
func (t teeSink) Append(batch []Record) error {
	for _, s := range t {
		if err := s.Append(batch); err != nil {
			return err
		}
	}
	return nil
}

// The flat-file sink's WAL-style format: a stream of self-delimiting
// frames, one per Append, each carrying a magic, a record count, the
// fixed-width record payload and a CRC-32 (IEEE) of that payload.
// Appends are atomic at frame granularity — a torn tail frame (crash
// mid-write) fails its CRC and reading stops cleanly at the last
// complete frame, exactly like write-ahead-log recovery.
const (
	frameMagic = "QOB1"
	recordSize = 38 // 1+1+4+4+4+8+8+8 bytes, little-endian
	// maxFrameRecords bounds a frame a reader will believe, so a
	// corrupted count cannot drive a huge allocation.
	maxFrameRecords = 1 << 20
)

func encodeRecord(b []byte, r *Record) {
	b[0] = byte(r.Kind)
	b[1] = 0
	if r.Multicast {
		b[1] = 1
	}
	binary.LittleEndian.PutUint32(b[2:], uint32(r.Node))
	binary.LittleEndian.PutUint32(b[6:], uint32(r.Channel))
	binary.LittleEndian.PutUint32(b[10:], uint32(r.Occupancy))
	binary.LittleEndian.PutUint64(b[14:], uint64(r.Msg))
	binary.LittleEndian.PutUint64(b[22:], math.Float64bits(r.Time))
	binary.LittleEndian.PutUint64(b[30:], math.Float64bits(r.Latency))
}

func decodeRecord(b []byte) Record {
	return Record{
		Kind:      Kind(b[0]),
		Multicast: b[1] != 0,
		Node:      int32(binary.LittleEndian.Uint32(b[2:])),
		Channel:   int32(binary.LittleEndian.Uint32(b[6:])),
		Occupancy: int32(binary.LittleEndian.Uint32(b[10:])),
		Msg:       int64(binary.LittleEndian.Uint64(b[14:])),
		Time:      math.Float64frombits(binary.LittleEndian.Uint64(b[22:])),
		Latency:   math.Float64frombits(binary.LittleEndian.Uint64(b[30:])),
	}
}

// FileSink appends record frames to a flat file in the WAL-style
// format above. Safe for concurrent Append (frames from different
// collectors interleave at frame granularity); Close flushes and
// closes the file.
type FileSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File
	buf []byte
}

// CreateFileSink creates (truncating) the file at path.
func CreateFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{w: bufio.NewWriter(f), f: f}, nil
}

// Append implements Sink: one frame per call.
func (s *FileSink) Append(batch []Record) error {
	if len(batch) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	need := len(batch) * recordSize
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	payload := s.buf[:need]
	for i := range batch {
		encodeRecord(payload[i*recordSize:], &batch[i])
	}
	var head [12]byte
	copy(head[:4], frameMagic)
	binary.LittleEndian.PutUint32(head[4:], uint32(len(batch)))
	binary.LittleEndian.PutUint32(head[8:], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(head[:]); err != nil {
		return err
	}
	_, err := s.w.Write(payload)
	return err
}

// Close flushes buffered frames and closes the file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile decodes a FileSink file. A torn tail frame (short read or
// CRC mismatch at the end of the file) is tolerated — the records of
// the complete frames before it are returned, as in WAL recovery — but
// corruption before the tail is an error.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var recs []Record
	for {
		var head [12]byte
		if _, err := io.ReadFull(br, head[:]); err == io.EOF {
			return recs, nil
		} else if err != nil {
			return recs, nil // torn tail header
		}
		if string(head[:4]) != frameMagic {
			return nil, fmt.Errorf("obs: %s: bad frame magic at record %d", path, len(recs))
		}
		n := binary.LittleEndian.Uint32(head[4:])
		if n == 0 || n > maxFrameRecords {
			return nil, fmt.Errorf("obs: %s: frame record count %d out of range", path, n)
		}
		payload := make([]byte, int(n)*recordSize)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, nil // torn tail payload
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(head[8:]) {
			// A checksum failure at the very end is a torn tail; anywhere
			// else the file is corrupt.
			if _, err := br.Peek(1); err == io.EOF {
				return recs, nil
			}
			return nil, fmt.Errorf("obs: %s: frame checksum mismatch at record %d", path, len(recs))
		}
		for i := 0; i < int(n); i++ {
			recs = append(recs, decodeRecord(payload[i*recordSize:]))
		}
	}
}
