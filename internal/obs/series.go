package obs

// Series is the bucketed time-series view of one recorded run: the
// measurement the quarcd dashboard plots and Result.Series carries.
// The run's [0, end) span is divided into Buckets equal buckets of
// BucketWidth cycles; every per-bucket slice has length Buckets.
//
// All values are finite by construction (sums and counts instead of
// means), so the struct marshals to plain JSON without NaN special
// cases.
type Series struct {
	// BucketWidth is the width of one bucket in cycles.
	BucketWidth float64 `json:"bucket_width"`
	// Buckets is the number of buckets.
	Buckets int `json:"buckets"`
	// Channels is the channel count of the recorded network.
	Channels int `json:"channels"`
	// Reps counts the replications combined into this series (1 for a
	// single run).
	Reps int `json:"reps"`
	// ChannelUtil[ch][b] is channel ch's utilization within bucket b,
	// in [0,1] (averaged across replications).
	ChannelUtil [][]float64 `json:"channel_util"`
	// Injected and Ejected count messages injected/completed per bucket.
	Injected []int64 `json:"injected"`
	Ejected  []int64 `json:"ejected"`
	// LatencySum/LatencyCount accumulate unicast end-to-end latencies
	// by completion bucket; mean latency in bucket b is
	// LatencySum[b]/LatencyCount[b] when the count is nonzero.
	LatencySum   []float64 `json:"latency_sum"`
	LatencyCount []int64   `json:"latency_count"`
	// MulticastLatencySum/MulticastLatencyCount are the multicast
	// counterparts.
	MulticastLatencySum   []float64 `json:"mc_latency_sum"`
	MulticastLatencyCount []int64   `json:"mc_latency_count"`
	// QueueMax[b] is the largest channel wait-queue occupancy observed
	// in bucket b (max across replications).
	QueueMax []int `json:"queue_max"`
}

// Aggregate folds a run's records (in emission order) into a Series of
// buckets equal buckets spanning [0, end). channels is the network's
// channel count; end is the run's final simulated time. Grant/release
// pairs become per-bucket busy time (a hold still open at end is
// clamped there, matching the simulator's end-of-run accounting);
// ejections become per-bucket latency sums.
func Aggregate(records []Record, channels, buckets int, end float64) *Series {
	if buckets <= 0 {
		buckets = 1
	}
	if end <= 0 {
		end = 1
	}
	s := &Series{
		BucketWidth:           end / float64(buckets),
		Buckets:               buckets,
		Channels:              channels,
		Reps:                  1,
		ChannelUtil:           make([][]float64, channels),
		Injected:              make([]int64, buckets),
		Ejected:               make([]int64, buckets),
		LatencySum:            make([]float64, buckets),
		LatencyCount:          make([]int64, buckets),
		MulticastLatencySum:   make([]float64, buckets),
		MulticastLatencyCount: make([]int64, buckets),
		QueueMax:              make([]int, buckets),
	}
	for ch := range s.ChannelUtil {
		s.ChannelUtil[ch] = make([]float64, buckets)
	}
	bucket := func(t float64) int {
		b := int(t / s.BucketWidth)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		return b
	}
	// open[ch] is the grant time of the channel's current hold, or -1.
	open := make([]float64, channels)
	for i := range open {
		open[i] = -1
	}
	addSpan := func(ch int, lo, hi float64) {
		if hi > end {
			hi = end
		}
		if hi <= lo {
			return
		}
		util := s.ChannelUtil[ch]
		for b := bucket(lo); b <= bucket(hi); b++ {
			blo, bhi := float64(b)*s.BucketWidth, float64(b+1)*s.BucketWidth
			if blo < lo {
				blo = lo
			}
			if bhi > hi {
				bhi = hi
			}
			if bhi > blo {
				util[b] += (bhi - blo) / s.BucketWidth
			}
		}
	}
	for i := range records {
		r := &records[i]
		switch r.Kind {
		case KindInjected:
			s.Injected[bucket(r.Time)]++
		case KindEjected:
			b := bucket(r.Time)
			s.Ejected[b]++
			if r.Multicast {
				s.MulticastLatencySum[b] += r.Latency
				s.MulticastLatencyCount[b]++
			} else {
				s.LatencySum[b] += r.Latency
				s.LatencyCount[b]++
			}
		case KindGranted:
			if int(r.Channel) >= 0 && int(r.Channel) < channels {
				open[r.Channel] = r.Time
			}
		case KindReleased:
			if ch := int(r.Channel); ch >= 0 && ch < channels && open[ch] >= 0 {
				addSpan(ch, open[ch], r.Time)
				open[ch] = -1
			}
		case KindQueue:
			if b := bucket(r.Time); int(r.Occupancy) > s.QueueMax[b] {
				s.QueueMax[b] = int(r.Occupancy)
			}
		}
	}
	// Holds still open at the end of the run occupy their channel
	// through end, exactly as the simulator's finish() accounts them.
	for ch, lo := range open {
		if lo >= 0 {
			addSpan(ch, lo, end)
		}
	}
	return s
}

// Combine folds per-replication series into one, in list order (so the
// aggregate is independent of replication scheduling): counts and sums
// add, utilizations average, queue maxima take the worst replication.
// Every series must share the same (Buckets, Channels) shape; bucket b
// of each replication is the same fraction of that replication's run,
// so BucketWidth is the replications' mean width. Returns nil for an
// empty list.
func Combine(list []*Series) *Series {
	if len(list) == 0 {
		return nil
	}
	if len(list) == 1 {
		return list[0]
	}
	first := list[0]
	out := Aggregate(nil, first.Channels, first.Buckets, 1)
	out.BucketWidth = 0
	out.Reps = 0
	for _, s := range list {
		if s == nil || s.Buckets != first.Buckets || s.Channels != first.Channels {
			continue
		}
		out.Reps += s.Reps
		out.BucketWidth += s.BucketWidth * float64(s.Reps)
		for b := 0; b < first.Buckets; b++ {
			out.Injected[b] += s.Injected[b]
			out.Ejected[b] += s.Ejected[b]
			out.LatencySum[b] += s.LatencySum[b]
			out.LatencyCount[b] += s.LatencyCount[b]
			out.MulticastLatencySum[b] += s.MulticastLatencySum[b]
			out.MulticastLatencyCount[b] += s.MulticastLatencyCount[b]
			if s.QueueMax[b] > out.QueueMax[b] {
				out.QueueMax[b] = s.QueueMax[b]
			}
		}
		for ch := 0; ch < first.Channels; ch++ {
			src, dst := s.ChannelUtil[ch], out.ChannelUtil[ch]
			w := float64(s.Reps)
			for b := range src {
				dst[b] += src[b] * w
			}
		}
	}
	if out.Reps > 0 {
		out.BucketWidth /= float64(out.Reps)
		inv := 1 / float64(out.Reps)
		for ch := range out.ChannelUtil {
			for b := range out.ChannelUtil[ch] {
				out.ChannelUtil[ch][b] *= inv
			}
		}
	}
	return out
}
