package obs

import (
	"math"
	"testing"
)

// TestAggregateHandCheck folds a tiny hand-written record stream and
// checks every series column against arithmetic done by hand.
func TestAggregateHandCheck(t *testing.T) {
	// Two channels, run of [0,100), 4 buckets of width 25.
	recs := []Record{
		{Kind: KindInjected, Time: 5, Msg: 1},
		{Kind: KindGranted, Time: 10, Channel: 0, Msg: 1},
		{Kind: KindQueue, Time: 12, Channel: 1, Occupancy: 3},
		{Kind: KindInjected, Time: 30, Msg: 2, Multicast: true},
		// Spans two buckets: [10,40) = 15 cycles in bucket 0, 15 in bucket 1.
		{Kind: KindReleased, Time: 40, Channel: 0, Msg: 1},
		{Kind: KindEjected, Time: 40, Msg: 1, Latency: 35},
		{Kind: KindQueue, Time: 60, Channel: 0, Occupancy: 1},
		{Kind: KindEjected, Time: 80, Msg: 2, Multicast: true, Latency: 50},
		// Granted and never released: clamped at end, [90,100) in bucket 3.
		{Kind: KindGranted, Time: 90, Channel: 1, Msg: 3},
	}
	s := Aggregate(recs, 2, 4, 100)
	if s.BucketWidth != 25 || s.Buckets != 4 || s.Channels != 2 || s.Reps != 1 {
		t.Fatalf("shape = %+v", s)
	}
	wantInj := []int64{1, 1, 0, 0}
	wantEj := []int64{0, 1, 0, 1}
	for b := 0; b < 4; b++ {
		if s.Injected[b] != wantInj[b] || s.Ejected[b] != wantEj[b] {
			t.Errorf("bucket %d: injected %d ejected %d, want %d %d",
				b, s.Injected[b], s.Ejected[b], wantInj[b], wantEj[b])
		}
	}
	if s.LatencySum[1] != 35 || s.LatencyCount[1] != 1 {
		t.Errorf("unicast latency bucket 1 = %v/%d, want 35/1", s.LatencySum[1], s.LatencyCount[1])
	}
	if s.MulticastLatencySum[3] != 50 || s.MulticastLatencyCount[3] != 1 {
		t.Errorf("multicast latency bucket 3 = %v/%d, want 50/1", s.MulticastLatencySum[3], s.MulticastLatencyCount[3])
	}
	// Channel 0 held [10,40): 15/25 of bucket 0, 15/25 of bucket 1.
	if got := s.ChannelUtil[0]; math.Abs(got[0]-0.6) > 1e-12 || math.Abs(got[1]-0.6) > 1e-12 || got[2] != 0 || got[3] != 0 {
		t.Errorf("channel 0 util = %v, want [0.6 0.6 0 0]", got)
	}
	// Channel 1's open hold [90,100) clamps at end: 10/25 of bucket 3.
	if got := s.ChannelUtil[1]; got[3] != 0.4 || got[0] != 0 {
		t.Errorf("channel 1 util = %v, want 0.4 in bucket 3 only", got)
	}
	if s.QueueMax[0] != 3 || s.QueueMax[2] != 1 {
		t.Errorf("queue max = %v, want 3 in bucket 0, 1 in bucket 2", s.QueueMax)
	}
}

// TestAggregateFiniteJSON pins the no-NaN property: even a record-free
// aggregation produces only finite values (sums and counts, no means).
func TestAggregateFiniteJSON(t *testing.T) {
	s := Aggregate(nil, 3, 5, 0)
	check := func(name string, xs []float64) {
		for b, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s[%d] = %v, want finite", name, b, x)
			}
		}
	}
	check("latency_sum", s.LatencySum)
	check("mc_latency_sum", s.MulticastLatencySum)
	for ch := range s.ChannelUtil {
		check("channel_util", s.ChannelUtil[ch])
	}
	if math.IsNaN(s.BucketWidth) || math.IsInf(s.BucketWidth, 0) || s.BucketWidth <= 0 {
		t.Errorf("bucket width = %v", s.BucketWidth)
	}
}

// TestCombine pins the replication fold: counts add, utilizations
// average weighted by Reps, queue maxima take the worst replication,
// and the fold is order-independent in its totals.
func TestCombine(t *testing.T) {
	a := Aggregate([]Record{
		{Kind: KindInjected, Time: 1},
		{Kind: KindGranted, Time: 0, Channel: 0},
		{Kind: KindReleased, Time: 10, Channel: 0},
		{Kind: KindQueue, Time: 1, Occupancy: 2},
	}, 1, 2, 10)
	b := Aggregate([]Record{
		{Kind: KindInjected, Time: 6},
		{Kind: KindGranted, Time: 5, Channel: 0},
		{Kind: KindReleased, Time: 10, Channel: 0},
		{Kind: KindQueue, Time: 6, Occupancy: 7},
	}, 1, 2, 10)
	out := Combine([]*Series{a, b})
	if out.Reps != 2 {
		t.Fatalf("reps = %d, want 2", out.Reps)
	}
	if out.Injected[0] != 1 || out.Injected[1] != 1 {
		t.Errorf("injected = %v, want one per bucket", out.Injected)
	}
	// a holds channel 0 for all of both buckets (util 1,1); b for the
	// second only (0,1). Averaged: 0.5, 1.
	if u := out.ChannelUtil[0]; math.Abs(u[0]-0.5) > 1e-12 || math.Abs(u[1]-1) > 1e-12 {
		t.Errorf("combined util = %v, want [0.5 1]", u)
	}
	if out.QueueMax[0] != 2 || out.QueueMax[1] != 7 {
		t.Errorf("combined queue max = %v, want [2 7]", out.QueueMax)
	}

	if got := Combine(nil); got != nil {
		t.Errorf("Combine(nil) = %v, want nil", got)
	}
	if got := Combine([]*Series{a}); got != a {
		t.Error("Combine of one series should return it unchanged")
	}
}
