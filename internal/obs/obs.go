// Package obs is the observability recorder behind the wormhole hook
// API: a batched Collector implementing wormhole.Hook drains typed
// Records through a bounded buffer into a pluggable Sink — in-memory
// for tests and Result enrichment, or a WAL-style append-only flat
// file (stdlib-only, no database/sql) for offline inspection — and an
// aggregation step folds a run's records into the bucketed time Series
// the noc Result and the quarcd /v1/trace endpoint serve.
//
// The collector is single-goroutine (one per network, like the network
// itself); sinks are safe for concurrent Append, so replications
// running under Parallelism(k) can share one sink. Aggregation is a
// pure fold over the record stream in emission order, so a recorded
// run's Series is deterministic.
package obs

import (
	"quarc/internal/wormhole"
)

// Kind classifies a Record; values mirror wormhole.HookPos.
type Kind uint8

const (
	// KindInjected is a message injection (wormhole.HookWormInjected).
	KindInjected Kind = Kind(wormhole.HookWormInjected)
	// KindEjected is a message completion with its end-to-end latency.
	KindEjected Kind = Kind(wormhole.HookWormEjected)
	// KindGranted is a channel grant.
	KindGranted Kind = Kind(wormhole.HookChannelGranted)
	// KindReleased is a channel release at its logical release time.
	KindReleased Kind = Kind(wormhole.HookChannelReleased)
	// KindQueue is a channel wait-queue occupancy change.
	KindQueue Kind = Kind(wormhole.HookQueueChanged)
	// KindPartition is a parallel run's per-partition summary
	// (wormhole.HookPartitionDone): Node carries the partition index and
	// Msg the partition's flit-level-equivalent event count.
	KindPartition Kind = Kind(wormhole.HookPartitionDone)
)

// Record is one recorded hook firing, flattened to plain scalars so it
// encodes to a fixed-width binary frame.
type Record struct {
	// Kind says which hook position produced the record.
	Kind Kind
	// Multicast marks the involved message as a multicast.
	Multicast bool
	// Node is the injecting node (KindInjected; -1 otherwise).
	Node int32
	// Channel is the involved channel (grant/release/queue; -1 otherwise).
	Channel int32
	// Occupancy is the queue length after a KindQueue change.
	Occupancy int32
	// Msg is the id of the involved message.
	Msg int64
	// Time is the simulated time of the underlying micro-event.
	Time float64
	// Latency is the message's end-to-end latency (KindEjected only).
	Latency float64
}

// A Sink receives record batches from collectors. Append must be safe
// for concurrent use: one sink may serve many collectors (e.g. the
// per-replication collectors of a Parallelism(k) run). The batch is
// only valid for the duration of the call; a sink that retains records
// must copy them.
type Sink interface {
	Append(batch []Record) error
}

// DefaultBatch is the collector's buffer size when none is given: big
// enough to amortize sink calls, small enough to stay cache-resident.
const DefaultBatch = 4096

// Collector adapts the wormhole hook API to a Sink: each firing
// becomes one Record in a bounded buffer, flushed to the sink whenever
// it fills and finally by Flush. A collector serves exactly one
// network (it is not safe for concurrent use); attach it with
// Network.Attach. Sink errors are sticky: the first one stops further
// recording and is reported by Flush.
type Collector struct {
	sink  Sink
	batch []Record
	err   error
}

// NewCollector returns a collector batching up to batch records
// (DefaultBatch when batch <= 0) into sink.
func NewCollector(sink Sink, batch int) *Collector {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Collector{sink: sink, batch: make([]Record, 0, batch)}
}

// Func implements wormhole.Hook.
func (c *Collector) Func(h wormhole.HookCtx) {
	if c.err != nil {
		return
	}
	c.batch = append(c.batch, Record{
		Kind:      Kind(h.Pos),
		Multicast: h.Multicast,
		Node:      int32(h.Node),
		Channel:   int32(h.Channel),
		Occupancy: int32(h.Occupancy),
		Msg:       h.Msg,
		Time:      h.Time,
		Latency:   h.Latency,
	})
	if len(c.batch) == cap(c.batch) {
		c.flush()
	}
}

func (c *Collector) flush() {
	if len(c.batch) == 0 {
		return
	}
	if err := c.sink.Append(c.batch); err != nil && c.err == nil {
		c.err = err
	}
	c.batch = c.batch[:0]
}

// Flush drains the remaining buffered records to the sink and returns
// the first sink error encountered over the collector's lifetime.
func (c *Collector) Flush() error {
	if c.err == nil {
		c.flush()
	}
	return c.err
}
