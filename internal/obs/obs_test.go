package obs

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"quarc/internal/wormhole"
)

// hookCtxForTest builds a distinguishable firing; Msg carries i so
// ordering is checkable downstream.
func hookCtxForTest(i int) wormhole.HookCtx {
	return wormhole.HookCtx{
		Pos:  wormhole.HookPos(i % 5),
		Time: float64(i),
		Node: -1,
		Msg:  int64(i),
	}
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Kind:      Kind(i % 5),
			Multicast: i%7 == 0,
			Node:      int32(i % 16),
			Channel:   int32(i % 224),
			Occupancy: int32(i % 3),
			Msg:       int64(i + 1),
			Time:      float64(i) * 1.5,
			Latency:   float64(i%50) + 0.25,
		}
	}
	return recs
}

// TestFileSinkRoundTrip pins the WAL format: what Append writes,
// ReadFile returns bitwise, across multiple frames.
func TestFileSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.obs")
	s, err := CreateFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(1000)
	// Three frames of different sizes, plus an empty append (no frame).
	for _, cut := range [][2]int{{0, 1}, {1, 400}, {400, 400}, {400, 1000}} {
		if err := s.Append(want[cut[0]:cut[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestReadFileTornTail pins WAL recovery: a file truncated mid-frame
// (the crash shape) reads back the complete frames before the tear,
// without error, at every truncation point.
func TestReadFileTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.obs")
	s, err := CreateFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(100)
	if err := s.Append(recs[:60]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(recs[60:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame1 := 12 + 60*recordSize
	for _, cut := range []int{
		frame1 + 5,                 // torn second header
		frame1 + 12,                // second payload entirely missing
		frame1 + 12 + 7*recordSize, // torn second payload
		len(full) - 1,              // one byte short
	} {
		torn := filepath.Join(dir, "torn.obs")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(torn)
		if err != nil {
			t.Errorf("cut at %d: %v", cut, err)
			continue
		}
		if len(got) != 60 {
			t.Errorf("cut at %d: recovered %d records, want the 60 of the complete frame", cut, len(got))
		}
	}
}

// TestReadFileMidCorruption pins the flip side of recovery: corruption
// that is not at the tail (bad magic, bad checksum with data after it,
// absurd record count) is an error, not a silent truncation.
func TestReadFileMidCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.obs")
	s, err := CreateFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(100)
	if err := s.Append(recs[:60]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(recs[60:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), full...)
		mutate(b)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFile(p); err == nil {
			t.Errorf("%s: ReadFile accepted a corrupt file", name)
		}
	}
	corrupt("magic.obs", func(b []byte) { b[0] = 'X' })
	corrupt("count.obs", func(b []byte) { b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff })
	// Flip a payload byte of the FIRST frame: the checksum fails with a
	// complete frame after it, so this is corruption, not a torn tail.
	corrupt("payload.obs", func(b []byte) { b[20] ^= 0xff })
}

// errSink fails every Append.
type errSink struct{ err error }

func (e errSink) Append([]Record) error { return e.err }

// TestCollectorBatchingAndStickyError pins the collector contract:
// records buffer until the batch fills, Flush drains the remainder,
// and a sink error is sticky — recording stops and Flush reports it.
func TestCollectorBatchingAndStickyError(t *testing.T) {
	mem := NewMemorySink()
	c := NewCollector(mem, 8)
	for i := 0; i < 20; i++ {
		c.Func(hookCtxForTest(i))
	}
	if got := mem.Len(); got != 16 {
		t.Errorf("before Flush: sink has %d records, want the two full batches (16)", got)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Len(); got != 20 {
		t.Errorf("after Flush: sink has %d records, want 20", got)
	}
	for i, r := range mem.Records() {
		if r.Msg != int64(i) {
			t.Fatalf("record %d carries Msg %d: batching reordered the stream", i, r.Msg)
		}
	}

	boom := errors.New("disk full")
	cf := NewCollector(errSink{boom}, 4)
	for i := 0; i < 40; i++ {
		cf.Func(hookCtxForTest(i))
	}
	if err := cf.Flush(); !errors.Is(err, boom) {
		t.Errorf("Flush() = %v, want the sink error", err)
	}
	if len(cf.batch) != 0 && cf.err == nil {
		t.Error("collector kept recording after a sink error")
	}
}

// TestSinksConcurrentAppend pins the sink side of the Parallelism(k)
// contract: many collectors appending to one shared sink race-free
// (run under -race) and without losing records.
func TestSinksConcurrentAppend(t *testing.T) {
	const workers, per = 8, 500
	mem := NewMemorySink()
	path := filepath.Join(t.TempDir(), "conc.obs")
	fs, err := CreateFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := Tee(mem, fs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewCollector(sink, 64)
			for i := 0; i < per; i++ {
				c.Func(hookCtxForTest(w*per + i))
			}
			if err := c.Flush(); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Len(); got != workers*per {
		t.Errorf("memory sink has %d records, want %d", got, workers*per)
	}
	onDisk, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != workers*per {
		t.Errorf("file sink has %d records, want %d", len(onDisk), workers*per)
	}
}
