package sim

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		e.At(tm, func(e *Engine) { order = append(order, tm) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func(e *Engine) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := New()
	var seen []float64
	e.At(1, func(e *Engine) { seen = append(seen, e.Now()) })
	e.At(2.5, func(e *Engine) { seen = append(seen, e.Now()) })
	e.RunAll()
	if seen[0] != 1 || seen[1] != 2.5 {
		t.Fatalf("Now() inside events = %v, want [1 2.5]", seen)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	count := 0
	var chain func(e *Engine)
	chain = func(e *Engine) {
		count++
		if count < 5 {
			e.After(1, chain)
		}
	}
	e.At(0, chain)
	end := e.RunAll()
	if count != 5 {
		t.Fatalf("chain fired %d times, want 5", count)
	}
	if end != 4 {
		t.Fatalf("final time = %v, want 4", end)
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	e := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(e *Engine) { fired++ })
	}
	e.Run(5)
	if fired != 5 {
		t.Fatalf("fired %d events by horizon 5, want 5", fired)
	}
	// The remaining events are still pending and fire on a later Run.
	e.Run(100)
	if fired != 10 {
		t.Fatalf("fired %d events total, want 10", fired)
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	e := New()
	e.Run(50)
	if e.Now() != 50 {
		t.Fatalf("idle run should advance clock to horizon, now=%v", e.Now())
	}
	// Scheduling after an idle advance must still work.
	ok := false
	e.At(60, func(e *Engine) { ok = true })
	e.RunAll()
	if !ok {
		t.Fatal("event after idle advance did not fire")
	}
}

// TestRunAdvancesToHorizonWithPendingBeyond is the regression test for the
// measurement-window bug: with a sparse event set whose next event lies
// strictly beyond the horizon, Run used to leave the clock at the last
// fired event, so a caller slicing time into [0,W), [W,W+M) windows got a
// first window that silently ended early.
func TestRunAdvancesToHorizonWithPendingBeyond(t *testing.T) {
	e := New()
	fired := 0
	e.At(3, func(e *Engine) { fired++ })
	e.At(70, func(e *Engine) { fired++ })
	if got := e.Run(10); got != 10 {
		t.Fatalf("Run(10) returned %v, want 10 (pending event at 70 must not hold the clock at 3)", got)
	}
	if e.Now() != 10 || fired != 1 {
		t.Fatalf("after Run(10): now=%v fired=%d, want now=10 fired=1", e.Now(), fired)
	}
	// The second window picks up exactly at the horizon and the deferred
	// event still fires.
	if got := e.Run(100); got != 100 {
		t.Fatalf("Run(100) returned %v, want 100", got)
	}
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
	// An idle engine (nothing pending at all) advances too.
	if got := e.Run(250); got != 250 {
		t.Fatalf("idle Run(250) returned %v, want 250", got)
	}
}

// TestRunBeforeExcludesHorizon pins the exclusive-horizon form: an event
// exactly at the horizon is deferred, the clock still advances, and a
// following inclusive Run fires it — the half-open window recipe.
func TestRunBeforeExcludesHorizon(t *testing.T) {
	e := New()
	var fired []float64
	for _, tm := range []float64{3, 5, 8} {
		tm := tm
		e.At(tm, func(e *Engine) { fired = append(fired, tm) })
	}
	if got := e.RunBefore(5); got != 5 {
		t.Fatalf("RunBefore(5) returned %v, want 5", got)
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("RunBefore(5) fired %v, want only the event at 3", fired)
	}
	e.Run(5)
	if len(fired) != 2 || fired[1] != 5 {
		t.Fatalf("Run(5) after RunBefore(5) fired %v, want the event at 5 exactly once", fired)
	}
}

// TestStopDoesNotAdvanceToHorizon pins the other side of the horizon
// contract: a Stop mid-run means "freeze time here" (the wormhole
// simulator stops at saturation), not "skip to the horizon".
func TestStopDoesNotAdvanceToHorizon(t *testing.T) {
	e := New()
	e.At(4, func(e *Engine) { e.Stop() })
	e.At(6, func(e *Engine) {})
	if got := e.Run(50); got != 4 {
		t.Fatalf("stopped Run(50) returned %v, want 4", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after Stop, want 1", e.Pending())
	}
}

func TestStop(t *testing.T) {
	e := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(e *Engine) {
			fired++
			if fired == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired %d events before Stop, want 3", fired)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d after Stop, want 7", e.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func(e *Engine) {})
	})
	e.RunAll()
}

func TestSchedulingNaNPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling at NaN")
		}
	}()
	e.At(math.NaN(), func(e *Engine) {})
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func(e *Engine) {})
	}
	e.RunAll()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

func TestReset(t *testing.T) {
	e := New()
	fired := 0
	e.At(1, func(e *Engine) { fired++ })
	e.At(2, func(e *Engine) { fired++ })
	e.Run(1)

	e.Reset()
	if e.Now() != 0 || e.Fired() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v fired=%d pending=%d, want all zero",
			e.Now(), e.Fired(), e.Pending())
	}
	// Scheduling at times earlier than the pre-Reset clock must work, and
	// the dropped pending event must not fire.
	fired = 0
	e.At(0.5, func(e *Engine) { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d events after Reset, want 1", fired)
	}
	// A reset engine behaves identically to a fresh one: same tie-break
	// sequence numbering.
	e.Reset()
	var order []int
	for i := 0; i < 5; i++ {
		e.At(1, func(e *Engine) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO after Reset: %v", order)
		}
	}
}

// recordingHandler collects the typed events it dispatches.
type recordingHandler struct {
	kinds []Kind
	args  []int32
	data  []any
	times []float64
}

func (h *recordingHandler) Handle(e *Engine, ev Event) {
	h.kinds = append(h.kinds, ev.Kind)
	h.args = append(h.args, ev.Arg)
	h.data = append(h.data, ev.Data)
	h.times = append(h.times, e.Now())
}

func TestTypedEventsDispatchThroughHandler(t *testing.T) {
	e := New()
	h := &recordingHandler{}
	e.SetHandler(h)
	payload := &recordingHandler{} // any pointer will do
	e.Schedule(2, Event{Kind: 7, Arg: 42})
	e.Schedule(1, Event{Kind: 3, Data: payload})
	e.RunAll()
	if len(h.kinds) != 2 || h.kinds[0] != 3 || h.kinds[1] != 7 {
		t.Fatalf("dispatched kinds %v, want [3 7] in time order", h.kinds)
	}
	if h.args[1] != 42 {
		t.Fatalf("Arg = %d, want 42", h.args[1])
	}
	if h.data[0] != payload {
		t.Fatalf("Data payload not delivered identically")
	}
	if h.times[0] != 1 || h.times[1] != 2 {
		t.Fatalf("dispatch times %v, want [1 2]", h.times)
	}
}

// TestTypedAndFuncEventsInterleaveFIFO checks that the two event flavors
// share one (time, sequence) order: a closure and a typed event at the
// same instant fire in scheduling order.
func TestTypedAndFuncEventsInterleaveFIFO(t *testing.T) {
	e := New()
	var order []int
	h := &recordingHandler{}
	e.SetHandler(h)
	e.Schedule(5, Event{Kind: 1, Arg: 0})
	e.At(5, func(e *Engine) { order = append(order, len(h.kinds)) })
	e.Schedule(5, Event{Kind: 1, Arg: 1})
	e.RunAll()
	// The closure fired after the first typed event and before the second.
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("closure saw %v typed events before it, want exactly 1", order)
	}
	if len(h.kinds) != 2 {
		t.Fatalf("dispatched %d typed events, want 2", len(h.kinds))
	}
}

func TestResetKeepsHandler(t *testing.T) {
	e := New()
	h := &recordingHandler{}
	e.SetHandler(h)
	e.Schedule(1, Event{Kind: 9})
	e.Reset()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Reset, want 0", e.Pending())
	}
	e.Schedule(1, Event{Kind: 4})
	e.RunAll()
	if len(h.kinds) != 1 || h.kinds[0] != 4 {
		t.Fatalf("after Reset dispatched %v, want [4] (handler kept, old event dropped)", h.kinds)
	}
}

func TestTypedEventWithoutHandlerPanics(t *testing.T) {
	e := New()
	e.Schedule(1, Event{Kind: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic firing a typed event without a handler")
		}
	}()
	e.RunAll()
}

// Stress: many random events must fire in nondecreasing time order.
func TestRandomizedOrdering(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewPCG(7, 9))
	last := math.Inf(-1)
	violations := 0
	const n = 10000
	for i := 0; i < n; i++ {
		e.At(rng.Float64()*1000, func(e *Engine) {
			if e.Now() < last {
				violations++
			}
			last = e.Now()
		})
	}
	e.RunAll()
	if violations != 0 {
		t.Fatalf("%d time-order violations", violations)
	}
	if e.Fired() != n {
		t.Fatalf("fired %d, want %d", e.Fired(), n)
	}
}

// TestNextTimePeeks pins the peek contract on both schedulers: NextTime
// reports the earliest pending time without firing, reordering or
// losing anything — the calendar's pop-and-refile must be invisible.
func TestNextTimePeeks(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func() *Engine
	}{{"calendar", New}, {"heap", NewWithHeap}} {
		t.Run(mk.name, func(t *testing.T) {
			e := mk.make()
			if _, ok := e.NextTime(); ok {
				t.Fatal("empty engine reported a pending time")
			}
			var order []int
			rng := rand.New(rand.NewPCG(1, 2))
			id := 0
			for i := 0; i < 200; i++ {
				tm := rng.Float64() * 100
				if i%7 == 0 {
					tm = 50 // same-instant cluster crossing the peek
				}
				k := id
				e.At(tm, func(*Engine) { order = append(order, k) })
				id++
				if nt, ok := e.NextTime(); !ok || nt > tm {
					t.Fatalf("peek %v, ok=%v after scheduling at %v", nt, ok, tm)
				}
			}
			// Interleave peeks with firing: each peek must match the time
			// the next fired event runs at, and must not advance the clock.
			reference := mk.make()
			var want []int
			rng2 := rand.New(rand.NewPCG(1, 2))
			id = 0
			for i := 0; i < 200; i++ {
				tm := rng2.Float64() * 100
				if i%7 == 0 {
					tm = 50
				}
				k := id
				reference.At(tm, func(*Engine) { want = append(want, k) })
				id++
			}
			for {
				nt, ok := e.NextTime()
				if !ok {
					break
				}
				if pending := e.Pending(); pending == 0 {
					t.Fatal("peek reported a time with nothing pending")
				}
				before := e.Now()
				fired := e.Fired()
				e.Run(nt) // fire exactly the events at the peeked time
				if e.Fired() == fired {
					t.Fatalf("nothing fired at peeked time %v (clock was %v)", nt, before)
				}
			}
			reference.RunAll()
			if len(order) != len(want) {
				t.Fatalf("peek-interleaved run fired %d events, reference %d", len(order), len(want))
			}
			for i := range order {
				if order[i] != want[i] {
					t.Fatalf("peek perturbed event order at %d: got %v want %v", i, order[i], want[i])
				}
			}
		})
	}
}
