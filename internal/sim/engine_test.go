package sim

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		e.At(tm, func(e *Engine) { order = append(order, tm) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func(e *Engine) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := New()
	var seen []float64
	e.At(1, func(e *Engine) { seen = append(seen, e.Now()) })
	e.At(2.5, func(e *Engine) { seen = append(seen, e.Now()) })
	e.RunAll()
	if seen[0] != 1 || seen[1] != 2.5 {
		t.Fatalf("Now() inside events = %v, want [1 2.5]", seen)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	count := 0
	var chain func(e *Engine)
	chain = func(e *Engine) {
		count++
		if count < 5 {
			e.After(1, chain)
		}
	}
	e.At(0, chain)
	end := e.RunAll()
	if count != 5 {
		t.Fatalf("chain fired %d times, want 5", count)
	}
	if end != 4 {
		t.Fatalf("final time = %v, want 4", end)
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	e := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(e *Engine) { fired++ })
	}
	e.Run(5)
	if fired != 5 {
		t.Fatalf("fired %d events by horizon 5, want 5", fired)
	}
	// The remaining events are still pending and fire on a later Run.
	e.Run(100)
	if fired != 10 {
		t.Fatalf("fired %d events total, want 10", fired)
	}
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	e := New()
	e.Run(50)
	if e.Now() != 50 {
		t.Fatalf("idle run should advance clock to horizon, now=%v", e.Now())
	}
	// Scheduling after an idle advance must still work.
	ok := false
	e.At(60, func(e *Engine) { ok = true })
	e.RunAll()
	if !ok {
		t.Fatal("event after idle advance did not fire")
	}
}

func TestStop(t *testing.T) {
	e := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func(e *Engine) {
			fired++
			if fired == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired %d events before Stop, want 3", fired)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d after Stop, want 7", e.Pending())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func(e *Engine) {})
	})
	e.RunAll()
}

func TestSchedulingNaNPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling at NaN")
		}
	}()
	e.At(math.NaN(), func(e *Engine) {})
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func(e *Engine) {})
	}
	e.RunAll()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

func TestReset(t *testing.T) {
	e := New()
	fired := 0
	e.At(1, func(e *Engine) { fired++ })
	e.At(2, func(e *Engine) { fired++ })
	e.Run(1)

	e.Reset()
	if e.Now() != 0 || e.Fired() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v fired=%d pending=%d, want all zero",
			e.Now(), e.Fired(), e.Pending())
	}
	// Scheduling at times earlier than the pre-Reset clock must work, and
	// the dropped pending event must not fire.
	fired = 0
	e.At(0.5, func(e *Engine) { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d events after Reset, want 1", fired)
	}
	// A reset engine behaves identically to a fresh one: same tie-break
	// sequence numbering.
	e.Reset()
	var order []int
	for i := 0; i < 5; i++ {
		e.At(1, func(e *Engine) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO after Reset: %v", order)
		}
	}
}

// Stress: many random events must fire in nondecreasing time order.
func TestRandomizedOrdering(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewPCG(7, 9))
	last := math.Inf(-1)
	violations := 0
	const n = 10000
	for i := 0; i < n; i++ {
		e.At(rng.Float64()*1000, func(e *Engine) {
			if e.Now() < last {
				violations++
			}
			last = e.Now()
		})
	}
	e.RunAll()
	if violations != 0 {
		t.Fatalf("%d time-order violations", violations)
	}
	if e.Fired() != n {
		t.Fatalf("fired %d, want %d", e.Fired(), n)
	}
}
