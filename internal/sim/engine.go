// Package sim implements a small discrete-event simulation engine.
//
// The engine maintains a pending-event set ordered by (time, sequence):
// events scheduled at the same instant fire in the order they were
// scheduled, which makes runs fully deterministic for a fixed seed. Time is
// a float64 number of flit-cycles; the wormhole simulator schedules channel
// grants, header advances and tail releases as events.
//
// # Typed events
//
// Events come in two flavors. The hot path uses typed events: a small
// tagged Event record (kind + integer argument + optional pointer payload)
// dispatched through the engine's Handler. Scheduling a typed event copies
// a few words into the engine's own event storage and allocates nothing, so
// a warmed-up event loop runs allocation-free. The generic callback form
// (At/After with a closure) is kept as an escape hatch for tests and
// ad-hoc callers; each closure naturally costs one allocation.
//
// # Schedulers
//
// The pending-event set has two implementations behind the same Engine
// API. The default is a calendar queue (bucketed time ring with an
// overflow heap) with O(1) amortized schedule and pop; NewWithHeap selects
// the plain binary heap, retained as the simpler fallback and as the
// oracle for differential tests. Both order events identically by
// (time, sequence), so which scheduler runs is invisible in the results —
// only in the throughput.
package sim

import (
	"fmt"
	"math"
)

// Func is a generic event callback. The callback receives the engine so it
// can schedule further events.
type Func func(e *Engine)

// Kind tags a typed event. Kind values are defined by the Handler's owner
// (the engine only stores and dispatches them); zero is reserved for
// events carrying a generic callback.
type Kind uint8

// Event is one scheduled occurrence: either a typed record (Kind, Arg,
// Data) dispatched through the engine's Handler, or a generic callback in
// Fn. Arg carries a small integer payload such as a node or channel id;
// Data carries an optional pointer payload (storing a pointer in an
// interface does not allocate). When Fn is non-nil it takes precedence and
// the typed fields are ignored.
type Event struct {
	Kind Kind
	Arg  int32
	Data any
	Fn   Func
}

// Handler dispatches typed events. The handler is called with the engine
// so it can schedule further events; Engine.Now is the event's time.
type Handler interface {
	Handle(e *Engine, ev Event)
}

type item struct {
	t   float64
	seq uint64
	ev  Event
}

// eventHeap is a binary min-heap ordered by (t, seq). The sift operations
// are inlined here rather than going through container/heap, whose
// interface-based API boxes every pushed item into an allocation. It backs
// the heap-scheduler mode and the calendar queue's far-future overflow.
type eventHeap []item

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

//quarc:hotpath
func (h *eventHeap) push(it item) {
	hh := append(*h, it)
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
	*h = hh
}

//quarc:hotpath
func (h *eventHeap) pop() item {
	hh := *h
	n := len(hh) - 1
	it := hh[0]
	hh[0] = hh[n]
	hh[n] = item{} // drop payload references from the vacated slot
	hh = hh[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && hh.less(r, l) {
			j = r
		}
		if !hh.less(j, i) {
			break
		}
		hh[i], hh[j] = hh[j], hh[i]
		i = j
	}
	*h = hh
	return it
}

// maxRetainedEvents caps the event storage (heap slots or calendar bucket
// slots) an Engine keeps across Reset: a single saturated run can grow the
// pending set enormously, and retaining all of it would pin that memory
// for every later point of a sweep.
const maxRetainedEvents = 1 << 15

// Engine is a discrete-event scheduler. The zero value is ready to use and
// runs on the calendar-queue scheduler.
type Engine struct {
	now     float64
	seq     uint64
	useHeap bool
	heap    eventHeap
	cal     calQueue
	handler Handler
	stopped bool
	fired   uint64
}

// New returns an empty engine at time zero, backed by the calendar-queue
// scheduler.
func New() *Engine { return &Engine{} }

// NewWithHeap returns an empty engine backed by the binary-heap scheduler:
// the simpler fallback, and the oracle the calendar queue is
// differential-tested against. Event ordering is identical to New's.
func NewWithHeap() *Engine { return &Engine{useHeap: true} }

// Reset returns the engine to its zero state — time zero, no pending
// events, counters cleared — while keeping the allocated event storage and
// the handler, so one engine can be reused across the points of a sweep
// without reallocating. Storage grossly over-grown by a past run (beyond
// maxRetainedEvents) is released instead of retained.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.stopped = false
	for i := range e.heap {
		e.heap[i] = item{} // drop payload references
	}
	if cap(e.heap) > maxRetainedEvents {
		e.heap = nil
	} else {
		e.heap = e.heap[:0]
	}
	e.cal.reset(maxRetainedEvents)
}

// SetHandler installs the dispatcher for typed events. Scheduling a typed
// event on an engine without a handler is a logic error (Run panics when
// it fires).
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int {
	if e.useHeap {
		return len(e.heap)
	}
	return e.cal.len()
}

// NextTime returns the time of the earliest pending event without firing
// it, and false when no events are pending. The heap scheduler reads its
// root; the calendar queue has no cheap peek, so the engine pops the head
// and re-files it under its original sequence number — the (time, seq)
// order is exactly restored, because event order never depends on bucket
// geometry. The conservative parallel coordinator (internal/sim/par) uses
// this to compute the global synchronization horizon each round.
func (e *Engine) NextTime() (float64, bool) {
	if e.useHeap {
		if len(e.heap) == 0 {
			return 0, false
		}
		return e.heap[0].t, true
	}
	it, ok := e.cal.pop()
	if !ok {
		return 0, false
	}
	e.cal.push(it, e.now)
	return it.t, true
}

// SchedulerName identifies the active pending-event structure ("calendar"
// or "heap") for logs and benchmark labels.
func (e *Engine) SchedulerName() string {
	if e.useHeap {
		return "heap"
	}
	return "calendar"
}

// Schedule schedules ev to fire at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a logic error in the caller.
//
//quarc:hotpath
func (e *Engine) Schedule(t float64, ev Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN")
	}
	e.seq++
	e.push(item{t: t, seq: e.seq, ev: ev})
}

// HintSchedule pre-sizes the calendar scheduler for a workload expected
// to keep roughly `pending` events in flight, scheduled up to roughly
// `span` time units ahead. A good hint skips the geometry-learning
// rebuilds a fresh engine otherwise pays during its first few thousand
// events; a bad one is corrected by the adaptive resize policy. The hint
// is purely about speed — event order never depends on geometry — and is
// ignored by the heap scheduler and by engines with pending events.
func (e *Engine) HintSchedule(span float64, pending int) {
	if e.useHeap || pending <= 0 || span <= 0 || math.IsNaN(span) || math.IsInf(span, 1) {
		return
	}
	e.cal.hint(span, pending, e.now)
}

// ReserveSeq consumes the next n sequence numbers and returns the first,
// without scheduling anything. An event-coalescing layer (the wormhole
// simulator's span drains) reserves the sequence range its micro-events
// would have occupied, then schedules the few events it does materialize
// into those slots via ScheduleSeq: same-time tie-breaking — and with it
// the whole run — stays bitwise identical to the uncoalesced schedule.
//
//quarc:hotpath
func (e *Engine) ReserveSeq(n int) uint64 {
	base := e.seq + 1
	e.seq += uint64(n)
	return base
}

// ScheduleSeq schedules ev at absolute time t under an explicit sequence
// number previously obtained from ReserveSeq. Reusing a live sequence
// number is a logic error (two events would tie exactly); the engine does
// not check for it.
//
//quarc:hotpath
func (e *Engine) ScheduleSeq(t float64, seq uint64, ev Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN")
	}
	e.push(item{t: t, seq: seq, ev: ev})
}

// At schedules fn to run at absolute time t — the generic-callback form of
// Schedule.
func (e *Engine) At(t float64, fn Func) { e.Schedule(t, Event{Fn: fn}) }

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, fn Func) { e.At(e.now+d, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the event set is empty, Stop is
// called, or simulated time would exceed horizon (events strictly beyond
// the horizon are left unfired). Unless Stop was called, the clock is
// advanced to the horizon on return even when pending events lie beyond
// it, so back-to-back Run calls carve out exact, gap-free time windows.
// It returns the current time.
func (e *Engine) Run(horizon float64) float64 { return e.run(horizon, true) }

// RunBefore is Run with an exclusive horizon: events exactly at the
// horizon are left unfired, and unless Stop was called the clock still
// advances to the horizon. Together with Run's inclusive horizon this
// lets a caller carve time into exact half-open windows [a, b): run the
// prefix with RunBefore(a), switch phase state, then Run(b) fires
// everything in [a, b].
func (e *Engine) RunBefore(horizon float64) float64 { return e.run(horizon, false) }

//quarc:hotpath
func (e *Engine) run(horizon float64, inclusive bool) float64 {
	e.stopped = false
	for !e.stopped {
		// The scheduler dispatch is open-coded here (rather than through
		// e.pop) to keep one call and one item copy out of the hot loop.
		var it item
		if e.useHeap {
			if len(e.heap) == 0 {
				break
			}
			it = e.heap.pop()
		} else {
			var ok bool
			if it, ok = e.cal.pop(); !ok {
				break
			}
		}
		if it.t > horizon || (!inclusive && it.t == horizon) {
			// Beyond this run's window: put it back for a later Run.
			e.push(it)
			break
		}
		e.now = it.t
		e.fired++
		if it.ev.Fn != nil {
			it.ev.Fn(e)
		} else if e.handler != nil {
			e.handler.Handle(e, it.ev)
		} else {
			panic("sim: typed event fired on an engine without a handler")
		}
	}
	if !e.stopped && e.now < horizon && !math.IsInf(horizon, 1) {
		e.now = horizon
	}
	return e.now
}

// RunAll executes events until none remain or Stop is called.
func (e *Engine) RunAll() float64 { return e.Run(math.Inf(1)) }

//quarc:hotpath
func (e *Engine) push(it item) {
	if e.useHeap {
		e.heap.push(it)
		return
	}
	e.cal.push(it, e.now)
}
