// Package sim implements a small discrete-event simulation engine.
//
// The engine maintains a pending-event set ordered by (time, sequence):
// events scheduled at the same instant fire in the order they were
// scheduled, which makes runs fully deterministic for a fixed seed. Time is
// a float64 number of flit-cycles; the wormhole simulator schedules channel
// grants, header advances and tail releases as events.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback to run at a simulated instant. The callback receives
// the engine so it can schedule further events.
type Event func(e *Engine)

type item struct {
	t   float64
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now     float64
	seq     uint64
	heap    eventHeap
	stopped bool
	fired   uint64
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Reset returns the engine to its zero state — time zero, no pending
// events, counters cleared — while keeping the allocated event heap, so
// one engine can be reused across the points of a sweep without
// reallocating.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.stopped = false
	e.heap = e.heap[:0]
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it always indicates a logic error in the caller.
func (e *Engine) At(t float64, fn Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN")
	}
	e.seq++
	heap.Push(&e.heap, item{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, fn Event) { e.At(e.now+d, fn) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the event set is empty, Stop is
// called, or simulated time would exceed horizon (events strictly beyond
// the horizon are left unfired). It returns the time of the last fired
// event (or the current time if none fired).
func (e *Engine) Run(horizon float64) float64 {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].t > horizon {
			break
		}
		it := heap.Pop(&e.heap).(item)
		e.now = it.t
		e.fired++
		it.fn(e)
	}
	if e.now < horizon && len(e.heap) == 0 && !math.IsInf(horizon, 1) {
		// Advance to the horizon so repeated Run calls see monotone time.
		e.now = horizon
	}
	return e.now
}

// RunAll executes events until none remain or Stop is called.
func (e *Engine) RunAll() float64 { return e.Run(math.Inf(1)) }
