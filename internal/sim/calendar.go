package sim

import "math"

// calQueue is a calendar-queue pending-event set (Brown 1988, adapted): a
// wrapping ring of time buckets, each covering `width` cycles, where an
// event at time t lives in slot floor(t/width) mod nbuckets. Events up to
// horizonYears ring laps ahead share the ring; only true far-future
// outliers go to an overflow binary heap and migrate in as the clock
// approaches them. Bucket geometry adapts to the observed event-time
// distribution, giving O(1) amortized schedule and pop where the binary
// heap pays O(log n) sifts.
//
// Deviations from the textbook structure, chosen for exact determinism
// and for the wormhole simulator's workload shape:
//
//   - Each bucket is kept sorted by (time, seq) behind a head cursor, so
//     the pop order is a pure function of the keys — bucket geometry can
//     never reorder events. The due-day check inspects only the bucket
//     head (the sorted order puts the earliest lap first), making pop
//     O(1); insertion bubbles from the tail. Same-instant event bursts
//     arrive in increasing seq and therefore insert in O(1); a degenerate
//     distribution (everything at one instant) turns the structure into a
//     plain FIFO instead of an O(n) scan per pop.
//   - Resizing samples the stored event times and keys the bucket width
//     off the median inter-event gap, which is robust against far-future
//     outliers; the outliers themselves sit in the overflow heap, which
//     is the binary-heap fallback path (see DESIGN.md §9).
type calQueue struct {
	buckets  []bucket
	width    float64 // time span of one bucket (one "day")
	invWidth float64 // 1/width, cached: day indexing multiplies, never divides
	mask     int64   // len(buckets)-1; len is a power of two
	day      int64   // current day floor(now/width); no stored event is earlier
	count    int     // events stored in buckets (excludes overflow)

	// horizonDays = horizonYears * len(buckets): events at or beyond
	// day+horizonDays go to the overflow heap — the heap fallback for
	// far-future horizons.
	horizonDays int64
	overflow    eventHeap

	// growAt/shrinkAt are the hysteresis thresholds of the resize policy,
	// derived from the bucket count at the last rebuild. churn counts
	// overflow insertions since the last rebuild: a geometry whose
	// horizon misses the workload's scheduling lookahead (e.g. learned
	// during a startup transient) churns events through the overflow
	// heap, and crossing churnAt forces a rebuild whose width sample then
	// sees those far times.
	growAt   int
	shrinkAt int
	churn    int
	churnAt  int

	// resizes counts geometry rebuilds (exposed for tests/instrumentation).
	resizes uint64

	scratch []item // reused during rebuilds
	// bucketStore is the allocated backing of buckets; rebuilds that fit
	// within its capacity (shrinks, re-grows after a shrink) reslice it
	// instead of allocating, keeping geometry churn GC-quiet.
	bucketStore []bucket
}

// bucket is one calendar slot: items[head:] sorted ascending by (t, seq).
type bucket struct {
	head  int
	items []item
}

const (
	calMinBuckets = 16
	calMaxBuckets = 1 << 20
	// horizonYears bounds how many ring laps may share the buckets: a
	// deeper horizon keeps more of the schedule out of the overflow heap,
	// a shallower one keeps buckets purer. Four laps covers the wormhole
	// workload's generation lookahead with single-digit bucket occupancy.
	horizonYears = 4
	// calMaxDay bounds day indices so pathological width/time ratios
	// cannot overflow int64 arithmetic; times beyond it use the overflow
	// heap.
	calMaxDay = int64(1) << 59
)

func (q *calQueue) len() int { return q.count + len(q.overflow) }

// dayOf maps a time to its day index. It must stay one fixed monotone
// function of t between geometry rebuilds — insert and pop both key off
// it, so any disagreement would strand an event in a never-probed slot.
//
//quarc:hotpath
func (q *calQueue) dayOf(t float64) int64 {
	d := t * q.invWidth
	if d >= float64(calMaxDay) {
		return calMaxDay
	}
	return int64(d)
}

// setWidth installs a bucket width and its cached reciprocal.
func (q *calQueue) setWidth(w float64) {
	q.width = w
	q.invWidth = 1 / w
}

// init sets the initial geometry. now lower-bounds every future push.
func (q *calQueue) init(now float64) {
	q.makeBuckets(calMinBuckets)
	q.setWidth(1)
	q.day = q.dayOf(now)
	q.growAt = 2 * calMinBuckets
	q.shrinkAt = 0 // never shrink below the minimum geometry
	q.churnAt = 2 * calMinBuckets
}

// hint installs a caller-provided initial geometry (see
// Engine.HintSchedule). Only an empty queue accepts it: a live one
// already has a learned geometry worth more than the guess.
func (q *calQueue) hint(span float64, pending int, now float64) {
	if q.len() > 0 {
		return
	}
	nb := calMinBuckets
	for nb < pending && nb < calMaxBuckets {
		nb <<= 1
	}
	q.makeBuckets(nb)
	q.setWidth(span / float64(nb))
	q.day = q.dayOf(now)
	q.growAt = 2 * nb
	q.shrinkAt = nb / 4
	if nb == calMinBuckets {
		q.shrinkAt = 0
	}
	q.churn = 0
	q.churnAt = 4 * nb
}

// makeBuckets builds a bucket array over one flat item arena: two
// allocations per geometry rebuild instead of one per bucket, so a fresh
// network's first run doesn't pay hundreds of slice-growth allocations.
// Buckets that outgrow their arena segment reallocate individually (the
// three-index slice caps them against overlap).
func (q *calQueue) makeBuckets(nb int) {
	const seg = 8
	if cap(q.bucketStore) >= nb {
		q.buckets = q.bucketStore[:nb]
	} else {
		q.bucketStore = make([]bucket, nb)
		q.buckets = q.bucketStore
		flat := make([]item, nb*seg)
		for i := range q.buckets {
			q.buckets[i].items = flat[i*seg : i*seg : (i+1)*seg]
		}
	}
	q.mask = int64(nb - 1)
	q.horizonDays = horizonYears * int64(nb)
}

// push inserts it; now is the engine clock, a lower bound for it.t used
// to anchor the geometry.
//
//quarc:hotpath
func (q *calQueue) push(it item, now float64) {
	if q.buckets == nil {
		q.init(now)
	}
	if q.len() >= q.growAt || q.churn >= q.churnAt {
		q.resize()
	}
	q.insert(it)
}

// insert places it into its ring slot or the overflow heap.
//
//quarc:hotpath
func (q *calQueue) insert(it item) {
	d := q.dayOf(it.t)
	if d >= q.day+q.horizonDays {
		q.overflow.push(it)
		q.churn++
		return
	}
	if d < q.day {
		// The walk advanced to a popped event's day, but the engine
		// deferred that event at a Run horizon and the clock stayed
		// behind; a later push may land on an earlier day. Rewind: pop
		// compares real (t, seq) keys, so this costs a re-walk of empty
		// days, never a reorder.
		q.day = d
	}
	b := &q.buckets[d&q.mask]
	if len(b.items) == cap(b.items) && b.head > 0 {
		// The bucket is a FIFO ring: pops advance head while inserts
		// append. Compact the dead head space instead of growing — a slot
		// fed by a steady event chain would otherwise reallocate every
		// ring lap.
		n := copy(b.items, b.items[b.head:])
		for j := n; j < len(b.items); j++ {
			b.items[j] = item{} // drop payload references
		}
		b.items = b.items[:n]
		b.head = 0
	}
	b.items = append(b.items, it)
	// Bubble toward the head to keep the bucket sorted. Same-time events
	// arrive in increasing seq, so the common case is zero moves.
	for i := len(b.items) - 1; i > b.head; i-- {
		if !lessItem(b.items[i], b.items[i-1]) {
			break
		}
		b.items[i], b.items[i-1] = b.items[i-1], b.items[i]
	}
	q.count++
}

//quarc:hotpath
func lessItem(a, b item) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// migrate moves overflow events that entered the ring horizon (the
// current day advanced toward them) into their buckets.
//
//quarc:hotpath
func (q *calQueue) migrate() {
	for len(q.overflow) > 0 && q.dayOf(q.overflow[0].t) < q.day+q.horizonDays {
		q.insert(q.overflow.pop())
	}
}

// pop removes and returns the earliest (t, seq) event.
//
//quarc:hotpath
func (q *calQueue) pop() (item, bool) {
	if q.len() == 0 {
		return item{}, false
	}
	if q.shrinkAt > 0 && q.len() < q.shrinkAt {
		// The population collapsed well below the geometry; rebuild
		// smaller.
		q.resize()
	}
	if len(q.overflow) > 0 {
		if q.count == 0 {
			// Everything lies beyond the ring horizon: jump to it.
			q.day = q.dayOf(q.overflow[0].t)
		}
		q.migrate()
	}
	steps := 0
	for {
		b := &q.buckets[q.day&q.mask]
		if b.head < len(b.items) {
			// The head is the bucket minimum; if it is due today it is
			// the global minimum (earlier days are exhausted, later days
			// cannot precede it).
			if it := b.items[b.head]; q.dayOf(it.t) == q.day {
				b.items[b.head] = item{} // drop payload references
				b.head++
				if b.head == len(b.items) {
					b.items = b.items[:0]
					b.head = 0
				}
				q.count--
				return it, true
			}
		}
		q.day++
		steps++
		if steps >= len(q.buckets) {
			// A whole lap without a due event: the schedule is sparse
			// here. Jump straight to the earliest stored day. Walks
			// between jumps are bounded by one lap (< horizonDays), so
			// the walk can never pass an overflow event's day before the
			// migrate below pulls it in.
			q.day = q.minBucketDay()
			q.migrate()
			steps = 0
		}
	}
}

// minBucketDay returns the earliest due day over all buckets; the caller
// guarantees count > 0.
func (q *calQueue) minBucketDay() int64 {
	min := int64(math.MaxInt64)
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.head < len(b.items) {
			if d := q.dayOf(b.items[b.head].t); d < min {
				min = d
			}
		}
	}
	return min
}

// resize rebuilds the geometry around the current population: the bucket
// count follows the population, and the width follows the median gap of a
// sample of stored event times (robust to far-future outliers, which stay
// in the overflow heap).
func (q *calQueue) resize() {
	n := q.len()
	// Target ~1 event per bucket at rebuild time (drifting toward ~2
	// before growAt re-triggers): dense buckets stay cache-resident and
	// the sorted-insert bubble is still a compare or two.
	nb := calMinBuckets
	for nb < n && nb < calMaxBuckets {
		nb <<= 1
	}

	// The rebuilt day numbering must lower-bound every stored and future
	// time; the start of the current day does both (now lies within it).
	anchor := float64(q.day) * q.width

	// Collect every stored item.
	all := q.scratch[:0]
	for i := range q.buckets {
		b := &q.buckets[i]
		all = append(all, b.items[b.head:]...)
		b.items = b.items[:0]
		b.head = 0
	}
	all = append(all, q.overflow...)
	q.overflow = q.overflow[:0]
	q.count = 0

	width := q.sampleWidth(all, nb)
	if nb != len(q.buckets) {
		q.makeBuckets(nb)
	}
	q.setWidth(width)
	q.day = q.dayOf(anchor)
	q.growAt = 2 * nb
	q.shrinkAt = nb / 4
	if nb == calMinBuckets {
		q.shrinkAt = 0
	}
	q.churn = 0
	q.churnAt = 4 * nb
	q.resizes++

	for _, it := range all {
		q.insert(it)
	}
	// Retain the gather buffer only at moderate sizes so one huge run
	// doesn't pin the scratch space.
	for i := range all {
		all[i] = item{}
	}
	if cap(all) <= 1<<15 {
		q.scratch = all[:0]
	} else {
		q.scratch = nil
	}
}

// sampleWidth estimates a bucket width from up to 64 sampled times: the
// median inter-event gap, floored so the ring span covers ~4x the
// 75th-percentile spread of the sample. The gap term adapts to dense
// schedules; the span floor keeps a bimodal distribution (a dense
// near-term cluster plus mid-range lookahead, the wormhole simulator's
// shape) from shrinking the ring until everything churns through the
// overflow heap. A degenerate sample (all events at one instant) keeps
// the current width: same-instant bursts share a bucket regardless,
// where the sorted-bucket representation makes them O(1) anyway.
func (q *calQueue) sampleWidth(all []item, nb int) float64 {
	const maxSample = 64
	n := len(all)
	if n < 2 {
		return q.width
	}
	// Ceiling stride: the sample must span the whole gather (near bucket
	// items first, overflow tail last), or the learned width never sees
	// the far cluster it is supposed to cover.
	stride := (n + maxSample - 1) / maxSample
	var sample [maxSample]float64
	k := 0
	hi := 0.0
	for i := 0; i < n && k < maxSample; i += stride {
		sample[k] = all[i].t
		if all[i].t > hi {
			hi = all[i].t
		}
		k++
	}
	s := sample[:k]
	// Insertion sort: k <= 64.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	gaps := make([]float64, 0, maxSample)
	for i := 1; i < len(s); i++ {
		if g := s[i] - s[i-1]; g > 0 && !math.IsInf(g, 1) {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return q.width
	}
	// Median positive gap; gaps is small, sort in place.
	for i := 1; i < len(gaps); i++ {
		for j := i; j > 0 && gaps[j] < gaps[j-1]; j-- {
			gaps[j], gaps[j-1] = gaps[j-1], gaps[j]
		}
	}
	w := 2 * gaps[len(gaps)/2]
	if span := (s[(len(s)-1)*3/4] - s[0]) * 4 / float64(nb); span > w {
		w = span
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 1) {
		return q.width
	}
	// Keep day indices far from int64 overflow even for tiny widths over
	// large time scales.
	if lo := hi / 1e15; w < lo {
		w = lo
	}
	return w
}

// reset empties the queue, dropping payload references while keeping the
// learned geometry (geometry affects only speed, never order). Storage
// grossly over-grown by a past run is released: buckets and the overflow
// heap above maxRetain items are freed so a single huge run does not pin
// memory for the rest of a sweep.
func (q *calQueue) reset(maxRetain int) {
	if q.buckets == nil {
		return
	}
	total := 0
	for i := range q.buckets {
		b := &q.buckets[i]
		for j := b.head; j < len(b.items); j++ {
			b.items[j] = item{}
		}
		total += cap(b.items)
		b.items = b.items[:0]
		b.head = 0
	}
	if total > maxRetain || cap(q.bucketStore) > calMaxRetainedBuckets {
		// Re-initialized lazily with the default geometry.
		q.buckets = nil
		q.bucketStore = nil
		q.setWidth(1)
	}
	for i := range q.overflow {
		q.overflow[i] = item{}
	}
	if cap(q.overflow) > maxRetain {
		q.overflow = nil
	} else {
		q.overflow = q.overflow[:0]
	}
	if cap(q.scratch) > maxRetain {
		q.scratch = nil
	}
	q.day = 0
	q.count = 0
	q.churn = 0
}

// calMaxRetainedBuckets bounds the bucket-array size kept across Reset.
const calMaxRetainedBuckets = 1 << 12
