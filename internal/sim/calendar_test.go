package sim

import (
	"math"
	"math/rand/v2"
	"testing"
)

// sink records the dispatch order of typed events.
type sink struct {
	times []float64
	args  []int32
}

func (s *sink) Handle(e *Engine, ev Event) {
	s.times = append(s.times, e.Now())
	s.args = append(s.args, ev.Arg)
}

// drive feeds the same randomized schedule to an engine: an interleaving
// of up-front scheduling, partial runs, and events scheduled from inside
// events, covering same-time bursts and far-future horizons.
func drive(e *Engine, seed uint64) *sink {
	s := &sink{}
	e.SetHandler(s)
	rng := rand.New(rand.NewPCG(seed, 0xCA1E))
	n := 200 + rng.IntN(800)
	id := int32(0)
	for i := 0; i < n; i++ {
		switch rng.IntN(10) {
		case 0: // same-time burst at a shared instant
			t := e.Now() + float64(rng.IntN(50))
			burst := 1 + rng.IntN(32)
			for j := 0; j < burst; j++ {
				e.Schedule(t, Event{Kind: 1, Arg: id})
				id++
			}
		case 1: // far-future outlier (exercises the overflow heap)
			e.Schedule(e.Now()+1e6+rng.Float64()*1e9, Event{Kind: 1, Arg: id})
			id++
		case 2: // partial run to a horizon, then keep scheduling
			e.Run(e.Now() + rng.Float64()*100)
		case 3: // event that schedules more events when it fires
			k := rng.IntN(4)
			e.At(e.Now()+rng.Float64()*200, func(e *Engine) {
				for j := 0; j < k; j++ {
					e.Schedule(e.Now()+float64(j), Event{Kind: 1, Arg: -1})
				}
			})
		default: // plain event at a random near-future time
			e.Schedule(e.Now()+rng.Float64()*500, Event{Kind: 1, Arg: id})
			id++
		}
	}
	e.RunAll()
	return s
}

// TestCalendarMatchesHeapOracle is the differential property test of the
// tentpole: the calendar queue must pop in exactly the binary heap's
// (time, seq) order on random schedules, including same-time bursts and
// far-future horizons.
func TestCalendarMatchesHeapOracle(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		cal := drive(New(), seed)
		heap := drive(NewWithHeap(), seed)
		if len(cal.times) != len(heap.times) {
			t.Fatalf("seed %d: calendar fired %d events, heap %d", seed, len(cal.times), len(heap.times))
		}
		for i := range cal.times {
			if cal.times[i] != heap.times[i] || cal.args[i] != heap.args[i] {
				t.Fatalf("seed %d: dispatch %d diverged: calendar (t=%v, arg=%d) vs heap (t=%v, arg=%d)",
					seed, i, cal.times[i], cal.args[i], heap.times[i], heap.args[i])
			}
		}
	}
}

// TestCalendarResizeGrowsAndShrinks forces the population through the
// resize thresholds in both directions and checks ordering plus that the
// geometry actually rebuilt.
func TestCalendarResizeGrowsAndShrinks(t *testing.T) {
	e := New()
	s := &sink{}
	e.SetHandler(s)
	const n = 20000
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < n; i++ {
		e.Schedule(rng.Float64()*1e5, Event{Kind: 1, Arg: int32(i)})
	}
	if e.cal.resizes == 0 {
		t.Fatal("no grow resize triggered by 20000 pushes")
	}
	grew := e.cal.resizes
	e.RunAll()
	if e.cal.resizes == grew {
		t.Error("no shrink resize triggered while draining 20000 events")
	}
	if len(s.times) != n {
		t.Fatalf("fired %d events, want %d", len(s.times), n)
	}
	for i := 1; i < len(s.times); i++ {
		if s.times[i] < s.times[i-1] {
			t.Fatalf("dispatch %d out of order: %v after %v", i, s.times[i], s.times[i-1])
		}
	}
}

// TestCalendarSameInstantFlood pins the degenerate distribution: a huge
// same-time burst must stay FIFO and must not blow up (the sorted-bucket
// representation keeps it O(1) per op).
func TestCalendarSameInstantFlood(t *testing.T) {
	e := New()
	s := &sink{}
	e.SetHandler(s)
	const n = 50000
	for i := 0; i < n; i++ {
		e.Schedule(42, Event{Kind: 1, Arg: int32(i)})
	}
	e.RunAll()
	if len(s.args) != n {
		t.Fatalf("fired %d, want %d", len(s.args), n)
	}
	for i, a := range s.args {
		if a != int32(i) {
			t.Fatalf("same-instant burst not FIFO at %d: got arg %d", i, a)
		}
	}
}

// TestResetShrinksOverGrownStorage pins the Reset satellite: storage grown
// by a huge run is released on Reset instead of pinned for later runs.
func TestResetShrinksOverGrownStorage(t *testing.T) {
	e := New()
	const n = 4 * maxRetainedEvents
	for i := 0; i < n; i++ {
		e.Schedule(float64(i%1000), Event{Kind: 1, Arg: int32(i)})
	}
	e.Reset()
	total := 0
	for i := range e.cal.buckets {
		total += cap(e.cal.buckets[i].items)
	}
	if total+cap(e.cal.overflow) > maxRetainedEvents {
		t.Errorf("calendar retains %d+%d slots after Reset, want <= %d",
			total, cap(e.cal.overflow), maxRetainedEvents)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Reset, want 0", e.Pending())
	}

	h := NewWithHeap()
	for i := 0; i < n; i++ {
		h.Schedule(float64(i%1000), Event{Kind: 1, Arg: int32(i)})
	}
	h.Reset()
	if cap(h.heap) > maxRetainedEvents {
		t.Errorf("heap retains %d slots after Reset, want <= %d", cap(h.heap), maxRetainedEvents)
	}

	// Moderate storage is kept for reuse (the zero-alloc sweep path).
	e2 := New()
	for i := 0; i < 100; i++ {
		e2.Schedule(float64(i), Event{Kind: 1})
	}
	e2.Reset()
	if e2.cal.buckets == nil {
		t.Error("Reset dropped moderately sized calendar storage that should be reused")
	}
}

// FuzzCalendarVsHeap fuzzes the scheduler pair over encoded operation
// sequences, with a seed corpus aimed at bucket-resize edge cases.
func FuzzCalendarVsHeap(f *testing.F) {
	// Seed corpus: each byte drives one operation (see below). The seeds
	// force grow resizes (many pushes), shrink resizes (pushes then long
	// drains), same-instant bursts straddling a resize, far-future
	// outliers entering the overflow heap, and boundary-width times.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})         // steady pushes
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1})                                 // one same-instant burst per op
	f.Add([]byte{0, 0, 0, 0, 200, 0, 0, 0, 200})                          // pushes with partial drains
	f.Add([]byte{2, 2, 2, 0, 0, 2, 200, 2})                               // far-future outliers + drain
	f.Add([]byte{3, 3, 3, 3, 200, 3, 3, 200})                             // boundary-jitter times
	f.Add([]byte{1, 200, 1, 200, 1, 200})                                 // burst/drain ping-pong
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 250, 2}) // grow, full drain, refill far
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		run := func(e *Engine) *sink {
			s := &sink{}
			e.SetHandler(s)
			id := int32(0)
			for _, op := range ops {
				switch {
				case op >= 250: // drain fully
					e.RunAll()
				case op >= 200: // drain one horizon step
					e.Run(e.Now() + 64)
				case op == 1: // same-instant burst
					t0 := e.Now() + 7
					for j := 0; j < 40; j++ {
						e.Schedule(t0, Event{Kind: 1, Arg: id})
						id++
					}
				case op == 2: // far-future outlier
					e.Schedule(e.Now()+1e9, Event{Kind: 1, Arg: id})
					id++
				case op == 3: // boundary jitter: times packed around bucket edges
					base := math.Floor(e.Now()) + 1
					for j := 0; j < 8; j++ {
						e.Schedule(base+float64(j)+1e-9, Event{Kind: 1, Arg: id})
						id++
					}
				default: // op as a pseudo-random near time
					e.Schedule(e.Now()+float64(op)*1.5, Event{Kind: 1, Arg: id})
					id++
				}
			}
			e.RunAll()
			return s
		}
		cal, heap := run(New()), run(NewWithHeap())
		if len(cal.times) != len(heap.times) {
			t.Fatalf("calendar fired %d, heap fired %d", len(cal.times), len(heap.times))
		}
		for i := range cal.times {
			if cal.times[i] != heap.times[i] || cal.args[i] != heap.args[i] {
				t.Fatalf("dispatch %d diverged: calendar (t=%v, arg=%d) vs heap (t=%v, arg=%d)",
					i, cal.times[i], cal.args[i], heap.times[i], heap.args[i])
			}
		}
	})
}
