// Package par is the conservative parallel coordinator for spatially
// partitioned discrete-event simulations: P shards, each owning a
// disjoint slice of the model state and its own sim.Engine, advance in
// lockstep through globally agreed time windows.
//
// # Protocol
//
// The coordinator runs a YAWNS-style bounded-lag loop. Each round:
//
//  1. after a rendezvous barrier confirming every shard finished the
//     previous window (so all cross-shard publications are complete),
//     every shard drains its inbound mailboxes into its local engine,
//  2. the shards agree — through a sense-reversing barrier — on the
//     global minimum next-event time M over all local pending sets,
//  3. every shard executes its local events in the half-open window
//     [M, M+L), where L is the model's lookahead: the minimum latency
//     any shard-crossing event is scheduled at. When M+L clears the
//     phase end, a final inclusive run fires the events at the end
//     itself (mirroring sim.Engine.Run's inclusive horizon, so a
//     serial RunBefore/Run phase split is reproduced exactly).
//
// Conservatism: an event fired at t < M+L can only schedule remote
// events at t' >= t+L >= M+L, i.e. outside the current window, so no
// shard ever executes ahead of an inbound event. Mailboxes are
// single-writer single-reader slices whose hand-off happens across the
// barrier, which is also what makes the protocol race-free: all of a
// round's writes happen-before the next round's reads.
//
// This package deliberately knows nothing about wormhole networks — it
// coordinates anything implementing Shard — and it is the only
// determinism-adjacent package allowed to spawn goroutines (quarclint
// exempts internal/sim/par from the no-concurrency rule; the model
// packages it drives stay goroutine-free).
package par

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Shard is one partition of a conservatively parallelizable model. All
// methods are called from the shard's dedicated worker goroutine; the
// coordinator guarantees Drain never overlaps another shard's Publish
// of the same mailbox (the barrier separates them).
type Shard interface {
	// Drain moves events other shards published for this shard into
	// the local pending set. Called once per round, before NextTime.
	Drain()
	// NextTime returns the earliest local pending-event time, or
	// ok=false when the shard has nothing scheduled.
	NextTime() (t float64, ok bool)
	// Run executes local events with time < bound (inclusive of the
	// bound itself when incl is set) and advances the local clock to
	// the bound. Events destined for other shards are published to
	// their mailboxes, to be Drained next round.
	Run(bound float64, incl bool)
	// Aborted reports that the shard hit a model-level stop condition
	// (e.g. saturation). The coordinator halts the phase at the next
	// barrier; the caller owns recovery.
	Aborted() bool
}

// Barrier is a sense-reversing spin barrier for a fixed party count.
// The last arriver runs the rendezvous action (if any) before
// releasing the others, giving the caller a serial section per round
// without extra synchronization. Waiters yield the processor while
// spinning, so the barrier is safe (if slower) even at GOMAXPROCS=1.
type Barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier needs at least one party")
	}
	return &Barrier{n: int32(n)}
}

// Wait blocks until all n parties have arrived. The last arriver runs
// last (when non-nil) before the release, so its writes happen-before
// every party's return.
func (b *Barrier) Wait(last func()) {
	s := b.sense.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		if last != nil {
			last()
		}
		b.sense.Store(s ^ 1)
		return
	}
	for b.sense.Load() == s {
		runtime.Gosched()
	}
}

// encodeTime maps a float64 time to a uint64 whose unsigned order
// matches the numeric order for all non-negative finite values and
// +Inf — simulated time is never negative — so the shards can agree on
// a minimum with one atomic CAS loop instead of a lock.
func encodeTime(t float64) uint64 { return math.Float64bits(t) }

func decodeTime(b uint64) float64 { return math.Float64frombits(b) }

// atomicMin folds t into the running minimum at p.
func atomicMin(p *atomic.Uint64, t float64) {
	e := encodeTime(t)
	for {
		cur := p.Load()
		if cur <= e || p.CompareAndSwap(cur, e) {
			return
		}
	}
}

// round decisions, written by the barrier's last arriver and read by
// every worker after release.
const (
	roundWindow = iota // run the half-open window [M, bound)
	roundFinal         // run to the phase end and stop
	roundAbort         // a shard aborted: stop immediately
)

// windowShave is the relative margin each window bound is shrunk by.
// The model's lookahead guarantee ("a fired event schedules remote
// events at least L later") holds in real arithmetic, but the model
// computes those times in floats — e.g. a wormhole span release at
// te+msgLen-k — and the rounded result can land an ULP or two below
// the exact te+L, while the exact bound M+L rounds an ULP or two up.
// Narrower windows are always conservative (events never straddle a
// drain point they shouldn't), so the bound backs off by a relative
// 2^-30: many orders of magnitude above any accumulated ULP error of
// the time computations, many orders below any meaningful event gap.
const windowShave = 1.0 / (1 << 30)

// Phase drives the shards from their current clocks to end — firing
// the events at end itself when incl is set, stopping just short of
// them otherwise (mirroring sim.Engine.Run vs RunBefore, so a serial
// warmup/measure phase split is reproduced exactly) — with the given
// lookahead (must be positive: it is what makes a conservative window
// non-empty). It returns false when any shard aborted, in which case
// the model state is mid-window and only fit for discarding.
//
// Phase may be called repeatedly — each call is one serial-equivalent
// Run window — with single-threaded access to the shards in between
// (the goroutines of a phase exit before Phase returns).
func Phase(shards []Shard, end, lookahead float64, incl bool) bool {
	if len(shards) == 0 || lookahead <= 0 || math.IsNaN(lookahead) {
		panic("par: Phase needs shards and a positive lookahead")
	}
	if len(shards) == 1 {
		// Degenerate partition: no windows needed, one phase-end run.
		sh := shards[0]
		sh.Drain()
		sh.Run(end, incl)
		return !sh.Aborted()
	}
	var (
		b       = NewBarrier(len(shards))
		minBits atomic.Uint64
		aborted atomic.Bool
		kind    int
		bound   float64
		wg      sync.WaitGroup
	)
	minBits.Store(encodeTime(math.Inf(1)))
	worker := func(sh Shard) {
		defer wg.Done()
		for {
			// End-of-window rendezvous: no shard may drain (or fold its
			// next-event time into the minimum) until every shard has
			// finished the previous window — otherwise late publications
			// into a mailbox race the drain and escape the minimum,
			// letting the next window advance past them. The first
			// iteration passes through trivially.
			b.Wait(nil)
			sh.Drain()
			if t, ok := sh.NextTime(); ok {
				atomicMin(&minBits, t)
			}
			if sh.Aborted() {
				aborted.Store(true)
			}
			b.Wait(func() {
				m := decodeTime(minBits.Load())
				minBits.Store(encodeTime(math.Inf(1)))
				w := m + lookahead
				w -= w * windowShave // NaN when m is +Inf (all quiescent)
				switch {
				case aborted.Load():
					kind = roundAbort
				case math.IsInf(m, 1) || w > end:
					// Every remote event the pending events can still
					// generate lies beyond end (with the shave margin to
					// spare): finish the phase in one run.
					kind = roundFinal
				default:
					if w <= m {
						// Degenerate shave (enormous clock relative to the
						// lookahead): fall back to minimal progress, still
						// far below m+lookahead.
						w = math.Nextafter(m, math.Inf(1))
					}
					kind, bound = roundWindow, w
				}
			})
			switch kind {
			case roundAbort:
				return
			case roundFinal:
				sh.Run(end, incl)
				// One closing barrier so a saturation stop during the
				// final window is still observed by the caller.
				b.Wait(func() {})
				return
			default:
				sh.Run(bound, false)
			}
		}
	}
	wg.Add(len(shards))
	for _, sh := range shards {
		go worker(sh)
	}
	wg.Wait()
	if aborted.Load() {
		return false
	}
	for _, sh := range shards {
		if sh.Aborted() {
			return false
		}
	}
	return true
}
