package par

import (
	"math"
	"slices"
	"sync"
	"testing"
)

// fakeShard is a minimal conservative model for exercising the
// coordinator: a bag of local event times, an inbox peers publish into,
// and an optional "hop" rule that makes each fired event schedule a
// remote event one lookahead later on the next shard — the smallest
// model with real cross-shard traffic.
//
// The mailbox fields are deliberately unsynchronized: the protocol's
// claim is that the barrier hand-off alone makes single-writer
// single-reader mailboxes race-free, and running these tests under
// -race turns that claim into a checked invariant.
type fakeShard struct {
	idx   int
	peers []*fakeShard

	pending []float64
	inbox   []float64
	now     float64
	fired   []float64

	hop   float64 // publish t+hop to the next peer on each fire (0: none)
	chain int     // remaining publishes

	abortAt float64 // abort once an event at or past this time fires
	aborted bool

	stale []float64 // inbound events behind the local clock (conservatism violations)
}

func newFakes(n int, hop float64, chain int) []*fakeShard {
	shards := make([]*fakeShard, n)
	for i := range shards {
		shards[i] = &fakeShard{idx: i, hop: hop, chain: chain, abortAt: math.Inf(1)}
	}
	for _, sh := range shards {
		sh.peers = shards
	}
	return shards
}

func asShards(fs []*fakeShard) []Shard {
	out := make([]Shard, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

func (f *fakeShard) Drain() {
	for _, t := range f.inbox {
		if t < f.now {
			f.stale = append(f.stale, t)
		}
		f.pending = append(f.pending, t)
	}
	f.inbox = f.inbox[:0]
}

func (f *fakeShard) NextTime() (float64, bool) {
	if len(f.pending) == 0 {
		return 0, false
	}
	return slices.Min(f.pending), true
}

func (f *fakeShard) Run(bound float64, incl bool) {
	for {
		t, ok := f.NextTime()
		if !ok || t > bound || (!incl && t >= bound) {
			break
		}
		f.pending = slices.Delete(f.pending, slices.Index(f.pending, t), slices.Index(f.pending, t)+1)
		f.fired = append(f.fired, t)
		if t >= f.abortAt {
			f.aborted = true
		}
		if f.hop > 0 && f.chain > 0 {
			f.chain--
			peer := f.peers[(f.idx+1)%len(f.peers)]
			peer.inbox = append(peer.inbox, t+f.hop)
		}
	}
	f.now = bound
}

func (f *fakeShard) Aborted() bool { return f.aborted }

// TestPhaseFiresEverything pins liveness plus conservatism: a chain of
// cross-shard events hopping around the ring at exactly the lookahead —
// the tightest spacing the protocol admits — all fire, none arrives
// behind its shard's clock, and each shard's firing order is its time
// order.
func TestPhaseFiresEverything(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		const chain = 40
		fs := newFakes(n, 1, chain)
		fs[0].pending = []float64{3}
		const end = 1000 // past the chain's last hop for every n
		if !Phase(asShards(fs), end, 1, true) {
			t.Fatalf("n=%d: phase reported an abort", n)
		}
		total := 0
		for _, f := range fs {
			total += len(f.fired)
			if len(f.stale) != 0 {
				t.Errorf("n=%d: shard %d received events behind its clock: %v", n, f.idx, f.stale)
			}
			if !slices.IsSorted(f.fired) {
				t.Errorf("n=%d: shard %d fired out of time order: %v", n, f.idx, f.fired)
			}
			if f.now != end {
				t.Errorf("n=%d: shard %d clock at %v, want the phase end", n, f.idx, f.now)
			}
		}
		if want := chain*n + 1; total != want {
			t.Errorf("n=%d: %d events fired, want %d (the seed plus every hop)", n, total, want)
		}
	}
}

// TestPhaseEndInclusive pins the end-of-phase semantics: an event
// exactly at the end fires when incl is set and stays pending when it
// is not — mirroring sim.Engine.Run vs RunBefore, which is what lets a
// warmup/measure split replay across Phase calls.
func TestPhaseEndInclusive(t *testing.T) {
	for _, incl := range []bool{true, false} {
		fs := newFakes(2, 0, 0)
		fs[0].pending = []float64{5, 10}
		fs[1].pending = []float64{7}
		if !Phase(asShards(fs), 10, 1, incl) {
			t.Fatal("phase reported an abort")
		}
		firedEnd := slices.Contains(fs[0].fired, 10.0)
		if firedEnd != incl {
			t.Errorf("incl=%v: event at the end fired=%v", incl, firedEnd)
		}
		if !slices.Contains(fs[0].fired, 5.0) || !slices.Contains(fs[1].fired, 7.0) {
			t.Errorf("incl=%v: interior events did not fire", incl)
		}
	}
}

// TestPhaseResumes pins the phase-split contract: RunBefore-style phase
// then Run-style phase over the same shards replays every event exactly
// once, with the boundary event in the second phase.
func TestPhaseResumes(t *testing.T) {
	fs := newFakes(2, 1, 10)
	fs[0].pending = []float64{1, 50}
	if !Phase(asShards(fs), 50, 1, false) {
		t.Fatal("warmup phase aborted")
	}
	if slices.Contains(fs[0].fired, 50.0) {
		t.Fatal("exclusive phase fired its boundary event")
	}
	mid := len(fs[0].fired) + len(fs[1].fired)
	if !Phase(asShards(fs), 80, 1, true) {
		t.Fatal("measure phase aborted")
	}
	if !slices.Contains(fs[0].fired, 50.0) {
		t.Fatal("second phase did not fire the boundary event")
	}
	if total := len(fs[0].fired) + len(fs[1].fired); total <= mid {
		t.Fatalf("second phase fired nothing (%d then %d)", mid, total)
	}
}

// TestPhaseAbort pins the abort path: a shard hitting its stop
// condition mid-phase makes Phase return false, and no shard runs past
// the window in which the abort was raised plus one round (the decision
// is taken at the next barrier).
func TestPhaseAbort(t *testing.T) {
	fs := newFakes(4, 1, 1000)
	fs[0].pending = []float64{1}
	fs[2].abortAt = 20
	if Phase(asShards(fs), 1000, 1, true) {
		t.Fatal("phase with an aborting shard reported success")
	}
	for _, f := range fs {
		for _, ft := range f.fired {
			if ft > 25 {
				t.Fatalf("shard %d fired at %v long after the abort at 20", f.idx, ft)
			}
		}
	}
}

// TestPhaseAbortInFinalRun pins the closing barrier: an abort raised
// during the final inclusive run — after the last decision — must still
// reach the caller.
func TestPhaseAbortInFinalRun(t *testing.T) {
	fs := newFakes(2, 0, 0)
	fs[0].pending = []float64{5}
	fs[0].abortAt = 5
	if Phase(asShards(fs), 6, 1, true) {
		t.Fatal("abort during the final run was lost")
	}
}

// TestPhaseSingleShard pins the degenerate path: one shard needs no
// windows, just a drain and one run to the end.
func TestPhaseSingleShard(t *testing.T) {
	fs := newFakes(1, 0, 0)
	fs[0].pending = []float64{1, 2, 3}
	fs[0].inbox = []float64{2.5}
	if !Phase(asShards(fs), 10, 1, true) {
		t.Fatal("single-shard phase aborted")
	}
	if len(fs[0].fired) != 4 {
		t.Fatalf("fired %v, want all four events", fs[0].fired)
	}
	fs = newFakes(1, 0, 0)
	fs[0].pending = []float64{1}
	fs[0].abortAt = 1
	if Phase(asShards(fs), 10, 1, true) {
		t.Fatal("single-shard abort was lost")
	}
}

// TestPhaseEmptyShards pins quiescence: shards with nothing pending
// still advance to the end and return.
func TestPhaseEmptyShards(t *testing.T) {
	fs := newFakes(3, 0, 0)
	if !Phase(asShards(fs), 42, 1, true) {
		t.Fatal("empty phase aborted")
	}
	for _, f := range fs {
		if f.now != 42 {
			t.Errorf("shard %d clock at %v, want 42", f.idx, f.now)
		}
	}
}

// TestPhaseShaveProgress pins the windowShave fallback: at clocks so
// large that the relative shave exceeds the lookahead, windows
// degenerate and the Nextafter guard must still make progress instead
// of spinning on an empty window.
func TestPhaseShaveProgress(t *testing.T) {
	const base = 1 << 40 // shave at this magnitude is ~1024 >> lookahead
	fs := newFakes(2, 0, 0)
	fs[0].pending = []float64{base}
	fs[1].pending = []float64{base + 0.25}
	if !Phase(asShards(fs), base+1, 1, true) {
		t.Fatal("phase aborted")
	}
	if total := len(fs[0].fired) + len(fs[1].fired); total != 2 {
		t.Fatalf("fired %d events at degenerate-shave magnitude, want 2", total)
	}
}

// TestPhasePanics pins the misuse guards.
func TestPhasePanics(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"no-shards", func() { Phase(nil, 10, 1, true) }},
		{"zero-lookahead", func() { Phase(asShards(newFakes(2, 0, 0)), 10, 0, true) }},
		{"nan-lookahead", func() { Phase(asShards(newFakes(2, 0, 0)), 10, math.NaN(), true) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.call()
		})
	}
}

// TestBarrier pins the rendezvous semantics: every party observes every
// earlier round's last-arriver action, across many rounds and parties.
func TestBarrier(t *testing.T) {
	const parties, rounds = 8, 200
	b := NewBarrier(parties)
	var counter int // written only by last-arriver actions
	var wg sync.WaitGroup
	wg.Add(parties)
	for p := 0; p < parties; p++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b.Wait(func() { counter++ })
				if counter != r+1 {
					t.Errorf("round %d: counter %d", r, counter)
					return
				}
				b.Wait(nil) // hold everyone until the check is done
			}
		}()
	}
	wg.Wait()
	if counter != rounds {
		t.Fatalf("counter %d after %d rounds", counter, rounds)
	}
}

// TestBarrierPanics pins the party-count guard.
func TestBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

// TestTimeEncoding pins the order isomorphism the atomic minimum rests
// on: for non-negative floats and +Inf, bit order is numeric order.
func TestTimeEncoding(t *testing.T) {
	vals := []float64{0, 1e-300, 0.5, 1, 1.0000000000000002, 3, 1e18, math.Inf(1)}
	for i := 0; i < len(vals)-1; i++ {
		if encodeTime(vals[i]) >= encodeTime(vals[i+1]) {
			t.Errorf("encoding inverts %v < %v", vals[i], vals[i+1])
		}
		if decodeTime(encodeTime(vals[i])) != vals[i] {
			t.Errorf("round-trip broke %v", vals[i])
		}
	}
}
