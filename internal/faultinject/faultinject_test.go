package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestNilInjectorIsInert pins the production path: a nil injector never
// injects and never panics.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d := in.Decide("p"); d.Kind != KindNone {
		t.Errorf("nil Decide = %+v, want none", d)
	}
	if err := in.Err("p"); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	data := []byte("payload")
	out, err := in.Mangle("p", data)
	if err != nil || !bytes.Equal(out, data) {
		t.Errorf("nil Mangle = %q, %v", out, err)
	}
	if in.Fired("p") != 0 {
		t.Errorf("nil Fired != 0")
	}
}

// TestDeterministicSequence pins the core property: two injectors with
// the same seed and rules produce identical decision sequences at every
// point, independent of interleaving with other points.
func TestDeterministicSequence(t *testing.T) {
	rules := []Rule{
		{Point: "a", Kind: KindError, Prob: 0.5},
		{Point: "b", Kind: KindCorrupt, Prob: 0.3},
	}
	seq := func(interleave bool) []Kind {
		in := New(42, rules...)
		var out []Kind
		for i := 0; i < 200; i++ {
			if interleave {
				in.Decide("b") // unrelated point must not disturb "a"
			}
			out = append(out, in.Decide("a").Kind)
		}
		return out
	}
	plain, mixed := seq(false), seq(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("call %d: %v with interleaving, %v without", i, mixed[i], plain[i])
		}
	}
	fired := 0
	for _, k := range plain {
		if k == KindError {
			fired++
		}
	}
	if fired < 50 || fired > 150 {
		t.Errorf("prob 0.5 fired %d/200 times", fired)
	}
	if in := New(7, rules...); in.Decide("a") == (Decision{}) && in.Fired("a") != 0 {
		t.Errorf("Fired counts a non-firing call")
	}
}

// TestFirstAndAfter pins the windowing knobs: After skips leading
// calls, First caps total fires — the "fail the first two attempts,
// then recover" retry-test shape.
func TestFirstAndAfter(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: KindError, First: 2, After: 1})
	want := []Kind{KindNone, KindError, KindError, KindNone, KindNone}
	for i, w := range want {
		if got := in.Decide("p").Kind; got != w {
			t.Errorf("call %d = %v, want %v", i, got, w)
		}
	}
	if got := in.Fired("p"); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

// TestRulePrecedence pins first-match-wins among rules on one point.
func TestRulePrecedence(t *testing.T) {
	in := New(1,
		Rule{Point: "p", Kind: KindError, First: 1},
		Rule{Point: "p", Kind: KindCorrupt},
	)
	if got := in.Decide("p").Kind; got != KindError {
		t.Errorf("call 0 = %v, want error", got)
	}
	if got := in.Decide("p").Kind; got != KindCorrupt {
		t.Errorf("call 1 = %v, want corrupt (first rule exhausted)", got)
	}
}

// TestErrHelper pins the error-seam helper's mapping.
func TestErrHelper(t *testing.T) {
	in := New(1,
		Rule{Point: "p", Kind: KindLatency, Latency: time.Millisecond, First: 1},
		Rule{Point: "p", Kind: KindError, First: 1},
	)
	if err := in.Err("p"); err != nil {
		t.Errorf("latency call: %v", err)
	}
	if err := in.Err("p"); !errors.Is(err, ErrInjected) {
		t.Errorf("error call = %v, want ErrInjected", err)
	}
	if err := in.Err("p"); err != nil {
		t.Errorf("exhausted rules: %v", err)
	}
}

// TestMangle pins each write-path damage mode and that the input buffer
// is never modified in place.
func TestMangle(t *testing.T) {
	orig := []byte("0123456789abcdef")
	data := append([]byte(nil), orig...)

	in := New(1, Rule{Point: "p", Kind: KindShortWrite, First: 1})
	out, err := in.Mangle("p", data)
	if err != nil || len(out) != len(data)/2 || !bytes.Equal(out, data[:len(data)/2]) {
		t.Errorf("short write = %q, %v", out, err)
	}

	in = New(1, Rule{Point: "p", Kind: KindCorrupt, First: 1})
	out, err = in.Mangle("p", data)
	if err != nil || len(out) != len(data) || bytes.Equal(out, data) {
		t.Errorf("corrupt = %q, %v", out, err)
	}
	if !bytes.Equal(data, orig) {
		t.Errorf("Mangle modified its input: %q", data)
	}

	in = New(1, Rule{Point: "p", Kind: KindError, First: 1})
	if _, err := in.Mangle("p", data); !errors.Is(err, ErrInjected) {
		t.Errorf("error = %v, want ErrInjected", err)
	}
	if out, err := in.Mangle("p", data); err != nil || !bytes.Equal(out, data) {
		t.Errorf("clean call = %q, %v", out, err)
	}
}

// TestTransport drives each transport fault through a real HTTP
// round trip.
func TestTransport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true,"padding":"0123456789"}`)
	}))
	defer srv.Close()

	get := func(in *Injector) (string, error) {
		client := &http.Client{Transport: &Transport{Point: "peer", Inj: in}}
		resp, err := client.Get(srv.URL)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	full, err := get(nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := get(New(1, Rule{Point: "peer", Kind: KindError})); !errors.Is(err, ErrInjected) {
		t.Errorf("error injection: %v, want ErrInjected", err)
	}

	if body, err := get(New(1, Rule{Point: "peer", Kind: KindPartial})); err != nil {
		t.Errorf("partial injection: %v", err)
	} else if len(body) != len(full)/2 {
		t.Errorf("partial body %d bytes, want %d", len(body), len(full)/2)
	}

	start := time.Now()
	if body, err := get(New(1, Rule{Point: "peer", Kind: KindLatency, Latency: 30 * time.Millisecond})); err != nil || body != full {
		t.Errorf("latency injection: %q, %v", body, err)
	} else if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency injection took %v, want >= 30ms", d)
	}
}

// TestTransportLatencyHonorsContext pins that an injected delay aborts
// when the request context does — the seam hedging relies on.
func TestTransportLatencyHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	client := &http.Client{
		Transport: &Transport{Point: "peer", Inj: New(1, Rule{Point: "peer", Kind: KindLatency, Latency: time.Minute})},
		Timeout:   20 * time.Millisecond,
	}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("delayed request succeeded, want context error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancelation took %v", d)
	}
}
