// Package faultinject is a seeded, deterministic fault injector for the
// serving stack's storage and transport seams. A test (or a chaos CI
// job) hands the store and the fleet transport one Injector configured
// with rules — "fail the first two peer calls", "corrupt 40% of store
// writes", "delay every third response" — and the injected faults play
// out identically on every run with the same seed: each injection point
// draws from its own PCG stream derived from (seed, point), so the
// decision at call #k of a point is a pure function of the seed, never
// of goroutine interleaving at other points.
//
// The package fabricates failures only; it never changes what a correct
// component computes. The chaos suites in noc/service/store and
// noc/service/fleet use it to prove the serving stack's core guarantee:
// under injected errors, latency, torn writes, corruption and truncated
// responses, a served Result is either bitwise-identical to the cold
// evaluation or an explicit error — never silently wrong.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sync"
	"time"
)

// ErrInjected marks every failure this package fabricates. Match with
// errors.Is to tell an injected fault from a real one in test asserts.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind is the failure mode a rule injects.
type Kind int

const (
	// KindNone is the zero decision: no fault.
	KindNone Kind = iota
	// KindError fails the operation outright with ErrInjected.
	KindError
	// KindLatency delays the operation by the rule's Latency.
	KindLatency
	// KindShortWrite truncates a write-path payload, simulating a torn
	// write (crash mid-write, full disk) that a checksum must catch.
	KindShortWrite
	// KindCorrupt flips a byte of a write-path payload, simulating
	// on-media corruption.
	KindCorrupt
	// KindPartial truncates a transport response body mid-document.
	KindPartial
)

// String names the kind for messages and test output.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindShortWrite:
		return "short-write"
	case KindCorrupt:
		return "corrupt"
	case KindPartial:
		return "partial-response"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule arms one failure mode at one injection point. A rule is eligible
// for a call when the point's call index is past After and the rule has
// fired fewer than First times (First <= 0 means unlimited); an eligible
// rule fires with probability Prob (Prob <= 0 or >= 1 means always).
// The first armed rule that fires wins the call.
type Rule struct {
	// Point names the seam, e.g. "store.put" or "peer".
	Point string
	// Kind is the failure mode to inject.
	Kind Kind
	// Prob is the per-call fire probability in (0, 1); out-of-range
	// means fire on every eligible call.
	Prob float64
	// First caps how many times this rule fires; <= 0 is unlimited.
	First int
	// After skips the first After calls at the point before the rule
	// becomes eligible.
	After int
	// Latency is the injected delay for KindLatency.
	Latency time.Duration
}

// Decision is the outcome of one Decide call.
type Decision struct {
	Kind    Kind
	Latency time.Duration
}

// pointState is one injection point's deterministic stream: a call
// counter, per-rule fire counts, and a PCG seeded from (seed, point).
type pointState struct {
	calls int
	fired map[int]int
	rng   *rand.Rand
}

// Injector decides, per call, whether a seam fails and how. A nil
// *Injector is valid and never injects, so production paths thread it
// through unconditionally.
type Injector struct {
	seed  uint64
	rules []Rule

	mu     sync.Mutex
	points map[string]*pointState
	total  map[string]int
}

// New builds an injector with the given seed and rules. The same seed
// and rules reproduce the same decision sequence at every point.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		seed:   seed,
		rules:  append([]Rule(nil), rules...),
		points: make(map[string]*pointState),
		total:  make(map[string]int),
	}
}

// Decide consumes one call at point and returns the fault to apply, if
// any. Safe for concurrent use; nil receivers always decide KindNone.
func (in *Injector) Decide(point string) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[point]
	if st == nil {
		h := fnv.New64a()
		h.Write([]byte(point))
		st = &pointState{
			fired: make(map[int]int),
			rng:   rand.New(rand.NewPCG(in.seed, h.Sum64())),
		}
		in.points[point] = st
	}
	idx := st.calls
	st.calls++
	for ri, r := range in.rules {
		if r.Point != point || idx < r.After {
			continue
		}
		if r.First > 0 && st.fired[ri] >= r.First {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && st.rng.Float64() >= r.Prob {
			continue
		}
		st.fired[ri]++
		in.total[point]++
		return Decision{Kind: r.Kind, Latency: r.Latency}
	}
	return Decision{}
}

// Fired reports how many faults have fired at point so far.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total[point]
}

// Err is the decision helper for error-only seams: it sleeps out an
// injected latency and turns every other fault kind into an ErrInjected
// failure. Nil receivers return nil.
func (in *Injector) Err(point string) error {
	d := in.Decide(point)
	switch d.Kind {
	case KindNone:
		return nil
	case KindLatency:
		time.Sleep(d.Latency)
		return nil
	default:
		return fmt.Errorf("%w: %s at %s", ErrInjected, d.Kind, point)
	}
}

// Mangle applies a write-path fault to one encoded record: KindError
// fails the write cleanly, KindShortWrite truncates the payload to half
// (a torn write the caller will persist), KindCorrupt flips the middle
// byte, KindLatency sleeps. The damaged payload is a copy; the input is
// never modified.
func (in *Injector) Mangle(point string, data []byte) ([]byte, error) {
	d := in.Decide(point)
	switch d.Kind {
	case KindError:
		return nil, fmt.Errorf("%w: error at %s", ErrInjected, point)
	case KindShortWrite:
		return append([]byte(nil), data[:len(data)/2]...), nil
	case KindCorrupt:
		damaged := append([]byte(nil), data...)
		if len(damaged) > 0 {
			damaged[len(damaged)/2] ^= 0xff
		}
		return damaged, nil
	case KindLatency:
		time.Sleep(d.Latency)
	}
	return data, nil
}
