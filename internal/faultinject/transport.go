package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport injects faults into an HTTP client's round trips — the
// fleet's peer-transport seam. KindError fails the request before it
// leaves, KindLatency delays it (honoring the request context, so a
// hedged caller can abandon a delayed request), and KindPartial
// truncates the response body mid-document so the caller's JSON decode
// fails the way a connection dropped mid-response would.
type Transport struct {
	// Base performs the real round trip; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Point is the injection-point name, e.g. "peer".
	Point string
	// Inj decides each call; nil never injects.
	Inj *Injector
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.Inj.Decide(t.Point)
	switch d.Kind {
	case KindError:
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Redacted())
	case KindLatency:
		timer := time.NewTimer(d.Latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || d.Kind != KindPartial {
		return resp, err
	}
	// Truncate the delivered body to half; a JSON document cut in the
	// middle can never decode, so the client sees a malformed response,
	// not a plausible wrong one.
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("faultinject: draining response for truncation: %w", err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
	return resp, nil
}
