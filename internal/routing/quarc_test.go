package routing

import (
	"testing"
	"testing/quick"

	"quarc/internal/topology"
)

func mustRouter(t *testing.T, n int) *QuarcRouter {
	t.Helper()
	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatalf("NewQuarc(%d): %v", n, err)
	}
	return NewQuarcRouter(q)
}

// pathIsWellFormed checks the structural invariants every path must have:
// injection first, ejection last, links in the middle, and physically
// consecutive (each link starts where the previous ended).
func pathIsWellFormed(t *testing.T, g *topology.Graph, src, dst topology.NodeID, p Path) {
	t.Helper()
	if len(p) < 2 {
		t.Fatalf("path %v too short", p)
	}
	first := g.Channel(p[0])
	last := g.Channel(p[len(p)-1])
	if first.Kind != topology.Injection || first.Src != src {
		t.Fatalf("path must start with injection at %d, got %v", src, first)
	}
	if last.Kind != topology.Ejection || last.Src != dst {
		t.Fatalf("path must end with ejection at %d, got %v", dst, last)
	}
	cur := src
	for _, id := range p[1 : len(p)-1] {
		c := g.Channel(id)
		if c.Kind != topology.Link {
			t.Fatalf("interior channel %v is not a link", c)
		}
		if c.Src != cur {
			t.Fatalf("link %v does not start at %d", c, cur)
		}
		cur = c.Dst
	}
	if cur != dst {
		t.Fatalf("path ends at %d, want %d", cur, dst)
	}
}

func TestUnicastPathsAllPairs(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		rt := mustRouter(t, n)
		q := rt.Quarc()
		for src := topology.NodeID(0); int(src) < n; src++ {
			for dst := topology.NodeID(0); int(dst) < n; dst++ {
				if src == dst {
					if _, err := rt.UnicastPath(src, dst); err == nil {
						t.Fatalf("self-path %d accepted", src)
					}
					continue
				}
				p, err := rt.UnicastPath(src, dst)
				if err != nil {
					t.Fatalf("UnicastPath(%d,%d): %v", src, dst, err)
				}
				pathIsWellFormed(t, rt.Graph(), src, dst, p)
				// Path = injection + dist links + ejection.
				if want := q.Dist(src, dst) + 2; len(p) != want {
					t.Fatalf("path %d->%d has %d channels, want %d", src, dst, len(p), want)
				}
			}
		}
	}
}

func TestUnicastPortMatchesQuadrant(t *testing.T) {
	rt := mustRouter(t, 16)
	cases := []struct {
		dst  topology.NodeID
		port int
	}{
		{1, topology.PortL}, {4, topology.PortL},
		{5, topology.PortCL}, {8, topology.PortCL},
		{9, topology.PortCR}, {11, topology.PortCR},
		{12, topology.PortR}, {15, topology.PortR},
	}
	for _, c := range cases {
		port, err := rt.UnicastPort(0, c.dst)
		if err != nil {
			t.Fatalf("UnicastPort(0,%d): %v", c.dst, err)
		}
		if port != c.port {
			t.Errorf("port for dst %d = %s, want %s", c.dst,
				topology.QuarcPortName(port), topology.QuarcPortName(c.port))
		}
	}
}

func TestCrossPathsUseCrossLinkFirst(t *testing.T) {
	rt := mustRouter(t, 16)
	g := rt.Graph()
	// 0 -> 6 is cross-left: inj, crossL, rim-, rim-, eject.
	p, err := rt.UnicastPath(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c := g.Channel(p[1]); c.Class != topology.CrossL {
		t.Errorf("first link of 0->6 = %v, want cross-left", c)
	}
	for _, id := range p[2 : len(p)-1] {
		if c := g.Channel(id); c.Class != topology.RimMinus {
			t.Errorf("post-cross link of 0->6 = %v, want rim-", c)
		}
	}
	// 0 -> 10 is cross-right: inj, crossR, rim+, rim+, eject.
	p, err = rt.UnicastPath(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c := g.Channel(p[1]); c.Class != topology.CrossR {
		t.Errorf("first link of 0->10 = %v, want cross-right", c)
	}
	for _, id := range p[2 : len(p)-1] {
		if c := g.Channel(id); c.Class != topology.RimPlus {
			t.Errorf("post-cross link of 0->10 = %v, want rim+", c)
		}
	}
}

func TestEjectionPortMatchesArrivalDirection(t *testing.T) {
	rt := mustRouter(t, 16)
	g := rt.Graph()
	eject := func(p Path) topology.Channel { return g.Channel(p[len(p)-1]) }

	p, _ := rt.UnicastPath(0, 3) // L quadrant, arrives on rim+
	if c := eject(p); c.Class != topology.RimPlus {
		t.Errorf("L arrival ejection port = %d, want rim+", c.Class)
	}
	p, _ = rt.UnicastPath(0, 13) // R quadrant, arrives on rim-
	if c := eject(p); c.Class != topology.RimMinus {
		t.Errorf("R arrival ejection port = %d, want rim-", c.Class)
	}
	p, _ = rt.UnicastPath(0, 8) // opposite node, arrives on crossL
	if c := eject(p); c.Class != topology.CrossL {
		t.Errorf("cross arrival ejection port = %d, want crossL", c.Class)
	}
}

func TestVCDatelineOnWrappedPaths(t *testing.T) {
	rt := mustRouter(t, 16)
	g := rt.Graph()
	// 14 -> 2 travels rim+ 14,15,0,1: links at 14,15 on VC0, links at 0,1 on VC1.
	p, err := rt.UnicastPath(14, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantVC := []int{0, 0, 1, 1}
	links := p[1 : len(p)-1]
	if len(links) != 4 {
		t.Fatalf("14->2 has %d links, want 4", len(links))
	}
	for i, id := range links {
		if c := g.Channel(id); c.VC != wantVC[i] {
			t.Errorf("link %d of 14->2 VC = %d, want %d", i, c.VC, wantVC[i])
		}
	}
}

func TestBroadcastSetMatchesFig3(t *testing.T) {
	rt := mustRouter(t, 16)
	set := rt.BroadcastSet()
	if set.Size() != 15 {
		t.Fatalf("broadcast set covers %d nodes, want 15", set.Size())
	}
	branches, err := rt.MulticastBranches(0, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 4 {
		t.Fatalf("broadcast has %d branches, want 4", len(branches))
	}
	endpoints := map[int]topology.NodeID{}
	covered := map[topology.NodeID]bool{}
	for _, b := range branches {
		endpoints[b.Port] = b.Targets[len(b.Targets)-1]
		for _, n := range b.Targets {
			if covered[n] {
				t.Fatalf("node %d covered twice", n)
			}
			covered[n] = true
		}
	}
	want := map[int]topology.NodeID{
		topology.PortL:  4,
		topology.PortCL: 5,
		topology.PortCR: 11,
		topology.PortR:  12,
	}
	for p, w := range want {
		if endpoints[p] != w {
			t.Errorf("branch %s endpoint = %d, want %d", topology.QuarcPortName(p), endpoints[p], w)
		}
	}
	if len(covered) != 15 {
		t.Fatalf("broadcast covers %d nodes, want 15", len(covered))
	}
}

func TestMulticastBranchPathsEndAtLastTarget(t *testing.T) {
	rt := mustRouter(t, 32)
	g := rt.Graph()
	set := NewMulticastSet(topology.QuarcPorts)
	set = set.Add(topology.PortL, 2).Add(topology.PortL, 5)
	set = set.Add(topology.PortCR, 3)
	branches, err := rt.MulticastBranches(7, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("branches = %d, want 2", len(branches))
	}
	for _, b := range branches {
		end := b.Targets[len(b.Targets)-1]
		pathIsWellFormed(t, g, 7, end, b.Path)
		switch b.Port {
		case topology.PortL:
			if end != 12 { // 7 + 5
				t.Errorf("L branch endpoint = %d, want 12", end)
			}
			if len(b.Targets) != 2 || b.Targets[0] != 9 {
				t.Errorf("L branch targets = %v, want [9 12]", b.Targets)
			}
		case topology.PortCR:
			if end != 7+16+2 { // src + N/2 + (hop-1)
				t.Errorf("CR branch endpoint = %d, want 25", end)
			}
		default:
			t.Errorf("unexpected branch on port %s", topology.QuarcPortName(b.Port))
		}
	}
}

func TestMulticastRejectsInvalidHops(t *testing.T) {
	rt := mustRouter(t, 16)
	// Hop beyond the quadrant.
	bad := NewMulticastSet(topology.QuarcPorts).Add(topology.PortL, 5)
	if _, err := rt.MulticastBranches(0, bad); err == nil {
		t.Error("accepted L target beyond quadrant")
	}
	// CR hop 1 is the opposite node, which belongs to the CL quadrant.
	bad = NewMulticastSet(topology.QuarcPorts).Add(topology.PortCR, 1)
	if _, err := rt.MulticastBranches(0, bad); err == nil {
		t.Error("accepted CR target at hop 1")
	}
	// Wrong port count.
	if _, err := rt.MulticastBranches(0, NewMulticastSet(2)); err == nil {
		t.Error("accepted set with wrong port count")
	}
}

func TestSetFromNodesRoundTrip(t *testing.T) {
	rt := mustRouter(t, 16)
	dests := []topology.NodeID{2, 6, 9, 14}
	set, err := rt.SetFromNodes(0, dests)
	if err != nil {
		t.Fatal(err)
	}
	branches, err := rt.MulticastBranches(0, set)
	if err != nil {
		t.Fatal(err)
	}
	got := map[topology.NodeID]bool{}
	for _, b := range branches {
		for _, n := range b.Targets {
			got[n] = true
		}
	}
	if len(got) != len(dests) {
		t.Fatalf("round trip covers %d nodes, want %d", len(got), len(dests))
	}
	for _, d := range dests {
		if !got[d] {
			t.Errorf("destination %d lost in round trip", d)
		}
	}
	if _, err := rt.SetFromNodes(3, []topology.NodeID{3}); err == nil {
		t.Error("SetFromNodes accepted the source as destination")
	}
}

func TestMulticastSetHelpers(t *testing.T) {
	s := NewMulticastSet(4).Add(0, 1).Add(0, 3).Add(2, 2)
	if !s.Has(0, 1) || !s.Has(0, 3) || s.Has(0, 2) {
		t.Error("Has gave wrong membership")
	}
	if got := s.LastHop(0); got != 3 {
		t.Errorf("LastHop(0) = %d, want 3", got)
	}
	if got := s.LastHop(1); got != 0 {
		t.Errorf("LastHop(1) = %d, want 0", got)
	}
	if hops := s.Hops(0); len(hops) != 2 || hops[0] != 1 || hops[1] != 3 {
		t.Errorf("Hops(0) = %v, want [1 3]", hops)
	}
	if s.Size() != 3 {
		t.Errorf("Size = %d, want 3", s.Size())
	}
	if s.Empty() {
		t.Error("non-empty set reported Empty")
	}
	if ports := s.ActivePorts(); len(ports) != 2 || ports[0] != 0 || ports[1] != 2 {
		t.Errorf("ActivePorts = %v, want [0 2]", ports)
	}
	if NewMulticastSet(4).Size() != 0 || !NewMulticastSet(4).Empty() {
		t.Error("fresh set must be empty")
	}
}

func TestMulticastSetString(t *testing.T) {
	s := NewMulticastSet(4).Add(0, 1).Add(3, 2)
	if got := s.String(); got != "L=1 LO=0 RO=0 R=10" {
		t.Errorf("String = %q", got)
	}
	s2 := NewMulticastSet(2).Add(1, 1)
	if got := s2.String(); got != "P0=0 P1=1" {
		t.Errorf("String = %q", got)
	}
}

// Property: every broadcast branch path has at most N/4 + 2 channels and
// every covered node appears exactly once across the branches.
func TestBroadcastPropertyAllSizes(t *testing.T) {
	f := func(seed uint8) bool {
		sizes := []int{8, 16, 32, 64}
		n := sizes[int(seed)%len(sizes)]
		rt := mustRouter(t, n)
		src := topology.NodeID(int(seed) % n)
		branches, err := rt.MulticastBranches(src, rt.BroadcastSet())
		if err != nil {
			return false
		}
		covered := map[topology.NodeID]bool{}
		for _, b := range branches {
			if len(b.Path) > n/4+2 {
				return false
			}
			for _, node := range b.Targets {
				if covered[node] || node == src {
					return false
				}
				covered[node] = true
			}
		}
		return len(covered) == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
