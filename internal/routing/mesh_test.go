package routing

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"quarc/internal/topology"
)

func meshRouter(t *testing.T, w, h int, wrap bool) *MeshRouter {
	t.Helper()
	var m *topology.Mesh
	var err error
	if wrap {
		m, err = topology.NewTorus(w, h)
	} else {
		m, err = topology.NewMesh(w, h)
	}
	if err != nil {
		t.Fatal(err)
	}
	return NewMeshRouter(m)
}

func TestMeshUnicastAllPairs(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		rt := meshRouter(t, 4, 4, wrap)
		m := rt.Mesh()
		for src := topology.NodeID(0); int(src) < 16; src++ {
			for dst := topology.NodeID(0); int(dst) < 16; dst++ {
				if src == dst {
					if _, err := rt.UnicastPath(src, dst); err == nil {
						t.Fatal("self path accepted")
					}
					continue
				}
				p, err := rt.UnicastPath(src, dst)
				if err != nil {
					t.Fatalf("wrap=%v path %d->%d: %v", wrap, src, dst, err)
				}
				pathIsWellFormed(t, rt.Graph(), src, dst, p)
				if want := m.Dist(src, dst) + 2; len(p) != want {
					t.Fatalf("wrap=%v path %d->%d has %d channels, want %d (shortest)",
						wrap, src, dst, len(p), want)
				}
			}
		}
	}
}

func TestMeshXYOrder(t *testing.T) {
	rt := meshRouter(t, 4, 4, false)
	g := rt.Graph()
	// (0,0) -> (2,3): X+ twice then Y+ three times.
	p, err := rt.UnicastPath(rt.Mesh().ID(0, 0), rt.Mesh().ID(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	classes := []int{}
	for _, id := range p[1 : len(p)-1] {
		classes = append(classes, g.Channel(id).Class)
	}
	want := []int{topology.XPlus, topology.XPlus, topology.YPlus, topology.YPlus, topology.YPlus}
	if len(classes) != len(want) {
		t.Fatalf("link classes %v, want %v", classes, want)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("link classes %v, want %v (X before Y)", classes, want)
		}
	}
}

func TestMeshUnicastUsesUnicastPlane(t *testing.T) {
	rt := meshRouter(t, 4, 4, false)
	g := rt.Graph()
	p, _ := rt.UnicastPath(0, 15)
	for _, id := range p[1 : len(p)-1] {
		if c := g.Channel(id); c.VC != topology.MeshVCUnicast {
			t.Fatalf("unicast link on VC %d, want %d", c.VC, topology.MeshVCUnicast)
		}
	}
}

func TestTorusDatelineVC(t *testing.T) {
	rt := meshRouter(t, 4, 4, true)
	g := rt.Graph()
	m := rt.Mesh()
	// (3,0) -> (1,0) wraps: links at x=3 (wrap link, VC0) then x=0 (VC1).
	p, err := rt.UnicastPath(m.ID(3, 0), m.ID(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	links := p[1 : len(p)-1]
	if len(links) != 2 {
		t.Fatalf("wrap path has %d links, want 2", len(links))
	}
	if c := g.Channel(links[0]); c.VC != topology.MeshVCUnicast {
		t.Errorf("wrap link VC = %d, want %d", c.VC, topology.MeshVCUnicast)
	}
	if c := g.Channel(links[1]); c.VC != topology.TorusVCUnicastWrapped {
		t.Errorf("post-wrap link VC = %d, want %d", c.VC, topology.TorusVCUnicastWrapped)
	}
}

func TestMeshMulticastBranches(t *testing.T) {
	rt := meshRouter(t, 4, 4, false)
	set, err := rt.HighLowSet([]int{2, 5}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	src := rt.Mesh().ID(1, 1) // Hamilton index 6 (row 1 is reversed)
	branches, err := rt.MulticastBranches(src, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("branches = %d, want 2", len(branches))
	}
	m := rt.Mesh()
	base := m.HamiltonIndex(src)
	for _, b := range branches {
		end := b.Targets[len(b.Targets)-1]
		pathIsWellFormed(t, rt.Graph(), src, end, b.Path)
		// All network links must ride the multicast plane.
		for _, id := range b.Path[1 : len(b.Path)-1] {
			if c := rt.Graph().Channel(id); c.VC != topology.MeshVCMulticast {
				t.Fatalf("multicast link on VC %d", c.VC)
			}
		}
		// Targets must sit at the requested Hamilton offsets.
		for _, target := range b.Targets {
			off := m.HamiltonIndex(target) - base
			if off < 0 {
				off = -off
			}
			if off == 0 {
				t.Fatalf("source is its own target")
			}
		}
	}
}

func TestMeshMulticastClipsAtPathEnds(t *testing.T) {
	rt := meshRouter(t, 4, 4, false)
	set, err := rt.HighLowSet([]int{1, 40}, nil) // 40 beyond the 16-node path
	if err != nil {
		t.Fatal(err)
	}
	branches, err := rt.MulticastBranches(0, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 1 || len(branches[0].Targets) != 1 {
		t.Fatalf("clipping failed: %+v", branches)
	}
	// A set with no reachable targets errors.
	loSet, _ := rt.HighLowSet(nil, []int{5})
	if _, err := rt.MulticastBranches(0, loSet); err == nil {
		t.Error("low-path targets from Hamilton start accepted")
	}
}

func TestMeshMulticastRejectsBadSets(t *testing.T) {
	rt := meshRouter(t, 4, 4, false)
	bad := NewMulticastSet(topology.MeshPorts).Add(2, 1)
	if _, err := rt.MulticastBranches(0, bad); err == nil {
		t.Error("set using port 2 accepted")
	}
	if _, err := rt.MulticastBranches(0, NewMulticastSet(1)); err == nil {
		t.Error("wrong port count accepted")
	}
	if _, err := rt.HighLowSet([]int{0}, nil); err == nil {
		t.Error("offset 0 accepted")
	}
	if _, err := rt.HighLowSet(nil, []int{65}); err == nil {
		t.Error("offset 65 accepted")
	}
}

func TestHypercubeUnicastAllPairs(t *testing.T) {
	h, err := topology.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewHypercubeRouter(h)
	for src := topology.NodeID(0); src < 16; src++ {
		for dst := topology.NodeID(0); dst < 16; dst++ {
			if src == dst {
				continue
			}
			p, err := rt.UnicastPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			pathIsWellFormed(t, rt.Graph(), src, dst, p)
			if want := h.Dist(src, dst) + 2; len(p) != want {
				t.Fatalf("path %d->%d has %d channels, want %d", src, dst, len(p), want)
			}
		}
	}
}

func TestHypercubeECubeOrder(t *testing.T) {
	h, _ := topology.NewHypercube(4)
	rt := NewHypercubeRouter(h)
	p, err := rt.UnicastPath(0, 0b1011)
	if err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	dims := []int{}
	for _, id := range p[1 : len(p)-1] {
		dims = append(dims, g.Channel(id).Class)
	}
	want := []int{0, 1, 3} // ascending dimensions
	if len(dims) != 3 {
		t.Fatalf("dims %v, want %v", dims, want)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims %v, want %v", dims, want)
		}
	}
	if port, _ := rt.UnicastPort(0, 0b1010); port != 1 {
		t.Errorf("port for 0->0b1010 = %d, want 1", port)
	}
}

func TestHypercubeFanoutMulticast(t *testing.T) {
	h, _ := topology.NewHypercube(3)
	rt := NewHypercubeRouter(h)
	set := NewMulticastSet(1).Add(0, 1).Add(0, 6) // XOR offsets 1 and 6
	branches, err := rt.MulticastBranches(5, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 2 {
		t.Fatalf("branches = %d, want 2", len(branches))
	}
	got := map[topology.NodeID]bool{}
	for _, b := range branches {
		got[b.Targets[0]] = true
	}
	if !got[5^1] || !got[5^6] {
		t.Fatalf("fanout targets wrong: %v", got)
	}
	if _, err := rt.MulticastBranches(0, NewMulticastSet(1)); err == nil {
		t.Error("empty set accepted")
	}
}

func TestSpidergonUnicastAllPairs(t *testing.T) {
	s, err := topology.NewSpidergon(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewSpidergonRouter(s)
	for src := topology.NodeID(0); src < 16; src++ {
		for dst := topology.NodeID(0); dst < 16; dst++ {
			if src == dst {
				continue
			}
			p, err := rt.UnicastPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			pathIsWellFormed(t, rt.Graph(), src, dst, p)
			if want := s.Dist(src, dst) + 2; len(p) != want {
				t.Fatalf("path %d->%d has %d channels, want %d", src, dst, len(p), want)
			}
		}
	}
}

func TestSpidergonCrossFirst(t *testing.T) {
	s, _ := topology.NewSpidergon(16)
	rt := NewSpidergonRouter(s)
	// 0 -> 6 is beyond a quarter: must cross first.
	p, err := rt.UnicastPath(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c := rt.Graph().Channel(p[1]); c.Class != topology.CrossL {
		t.Errorf("first link = %v, want cross", c)
	}
}

func TestSpidergonBroadcastIsNMinus1Unicasts(t *testing.T) {
	s, _ := topology.NewSpidergon(16)
	rt := NewSpidergonRouter(s)
	branches, err := rt.MulticastBranches(3, rt.BroadcastSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 15 {
		t.Fatalf("broadcast branches = %d, want N-1 = 15", len(branches))
	}
	covered := map[topology.NodeID]bool{}
	for _, b := range branches {
		if len(b.Targets) != 1 {
			t.Fatalf("unicast branch with %d targets", len(b.Targets))
		}
		covered[b.Targets[0]] = true
		// All branches leave through the single injection port.
		if c := rt.Graph().Channel(b.Path[0]); c.Kind != topology.Injection || c.Class != 0 {
			t.Fatalf("branch injects via %v, want port 0", c)
		}
	}
	if len(covered) != 15 || covered[3] {
		t.Fatalf("broadcast covers %d nodes (self=%v)", len(covered), covered[3])
	}
}

func TestOnePortQuarcRouting(t *testing.T) {
	q, err := topology.NewQuarcOnePort(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewQuarcRouter(q)
	// All unicast paths inject and eject through port 0, but still follow
	// the quadrant routes.
	for _, dst := range []topology.NodeID{3, 6, 10, 14} {
		p, err := rt.UnicastPath(0, dst)
		if err != nil {
			t.Fatal(err)
		}
		g := rt.Graph()
		if c := g.Channel(p[0]); c.Class != 0 {
			t.Errorf("one-port injection class = %d, want 0", c.Class)
		}
		if c := g.Channel(p[len(p)-1]); c.Class != 0 {
			t.Errorf("one-port ejection class = %d, want 0", c.Class)
		}
		if want := q.Dist(0, dst) + 2; len(p) != want {
			t.Errorf("one-port path to %d has %d channels, want %d", dst, len(p), want)
		}
	}
	// Broadcast branches all share the single injection channel.
	branches, err := rt.MulticastBranches(0, rt.BroadcastSet())
	if err != nil {
		t.Fatal(err)
	}
	inj := branches[0].Path[0]
	for _, b := range branches {
		if b.Path[0] != inj {
			t.Fatal("one-port broadcast branches use different injection channels")
		}
	}
}

// Property: mesh unicast paths are always shortest, on mesh and torus.
func TestMeshPathsShortestProperty(t *testing.T) {
	rtm := meshRouter(t, 5, 3, false)
	rtt := meshRouter(t, 5, 3, true)
	f := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % 15)
		dst := topology.NodeID(int(b) % 15)
		if src == dst {
			return true
		}
		pm, err := rtm.UnicastPath(src, dst)
		if err != nil {
			return false
		}
		pt, err := rtt.UnicastPath(src, dst)
		if err != nil {
			return false
		}
		return len(pm) == rtm.Mesh().Dist(src, dst)+2 && len(pt) == rtt.Mesh().Dist(src, dst)+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestSpidergonSetBuilders(t *testing.T) {
	s, err := topology.NewSpidergon(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewSpidergonRouter(s)
	loc, err := rt.LocalizedSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Size() != 3 || !loc.Has(0, 1) || !loc.Has(0, 3) {
		t.Fatalf("localized set wrong: %v", loc)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	rnd, err := rt.RandomSet(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Size() != 5 {
		t.Fatalf("random set size = %d, want 5", rnd.Size())
	}
	branches, err := rt.MulticastBranches(2, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 5 {
		t.Fatalf("branches = %d, want 5", len(branches))
	}
	if _, err := rt.RandomSet(rng, 16); err == nil {
		t.Error("oversized random set accepted")
	}
	if _, err := rt.LocalizedSet(0); err == nil {
		t.Error("empty localized set accepted")
	}
}
