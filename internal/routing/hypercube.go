package routing

import (
	"fmt"

	"quarc/internal/topology"
)

// HypercubeRouter implements e-cube (ascending dimension-order) unicast
// routing on a binary hypercube with all-port routers, and software-style
// multicast by unicast fan-out: one independent worm per destination, the
// scheme one-port machines without hardware multicast fall back to.
type HypercubeRouter struct {
	h *topology.Hypercube
}

// NewHypercubeRouter returns a router over the given hypercube.
func NewHypercubeRouter(h *topology.Hypercube) *HypercubeRouter { return &HypercubeRouter{h: h} }

// Graph returns the underlying channel graph.
func (rt *HypercubeRouter) Graph() *topology.Graph { return rt.h.Graph }

// Hypercube returns the underlying topology.
func (rt *HypercubeRouter) Hypercube() *topology.Hypercube { return rt.h }

// UnicastPort returns the first dimension the e-cube route corrects: the
// lowest set bit of src XOR dst.
func (rt *HypercubeRouter) UnicastPort(src, dst topology.NodeID) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("routing: no port for self destination %d", src)
	}
	diff := uint32(src ^ dst)
	for d := 0; d < rt.h.Dims(); d++ {
		if diff&(1<<uint(d)) != 0 {
			return d, nil
		}
	}
	return 0, fmt.Errorf("routing: unreachable destination %d", dst)
}

// UnicastPath returns the e-cube channel path from src to dst, flipping
// differing address bits from lowest to highest dimension.
func (rt *HypercubeRouter) UnicastPath(src, dst topology.NodeID) (Path, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: self destination %d", src)
	}
	g := rt.h.Graph
	port, err := rt.UnicastPort(src, dst)
	if err != nil {
		return nil, err
	}
	path := Path{g.Injection(src, port)}
	cur := src
	lastDim := port
	for d := 0; d < rt.h.Dims(); d++ {
		if (cur^dst)&(1<<uint(d)) != 0 {
			path = append(path, g.LinkFrom(cur, d, 0))
			cur ^= 1 << uint(d)
			lastDim = d
		}
	}
	path = append(path, g.Ejection(dst, lastDim))
	return path, nil
}

// MulticastBranches expands a relative destination set into unicast
// fan-out. The set uses a single bitstring (port 0): bit k-1 selects the
// node src XOR k, so the same relative set works from every source
// (hypercubes are vertex-symmetric under XOR translation).
func (rt *HypercubeRouter) MulticastBranches(src topology.NodeID, set MulticastSet) ([]Branch, error) {
	if len(set.Bits) != 1 {
		return nil, fmt.Errorf("routing: hypercube multicast set must have 1 port, got %d", len(set.Bits))
	}
	n := rt.h.Nodes()
	var branches []Branch
	for _, k := range set.Hops(0) {
		if k >= n {
			return nil, fmt.Errorf("routing: XOR offset %d out of range (N=%d)", k, n)
		}
		dst := src ^ topology.NodeID(k)
		path, err := rt.UnicastPath(src, dst)
		if err != nil {
			return nil, err
		}
		port, _ := rt.UnicastPort(src, dst)
		branches = append(branches, Branch{Port: port, Path: path, Targets: []topology.NodeID{dst}})
	}
	if len(branches) == 0 {
		return nil, fmt.Errorf("routing: empty multicast set")
	}
	return branches, nil
}

var _ Router = (*HypercubeRouter)(nil)
