package routing

import (
	"fmt"

	"quarc/internal/topology"
)

// MeshRouter implements deterministic dimension-order (XY) unicast routing
// on a mesh or torus with all-port routers, plus dual-path Hamilton
// multicast (Lin-Ni style): multicast worms snake along a Hamilton path of
// the mesh in their own virtual-channel plane, absorbing-and-forwarding at
// target nodes, exactly like the Quarc's BRCP streams do on the rim.
//
// This is the "future work" extension the paper's conclusion names: the
// analytical model is topology-agnostic, so pointing it at this router
// checks its validity on multi-port mesh and torus networks.
type MeshRouter struct {
	m *topology.Mesh
}

// NewMeshRouter returns a router over the given mesh or torus.
func NewMeshRouter(m *topology.Mesh) *MeshRouter { return &MeshRouter{m: m} }

// Graph returns the underlying channel graph.
func (rt *MeshRouter) Graph() *topology.Graph { return rt.m.Graph }

// Mesh returns the underlying topology.
func (rt *MeshRouter) Mesh() *topology.Mesh { return rt.m }

// xSteps plans the moves of one dimension: returns the direction class and
// hop count. On a torus the shorter way around is taken (ties clockwise).
func (rt *MeshRouter) steps(from, to, size int, plusClass, minusClass int) (class, hops int) {
	if from == to {
		return plusClass, 0
	}
	if !rt.m.Wrap() {
		if to > from {
			return plusClass, to - from
		}
		return minusClass, from - to
	}
	fwd := (to - from + size) % size
	if fwd <= size-fwd {
		return plusClass, fwd
	}
	return minusClass, size - fwd
}

// UnicastPort returns the injection port: the direction of the route's
// first link (X dimension first).
func (rt *MeshRouter) UnicastPort(src, dst topology.NodeID) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("routing: no port for self destination %d", src)
	}
	sx, sy := rt.m.XY(src)
	dx, dy := rt.m.XY(dst)
	if sx != dx {
		class, _ := rt.steps(sx, dx, rt.m.W(), topology.XPlus, topology.XMinus)
		return class, nil
	}
	class, _ := rt.steps(sy, dy, rt.m.H(), topology.YPlus, topology.YMinus)
	return class, nil
}

// UnicastPath returns the XY channel path from src to dst. On a torus the
// route switches to the wrapped VC plane after crossing a ring's dateline
// (the wrap link), which keeps dimension-order routing deadlock-free.
func (rt *MeshRouter) UnicastPath(src, dst topology.NodeID) (Path, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: self destination %d", src)
	}
	m := rt.m
	g := m.Graph
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)

	port, err := rt.UnicastPort(src, dst)
	if err != nil {
		return nil, err
	}
	path := Path{g.Injection(src, port)}
	lastClass := port

	walk := func(fixed int, from, to, size int, plusClass, minusClass int, isX bool) error {
		class, hops := rt.steps(from, to, size, plusClass, minusClass)
		vc := topology.MeshVCUnicast
		cur := from
		for i := 0; i < hops; i++ {
			var node topology.NodeID
			if isX {
				node = m.ID(cur, fixed)
			} else {
				node = m.ID(fixed, cur)
			}
			id := g.LinkFrom(node, class, vc)
			if id == topology.None {
				return fmt.Errorf("routing: missing link at node %d class %d vc %d", node, class, vc)
			}
			path = append(path, id)
			if class == plusClass {
				cur++
				if cur == size { // crossed the wrap link: switch planes
					cur = 0
					vc = topology.TorusVCUnicastWrapped
				}
			} else {
				cur--
				if cur < 0 {
					cur = size - 1
					vc = topology.TorusVCUnicastWrapped
				}
			}
			lastClass = class
		}
		return nil
	}

	if err := walk(sy, sx, dx, m.W(), topology.XPlus, topology.XMinus, true); err != nil {
		return nil, err
	}
	if err := walk(dx, sy, dy, m.H(), topology.YPlus, topology.YMinus, false); err != nil {
		return nil, err
	}
	path = append(path, g.Ejection(dst, lastClass))
	return path, nil
}

// Mesh multicast set semantics: Bits[0] ("high path") bit k-1 selects the
// node k positions ahead of the source on the Hamilton path; Bits[1]
// ("low path") bit k-1 selects the node k positions behind. Ports 2 and 3
// must be empty. Positions beyond the path ends are skipped (the mesh is
// not vertex-symmetric), so border sources may serve fewer targets.
func (rt *MeshRouter) MulticastBranches(src topology.NodeID, set MulticastSet) ([]Branch, error) {
	if len(set.Bits) != topology.MeshPorts {
		return nil, fmt.Errorf("routing: mesh multicast set must have %d ports, got %d",
			topology.MeshPorts, len(set.Bits))
	}
	if set.Bits[2] != 0 || set.Bits[3] != 0 {
		return nil, fmt.Errorf("routing: mesh multicast uses ports 0 (high) and 1 (low) only")
	}
	m := rt.m
	n := m.Nodes()
	base := m.HamiltonIndex(src)
	var branches []Branch
	for dir := 0; dir < 2; dir++ {
		sign := 1
		if dir == 1 {
			sign = -1
		}
		var targets []topology.NodeID
		last := 0
		for _, k := range set.Hops(dir) {
			idx := base + sign*k
			if idx < 0 || idx >= n {
				continue // clipped at the path end
			}
			targets = append(targets, m.HamiltonNode(idx))
			last = k
		}
		if len(targets) == 0 {
			continue
		}
		path, err := rt.hamiltonPath(src, sign, last)
		if err != nil {
			return nil, err
		}
		branches = append(branches, Branch{Port: int(rt.Graph().Channel(path[0]).Class), Path: path, Targets: targets})
	}
	if len(branches) == 0 {
		return nil, fmt.Errorf("routing: multicast set has no reachable targets from node %d", src)
	}
	return branches, nil
}

// hamiltonPath builds the multicast-plane channel path from src along the
// Hamilton path (sign = +1 high, -1 low) for the given number of steps.
func (rt *MeshRouter) hamiltonPath(src topology.NodeID, sign, steps int) (Path, error) {
	m := rt.m
	g := m.Graph
	base := m.HamiltonIndex(src)
	cur := src
	var links []topology.ChannelID
	for i := 1; i <= steps; i++ {
		next := m.HamiltonNode(base + sign*i)
		class, err := rt.neighborClass(cur, next)
		if err != nil {
			return nil, err
		}
		id := g.LinkFrom(cur, class, topology.MeshVCMulticast)
		if id == topology.None {
			return nil, fmt.Errorf("routing: missing multicast link %d->%d", cur, next)
		}
		links = append(links, id)
		cur = next
	}
	injPort := int(g.Channel(links[0]).Class)
	path := Path{g.Injection(src, injPort)}
	path = append(path, links...)
	lastClass := int(g.Channel(links[len(links)-1]).Class)
	path = append(path, g.Ejection(cur, lastClass))
	return path, nil
}

// neighborClass returns the direction class of the link from a to its
// mesh neighbour b.
func (rt *MeshRouter) neighborClass(a, b topology.NodeID) (int, error) {
	ax, ay := rt.m.XY(a)
	bx, by := rt.m.XY(b)
	switch {
	case bx == ax+1 && by == ay:
		return topology.XPlus, nil
	case bx == ax-1 && by == ay:
		return topology.XMinus, nil
	case by == ay+1 && bx == ax:
		return topology.YPlus, nil
	case by == ay-1 && bx == ax:
		return topology.YMinus, nil
	}
	return 0, fmt.Errorf("routing: nodes %d and %d are not mesh neighbours", a, b)
}

// HighLowSet builds a mesh multicast set with the given relative Hamilton
// offsets ahead (high) and behind (low) the source.
func (rt *MeshRouter) HighLowSet(high, low []int) (MulticastSet, error) {
	set := NewMulticastSet(topology.MeshPorts)
	for _, k := range high {
		if k < 1 || k > 64 {
			return set, fmt.Errorf("routing: high offset %d out of range 1..64", k)
		}
		set = set.Add(0, k)
	}
	for _, k := range low {
		if k < 1 || k > 64 {
			return set, fmt.Errorf("routing: low offset %d out of range 1..64", k)
		}
		set = set.Add(1, k)
	}
	return set, nil
}

var _ Router = (*MeshRouter)(nil)
