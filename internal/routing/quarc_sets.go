package routing

import (
	"fmt"
	"math/rand/v2"

	"quarc/internal/topology"
)

// quarcPositions enumerates every valid (port, hop) receiver position of a
// Quarc network — one entry per non-source node.
func quarcPositions(q *topology.Quarc) [][2]int {
	var pos [][2]int
	for port := 0; port < topology.QuarcPorts; port++ {
		lo, hi := q.BranchHopRange(port)
		for hop := lo; hop <= hi; hop++ {
			pos = append(pos, [2]int{port, hop})
		}
	}
	return pos
}

// RandomSet draws a multicast destination set of k distinct relative
// positions chosen uniformly from all N-1 valid positions, reproducing the
// paper's Fig. 6 setup where "multicast destinations are selected randomly
// at the beginning of the simulation".
func (rt *QuarcRouter) RandomSet(rng *rand.Rand, k int) (MulticastSet, error) {
	pos := quarcPositions(rt.q)
	if k < 1 || k > len(pos) {
		return MulticastSet{}, fmt.Errorf("routing: random set size %d out of range [1,%d]", k, len(pos))
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	set := NewMulticastSet(topology.QuarcPorts)
	for _, p := range pos[:k] {
		set = set.Add(p[0], p[1])
	}
	return set, nil
}

// LocalizedSet places k consecutive targets on a single rim starting at the
// port's first receiver hop, reproducing the paper's Fig. 7 setup where
// "the destination nodes are on the same rim".
func (rt *QuarcRouter) LocalizedSet(port, k int) (MulticastSet, error) {
	if port < 0 || port >= topology.QuarcPorts {
		return MulticastSet{}, fmt.Errorf("routing: invalid port %d", port)
	}
	lo, hi := rt.q.BranchHopRange(port)
	if k < 1 || lo+k-1 > hi {
		return MulticastSet{}, fmt.Errorf("routing: localized set size %d does not fit port %s range [%d,%d]",
			k, topology.QuarcPortName(port), lo, hi)
	}
	set := NewMulticastSet(topology.QuarcPorts)
	for hop := lo; hop < lo+k; hop++ {
		set = set.Add(port, hop)
	}
	return set, nil
}
