// Package routing turns (source, destination) pairs and multicast
// destination sets into explicit channel paths over a topology.Graph.
//
// All routing here is deterministic, as the paper's model assumes: the
// route is fully determined by the injection port the source transceiver
// selects. A Path is the complete ordered channel sequence a header flit
// acquires — injection channel first, ejection channel last — so that
// len(Path) is exactly the zero-load pipeline depth of the header.
package routing

import (
	"fmt"
	"slices"

	"quarc/internal/topology"
)

// Path is the ordered sequence of channels a worm acquires, from the
// injection channel at the source to the ejection channel at the final
// destination.
type Path []topology.ChannelID

// Hops returns the number of channel crossings (pipeline depth) of the
// header along the path.
func (p Path) Hops() int { return len(p) }

// Branch is one stream of a multicast operation: the worm a source injects
// into one port. Intermediate Targets absorb-and-forward the stream; the
// last target is the stream's endpoint (the header's destination address).
type Branch struct {
	// Port is the injection port the branch leaves through.
	Port int
	// Path is the full channel path to the branch's last target.
	Path Path
	// Targets lists the absorbing nodes in visit order; the final element
	// is the branch endpoint.
	Targets []topology.NodeID
}

// Unicaster produces deterministic unicast routes.
type Unicaster interface {
	// UnicastPath returns the channel path from src to dst (src != dst).
	UnicastPath(src, dst topology.NodeID) (Path, error)
	// UnicastPort returns the injection port a unicast src->dst takes.
	UnicastPort(src, dst topology.NodeID) (int, error)
}

// Multicaster produces the per-port branches of a multicast operation.
type Multicaster interface {
	// MulticastBranches returns one branch per injection port that has at
	// least one target in the given relative destination set.
	MulticastBranches(src topology.NodeID, set MulticastSet) ([]Branch, error)
}

// Router combines unicast and multicast routing over one topology.
type Router interface {
	Unicaster
	Multicaster
	// Graph returns the channel graph the router routes over.
	Graph() *topology.Graph
}

// MulticastSet is a relative multicast destination set expressed exactly as
// in the paper's figures: one bitstring per injection port, where bit k-1
// set means "the node at branch-hop distance k on this port's stream is a
// target". The same relative set is used by every source node, which
// preserves the vertex symmetry of the network.
type MulticastSet struct {
	// Bits[port] holds the bitstring for that port; bit (hop-1) selects
	// the node at branch-hop distance hop.
	Bits []uint64
}

// NewMulticastSet returns an empty set for a router with the given number
// of ports.
func NewMulticastSet(ports int) MulticastSet {
	return MulticastSet{Bits: make([]uint64, ports)}
}

// Add marks the node at branch-hop distance hop (>= 1) on the given port.
func (s MulticastSet) Add(port, hop int) MulticastSet {
	s.Bits[port] |= 1 << uint(hop-1)
	return s
}

// Has reports whether the node at branch-hop distance hop on port is a
// target.
func (s MulticastSet) Has(port, hop int) bool {
	return s.Bits[port]&(1<<uint(hop-1)) != 0
}

// LastHop returns the largest marked hop distance on port, or 0 if the
// port has no targets.
func (s MulticastSet) LastHop(port int) int {
	b := s.Bits[port]
	last := 0
	for hop := 1; b != 0; hop++ {
		if b&1 != 0 {
			last = hop
		}
		b >>= 1
	}
	return last
}

// Hops returns the marked hop distances on port in increasing order.
func (s MulticastSet) Hops(port int) []int {
	var hops []int
	b := s.Bits[port]
	for hop := 1; b != 0; hop++ {
		if b&1 != 0 {
			hops = append(hops, hop)
		}
		b >>= 1
	}
	return hops
}

// Size returns the total number of targets across all ports.
func (s MulticastSet) Size() int {
	total := 0
	for _, b := range s.Bits {
		for ; b != 0; b &= b - 1 {
			total++
		}
	}
	return total
}

// Empty reports whether no port has any target.
func (s MulticastSet) Empty() bool { return s.Size() == 0 }

// Equal reports whether both sets mark exactly the same targets.
func (s MulticastSet) Equal(o MulticastSet) bool { return slices.Equal(s.Bits, o.Bits) }

// ActivePorts returns the ports that have at least one target.
func (s MulticastSet) ActivePorts() []int {
	var ports []int
	for p, b := range s.Bits {
		if b != 0 {
			ports = append(ports, p)
		}
	}
	return ports
}

// String renders the set with the paper's L/LO/RO/R labels when it has four
// ports, and generic port labels otherwise.
func (s MulticastSet) String() string {
	out := ""
	for p, b := range s.Bits {
		if p > 0 {
			out += " "
		}
		label := fmt.Sprintf("P%d", p)
		if len(s.Bits) == topology.QuarcPorts {
			label = topology.QuarcPortName(p)
		}
		out += fmt.Sprintf("%s=%b", label, b)
	}
	return out
}
