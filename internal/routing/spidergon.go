package routing

import (
	"fmt"
	"math/rand/v2"

	"quarc/internal/topology"
)

// SpidergonRouter implements the Spidergon's deterministic Across-First
// routing: destinations within a quarter of the ring are reached directly
// along the rim; all others take the cross link first and then travel the
// rim on the opposite side.
//
// The Spidergon has no hardware multicast: as the paper notes, deadlock-
// free broadcast/multicast "can only be achieved by consecutive unicast
// transmissions". MulticastBranches therefore expands a destination set
// into one unicast worm per destination, all funneled through the single
// injection port — the broadcast-by-unicast baseline the Quarc is compared
// against.
type SpidergonRouter struct {
	s *topology.Spidergon
}

// NewSpidergonRouter returns a router over the given Spidergon topology.
func NewSpidergonRouter(s *topology.Spidergon) *SpidergonRouter { return &SpidergonRouter{s: s} }

// Graph returns the underlying channel graph.
func (rt *SpidergonRouter) Graph() *topology.Graph { return rt.s.Graph }

// Spidergon returns the underlying topology.
func (rt *SpidergonRouter) Spidergon() *topology.Spidergon { return rt.s }

// UnicastPort returns 0: the Spidergon router is one-port.
func (rt *SpidergonRouter) UnicastPort(src, dst topology.NodeID) (int, error) {
	if src == dst {
		return 0, fmt.Errorf("routing: no port for self destination %d", src)
	}
	return 0, nil
}

// UnicastPath returns the Across-First channel path from src to dst.
func (rt *SpidergonRouter) UnicastPath(src, dst topology.NodeID) (Path, error) {
	s := rt.s
	g := s.Graph
	if src == dst {
		return nil, fmt.Errorf("routing: self destination %d", src)
	}
	n := topology.NodeID(s.Nodes())
	r := s.Rel(src, dst)
	quarter := s.Nodes() / 4
	path := Path{g.Injection(src, 0)}

	appendRim := func(start topology.NodeID, hops int, class int) {
		cur := start
		for i := 0; i < hops; i++ {
			var vc int
			var next topology.NodeID
			if class == topology.RimPlus {
				vc = s.RimPlusVC(start, cur)
				next = (cur + 1) % n
			} else {
				vc = s.RimMinusVC(start, cur)
				next = (cur - 1 + n) % n
			}
			path = append(path, g.LinkFrom(cur, class, vc))
			cur = next
		}
	}

	switch {
	case r <= quarter:
		appendRim(src, r, topology.RimPlus)
	case s.Nodes()-r <= quarter:
		appendRim(src, s.Nodes()-r, topology.RimMinus)
	default:
		path = append(path, g.LinkFrom(src, topology.CrossL, 0))
		opp := (src + n/2) % n
		rem := s.Rel(opp, dst)
		if rem == 0 {
			// Destination is the opposite node itself.
		} else if rem <= s.Nodes()/2 {
			appendRim(opp, rem, topology.RimPlus)
		} else {
			appendRim(opp, s.Nodes()-rem, topology.RimMinus)
		}
	}
	path = append(path, g.Ejection(dst, 0))
	return path, nil
}

// MulticastBranches expands the relative destination set into consecutive
// unicasts. The set uses a single bitstring (port 0): bit k-1 selects the
// node at relative position k clockwise from the source.
func (rt *SpidergonRouter) MulticastBranches(src topology.NodeID, set MulticastSet) ([]Branch, error) {
	if len(set.Bits) != 1 {
		return nil, fmt.Errorf("routing: spidergon multicast set must have 1 port, got %d", len(set.Bits))
	}
	n := topology.NodeID(rt.s.Nodes())
	var branches []Branch
	for _, k := range set.Hops(0) {
		if k >= rt.s.Nodes() {
			return nil, fmt.Errorf("routing: relative position %d out of range", k)
		}
		dst := (src + topology.NodeID(k)) % n
		path, err := rt.UnicastPath(src, dst)
		if err != nil {
			return nil, err
		}
		branches = append(branches, Branch{Port: 0, Path: path, Targets: []topology.NodeID{dst}})
	}
	if len(branches) == 0 {
		return nil, fmt.Errorf("routing: empty multicast set")
	}
	return branches, nil
}

// BroadcastSet returns the set covering every node: relative positions
// 1..N-1, i.e. N-1 consecutive unicasts (the paper's point about the
// Spidergon needing N-1 transmissions).
func (rt *SpidergonRouter) BroadcastSet() MulticastSet {
	set := NewMulticastSet(1)
	for k := 1; k < rt.s.Nodes(); k++ {
		set = set.Add(0, k)
	}
	return set
}

// RandomSet draws k distinct relative positions uniformly from 1..N-1,
// the Spidergon counterpart of the Quarc's Fig. 6 destination regime.
func (rt *SpidergonRouter) RandomSet(rng *rand.Rand, k int) (MulticastSet, error) {
	n := rt.s.Nodes()
	if k < 1 || k > n-1 {
		return MulticastSet{}, fmt.Errorf("routing: random set size %d out of range [1,%d]", k, n-1)
	}
	if n-1 > 64 {
		return MulticastSet{}, fmt.Errorf("routing: spidergon sets support up to 65 nodes, got %d", n)
	}
	pos := make([]int, n-1)
	for i := range pos {
		pos[i] = i + 1
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	set := NewMulticastSet(1)
	for _, p := range pos[:k] {
		set = set.Add(0, p)
	}
	return set, nil
}

// LocalizedSet marks the k nearest clockwise neighbours, the counterpart
// of the Quarc's Fig. 7 same-rim regime.
func (rt *SpidergonRouter) LocalizedSet(k int) (MulticastSet, error) {
	n := rt.s.Nodes()
	if k < 1 || k > n-1 || k > 64 {
		return MulticastSet{}, fmt.Errorf("routing: localized set size %d out of range", k)
	}
	set := NewMulticastSet(1)
	for p := 1; p <= k; p++ {
		set = set.Add(0, p)
	}
	return set, nil
}

var _ Router = (*SpidergonRouter)(nil)
