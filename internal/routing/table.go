package routing

import (
	"fmt"

	"quarc/internal/topology"
)

// TableRouter routes over arbitrary topologies from precomputed path
// tables. It exists for custom or irregular networks (and for tests that
// need exact hand-constructed routes): fill in every ordered pair once,
// then the analytical model and the simulator both consume it like any
// other Router.
//
// Multicast uses unicast fan-out with single-bitstring set semantics: bit
// k-1 of port 0 selects the node at ID offset k, i.e. (src + k) mod N.
type TableRouter struct {
	g     *topology.Graph
	paths map[[2]topology.NodeID]Path
}

// NewTableRouter creates an empty table router over the graph.
func NewTableRouter(g *topology.Graph) *TableRouter {
	return &TableRouter{g: g, paths: make(map[[2]topology.NodeID]Path)}
}

// SetPath registers the path for src -> dst. The path must start with an
// injection channel at src and end with an ejection channel at dst, and
// its links must be physically consecutive.
func (rt *TableRouter) SetPath(src, dst topology.NodeID, p Path) error {
	if src == dst {
		return fmt.Errorf("routing: cannot set a self path for %d", src)
	}
	if len(p) < 2 {
		return fmt.Errorf("routing: path %d->%d too short", src, dst)
	}
	first := rt.g.Channel(p[0])
	if first.Kind != topology.Injection || first.Src != src {
		return fmt.Errorf("routing: path %d->%d must start with an injection channel at %d", src, dst, src)
	}
	last := rt.g.Channel(p[len(p)-1])
	if last.Kind != topology.Ejection || last.Src != dst {
		return fmt.Errorf("routing: path %d->%d must end with an ejection channel at %d", src, dst, dst)
	}
	cur := src
	for _, id := range p[1 : len(p)-1] {
		c := rt.g.Channel(id)
		if c.Kind != topology.Link || c.Src != cur {
			return fmt.Errorf("routing: path %d->%d broken at channel %v", src, dst, c)
		}
		cur = c.Dst
	}
	if cur != dst {
		return fmt.Errorf("routing: path %d->%d ends at node %d", src, dst, cur)
	}
	rt.paths[[2]topology.NodeID{src, dst}] = p
	return nil
}

// Complete reports whether every ordered pair has a path.
func (rt *TableRouter) Complete() error {
	n := rt.g.Nodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if _, ok := rt.paths[[2]topology.NodeID{topology.NodeID(src), topology.NodeID(dst)}]; !ok {
				return fmt.Errorf("routing: missing path %d->%d", src, dst)
			}
		}
	}
	return nil
}

// Graph returns the underlying channel graph.
func (rt *TableRouter) Graph() *topology.Graph { return rt.g }

// UnicastPath returns the registered path.
func (rt *TableRouter) UnicastPath(src, dst topology.NodeID) (Path, error) {
	p, ok := rt.paths[[2]topology.NodeID{src, dst}]
	if !ok {
		return nil, fmt.Errorf("routing: no path %d->%d", src, dst)
	}
	return p, nil
}

// UnicastPort returns the injection port of the registered path.
func (rt *TableRouter) UnicastPort(src, dst topology.NodeID) (int, error) {
	p, err := rt.UnicastPath(src, dst)
	if err != nil {
		return 0, err
	}
	return rt.g.Channel(p[0]).Class, nil
}

// MulticastBranches expands the set into unicast fan-out (one branch per
// destination).
func (rt *TableRouter) MulticastBranches(src topology.NodeID, set MulticastSet) ([]Branch, error) {
	if len(set.Bits) != 1 {
		return nil, fmt.Errorf("routing: table multicast set must have 1 port, got %d", len(set.Bits))
	}
	n := topology.NodeID(rt.g.Nodes())
	var branches []Branch
	for _, k := range set.Hops(0) {
		dst := (src + topology.NodeID(k)) % n
		if dst == src {
			return nil, fmt.Errorf("routing: offset %d wraps to the source", k)
		}
		p, err := rt.UnicastPath(src, dst)
		if err != nil {
			return nil, err
		}
		branches = append(branches, Branch{
			Port: rt.g.Channel(p[0]).Class, Path: p, Targets: []topology.NodeID{dst},
		})
	}
	if len(branches) == 0 {
		return nil, fmt.Errorf("routing: empty multicast set")
	}
	return branches, nil
}

var _ Router = (*TableRouter)(nil)
