package routing

import (
	"fmt"

	"quarc/internal/topology"
)

// QuarcRouter implements the Quarc NoC's deterministic routing: the source
// transceiver computes the destination quadrant and injects into the
// corresponding port; intermediate switches only forward (no routing
// logic), exactly as described in Sec. 3.3 of the paper.
//
// Broadcast/multicast follows the BRCP (Base Routing Conformed Path)
// scheme: each branch follows the unicast route to the last node it must
// visit, and intermediate targets absorb-and-forward the stream.
type QuarcRouter struct {
	q *topology.Quarc
}

// NewQuarcRouter returns a router over the given Quarc topology.
func NewQuarcRouter(q *topology.Quarc) *QuarcRouter { return &QuarcRouter{q: q} }

// Graph returns the underlying channel graph.
func (rt *QuarcRouter) Graph() *topology.Graph { return rt.q.Graph }

// Quarc returns the underlying Quarc topology.
func (rt *QuarcRouter) Quarc() *topology.Quarc { return rt.q }

// UnicastPort returns the injection port for a unicast src -> dst.
func (rt *QuarcRouter) UnicastPort(src, dst topology.NodeID) (int, error) {
	return rt.q.PortFor(src, dst)
}

// UnicastPath returns the full channel path of a unicast src -> dst.
func (rt *QuarcRouter) UnicastPath(src, dst topology.NodeID) (Path, error) {
	port, err := rt.q.PortFor(src, dst)
	if err != nil {
		return nil, err
	}
	_, hop, err := rt.q.BranchHopOf(src, dst)
	if err != nil {
		return nil, err
	}
	return rt.branchPath(src, port, hop)
}

// branchPath builds the channel path from src along the given port's
// stream up to branch-hop distance lastHop (>= 1), ending with the
// ejection channel at the node reached there.
func (rt *QuarcRouter) branchPath(src topology.NodeID, port, lastHop int) (Path, error) {
	q := rt.q
	g := q.Graph
	n := topology.NodeID(q.Nodes())
	half := n / 2
	// One-port routers funnel every quadrant through the single PE port.
	injPort := port
	if g.Ports() == 1 {
		injPort = 0
	}
	path := Path{g.Injection(src, injPort)}

	appendRim := func(start topology.NodeID, hops int, class int) error {
		cur := start
		for i := 0; i < hops; i++ {
			var vc int
			var next topology.NodeID
			if class == topology.RimPlus {
				vc = q.RimPlusVC(start, cur)
				next = (cur + 1) % n
			} else {
				vc = q.RimMinusVC(start, cur)
				next = (cur - 1 + n) % n
			}
			id := g.LinkFrom(cur, class, vc)
			if id == topology.None {
				return fmt.Errorf("routing: missing rim link at node %d class %d vc %d", cur, class, vc)
			}
			path = append(path, id)
			cur = next
		}
		return nil
	}

	var ejectPort int
	switch port {
	case topology.PortL:
		if err := appendRim(src, lastHop, topology.RimPlus); err != nil {
			return nil, err
		}
		ejectPort = topology.RimPlus
	case topology.PortR:
		if err := appendRim(src, lastHop, topology.RimMinus); err != nil {
			return nil, err
		}
		ejectPort = topology.RimMinus
	case topology.PortCL:
		path = append(path, g.LinkFrom(src, topology.CrossL, 0))
		opp := (src + half) % n
		if err := appendRim(opp, lastHop-1, topology.RimMinus); err != nil {
			return nil, err
		}
		if lastHop == 1 {
			ejectPort = topology.CrossL
		} else {
			ejectPort = topology.RimMinus
		}
	case topology.PortCR:
		path = append(path, g.LinkFrom(src, topology.CrossR, 0))
		opp := (src + half) % n
		if err := appendRim(opp, lastHop-1, topology.RimPlus); err != nil {
			return nil, err
		}
		if lastHop == 1 {
			ejectPort = topology.CrossR
		} else {
			ejectPort = topology.RimPlus
		}
	default:
		return nil, fmt.Errorf("routing: invalid quarc port %d", port)
	}

	end, err := q.BranchNode(src, port, lastHop)
	if err != nil {
		return nil, err
	}
	if g.Ports() == 1 {
		ejectPort = 0
	}
	path = append(path, g.Ejection(end, ejectPort))
	return path, nil
}

// MulticastBranches expands a relative multicast set into one branch per
// active port. Branch paths end at the last target of the port, matching
// the Quarc header format where the destination address is the last node
// to be visited and the bitstring selects the absorbing nodes.
func (rt *QuarcRouter) MulticastBranches(src topology.NodeID, set MulticastSet) ([]Branch, error) {
	if len(set.Bits) != topology.QuarcPorts {
		return nil, fmt.Errorf("routing: quarc multicast set must have %d ports, got %d",
			topology.QuarcPorts, len(set.Bits))
	}
	var branches []Branch
	for port := 0; port < topology.QuarcPorts; port++ {
		last := set.LastHop(port)
		if last == 0 {
			continue
		}
		lo, hi := rt.q.BranchHopRange(port)
		if first := set.Hops(port)[0]; first < lo {
			return nil, fmt.Errorf("routing: port %s target at hop %d below minimum %d",
				topology.QuarcPortName(port), first, lo)
		}
		if last > hi {
			return nil, fmt.Errorf("routing: port %s target at hop %d beyond quadrant end %d",
				topology.QuarcPortName(port), last, hi)
		}
		path, err := rt.branchPath(src, port, last)
		if err != nil {
			return nil, err
		}
		var targets []topology.NodeID
		for _, hop := range set.Hops(port) {
			node, err := rt.q.BranchNode(src, port, hop)
			if err != nil {
				return nil, err
			}
			targets = append(targets, node)
		}
		branches = append(branches, Branch{Port: port, Path: path, Targets: targets})
	}
	return branches, nil
}

// BroadcastSet returns the multicast set that covers every node of the
// Quarc network, reproducing the paper's Fig. 3 broadcast: the four branch
// endpoints from node 0 in a 16-node network are nodes 4, 5, 11 and 12.
func (rt *QuarcRouter) BroadcastSet() MulticastSet {
	set := NewMulticastSet(topology.QuarcPorts)
	for port := 0; port < topology.QuarcPorts; port++ {
		lo, hi := rt.q.BranchHopRange(port)
		for hop := lo; hop <= hi; hop++ {
			set = set.Add(port, hop)
		}
	}
	return set
}

// SetFromNodes converts an absolute destination node list (relative to
// src) into the per-port bitstring representation. Destinations equal to
// src are rejected.
func (rt *QuarcRouter) SetFromNodes(src topology.NodeID, dests []topology.NodeID) (MulticastSet, error) {
	set := NewMulticastSet(topology.QuarcPorts)
	for _, d := range dests {
		port, hop, err := rt.q.BranchHopOf(src, d)
		if err != nil {
			return set, err
		}
		set = set.Add(port, hop)
	}
	return set, nil
}

var _ Router = (*QuarcRouter)(nil)
