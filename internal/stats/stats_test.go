package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 {
		t.Fatalf("N = %d, want 0", r.N())
	}
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Var()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatalf("empty estimator must return NaN, got mean=%v var=%v min=%v max=%v",
			r.Mean(), r.Var(), r.Min(), r.Max())
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Mean() != 42 || r.Min() != 42 || r.Max() != 42 {
		t.Fatalf("single-sample stats wrong: %v", r.String())
	}
	if !math.IsNaN(r.Var()) {
		t.Fatalf("variance of one sample must be NaN, got %v", r.Var())
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Population variance is 4; sample variance is 32/7.
	if got, want := r.Var(), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("var = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	r.Reset()
	if r.N() != 0 {
		t.Fatalf("reset did not clear estimator: n=%d", r.N())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, left, right Running
		for _, x := range a {
			// Bound the magnitude to keep the tolerance meaningful.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			all.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			all.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if all.N() != left.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		if !almostEq(all.Mean(), left.Mean(), 1e-9) {
			return false
		}
		if all.N() >= 2 && !almostEq(all.Var(), left.Var(), 1e-6) {
			return false
		}
		return almostEq(all.Min(), left.Min(), 0) && almostEq(all.Max(), left.Max(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeIntoEmpty(t *testing.T) {
	var a, b Running
	b.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("merge into empty failed: %v", a.String())
	}
	var c Running
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatalf("merging empty changed estimator: %v", a.String())
	}
}

func TestBatchMeansBasic(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 100; i++ {
		b.Add(float64(i % 10)) // each batch has mean 4.5
	}
	if b.Batches() != 10 {
		t.Fatalf("batches = %d, want 10", b.Batches())
	}
	if got := b.Mean(); got != 4.5 {
		t.Fatalf("grand mean = %v, want 4.5", got)
	}
	if hw := b.HalfWidth(1.96); hw != 0 {
		t.Fatalf("identical batches must give zero half-width, got %v", hw)
	}
}

func TestBatchMeansHalfWidthShrinks(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	small := NewBatchMeans(50)
	large := NewBatchMeans(50)
	for i := 0; i < 500; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 50000; i++ {
		large.Add(rng.NormFloat64())
	}
	hs, hl := small.HalfWidth(1.96), large.HalfWidth(1.96)
	if !(hl < hs) {
		t.Fatalf("half-width did not shrink with more data: small=%v large=%v", hs, hl)
	}
	if math.Abs(large.Mean()) > 3*hl+0.05 {
		t.Fatalf("mean %v inconsistent with CI half-width %v", large.Mean(), hl)
	}
}

func TestBatchMeansNeedsTwoBatches(t *testing.T) {
	b := NewBatchMeans(100)
	for i := 0; i < 150; i++ {
		b.Add(1)
	}
	if b.Batches() != 1 {
		t.Fatalf("batches = %d, want 1", b.Batches())
	}
	if !math.IsNaN(b.HalfWidth(1.96)) {
		t.Fatal("half-width with one batch must be NaN")
	}
}

func TestBatchMeansPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive batch size")
		}
	}()
	NewBatchMeans(0)
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(123)
	if h.Count() != 13 {
		t.Fatalf("count = %d, want 13", h.Count())
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under(), h.Over())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v, want ~50", med)
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 100 {
		t.Fatalf("extreme quantiles wrong: %v %v", h.Quantile(0), h.Quantile(1))
	}
	if p := h.Percentile(90); p < 85 || p > 95 {
		t.Fatalf("p90 = %v, want ~90", p)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile of empty histogram must be NaN")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi <= lo")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestQuantilesExact(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	qs := Quantiles(data, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("quantiles = %v, want [1 3 5]", qs)
	}
	// Input must not be mutated.
	if data[0] != 5 {
		t.Fatal("Quantiles mutated its input")
	}
}

func TestQuantilesInterpolates(t *testing.T) {
	got := Quantiles([]float64{0, 10}, 0.25)[0]
	if got != 2.5 {
		t.Fatalf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	qs := Quantiles(nil, 0.5)
	if !math.IsNaN(qs[0]) {
		t.Fatal("quantile of empty slice must be NaN")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("RelErr(11,10) = %v, want 0.1", got)
	}
	if got := RelErr(1, 0); got <= 1e10 {
		t.Fatalf("RelErr against zero must be huge, got %v", got)
	}
	if got := RelErr(5, 5); got != 0 {
		t.Fatalf("RelErr of equal values = %v, want 0", got)
	}
}

// Property: Running mean always lies within [min, max].
func TestRunningMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue // extreme magnitudes overflow intermediate sums
			}
			r.Add(x)
		}
		if r.N() == 0 {
			return true
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicates(t *testing.T) {
	var r Replicates
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.HalfWidth(1.96)) {
		t.Fatal("empty Replicates should report NaN mean and half-width")
	}
	for _, x := range []float64{10, 12, 14} {
		r.Add(x)
	}
	r.Add(math.NaN())
	if r.N() != 3 || r.Skipped() != 1 {
		t.Fatalf("N=%d skipped=%d, want 3 and 1", r.N(), r.Skipped())
	}
	if got := r.Mean(); got != 12 {
		t.Fatalf("mean = %v, want 12", got)
	}
	// s = 2 over 3 reps: half-width = z * 2 / sqrt(3).
	want := 1.96 * 2 / math.Sqrt(3)
	if got := r.HalfWidth(1.96); math.Abs(got-want) > 1e-12 {
		t.Fatalf("half-width = %v, want %v", got, want)
	}

	var one Replicates
	one.Add(5)
	if !math.IsNaN(one.HalfWidth(1.96)) {
		t.Fatal("single replication must have NaN half-width")
	}
	if one.Mean() != 5 {
		t.Fatalf("single replication mean = %v, want 5", one.Mean())
	}
}
