// Package stats provides streaming estimators used by the wormhole
// simulator and the experiment harness: running mean/variance (Welford),
// batch-means confidence intervals, and fixed-bin histograms.
//
// All estimators are single-writer; wrap them in your own synchronization
// if several goroutines feed the same estimator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a sample mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations recorded so far.
func (r Running) N() int64 { return r.n }

// Mean returns the sample mean, or NaN if no observations were recorded.
func (r Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Var returns the unbiased sample variance, or NaN for fewer than two
// observations.
func (r Running) Var() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation, or NaN if empty.
func (r Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation, or NaN if empty.
func (r Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Reset discards all recorded observations.
func (r *Running) Reset() { *r = Running{} }

// Merge folds the observations summarized by other into r, as if every
// observation added to other had been added to r.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n1, n2 := float64(r.n), float64(other.n)
	d := other.mean - r.mean
	tot := n1 + n2
	r.m2 += other.m2 + d*d*n1*n2/tot
	r.mean += d * n2 / tot
	r.n += other.n
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// String summarizes the estimator for logs.
func (r Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.Std(), r.Min(), r.Max())
}

// Replicates combines the point estimates of independent simulation
// replications into a grand mean and a confidence half-width. Each
// replication contributes one observation (its own mean), which is IID
// across replications by construction — the textbook independent-
// replications method, giving tighter and less biased intervals than
// batch means over a single run. NaN observations (a replication that
// recorded no samples, e.g. multicast latency at alpha = 0) are skipped
// and counted separately.
type Replicates struct {
	runs    Running
	skipped int64
}

// Add records one replication's point estimate; NaN marks a replication
// with no samples and is skipped.
func (r *Replicates) Add(x float64) {
	if math.IsNaN(x) {
		r.skipped++
		return
	}
	r.runs.Add(x)
}

// N returns the number of replications with a usable estimate.
func (r *Replicates) N() int64 { return r.runs.N() }

// Skipped returns the number of NaN replications.
func (r *Replicates) Skipped() int64 { return r.skipped }

// Mean returns the grand mean over replications, or NaN if none
// contributed.
func (r *Replicates) Mean() float64 { return r.runs.Mean() }

// HalfWidth returns the half-width of the confidence interval for the
// mean at the given z value (e.g. 1.96 for 95%): z * s / sqrt(n) over the
// replication estimates. NaN with fewer than two replications.
func (r *Replicates) HalfWidth(z float64) float64 {
	n := r.runs.N()
	if n < 2 {
		return math.NaN()
	}
	return z * r.runs.Std() / math.Sqrt(float64(n))
}

// BatchMeans estimates a confidence interval for the mean of a correlated
// stationary series (such as successive message latencies) using the method
// of non-overlapping batch means.
type BatchMeans struct {
	batchSize int
	cur       Running
	batches   []float64
}

// NewBatchMeans returns a BatchMeans estimator grouping observations into
// batches of the given size. Batch size must be positive.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if int(b.cur.N()) >= b.batchSize {
		b.batches = append(b.batches, b.cur.Mean())
		b.cur.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.batches) }

// Mean returns the grand mean over completed batches, or NaN if no batch
// has completed.
func (b *BatchMeans) Mean() float64 {
	if len(b.batches) == 0 {
		return math.NaN()
	}
	var s float64
	for _, m := range b.batches {
		s += m
	}
	return s / float64(len(b.batches))
}

// HalfWidth returns the half-width of an approximate confidence interval
// for the mean at the given z value (e.g. 1.96 for 95%). It returns NaN
// with fewer than two completed batches.
func (b *BatchMeans) HalfWidth(z float64) float64 {
	k := len(b.batches)
	if k < 2 {
		return math.NaN()
	}
	mean := b.Mean()
	var ss float64
	for _, m := range b.batches {
		d := m - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(k-1))
	return z * sd / math.Sqrt(float64(k))
}

// Histogram counts observations in uniform bins over [lo, hi); samples
// outside the range are tallied in Under/Over.
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []int64
	under  int64
	over   int64
	total  int64
}

// NewHistogram creates a histogram with nbins uniform bins on [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if !(hi > lo) || nbins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(nbins), bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // floating-point edge at hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the total number of observations including out-of-range.
func (h *Histogram) Count() int64 { return h.total }

// Under and Over return the out-of-range tallies.
func (h *Histogram) Under() int64 { return h.under }

// Over returns the number of observations at or above the upper bound.
func (h *Histogram) Over() int64 { return h.over }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Quantile returns an approximate q-quantile (0 <= q <= 1) assuming
// observations are uniform within a bin. Out-of-range mass is treated as
// sitting at the bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target {
		return h.lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// Percentile is shorthand for Quantile(p/100).
func (h *Histogram) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// Quantiles computes an exact set of quantiles from a finite sample by
// sorting a copy of the data. Convenient for tests and small experiment
// outputs; qs must each be in [0,1].
func Quantiles(data []float64, qs ...float64) []float64 {
	if len(data) == 0 {
		out := make([]float64, len(qs))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q <= 0 {
			out[i] = s[0]
			continue
		}
		if q >= 1 {
			out[i] = s[len(s)-1]
			continue
		}
		// Linear interpolation between closest ranks.
		pos := q * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = s[lo]
		} else {
			f := pos - float64(lo)
			out[i] = s[lo]*(1-f) + s[hi]*f
		}
	}
	return out
}

// RelErr returns |a-b| / max(|b|, eps): the relative error of a against
// reference b, guarded against division by tiny references.
func RelErr(a, b float64) float64 {
	const eps = 1e-12
	den := math.Abs(b)
	if den < eps {
		den = eps
	}
	return math.Abs(a-b) / den
}
