package traffic

import (
	"math"
	"slices"
	"testing"

	"quarc/internal/topology"
)

// TestArrivalRegistryNames pins the built-in registry contents.
func TestArrivalRegistryNames(t *testing.T) {
	got := Arrivals()
	for _, want := range []string{"bernoulli", "onoff", "periodic", "poisson"} {
		if !slices.Contains(got, want) {
			t.Errorf("built-in arrival %q missing from registry %v", want, got)
		}
	}
}

// TestArrivalSpecValidation is the table-driven fail-fast check of the
// arrival parameters: NaN/Inf and out-of-range burst lengths and duty
// cycles must be rejected at Validate time, exactly like bad rates.
func TestArrivalSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"default poisson", Spec{Rate: 0.01}, true},
		{"explicit poisson", Spec{Rate: 0.01, Arrival: "poisson"}, true},
		{"unknown process", Spec{Rate: 0.01, Arrival: "fractal"}, false},
		{"bernoulli", Spec{Rate: 0.3, Arrival: "bernoulli"}, true},
		{"bernoulli rate 1", Spec{Rate: 1, Arrival: "bernoulli"}, true},
		{"bernoulli rate > 1", Spec{Rate: 1.5, Arrival: "bernoulli"}, false},
		{"periodic", Spec{Rate: 0.01, Arrival: "periodic"}, true},
		{"onoff", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: 0.25}, true},
		{"onoff duty 1", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 1, DutyCycle: 1}, true},
		{"onoff zero burst", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 0, DutyCycle: 0.5}, false},
		{"onoff burst < 1", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 0.5, DutyCycle: 0.5}, false},
		{"onoff NaN burst", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: math.NaN(), DutyCycle: 0.5}, false},
		{"onoff Inf burst", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: math.Inf(1), DutyCycle: 0.5}, false},
		{"onoff zero duty", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: 0}, false},
		{"onoff negative duty", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: -0.2}, false},
		{"onoff duty > 1", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: 1.2}, false},
		{"onoff NaN duty", Spec{Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: math.NaN()}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: valid spec rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: bad spec accepted: %+v", c.name, c.spec)
		}
	}
}

// TestArrivalLongRunRate checks every built-in process against its
// contract: the long-run injection rate equals Spec.Rate regardless of
// how the load clumps.
func TestArrivalLongRunRate(t *testing.T) {
	rt := quarcRouter(t, 16)
	const rate = 0.05
	specs := []Spec{
		{Rate: rate, Arrival: "poisson"},
		{Rate: rate, Arrival: "bernoulli"},
		{Rate: rate, Arrival: "onoff", BurstLen: 8, DutyCycle: 0.25},
		{Rate: rate, Arrival: "periodic"},
	}
	for _, spec := range specs {
		w, err := NewWorkload(rt, spec, 11)
		if err != nil {
			t.Fatalf("%s: %v", spec.Arrival, err)
		}
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += w.Interarrival(3)
		}
		mean := sum / n
		if math.Abs(mean-1/rate)/(1/rate) > 0.05 {
			t.Errorf("%s: mean interarrival %v, want ~%v", spec.Arrival, mean, 1/rate)
		}
	}
}

// TestBernoulliGapsDiscrete pins the cycle-grid property: bernoulli gaps
// are positive integers.
func TestBernoulliGapsDiscrete(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0.3, Arrival: "bernoulli"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		g := w.Interarrival(0)
		if g < 1 || g != math.Trunc(g) {
			t.Fatalf("bernoulli gap %v is not a positive integer", g)
		}
	}
}

// TestPeriodicGapsDeterministic pins the periodic contract: after the
// random phase, gaps are exactly 1/Rate.
func TestPeriodicGapsDeterministic(t *testing.T) {
	rt := quarcRouter(t, 16)
	const rate = 0.01
	w, err := NewWorkload(rt, Spec{Rate: rate, Arrival: "periodic"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	phase := w.Interarrival(0)
	if phase < 0 || phase >= 1/rate {
		t.Fatalf("periodic phase %v outside [0, %v)", phase, 1/rate)
	}
	for i := 0; i < 100; i++ {
		if g := w.Interarrival(0); g != 1/rate {
			t.Fatalf("periodic gap %v != period %v", g, 1/rate)
		}
	}
	// Distinct nodes get distinct phases.
	if w.Interarrival(1) == phase {
		t.Fatal("two nodes drew the same periodic phase")
	}
}

// TestOnOffBurstsClump checks the qualitative burst structure: with a
// small duty cycle the gap distribution is bimodal — many short
// intra-burst gaps well under the mean, a few long off-gaps well over it.
func TestOnOffBurstsClump(t *testing.T) {
	rt := quarcRouter(t, 16)
	const rate = 0.01
	w, err := NewWorkload(rt, Spec{Rate: rate, Arrival: "onoff", BurstLen: 16, DutyCycle: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := 1 / rate
	short, long := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		switch g := w.Interarrival(2); {
		case g < mean/2:
			short++
		case g > 2*mean:
			long++
		}
	}
	if frac := float64(short) / n; frac < 0.8 {
		t.Errorf("intra-burst gaps: %.2f of draws are short, want > 0.8 (duty 0.1)", frac)
	}
	if long == 0 {
		t.Error("no long off-gaps drawn in 50000 draws")
	}
}

// TestArrivalResetMatchesFresh extends the reset-reproducibility pin to
// the stateful arrival processes: a Reset must zero the per-node burst
// and phase state so the reset workload draws exactly what a fresh one
// does.
func TestArrivalResetMatchesFresh(t *testing.T) {
	rt := quarcRouter(t, 16)
	specs := []Spec{
		{Rate: 0.01, Arrival: "onoff", BurstLen: 4, DutyCycle: 0.5},
		{Rate: 0.02, Arrival: "periodic"},
		{Rate: 0.3, Arrival: "bernoulli"},
		{Rate: 0.01}, // back to default poisson
	}
	reused, err := NewWorkload(rt, specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	// Burn state so Reset has something to clear.
	for i := 0; i < 100; i++ {
		reused.Interarrival(0)
	}
	for si, spec := range specs {
		seed := uint64(si + 3)
		fresh, err := NewWorkload(rt, spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Reset(spec, seed); err != nil {
			t.Fatal(err)
		}
		for node := topology.NodeID(0); node < 16; node++ {
			for i := 0; i < 300; i++ {
				if g, want := reused.Interarrival(node), fresh.Interarrival(node); g != want {
					t.Fatalf("%s node %d draw %d: reset gap %v != fresh %v", spec.Arrival, node, i, g, want)
				}
			}
		}
	}
}

// TestArrivalAndDestAllocFree is the hot-path guard of the workload
// subsystem: for every arrival process and every destination selector the
// steady-state Interarrival+Next loop must not allocate.
func TestArrivalAndDestAllocFree(t *testing.T) {
	rt := quarcRouter(t, 16)
	perm := make([]topology.NodeID, 16)
	for i := range perm {
		perm[i] = topology.NodeID((i + 5) % 16)
	}
	weights := make([][]float64, 16)
	for i := range weights {
		weights[i] = make([]float64, 16)
		for j := range weights[i] {
			if j != i {
				weights[i][j] = float64(j + 1)
			}
		}
	}
	set, err := quarcRouter(t, 16).LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]Spec{
		"poisson/uniform":    {Rate: 0.01},
		"bernoulli/uniform":  {Rate: 0.3, Arrival: "bernoulli"},
		"onoff/uniform":      {Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: 0.25},
		"periodic/uniform":   {Rate: 0.01, Arrival: "periodic"},
		"poisson/perm":       {Rate: 0.01, Perm: perm},
		"onoff/perm":         {Rate: 0.01, Arrival: "onoff", BurstLen: 8, DutyCycle: 0.25, Perm: perm},
		"poisson/weights":    {Rate: 0.01, Weights: weights},
		"bernoulli/weights":  {Rate: 0.3, Arrival: "bernoulli", Weights: weights},
		"poisson/multicast":  {Rate: 0.01, MulticastFrac: 0.3, Set: set},
		"periodic/multicast": {Rate: 0.01, Arrival: "periodic", MulticastFrac: 0.3, Set: set},
	}
	for name, spec := range specs {
		w, err := NewWorkload(rt, spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		node := topology.NodeID(2)
		allocs := testing.AllocsPerRun(2000, func() {
			w.Interarrival(node)
			w.Next(node)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per Interarrival+Next, want 0", name, allocs)
		}
	}
}

// TestPermDestinations pins the permutation selector: every unicast from
// src goes to Perm[src], and self-mapped nodes fall silent.
func TestPermDestinations(t *testing.T) {
	rt := quarcRouter(t, 16)
	perm := make([]topology.NodeID, 16)
	for i := range perm {
		perm[i] = topology.NodeID(15 - i)
	}
	perm[7] = 7 // self-map: node 7 must fall silent
	w, err := NewWorkload(rt, Spec{Rate: 0.01, Perm: perm}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for src := topology.NodeID(0); src < 16; src++ {
		if src == 7 {
			continue
		}
		for i := 0; i < 20; i++ {
			br, mc := w.Next(src)
			if mc || len(br) != 1 || br[0].Targets[0] != perm[src] {
				t.Fatalf("src %d: got %+v (mc %v), want unicast to %d", src, br, mc, perm[src])
			}
		}
	}
	if !math.IsInf(w.Interarrival(7), 1) {
		t.Fatal("self-mapped node 7 still injects")
	}
	if math.IsInf(w.Interarrival(0), 1) {
		t.Fatal("active node 0 silenced")
	}
}

// TestWeightedDestinations checks the weight-matrix selector empirically:
// destination frequencies match the row weights and the diagonal never
// fires.
func TestWeightedDestinations(t *testing.T) {
	rt := quarcRouter(t, 16)
	weights := make([][]float64, 16)
	for i := range weights {
		weights[i] = make([]float64, 16)
	}
	// Node 0 sends 3:1 to nodes 5 and 10 and nowhere else.
	weights[0][5], weights[0][10] = 3, 1
	for i := 1; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if j != i {
				weights[i][j] = 1
			}
		}
	}
	w, err := NewWorkload(rt, Spec{Rate: 0.01, Weights: weights}, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[topology.NodeID]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		br, _ := w.Next(0)
		counts[br[0].Targets[0]]++
	}
	if len(counts) != 2 {
		t.Fatalf("node 0 reached %d destinations, want exactly {5, 10}: %v", len(counts), counts)
	}
	got := float64(counts[5]) / n
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("node 0 -> 5 frequency %v, want ~0.75", got)
	}
}

// TestDestValidation is the table-driven fail-fast check of the spatial
// side: malformed permutations and weight matrices are construction
// errors, never silent misroutes.
func TestDestValidation(t *testing.T) {
	rt := quarcRouter(t, 16)
	goodPerm := make([]topology.NodeID, 16)
	for i := range goodPerm {
		goodPerm[i] = topology.NodeID((i + 1) % 16)
	}
	shortPerm := goodPerm[:8]
	outPerm := slices.Clone(goodPerm)
	outPerm[3] = 99
	uniformW := func() [][]float64 {
		w := make([][]float64, 16)
		for i := range w {
			w[i] = make([]float64, 16)
			for j := range w[i] {
				if j != i {
					w[i][j] = 1
				}
			}
		}
		return w
	}
	nanW := uniformW()
	nanW[2][4] = math.NaN()
	negW := uniformW()
	negW[2][4] = -1
	emptyRowW := uniformW()
	for j := range emptyRowW[5] {
		emptyRowW[5][j] = 0
	}
	raggedW := uniformW()
	raggedW[1] = raggedW[1][:4]

	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"good perm", Spec{Rate: 0.01, Perm: goodPerm}, true},
		{"short perm", Spec{Rate: 0.01, Perm: shortPerm}, false},
		{"out-of-range perm", Spec{Rate: 0.01, Perm: outPerm}, false},
		{"good weights", Spec{Rate: 0.01, Weights: uniformW()}, true},
		{"NaN weight", Spec{Rate: 0.01, Weights: nanW}, false},
		{"negative weight", Spec{Rate: 0.01, Weights: negW}, false},
		{"empty row", Spec{Rate: 0.01, Weights: emptyRowW}, false},
		{"ragged row", Spec{Rate: 0.01, Weights: raggedW}, false},
		{"perm+weights", Spec{Rate: 0.01, Perm: goodPerm, Weights: uniformW()}, false},
		{"perm+hotspot", Spec{Rate: 0.01, Perm: goodPerm, HotspotFrac: 0.5, HotspotNode: 3}, false},
		{"weights+hotspot", Spec{Rate: 0.01, Weights: uniformW(), HotspotFrac: 0.5, HotspotNode: 3}, false},
	}
	for _, c := range cases {
		_, err := NewWorkload(rt, c.spec, 1)
		if c.ok && err != nil {
			t.Errorf("%s: valid spec rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: bad spec accepted", c.name)
		}
	}
}

// TestUnicastProbMatchesSelectors pins the model/simulator agreement:
// UnicastProb must describe exactly the distribution Next samples, for
// the permutation and weight-matrix selectors alike.
func TestUnicastProbMatchesSelectors(t *testing.T) {
	perm := make([]topology.NodeID, 16)
	for i := range perm {
		perm[i] = topology.NodeID((i + 3) % 16)
	}
	perm[4] = 4
	specPerm := Spec{Rate: 0.01, Perm: perm}
	for src := topology.NodeID(0); src < 16; src++ {
		var sum float64
		for dst := topology.NodeID(0); dst < 16; dst++ {
			sum += specPerm.UnicastProb(16, src, dst)
		}
		want := 1.0
		if src == 4 {
			want = 0
		}
		if sum != want {
			t.Errorf("perm: src %d total probability %v, want %v", src, sum, want)
		}
	}
	weights := make([][]float64, 4)
	for i := range weights {
		weights[i] = make([]float64, 4)
		for j := range weights[i] {
			if j != i {
				weights[i][j] = float64(i + j)
			}
		}
	}
	specW := Spec{Rate: 0.01, Weights: weights}
	if got := specW.UnicastProb(4, 1, 2); math.Abs(got-3.0/8) > 1e-15 {
		t.Errorf("weights: P(1->2) = %v, want 3/8", got)
	}
	if got := specW.UnicastProb(4, 1, 1); got != 0 {
		t.Errorf("weights: P(1->1) = %v, want 0", got)
	}
}

// TestUnicastProbRowMatchesPerPair pins the O(n) row form bitwise to the
// per-pair form for every destination selector.
func TestUnicastProbRowMatchesPerPair(t *testing.T) {
	const n = 16
	perm := make([]topology.NodeID, n)
	for i := range perm {
		perm[i] = topology.NodeID((i + 3) % n)
	}
	perm[4] = 4
	weights := make([][]float64, n)
	for i := range weights {
		weights[i] = make([]float64, n)
		for j := range weights[i] {
			if j != i {
				weights[i][j] = float64(i*n + j + 1)
			}
		}
	}
	specs := map[string]Spec{
		"uniform": {Rate: 0.01},
		"hotspot": {Rate: 0.01, HotspotFrac: 0.3, HotspotNode: 5},
		"perm":    {Rate: 0.01, Perm: perm},
		"weights": {Rate: 0.01, Weights: weights},
	}
	row := make([]float64, n)
	for name, spec := range specs {
		for src := topology.NodeID(0); src < n; src++ {
			spec.UnicastProbRow(n, src, row)
			for dst := topology.NodeID(0); dst < n; dst++ {
				if got, want := row[dst], spec.UnicastProb(n, src, dst); got != want {
					t.Fatalf("%s: row[%d][%d] = %v, per-pair %v (must be bitwise identical)",
						name, src, dst, got, want)
				}
			}
		}
	}
}
