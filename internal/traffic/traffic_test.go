package traffic

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

func quarcRouter(t *testing.T, n int) *routing.QuarcRouter {
	t.Helper()
	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewQuarcRouter(q)
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Rate: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Rate: -1},
		{Rate: math.NaN()},
		{Rate: math.Inf(1)},
		{Rate: 0.01, MulticastFrac: -0.1},
		{Rate: 0.01, MulticastFrac: 1.5},
		{Rate: 0.01, MulticastFrac: 0.5}, // empty set
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestInterarrivalMeanMatchesRate(t *testing.T) {
	rt := quarcRouter(t, 16)
	rate := 0.02
	w, err := NewWorkload(rt, Spec{Rate: rate}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += w.Interarrival(3)
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.03 {
		t.Fatalf("mean interarrival = %v, want ~%v", mean, 1/rate)
	}
}

func TestInterarrivalZeroRateDisabled(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(w.Interarrival(0), 1) {
		t.Fatal("zero rate must return +Inf interarrival")
	}
}

func TestNextMixesUnicastAndMulticast(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 2)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 0.3
	w, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: alpha, Set: set}, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	multicasts := 0
	for i := 0; i < n; i++ {
		branches, isMulti := w.Next(2)
		if isMulti {
			multicasts++
			if len(branches) != 1 { // localized set: one active port
				t.Fatalf("multicast branches = %d, want 1", len(branches))
			}
			if len(branches[0].Targets) != 2 {
				t.Fatalf("multicast targets = %d, want 2", len(branches[0].Targets))
			}
		} else {
			if len(branches) != 1 || len(branches[0].Targets) != 1 {
				t.Fatalf("unicast shape wrong: %+v", branches)
			}
			if branches[0].Targets[0] == 2 {
				t.Fatal("unicast to self")
			}
		}
	}
	frac := float64(multicasts) / n
	if math.Abs(frac-alpha) > 0.02 {
		t.Fatalf("multicast fraction = %v, want ~%v", frac, alpha)
	}
}

func TestUnicastDestinationsUniform(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0.01}, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[topology.NodeID]int)
	const n = 30000
	for i := 0; i < n; i++ {
		branches, _ := w.Next(0)
		counts[branches[0].Targets[0]]++
	}
	if len(counts) != 15 {
		t.Fatalf("destinations cover %d nodes, want 15", len(counts))
	}
	want := float64(n) / 15
	for dst, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("destination %d drawn %d times, want ~%.0f", dst, c, want)
		}
	}
}

func TestWorkloadDeterministicPerSeed(t *testing.T) {
	rt := quarcRouter(t, 16)
	mk := func(seed uint64) []float64 {
		w, err := NewWorkload(rt, Spec{Rate: 0.01}, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 50; i++ {
			out = append(out, w.Interarrival(4))
		}
		return out
	}
	a, b := mk(9), mk(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := mk(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestNodeStreamsIndependent(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0.01}, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := w.Interarrival(0)
	b := w.Interarrival(1)
	if a == b {
		t.Fatal("distinct node streams produced identical first draws")
	}
}

func TestMulticastBranchesCached(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortR, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: 1, Set: set}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for node := topology.NodeID(0); node < 16; node++ {
		b := w.MulticastBranchesOf(node)
		if len(b) != 1 || len(b[0].Targets) != 3 {
			t.Fatalf("cached branches wrong at node %d: %+v", node, b)
		}
	}
	// Without multicast the cache is nil.
	w2, err := NewWorkload(rt, Spec{Rate: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w2.MulticastBranchesOf(0) != nil {
		t.Fatal("unicast-only workload has multicast branches")
	}
}

func TestNewWorkloadRejectsBadSet(t *testing.T) {
	rt := quarcRouter(t, 16)
	// A set with an out-of-range hop must be rejected at construction.
	bad := routing.NewMulticastSet(topology.QuarcPorts).Add(topology.PortL, 10)
	if _, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: 0.1, Set: bad}, 1); err == nil {
		t.Fatal("invalid multicast set accepted")
	}
}

// TestWorkloadResetMatchesFresh pins the reuse property: a reset workload
// must draw exactly the same interarrival gaps and routes as a freshly
// built one, including across a destination-set change (which forces the
// branch cache to rebuild) and back.
func TestWorkloadResetMatchesFresh(t *testing.T) {
	rt := quarcRouter(t, 16)
	setA, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	setB := rt.BroadcastSet()
	specs := []Spec{
		{Rate: 0.004, MulticastFrac: 0.1, Set: setA},
		{Rate: 0.002, MulticastFrac: 0.2, Set: setB},
		{Rate: 0.004, MulticastFrac: 0.1, Set: setA},
	}
	reused, err := NewWorkload(rt, specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	for si, spec := range specs {
		seed := uint64(si + 7)
		fresh, err := NewWorkload(rt, spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Reset(spec, seed); err != nil {
			t.Fatal(err)
		}
		for node := topology.NodeID(0); node < 16; node++ {
			for i := 0; i < 200; i++ {
				if g, w := reused.Interarrival(node), fresh.Interarrival(node); g != w {
					t.Fatalf("spec %d node %d draw %d: gap %v != fresh %v", si, node, i, g, w)
				}
				gb, gm := reused.Next(node)
				wb, wm := fresh.Next(node)
				if gm != wm || len(gb) != len(wb) {
					t.Fatalf("spec %d node %d draw %d: branches (%d,%v) != fresh (%d,%v)",
						si, node, i, len(gb), gm, len(wb), wm)
				}
				for k := range gb {
					if gb[k].Port != wb[k].Port || len(gb[k].Path) != len(wb[k].Path) ||
						gb[k].Path[len(gb[k].Path)-1] != wb[k].Path[len(wb[k].Path)-1] {
						t.Fatalf("spec %d node %d draw %d branch %d: route diverged", si, node, i, k)
					}
				}
			}
		}
	}
}

// TestWorkloadResetRebuildsStaleBranchCache covers the cache-invalidation
// corner: a zero-MulticastFrac reset carries a new set in its spec without
// rebuilding the branch cache, so a later multicast reset with that same
// set must not trust the stale cache built for the original one.
func TestWorkloadResetRebuildsStaleBranchCache(t *testing.T) {
	rt := quarcRouter(t, 16)
	setA, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	setB := rt.BroadcastSet()
	w, err := NewWorkload(rt, Spec{Rate: 0.001, MulticastFrac: 0.1, Set: setA}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(Spec{Rate: 0.001, MulticastFrac: 0, Set: setB}, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(Spec{Rate: 0.001, MulticastFrac: 0.1, Set: setB}, 3); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewWorkload(rt, Spec{Rate: 0.001, MulticastFrac: 0.1, Set: setB}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, want := w.MulticastBranchesOf(0), fresh.MulticastBranchesOf(0)
	if len(got) != len(want) {
		t.Fatalf("stale branch cache survived the set change: %d branches, fresh has %d",
			len(got), len(want))
	}
}

// TestWorkloadRejectsOutOfRangeHotspot pins the fail-fast behavior the
// unicast route cache must preserve: an out-of-range hotspot destination
// is a construction error, never a silently aliased route.
func TestWorkloadRejectsOutOfRangeHotspot(t *testing.T) {
	rt := quarcRouter(t, 16)
	bad := Spec{Rate: 0.001, HotspotFrac: 0.5, HotspotNode: 20}
	if _, err := NewWorkload(rt, bad, 1); err == nil {
		t.Fatal("NewWorkload accepted hotspot node 20 on a 16-node network")
	}
	ok, err := NewWorkload(rt, Spec{Rate: 0.001}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Reset(bad, 2); err == nil {
		t.Fatal("Reset accepted hotspot node 20 on a 16-node network")
	}
	if err := ok.Reset(Spec{Rate: 0.001, HotspotFrac: 0.5, HotspotNode: 15}, 2); err != nil {
		t.Fatalf("Reset rejected a valid hotspot: %v", err)
	}
}
