package traffic

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

func quarcRouter(t *testing.T, n int) *routing.QuarcRouter {
	t.Helper()
	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewQuarcRouter(q)
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Rate: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Rate: -1},
		{Rate: math.NaN()},
		{Rate: math.Inf(1)},
		{Rate: 0.01, MulticastFrac: -0.1},
		{Rate: 0.01, MulticastFrac: 1.5},
		{Rate: 0.01, MulticastFrac: 0.5}, // empty set
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestInterarrivalMeanMatchesRate(t *testing.T) {
	rt := quarcRouter(t, 16)
	rate := 0.02
	w, err := NewWorkload(rt, Spec{Rate: rate}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += w.Interarrival(3)
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.03 {
		t.Fatalf("mean interarrival = %v, want ~%v", mean, 1/rate)
	}
}

func TestInterarrivalZeroRateDisabled(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(w.Interarrival(0), 1) {
		t.Fatal("zero rate must return +Inf interarrival")
	}
}

func TestNextMixesUnicastAndMulticast(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 2)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 0.3
	w, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: alpha, Set: set}, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	multicasts := 0
	for i := 0; i < n; i++ {
		branches, isMulti := w.Next(2)
		if isMulti {
			multicasts++
			if len(branches) != 1 { // localized set: one active port
				t.Fatalf("multicast branches = %d, want 1", len(branches))
			}
			if len(branches[0].Targets) != 2 {
				t.Fatalf("multicast targets = %d, want 2", len(branches[0].Targets))
			}
		} else {
			if len(branches) != 1 || len(branches[0].Targets) != 1 {
				t.Fatalf("unicast shape wrong: %+v", branches)
			}
			if branches[0].Targets[0] == 2 {
				t.Fatal("unicast to self")
			}
		}
	}
	frac := float64(multicasts) / n
	if math.Abs(frac-alpha) > 0.02 {
		t.Fatalf("multicast fraction = %v, want ~%v", frac, alpha)
	}
}

func TestUnicastDestinationsUniform(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0.01}, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[topology.NodeID]int)
	const n = 30000
	for i := 0; i < n; i++ {
		branches, _ := w.Next(0)
		counts[branches[0].Targets[0]]++
	}
	if len(counts) != 15 {
		t.Fatalf("destinations cover %d nodes, want 15", len(counts))
	}
	want := float64(n) / 15
	for dst, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("destination %d drawn %d times, want ~%.0f", dst, c, want)
		}
	}
}

func TestWorkloadDeterministicPerSeed(t *testing.T) {
	rt := quarcRouter(t, 16)
	mk := func(seed uint64) []float64 {
		w, err := NewWorkload(rt, Spec{Rate: 0.01}, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 50; i++ {
			out = append(out, w.Interarrival(4))
		}
		return out
	}
	a, b := mk(9), mk(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := mk(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestNodeStreamsIndependent(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, Spec{Rate: 0.01}, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := w.Interarrival(0)
	b := w.Interarrival(1)
	if a == b {
		t.Fatal("distinct node streams produced identical first draws")
	}
}

func TestMulticastBranchesCached(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortR, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: 1, Set: set}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for node := topology.NodeID(0); node < 16; node++ {
		b := w.MulticastBranchesOf(node)
		if len(b) != 1 || len(b[0].Targets) != 3 {
			t.Fatalf("cached branches wrong at node %d: %+v", node, b)
		}
	}
	// Without multicast the cache is nil.
	w2, err := NewWorkload(rt, Spec{Rate: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w2.MulticastBranchesOf(0) != nil {
		t.Fatal("unicast-only workload has multicast branches")
	}
}

func TestNewWorkloadRejectsBadSet(t *testing.T) {
	rt := quarcRouter(t, 16)
	// A set with an out-of-range hop must be rejected at construction.
	bad := routing.NewMulticastSet(topology.QuarcPorts).Add(topology.PortL, 10)
	if _, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: 0.1, Set: bad}, 1); err == nil {
		t.Fatal("invalid multicast set accepted")
	}
}
