package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// The arrival-process registry decouples *when* a node injects from
// *where* its messages go (the spatial side: uniform, hotspot, permutation
// or weighted destinations — see Spec). Each process is a stateless
// singleton that reads its parameters from the Spec on every draw and
// keeps per-node mutable state in a caller-owned ArrivalState, so one
// registered value serves every node of every workload, Workload.Reset
// only has to zero the states, and the hot path stays allocation-free.

// ArrivalState is the per-node mutable state of an arrival process. The
// zero value is the initial state; Workload.Reset re-zeroes it.
type ArrivalState struct {
	// BurstLeft counts the messages remaining in the current on-period
	// ("onoff" only).
	BurstLeft int
	// Started marks that the node's first gap was already drawn
	// ("periodic" uses it to draw the random phase exactly once).
	Started bool
}

// ArrivalProcess draws interarrival gaps for one node. Implementations
// must be stateless values (all mutable state lives in ArrivalState) and
// Gap must not allocate: the simulator calls it once per generated
// message on its hot path.
type ArrivalProcess interface {
	// ValidateSpec checks the spec parameters the process reads (Rate
	// plus any process-specific fields), failing fast on NaN/Inf or
	// out-of-range values. It takes the spec by value so validation never
	// forces the caller's spec onto the heap.
	ValidateSpec(s Spec) error
	// Gap draws the gap (in cycles) until the node's next message. The
	// spec's Rate is always positive and finite when Gap is called.
	Gap(s *Spec, rng *rand.Rand, st *ArrivalState) float64
}

var (
	//quarcflow:shared registry lock only; arrivalReg is written via RegisterArrival at init time and read-locked afterward, so replications never observe a mutation
	arrivalMu  sync.RWMutex
	arrivalReg = map[string]ArrivalProcess{}
)

// RegisterArrival adds (or replaces) a named arrival process. The
// built-in names are "poisson" (the default), "bernoulli", "onoff" and
// "periodic".
func RegisterArrival(name string, p ArrivalProcess) {
	arrivalMu.Lock()
	defer arrivalMu.Unlock()
	arrivalReg[name] = p
}

// Arrivals returns the registered arrival-process names, sorted.
func Arrivals() []string {
	arrivalMu.RLock()
	defer arrivalMu.RUnlock()
	names := make([]string, 0, len(arrivalReg))
	for name := range arrivalReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupArrival resolves a spec's arrival process; the empty name selects
// "poisson", today's default.
func lookupArrival(name string) (ArrivalProcess, error) {
	if name == "" {
		name = "poisson"
	}
	arrivalMu.RLock()
	p, ok := arrivalReg[name]
	arrivalMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("traffic: unknown arrival process %q (known: %v)", name, Arrivals())
	}
	return p, nil
}

func init() {
	RegisterArrival("poisson", poissonArrival{})
	RegisterArrival("bernoulli", bernoulliArrival{})
	RegisterArrival("onoff", onoffArrival{})
	RegisterArrival("periodic", periodicArrival{})
}

// poissonArrival is the paper's memoryless process: exponential gaps with
// mean 1/Rate. It is the default and is pinned bitwise to the pre-registry
// behavior (one ExpFloat64 draw per gap).
type poissonArrival struct{}

func (poissonArrival) ValidateSpec(s Spec) error { return nil }

//quarc:hotpath
func (poissonArrival) Gap(s *Spec, rng *rand.Rand, st *ArrivalState) float64 {
	return rng.ExpFloat64() / s.Rate
}

// bernoulliArrival injects with probability Rate in each cycle: gaps are
// geometric on the positive integers with mean 1/Rate, so arrivals land
// on the discrete cycle grid — the classic cycle-accurate NoC injection
// process.
type bernoulliArrival struct{}

func (bernoulliArrival) ValidateSpec(s Spec) error {
	if s.Rate > 1 {
		return fmt.Errorf("traffic: bernoulli arrival needs a per-cycle rate <= 1, got %v", s.Rate)
	}
	return nil
}

//quarc:hotpath
func (bernoulliArrival) Gap(s *Spec, rng *rand.Rand, st *ArrivalState) float64 {
	return geometric(rng, s.Rate)
}

// geometric draws from the geometric distribution on {1, 2, ...} with
// success probability p by inverting one uniform: the smallest k with
// 1-(1-p)^k > u. For p == 1 the log ratio is 0 against -Inf, giving k = 1
// deterministically.
//
//quarc:hotpath
func geometric(rng *rand.Rand, p float64) float64 {
	u := rng.Float64()
	return math.Floor(math.Log1p(-u)/math.Log1p(-p)) + 1
}

// onoffArrival is a two-state burst process: bursts of geometrically many
// messages (mean BurstLen) injected at the elevated rate Rate/DutyCycle,
// separated by exponential off-periods sized so the long-run average rate
// is exactly Rate. DutyCycle 1 degenerates to back-to-back bursts with no
// off-time (a Poisson process drawn with extra variates); small duty
// cycles concentrate the same offered load into sharp bursts that stress
// queues far beyond what smooth Poisson injection shows.
type onoffArrival struct{}

func (onoffArrival) ValidateSpec(s Spec) error {
	if s.BurstLen < 1 || math.IsNaN(s.BurstLen) || math.IsInf(s.BurstLen, 0) {
		return fmt.Errorf("traffic: onoff arrival needs a finite burst length >= 1, got %v", s.BurstLen)
	}
	if s.DutyCycle <= 0 || s.DutyCycle > 1 || math.IsNaN(s.DutyCycle) {
		return fmt.Errorf("traffic: onoff arrival needs a duty cycle in (0,1], got %v", s.DutyCycle)
	}
	return nil
}

//quarc:hotpath
func (onoffArrival) Gap(s *Spec, rng *rand.Rand, st *ArrivalState) float64 {
	lamOn := s.Rate / s.DutyCycle
	if st.BurstLeft > 0 {
		st.BurstLeft--
		return rng.ExpFloat64() / lamOn
	}
	// Start a new burst: draw its size (mean BurstLen), then the off-gap
	// plus the first intra-burst gap. Off-periods average
	// BurstLen*(1-duty)/Rate, which makes the expected time per message
	// exactly 1/Rate.
	st.BurstLeft = int(geometric(rng, 1/s.BurstLen)) - 1
	offMean := s.BurstLen * (1 - s.DutyCycle) / s.Rate
	return rng.ExpFloat64()*offMean + rng.ExpFloat64()/lamOn
}

// periodicArrival injects deterministically every 1/Rate cycles after a
// uniformly random initial phase (drawn once per node, so nodes are
// desynchronized but the run stays reproducible for a fixed seed).
type periodicArrival struct{}

func (periodicArrival) ValidateSpec(s Spec) error { return nil }

//quarc:hotpath
func (periodicArrival) Gap(s *Spec, rng *rand.Rand, st *ArrivalState) float64 {
	period := 1 / s.Rate
	if !st.Started {
		st.Started = true
		return rng.Float64() * period
	}
	return period
}
