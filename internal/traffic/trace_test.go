package traffic

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// driveRecorder runs a recorder through an interleaved call pattern like
// the simulator's (gap draw, later the matching message draw, across
// nodes) and returns the captured trace.
func driveRecorder(t *testing.T, spec Spec, draws int) *Trace {
	t.Helper()
	rt := quarcRouter(t, 16)
	w, err := NewWorkload(rt, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	for i := 0; i < draws; i++ {
		for node := topology.NodeID(0); node < 16; node++ {
			if math.IsInf(rec.Interarrival(node), 1) {
				continue
			}
			rec.Next(node)
			if i%3 == 0 {
				rec.Injected(node, float64(i), false)
			}
		}
	}
	return rec.Trace()
}

// traceEqual compares traces structurally, treating NaN time stamps as
// equal (reflect.DeepEqual would reject NaN == NaN).
func traceEqual(a, b *Trace) bool {
	if a.N != b.N || a.Topo != b.Topo || a.MsgLen != b.MsgLen ||
		!reflect.DeepEqual(a.SetBits, b.SetBits) || !reflect.DeepEqual(a.Gaps, b.Gaps) {
		return false
	}
	if len(a.Msgs) != len(b.Msgs) {
		return false
	}
	for node := range a.Msgs {
		if len(a.Msgs[node]) != len(b.Msgs[node]) {
			return false
		}
		for i, ma := range a.Msgs[node] {
			mb := b.Msgs[node][i]
			if ma.Multicast != mb.Multicast || ma.Dst != mb.Dst {
				return false
			}
			if ma.Time != mb.Time && !(math.IsNaN(ma.Time) && math.IsNaN(mb.Time)) {
				return false
			}
		}
	}
	return true
}

// TestTraceCodecRoundTrip pins both encodings: a trace survives a
// binary and a JSONL round trip bit-for-bit (gaps carry exact float64
// values in both).
func TestTraceCodecRoundTrip(t *testing.T) {
	set, err := quarcRouter(t, 16).LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := driveRecorder(t, Spec{Rate: 0.01, MulticastFrac: 0.3, Set: set}, 40)
	if tr.Messages() == 0 {
		t.Fatal("recorder captured nothing")
	}

	var bin bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadTrace(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !traceEqual(tr, fromBin) {
		t.Fatal("binary round trip changed the trace")
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	fromJSONL, err := ReadTrace(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !traceEqual(tr, fromJSONL) {
		t.Fatal("JSONL round trip changed the trace")
	}
}

// TestTraceDecodeRejectsGarbage checks the decoder's fail-fast paths.
func TestTraceDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"truncated magic":  {'Q', 'W'},
		"bad magic":        []byte("QWTZ1234"),
		"not jsonl":        []byte("hello world\n"),
		"wrong jsonl head": []byte(`{"format":"other","nodes":4}` + "\n"),
		"truncated binary": append([]byte{'Q', 'W', 'T', 'R', 1}, 16), // node count, then EOF mid-stream
	}
	for name, data := range cases {
		if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: garbage accepted", name)
		}
	}
	// A bad destination must fail validation on decode.
	bad := &Trace{N: 4,
		Gaps: [][]float64{{1}, {}, {}, {}},
		Msgs: [][]TraceMsg{{{Dst: 9, Time: math.NaN()}}, {}, {}, {}}}
	var buf bytes.Buffer
	if err := bad.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Error("out-of-range destination accepted on decode")
	}
}

// TestReplayerReproducesRecording pins the core replay property at the
// traffic level: a replayer hands back exactly the gaps and routes the
// recorded workload drew, then falls silent.
func TestReplayerReproducesRecording(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortR, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Rate: 0.01, MulticastFrac: 0.25, Set: set}
	w, err := NewWorkload(rt, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	type draw struct {
		gap  float64
		mc   bool
		port int
		dst  topology.NodeID
	}
	var want []draw
	const rounds = 200
	for i := 0; i < rounds; i++ {
		for node := topology.NodeID(0); node < 16; node++ {
			g := rec.Interarrival(node)
			br, mc := rec.Next(node)
			d := draw{gap: g, mc: mc, port: br[0].Port}
			if !mc {
				d.dst = br[0].Targets[len(br[0].Targets)-1]
			}
			want = append(want, d)
		}
	}

	rp, err := NewReplayer(rt, set, rec.Trace())
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		i := 0
		for round := 0; round < rounds; round++ {
			for node := topology.NodeID(0); node < 16; node++ {
				g := rp.Interarrival(node)
				br, mc := rp.Next(node)
				d := want[i]
				i++
				if g != d.gap || mc != d.mc || br[0].Port != d.port {
					t.Fatalf("pass %d draw %d: replay (%v, %v, port %d) != recorded (%v, %v, port %d)",
						pass, i, g, mc, br[0].Port, d.gap, d.mc, d.port)
				}
				if !mc && br[0].Targets[len(br[0].Targets)-1] != d.dst {
					t.Fatalf("pass %d draw %d: replay dst %d != recorded %d",
						pass, i, br[0].Targets[len(br[0].Targets)-1], d.dst)
				}
			}
		}
		// Exhausted: the replayer must fall silent, and Rewind restarts it.
		if !math.IsInf(rp.Interarrival(0), 1) {
			t.Fatal("exhausted replayer still yields gaps")
		}
		if br, _ := rp.Next(0); br != nil {
			t.Fatal("exhausted replayer still yields messages")
		}
		rp.Rewind()
	}
}

// TestReplayerRejectsMismatch checks replay fail-fast: node-count
// mismatches and multicast traces without a destination set are errors.
func TestReplayerRejectsMismatch(t *testing.T) {
	rt := quarcRouter(t, 16)
	tr := &Trace{N: 8,
		Gaps: make([][]float64, 8),
		Msgs: make([][]TraceMsg, 8)}
	if _, err := NewReplayer(rt, quarcRouter(t, 16).BroadcastSet(), tr); err == nil {
		t.Error("8-node trace accepted on a 16-node network")
	}
	mcTrace := &Trace{N: 16,
		Gaps: make([][]float64, 16),
		Msgs: make([][]TraceMsg, 16)}
	mcTrace.Msgs[0] = []TraceMsg{{Multicast: true, Time: math.NaN()}}
	if _, err := NewReplayer(rt, routing.MulticastSet{}, mcTrace); err == nil {
		t.Error("multicast trace accepted without a destination set")
	}
}

// TestReplayerRejectsWrongTopologyAndSet pins the fingerprint checks: a
// trace records the channel count and the multicast set it was captured
// under, and replay on a same-size but different topology — or under a
// different set — fails loudly instead of producing plausible numbers.
func TestReplayerRejectsWrongTopologyAndSet(t *testing.T) {
	rt := quarcRouter(t, 16)
	setA, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(rt, Spec{Rate: 0.01, MulticastFrac: 0.5, Set: setA}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	for i := 0; i < 20; i++ {
		rec.Interarrival(0)
		rec.Next(0)
	}
	tr := rec.Trace()
	if tr.Topo == 0 || tr.SetBits == nil {
		t.Fatalf("recorder did not fingerprint the run: %+v", tr)
	}
	// Same node count, different topology: the spidergon has a different
	// channel count.
	sp, err := topology.NewSpidergon(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplayer(routing.NewSpidergonRouter(sp), setA, tr); err == nil {
		t.Error("quarc trace accepted on a 16-node spidergon")
	}
	// Same topology, different multicast set.
	setB := rt.BroadcastSet()
	if _, err := NewReplayer(rt, setB, tr); err == nil {
		t.Error("trace accepted under a different multicast set")
	}
	if _, err := NewReplayer(rt, setA, tr); err != nil {
		t.Errorf("matching replay rejected: %v", err)
	}
}
