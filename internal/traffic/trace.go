package traffic

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// A Trace is a captured workload: per-node interarrival gaps and message
// records, in draw order. Replaying a trace against the same routed
// topology reproduces the original run bitwise — the simulator is
// deterministic given its traffic source, and the trace IS the traffic
// source's complete output. Gaps are stored with full float64 precision
// for exactly this reason (absolute times are sums of gaps, and storing
// the sums would lose the bitwise guarantee on subtraction).
//
// Two interchangeable encodings exist: a compact binary format (magic
// "QWTR") and a line-delimited JSON form for inspection and interop;
// ReadTrace sniffs which one it is handed.
type Trace struct {
	// N is the node count of the network the trace was captured on.
	N int
	// Topo fingerprints the routed topology the trace was captured on:
	// an FNV-1a hash of the graph's name and full channel structure
	// (TopologyFingerprint). Replay refuses a mismatch, so a quarc-16
	// trace cannot silently replay on a same-size mesh even when the
	// channel counts coincide. Zero (e.g. a hand-written trace) skips
	// the check.
	Topo uint64
	// SetBits fingerprints the multicast destination set the trace's
	// multicasts were routed with (the set's raw bit words). Replay of a
	// trace containing multicasts refuses a different set. Nil skips the
	// check.
	SetBits []uint64
	// MsgLen records the message length (in flits) of the run the trace
	// was captured from. Gaps and destinations replay under any message
	// length, but only the recorded one reproduces the original results,
	// so replay refuses a mismatch. Zero skips the check.
	MsgLen int
	// Gaps[node] lists the node's interarrival gaps in draw order.
	Gaps [][]float64
	// Msgs[node] lists the node's generated messages in draw order.
	Msgs [][]TraceMsg
}

// TraceMsg is one recorded message generation.
type TraceMsg struct {
	// Multicast marks a multicast to the workload's destination set.
	Multicast bool
	// Dst is the unicast destination (ignored for multicasts).
	Dst topology.NodeID
	// Time is the absolute injection time stamped by the simulator's
	// injection hook — metadata for inspection; replay derives times from
	// the gaps. NaN when the message was drawn but never injected (e.g.
	// the run's horizon hit first).
	Time float64
}

// Messages returns the total number of recorded messages.
func (t *Trace) Messages() int {
	total := 0
	for _, m := range t.Msgs {
		total += len(m)
	}
	return total
}

// multicasts reports whether any recorded message is a multicast.
func (t *Trace) multicasts() bool {
	for _, ms := range t.Msgs {
		for _, m := range ms {
			if m.Multicast {
				return true
			}
		}
	}
	return false
}

// maxTraceNodes bounds the node count a decoder will believe, so a
// corrupted header cannot drive a huge (or panicking) allocation.
const maxTraceNodes = 1 << 20

// validate checks structural invariants after decoding.
func (t *Trace) validate() error {
	if t.N <= 0 || t.N > maxTraceNodes {
		return fmt.Errorf("traffic: trace node count %d out of range", t.N)
	}
	if len(t.Gaps) != t.N || len(t.Msgs) != t.N {
		return fmt.Errorf("traffic: trace streams (%d gaps, %d msgs) do not match %d nodes",
			len(t.Gaps), len(t.Msgs), t.N)
	}
	for node, gaps := range t.Gaps {
		for _, g := range gaps {
			if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
				return fmt.Errorf("traffic: trace node %d has invalid gap %v", node, g)
			}
		}
	}
	for node, msgs := range t.Msgs {
		for _, m := range msgs {
			if !m.Multicast && (m.Dst < 0 || int(m.Dst) >= t.N || int(m.Dst) == node) {
				return fmt.Errorf("traffic: trace node %d has invalid destination %d", node, m.Dst)
			}
		}
	}
	return nil
}

// Recorder wraps a traffic source and captures everything it emits, so a
// live run can be replayed later. It implements the simulator's Traffic
// interface (pass the recorder where the workload would go) and its
// injection-hook Observer extension, which stamps absolute injection
// times onto the recorded messages.
type Recorder struct {
	src *Workload
	tr  Trace
}

// NewRecorder wraps src, recording for an n-node network.
func NewRecorder(src *Workload) *Recorder {
	return &Recorder{
		src: src,
		tr: Trace{
			N:       src.n,
			Topo:    TopologyFingerprint(src.router.Graph()),
			SetBits: slices.Clone(src.spec.Set.Bits),
			Gaps:    make([][]float64, src.n),
			Msgs:    make([][]TraceMsg, src.n),
		},
	}
}

// Trace returns the captured trace (grows until the recorder stops being
// driven; safe to read once the run is over).
func (r *Recorder) Trace() *Trace { return &r.tr }

// Interarrival implements the simulator's Traffic interface.
func (r *Recorder) Interarrival(node topology.NodeID) float64 {
	g := r.src.Interarrival(node)
	if !math.IsInf(g, 1) {
		r.tr.Gaps[node] = append(r.tr.Gaps[node], g)
	}
	return g
}

// Next implements the simulator's Traffic interface.
func (r *Recorder) Next(node topology.NodeID) ([]routing.Branch, bool) {
	br, mc := r.src.Next(node)
	if len(br) > 0 {
		m := TraceMsg{Multicast: mc, Time: math.NaN()}
		if !mc {
			targets := br[0].Targets
			m.Dst = targets[len(targets)-1]
		}
		r.tr.Msgs[node] = append(r.tr.Msgs[node], m)
	}
	return br, mc
}

// Injected implements the simulator's injection hook: it stamps the
// absolute injection time onto the message most recently drawn at node.
func (r *Recorder) Injected(node topology.NodeID, t float64, multicast bool) {
	if ms := r.tr.Msgs[node]; len(ms) > 0 {
		ms[len(ms)-1].Time = t
	}
}

// Replayer feeds a captured trace back into the simulator. It implements
// the Traffic interface: gaps and destinations come from the trace while
// routes are re-derived from the router's shared route-table caches, so a
// replayed run is bitwise-identical to the recorded one on the same
// routed topology. When the trace runs dry a node simply stops
// generating (an infinite gap), so replays of truncated traces terminate
// cleanly.
type Replayer struct {
	tr  *Trace
	n   int
	uni [][]routing.Branch
	mc  [][]routing.Branch
	gi  []int // per-node gap cursors
	mi  []int // per-node message cursors
}

// NewReplayer builds a replayer of tr over the routed topology. The set
// is only consulted when the trace contains multicasts (it must then be
// the set the trace was recorded under for the routes to match).
func NewReplayer(router routing.Router, set routing.MulticastSet, tr *Trace) (*Replayer, error) {
	if err := tr.validate(); err != nil {
		return nil, err
	}
	n := router.Graph().Nodes()
	if tr.N != n {
		return nil, fmt.Errorf("traffic: trace over %d nodes replayed on a %d-node network", tr.N, n)
	}
	if fp := TopologyFingerprint(router.Graph()); tr.Topo != 0 && tr.Topo != fp {
		return nil, fmt.Errorf("traffic: trace was captured on a different topology (fingerprint %#x, replaying on %#x)", tr.Topo, fp)
	}
	uni, err := unicastTable(router)
	if err != nil {
		return nil, err
	}
	p := &Replayer{tr: tr, n: n, uni: uni, gi: make([]int, n), mi: make([]int, n)}
	if tr.multicasts() {
		if set.Empty() {
			return nil, fmt.Errorf("traffic: trace contains multicasts but no destination set was given")
		}
		if tr.SetBits != nil && !set.Equal(routing.MulticastSet{Bits: tr.SetBits}) {
			return nil, fmt.Errorf("traffic: trace multicasts were recorded under a different destination set")
		}
		mc, err := multicastTable(router, set)
		if err != nil {
			return nil, err
		}
		p.mc = mc
	}
	return p, nil
}

// Rewind resets the replay cursors so the same trace can be replayed
// again (e.g. across the points of a sweep).
func (p *Replayer) Rewind() {
	for i := range p.gi {
		p.gi[i], p.mi[i] = 0, 0
	}
}

// Interarrival implements the simulator's Traffic interface.
func (p *Replayer) Interarrival(node topology.NodeID) float64 {
	gaps := p.tr.Gaps[node]
	i := p.gi[node]
	if i >= len(gaps) {
		return math.Inf(1)
	}
	p.gi[node] = i + 1
	return gaps[i]
}

// Next implements the simulator's Traffic interface.
func (p *Replayer) Next(node topology.NodeID) ([]routing.Branch, bool) {
	msgs := p.tr.Msgs[node]
	i := p.mi[node]
	if i >= len(msgs) {
		return nil, false
	}
	p.mi[node] = i + 1
	m := msgs[i]
	if m.Multicast {
		return p.mc[node], true
	}
	return p.uni[int(node)*p.n+int(m.Dst)], false
}

// TopologyFingerprint hashes a routed topology's identity — its name,
// node count and complete channel structure — with FNV-1a. Traces carry
// it so replay fails loudly on any topology other than the one the
// trace was recorded on, rather than re-deriving plausible-but-wrong
// routes.
func TopologyFingerprint(g *topology.Graph) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= v >> s & 0xff
			h *= prime64
		}
	}
	for _, b := range []byte(g.Name()) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(uint64(g.Nodes()))
	for _, c := range g.Channels() {
		mix(uint64(c.Kind))
		mix(uint64(c.Src))
		mix(uint64(c.Dst))
		mix(uint64(c.Class))
		mix(uint64(c.VC))
	}
	return h
}

// Binary trace format: the magic "QWTR" and a version byte, the node
// count, then per node its gap stream and message stream. Gaps carry
// their exact float64 bits; message flags pack the multicast bit and
// whether an injection time stamp follows. Integers are uvarints.
var traceMagic = [5]byte{'Q', 'W', 'T', 'R', 1}

// WriteBinary encodes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(traceMagic[:])
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		bw.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	writeWord := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:8], v)
		bw.Write(buf[:8])
	}
	writeFloat := func(f float64) { writeWord(math.Float64bits(f)) }
	writeUvarint(uint64(t.N))
	writeWord(t.Topo)
	writeUvarint(uint64(t.MsgLen))
	writeUvarint(uint64(len(t.SetBits)))
	for _, w := range t.SetBits {
		writeWord(w)
	}
	for node := 0; node < t.N; node++ {
		writeUvarint(uint64(len(t.Gaps[node])))
		for _, g := range t.Gaps[node] {
			writeFloat(g)
		}
		writeUvarint(uint64(len(t.Msgs[node])))
		for _, m := range t.Msgs[node] {
			flags := byte(0)
			if m.Multicast {
				flags |= 1
			}
			stamped := !math.IsNaN(m.Time)
			if stamped {
				flags |= 2
			}
			bw.WriteByte(flags)
			if !m.Multicast {
				writeUvarint(uint64(m.Dst))
			}
			if stamped {
				writeFloat(m.Time)
			}
		}
	}
	return bw.Flush()
}

// readBinaryTrace decodes the binary format after the magic has been
// consumed and checked.
func readBinaryTrace(br *bufio.Reader) (*Trace, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	readWord := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readFloat := func() (float64, error) {
		w, err := readWord()
		return math.Float64frombits(w), err
	}
	n, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("traffic: trace node count: %w", err)
	}
	if n == 0 || n > maxTraceNodes {
		return nil, fmt.Errorf("traffic: trace node count %d out of range", n)
	}
	topo, err := readWord()
	if err != nil {
		return nil, fmt.Errorf("traffic: trace topology fingerprint: %w", err)
	}
	msgLen, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("traffic: trace message length: %w", err)
	}
	if msgLen > 1<<30 {
		return nil, fmt.Errorf("traffic: trace message length %d out of range", msgLen)
	}
	nw, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("traffic: trace set fingerprint: %w", err)
	}
	if nw > maxTraceNodes {
		return nil, fmt.Errorf("traffic: trace set fingerprint of %d words out of range", nw)
	}
	var setBits []uint64
	for i := uint64(0); i < nw; i++ {
		w, err := readWord()
		if err != nil {
			return nil, fmt.Errorf("traffic: trace set fingerprint word %d: %w", i, err)
		}
		setBits = append(setBits, w)
	}
	t := &Trace{N: int(n), Topo: topo, SetBits: setBits, MsgLen: int(msgLen),
		Gaps: make([][]float64, n), Msgs: make([][]TraceMsg, n)}
	for node := 0; node < t.N; node++ {
		ng, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("traffic: trace node %d gap count: %w", node, err)
		}
		gaps := make([]float64, 0, min(ng, 1<<16))
		for i := uint64(0); i < ng; i++ {
			g, err := readFloat()
			if err != nil {
				return nil, fmt.Errorf("traffic: trace node %d gap %d: %w", node, i, err)
			}
			gaps = append(gaps, g)
		}
		t.Gaps[node] = gaps
		nm, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("traffic: trace node %d message count: %w", node, err)
		}
		msgs := make([]TraceMsg, 0, min(nm, 1<<16))
		for i := uint64(0); i < nm; i++ {
			flags, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("traffic: trace node %d message %d: %w", node, i, err)
			}
			m := TraceMsg{Multicast: flags&1 != 0, Time: math.NaN()}
			if !m.Multicast {
				d, err := readUvarint()
				if err != nil {
					return nil, fmt.Errorf("traffic: trace node %d message %d destination: %w", node, i, err)
				}
				// Bound before the narrowing cast: a corrupted uvarint
				// must not alias to a valid node and slip past validate.
				if d >= n {
					return nil, fmt.Errorf("traffic: trace node %d message %d destination %d out of range", node, i, d)
				}
				m.Dst = topology.NodeID(d)
			}
			if flags&2 != 0 {
				if m.Time, err = readFloat(); err != nil {
					return nil, fmt.Errorf("traffic: trace node %d message %d time: %w", node, i, err)
				}
			}
			msgs = append(msgs, m)
		}
		t.Msgs[node] = msgs
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// traceLine is one line of the JSONL encoding: a header line carries the
// node count; every other line is one gap or one message record.
type traceLine struct {
	Format  string   `json:"format,omitempty"` // "quarc-trace" on the header line
	Nodes   int      `json:"nodes,omitempty"`
	Topo    uint64   `json:"topo,omitempty"` // topology fingerprint
	SetBits []uint64 `json:"set_bits,omitempty"`
	MsgLen  int      `json:"msglen,omitempty"`

	Node *int     `json:"node,omitempty"`
	Gap  *float64 `json:"gap,omitempty"`
	MC   bool     `json:"mc,omitempty"`
	Dst  *int     `json:"dst,omitempty"`
	Time *float64 `json:"time,omitempty"`
}

// WriteJSONL encodes the trace as line-delimited JSON: a header line,
// then one line per gap or message, grouped per node in draw order. Gap
// floats round-trip exactly (Go prints the shortest representation that
// parses back to the same bits), so JSONL traces replay bitwise too.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceLine{Format: "quarc-trace", Nodes: t.N,
		Topo: t.Topo, SetBits: t.SetBits, MsgLen: t.MsgLen}); err != nil {
		return err
	}
	for node := 0; node < t.N; node++ {
		for i := range t.Gaps[node] {
			if err := enc.Encode(traceLine{Node: &node, Gap: &t.Gaps[node][i]}); err != nil {
				return err
			}
		}
		for i := range t.Msgs[node] {
			m := &t.Msgs[node][i]
			line := traceLine{Node: &node, MC: m.Multicast}
			if !m.Multicast {
				d := int(m.Dst)
				line.Dst = &d
			}
			if !math.IsNaN(m.Time) {
				line.Time = &m.Time
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readJSONLTrace decodes the JSONL encoding (the caller has peeked but
// not consumed the stream).
func readJSONLTrace(br *bufio.Reader) (*Trace, error) {
	dec := json.NewDecoder(br)
	var head traceLine
	if err := dec.Decode(&head); err != nil {
		return nil, fmt.Errorf("traffic: trace JSONL header: %w", err)
	}
	if head.Format != "quarc-trace" || head.Nodes <= 0 {
		return nil, fmt.Errorf("traffic: not a quarc-trace JSONL stream")
	}
	if head.Nodes > maxTraceNodes {
		return nil, fmt.Errorf("traffic: trace node count %d out of range", head.Nodes)
	}
	t := &Trace{N: head.Nodes, Topo: head.Topo, SetBits: head.SetBits, MsgLen: head.MsgLen,
		Gaps: make([][]float64, head.Nodes), Msgs: make([][]TraceMsg, head.Nodes)}
	for {
		var line traceLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("traffic: trace JSONL record: %w", err)
		}
		if line.Node == nil || *line.Node < 0 || *line.Node >= t.N {
			return nil, fmt.Errorf("traffic: trace JSONL record without a valid node")
		}
		node := *line.Node
		if line.Gap != nil {
			t.Gaps[node] = append(t.Gaps[node], *line.Gap)
			continue
		}
		m := TraceMsg{Multicast: line.MC, Time: math.NaN()}
		if !line.MC {
			if line.Dst == nil {
				return nil, fmt.Errorf("traffic: trace JSONL unicast record without a destination")
			}
			// Bound before the narrowing cast (see the binary decoder).
			if *line.Dst < 0 || *line.Dst >= t.N {
				return nil, fmt.Errorf("traffic: trace JSONL destination %d out of range", *line.Dst)
			}
			m.Dst = topology.NodeID(*line.Dst)
		}
		if line.Time != nil {
			m.Time = *line.Time
		}
		t.Msgs[node] = append(t.Msgs[node], m)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadTrace decodes a trace in either encoding, sniffing the binary magic.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(traceMagic))
	if err == nil && [5]byte(head) == traceMagic {
		br.Discard(len(traceMagic))
		return readBinaryTrace(br)
	}
	return readJSONLTrace(br)
}
