// Package traffic generates the workloads the paper evaluates: every node
// produces messages according to a Poisson process; a fraction α of the
// messages are multicasts to a fixed relative destination set and the rest
// are unicasts to uniformly random destinations.
//
// Workload satisfies the wormhole simulator's Traffic interface and is also
// consumed by the analytical model, which enumerates the same routes with
// the same rates — both sides of the validation therefore see exactly the
// same traffic specification.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sync"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// Spec describes a workload independent of any RNG state.
type Spec struct {
	// Rate is the message generation rate per node, messages/cycle.
	Rate float64
	// MulticastFrac is α, the fraction of generated messages that are
	// multicasts (0 disables multicast).
	MulticastFrac float64
	// Set is the relative multicast destination set shared by all nodes.
	Set routing.MulticastSet
	// HotspotFrac skews unicast destinations: with this probability a
	// unicast goes to HotspotNode instead of a uniform destination (the
	// classic hotspot traffic pattern; 0 keeps the paper's uniform
	// assumption). Sources equal to the hotspot fall back to uniform.
	HotspotFrac float64
	// HotspotNode is the hotspot destination.
	HotspotNode topology.NodeID

	// Arrival names the registered arrival process that paces injection;
	// empty selects "poisson", the paper's assumption and the pre-registry
	// behavior (see RegisterArrival).
	Arrival string
	// BurstLen is the mean burst length in messages for the "onoff"
	// arrival process.
	BurstLen float64
	// DutyCycle is the on fraction in (0,1] for the "onoff" arrival
	// process; bursts inject at Rate/DutyCycle so the long-run rate stays
	// Rate.
	DutyCycle float64

	// Perm, when non-nil, fixes each source's unicast destination:
	// messages from src go to Perm[src] (the permutation traffic families
	// — transpose, bit-reversal, tornado, ...). A self-map silences the
	// node entirely (it generates no traffic, unicast or multicast), the
	// standard convention for permutation workloads. Mutually exclusive
	// with Weights and HotspotFrac.
	Perm []topology.NodeID
	// Weights, when non-nil, skews unicast destinations per source:
	// Weights[src][dst] is the relative probability that a unicast from
	// src targets dst (rows are normalized internally; the diagonal is
	// ignored). This is the general weight-matrix form of hotspot
	// traffic. Mutually exclusive with Perm and HotspotFrac.
	Weights [][]float64
}

// Dest bundles the spatial (unicast-destination) side of a spec — the
// value a destination-pattern builder produces. Zero means uniform
// destinations.
type Dest struct {
	Perm    []topology.NodeID
	Weights [][]float64
}

// Validate checks the spec's numeric ranges, including the parameters of
// its arrival process (burst length, duty cycle, ...), which fail fast
// here rather than polluting a run with NaN gaps.
func (s Spec) Validate() error {
	if s.Rate < 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("traffic: invalid rate %v", s.Rate)
	}
	if s.MulticastFrac < 0 || s.MulticastFrac > 1 || math.IsNaN(s.MulticastFrac) {
		return fmt.Errorf("traffic: invalid multicast fraction %v", s.MulticastFrac)
	}
	if s.MulticastFrac > 0 && s.Set.Empty() {
		return fmt.Errorf("traffic: multicast fraction %v with empty destination set", s.MulticastFrac)
	}
	if s.HotspotFrac < 0 || s.HotspotFrac > 1 || math.IsNaN(s.HotspotFrac) {
		return fmt.Errorf("traffic: invalid hotspot fraction %v", s.HotspotFrac)
	}
	proc, err := lookupArrival(s.Arrival)
	if err != nil {
		return err
	}
	if err := proc.ValidateSpec(s); err != nil {
		return err
	}
	exclusive := 0
	if s.Perm != nil {
		exclusive++
	}
	if s.Weights != nil {
		exclusive++
	}
	if s.HotspotFrac > 0 {
		exclusive++
	}
	if exclusive > 1 {
		return fmt.Errorf("traffic: permutation, weight-matrix and hotspot destinations are mutually exclusive")
	}
	return nil
}

// ValidateFor runs Validate plus the checks that need the network size:
// hotspot/permutation destinations must name real nodes and weight rows
// must be well-formed. NewWorkload and Reset run it, so a workload is
// always internally consistent with its network.
func (s Spec) ValidateFor(n int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := checkHotspot(s, n); err != nil {
		return err
	}
	if s.Perm != nil {
		if len(s.Perm) != n {
			return fmt.Errorf("traffic: permutation over %d nodes in a %d-node network", len(s.Perm), n)
		}
		for src, dst := range s.Perm {
			if dst < 0 || int(dst) >= n {
				return fmt.Errorf("traffic: permutation maps node %d outside the %d-node network (to %d)", src, n, dst)
			}
		}
	}
	if s.Weights != nil {
		if len(s.Weights) != n {
			return fmt.Errorf("traffic: weight matrix with %d rows in a %d-node network", len(s.Weights), n)
		}
		for src, row := range s.Weights {
			if len(row) != n {
				return fmt.Errorf("traffic: weight row %d has %d entries in a %d-node network", src, len(row), n)
			}
			sum := 0.0
			for dst, w := range row {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("traffic: invalid weight %v at [%d][%d]", w, src, dst)
				}
				if dst != src {
					sum += w
				}
			}
			if sum <= 0 {
				return fmt.Errorf("traffic: weight row %d has no mass off the diagonal", src)
			}
		}
	}
	return nil
}

// Silent reports whether src generates no traffic under this spec: a
// permutation self-map silences the node (and a zero rate silences every
// node, which callers check separately via Rate).
func (s Spec) Silent(src topology.NodeID) bool {
	return s.Perm != nil && s.Perm[src] == src
}

// UnicastProb returns the probability that a unicast generated at src is
// destined for dst under this spec (zero for dst == src). The analytical
// model enumerates flows with exactly these probabilities, so model and
// simulator always describe the same traffic.
func (s Spec) UnicastProb(n int, src, dst topology.NodeID) float64 {
	if src == dst {
		return 0
	}
	if s.Perm != nil {
		if s.Perm[src] == dst {
			return 1
		}
		return 0
	}
	if s.Weights != nil {
		row := s.Weights[src]
		sum := 0.0
		for d, w := range row {
			if topology.NodeID(d) != src {
				sum += w
			}
		}
		if sum <= 0 {
			return 0
		}
		return row[dst] / sum
	}
	uniform := 1.0 / float64(n-1)
	if s.HotspotFrac == 0 || src == s.HotspotNode {
		return uniform
	}
	p := (1 - s.HotspotFrac) * uniform
	if dst == s.HotspotNode {
		p += s.HotspotFrac
	}
	return p
}

// UnicastProbRow fills out[dst] with UnicastProb(n, src, dst) for every
// destination in O(n): the weight-matrix row sum is computed once per
// source instead of once per (src, dst) pair, which keeps the analytical
// model's flow enumeration at O(n²) under weighted destinations. out
// must have length n. Every entry is bitwise-identical to the per-pair
// UnicastProb.
func (s Spec) UnicastProbRow(n int, src topology.NodeID, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if s.Perm != nil {
		if d := s.Perm[src]; d != src {
			out[d] = 1
		}
		return
	}
	if s.Weights != nil {
		row := s.Weights[src]
		sum := 0.0
		for d, w := range row {
			if topology.NodeID(d) != src {
				sum += w
			}
		}
		if sum <= 0 {
			return
		}
		for d, w := range row {
			if topology.NodeID(d) != src {
				out[d] = w / sum
			}
		}
		return
	}
	uniform := 1.0 / float64(n-1)
	for dst := 0; dst < n; dst++ {
		if topology.NodeID(dst) == src {
			continue
		}
		if s.HotspotFrac == 0 || src == s.HotspotNode {
			out[dst] = uniform
			continue
		}
		p := (1 - s.HotspotFrac) * uniform
		if topology.NodeID(dst) == s.HotspotNode {
			p += s.HotspotFrac
		}
		out[dst] = p
	}
}

// Workload is a reproducible Poisson workload over a router. It implements
// the wormhole simulator's Traffic interface.
type Workload struct {
	spec   Spec
	router routing.Router
	n      int
	rngs   []*rand.Rand
	// srcs are the rngs' underlying PCG sources, kept so Reset can reseed
	// in place (a rand.Rand holds no state beyond its source).
	srcs []*rand.PCG
	// branches caches the multicast branches per source (the set is
	// relative, so they are fixed for the whole run); branchSet records
	// the destination set the cache was built from, which can lag behind
	// spec.Set across Resets while MulticastFrac is zero.
	branches  [][]routing.Branch
	branchSet routing.MulticastSet
	// uni caches the single-branch route of every ordered unicast pair at
	// index src*n+dst. Routes are deterministic, so precomputing them once
	// keeps Next allocation-free on the simulator's hot path; callers must
	// treat the returned branches as read-only (the simulator does).
	uni [][]routing.Branch
	// proc is the resolved arrival process and arr its per-node states
	// (reset to zero by Reset, so a reset workload replays bitwise).
	proc ArrivalProcess
	arr  []ArrivalState
	// cdf holds per-source cumulative destination weights at index
	// src*n+dst when spec.Weights is set (diagonal mass forced to zero),
	// so weighted sampling is one Float64 draw plus a binary search —
	// allocation-free.
	cdf []float64
}

// NewWorkload builds a workload over the given router. Each node gets an
// independent RNG stream derived from seed, so runs are reproducible and
// node processes are mutually independent.
func NewWorkload(router routing.Router, spec Spec, seed uint64) (*Workload, error) {
	n := router.Graph().Nodes()
	if err := spec.ValidateFor(n); err != nil {
		return nil, err
	}
	w := &Workload{spec: spec, router: router, n: n,
		rngs: make([]*rand.Rand, n), srcs: make([]*rand.PCG, n),
		arr: make([]ArrivalState, n)}
	w.proc, _ = lookupArrival(spec.Arrival) // validated above
	w.buildCDF(spec.Weights)
	for i := 0; i < n; i++ {
		w.srcs[i] = rand.NewPCG(seed, uint64(i)*0x9e3779b97f4a7c15+1)
		w.rngs[i] = rand.New(w.srcs[i])
	}
	if spec.MulticastFrac > 0 {
		b, err := multicastTable(router, spec.Set)
		if err != nil {
			return nil, err
		}
		w.branches = b
		// Clone the bits: MulticastSet.Add mutates in place, so keeping a
		// reference would let a caller-side mutation defeat the Equal check.
		w.branchSet = routing.MulticastSet{Bits: slices.Clone(spec.Set.Bits)}
	}
	uni, err := unicastTable(router)
	if err != nil {
		return nil, err
	}
	w.uni = uni
	return w, nil
}

// Route-table caches. Routes are a pure function of the (immutable)
// router, so every workload over the same router — every point of a
// sweep, every replication — shares one read-only table instead of
// re-deriving it. Keys are router identities, which a long-lived process
// can mint without bound (every noc.NewScenario resolves a fresh
// router), so both caches flush wholesale when they exceed
// maxCachedTables entries: a flush only costs recomputation, never
// correctness.
var (
	//quarcflow:shared mutex-guarded memo cache; a hit and a miss return bitwise-identical tables (routes are a pure function of the router), so the cache never changes a Result — a parallel engine can keep it as-is or drop it per-shard
	routeMu sync.Mutex
	//quarcflow:shared see routeMu: pure-memoization cache guarded by routeMu, value identity never affects results
	unicastTables = map[routing.Router][][]routing.Branch{}
	//quarcflow:shared see routeMu: pure-memoization cache guarded by routeMu, value identity never affects results
	multicastTables = map[multicastKey][][]routing.Branch{}
)

const maxCachedTables = 64

func unicastTable(router routing.Router) ([][]routing.Branch, error) {
	routeMu.Lock()
	if t, ok := unicastTables[router]; ok {
		routeMu.Unlock()
		return t, nil
	}
	routeMu.Unlock()
	n := router.Graph().Nodes()
	uni := make([][]routing.Branch, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			s, d := topology.NodeID(src), topology.NodeID(dst)
			path, err := router.UnicastPath(s, d)
			if err != nil {
				return nil, fmt.Errorf("traffic: unicast path %d->%d: %w", src, dst, err)
			}
			port, err := router.UnicastPort(s, d)
			if err != nil {
				return nil, fmt.Errorf("traffic: unicast port %d->%d: %w", src, dst, err)
			}
			uni[src*n+dst] = []routing.Branch{{Port: port, Path: path, Targets: []topology.NodeID{d}}}
		}
	}
	routeMu.Lock()
	if len(unicastTables) >= maxCachedTables {
		unicastTables = map[routing.Router][][]routing.Branch{}
	}
	unicastTables[router] = uni
	routeMu.Unlock()
	return uni, nil
}

// multicastKey identifies a multicast branch table: the router plus the
// destination-set bits.
type multicastKey struct {
	router routing.Router
	bits   string
}

func setKey(router routing.Router, set routing.MulticastSet) multicastKey {
	var b []byte
	for _, w := range set.Bits {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>s))
		}
	}
	return multicastKey{router: router, bits: string(b)}
}

func multicastTable(router routing.Router, set routing.MulticastSet) ([][]routing.Branch, error) {
	key := setKey(router, set)
	routeMu.Lock()
	if t, ok := multicastTables[key]; ok {
		routeMu.Unlock()
		return t, nil
	}
	routeMu.Unlock()
	n := router.Graph().Nodes()
	branches := make([][]routing.Branch, n)
	for src := 0; src < n; src++ {
		b, err := router.MulticastBranches(topology.NodeID(src), set)
		if err != nil {
			return nil, fmt.Errorf("traffic: multicast branches for node %d: %w", src, err)
		}
		branches[src] = b
	}
	routeMu.Lock()
	if len(multicastTables) >= maxCachedTables {
		multicastTables = map[multicastKey][][]routing.Branch{}
	}
	multicastTables[key] = branches
	routeMu.Unlock()
	return branches, nil
}

// Spec returns the workload specification.
func (w *Workload) Spec() Spec { return w.spec }

// ParallelSafe marks the workload safe for concurrent Interarrival and
// Next calls on distinct nodes (the wormhole.ParallelSafe contract):
// generation state is per node — rngs[node], srcs[node], arr[node] —
// and the route tables, branch caches and destination CDF those calls
// read are built once up front and never written during a run.
func (w *Workload) ParallelSafe() {}

// Reset re-derives the workload in place for a new spec and seed over the
// same router. The unicast route cache is always kept (routes depend only
// on the router) and the multicast branch cache is kept whenever the
// destination set is unchanged, so resetting a workload across the points
// of a sweep skips the O(n²) routing work. A reset workload behaves
// bitwise-identically to a fresh NewWorkload(router, spec, seed).
func (w *Workload) Reset(spec Spec, seed uint64) error {
	if err := spec.ValidateFor(w.n); err != nil {
		return err
	}
	// Compare against the set the cache was actually built from, not
	// spec.Set of the previous reset: a zero-MulticastFrac reset updates
	// the spec without touching the cache, and the cache must not be
	// trusted for a set it never saw.
	if spec.MulticastFrac > 0 && (w.branches == nil || !w.branchSet.Equal(spec.Set)) {
		b, err := multicastTable(w.router, spec.Set)
		if err != nil {
			return err
		}
		w.branches = b
		// Clone the bits: MulticastSet.Add mutates in place, so keeping a
		// reference would let a caller-side mutation defeat the Equal check.
		w.branchSet = routing.MulticastSet{Bits: slices.Clone(spec.Set.Bits)}
	}
	w.spec = spec
	w.proc, _ = lookupArrival(spec.Arrival) // validated above
	w.buildCDF(spec.Weights)
	for i := 0; i < w.n; i++ {
		w.srcs[i].Seed(seed, uint64(i)*0x9e3779b97f4a7c15+1)
		w.arr[i] = ArrivalState{}
	}
	return nil
}

// buildCDF (re)derives the per-source cumulative destination weights
// into the reused cdf buffer. It always rebuilds — an identity- or
// value-based cache could serve a stale distribution if a caller
// mutated the matrix in place between Resets, and the O(n²) fill is
// trivial next to the simulation run a Reset precedes.
func (w *Workload) buildCDF(weights [][]float64) {
	if weights == nil {
		w.cdf = nil
		return
	}
	if cap(w.cdf) < w.n*w.n {
		w.cdf = make([]float64, w.n*w.n)
	}
	w.cdf = w.cdf[:w.n*w.n]
	for src := 0; src < w.n; src++ {
		sum := 0.0
		for dst := 0; dst < w.n; dst++ {
			if dst != src {
				sum += weights[src][dst]
			}
			w.cdf[src*w.n+dst] = sum
		}
	}
}

// checkHotspot rejects a hotspot destination outside the network: before
// the unicast route cache, an out-of-range node panicked at generation
// time; with the cache the aliased index would silently return another
// source's route, so fail fast at construction instead.
func checkHotspot(spec Spec, n int) error {
	if spec.HotspotFrac > 0 && (spec.HotspotNode < 0 || int(spec.HotspotNode) >= n) {
		return fmt.Errorf("traffic: hotspot node %d outside the %d-node network", spec.HotspotNode, n)
	}
	return nil
}

// Interarrival draws the gap until node's next message from the spec's
// arrival process (exponential under the default "poisson").
//
//quarc:hotpath
func (w *Workload) Interarrival(node topology.NodeID) float64 {
	if w.spec.Rate <= 0 || w.spec.Silent(node) {
		return math.Inf(1)
	}
	return w.proc.Gap(&w.spec, w.rngs[node], &w.arr[node])
}

// Next draws the next message generated at node: a multicast with
// probability α, otherwise a unicast whose destination comes from the
// spec's spatial pattern (uniform by default; fixed under a permutation;
// weighted under a weight matrix; hotspot-skewed under HotspotFrac).
//
//quarc:hotpath
func (w *Workload) Next(node topology.NodeID) ([]routing.Branch, bool) {
	rng := w.rngs[node]
	if w.spec.MulticastFrac > 0 && rng.Float64() < w.spec.MulticastFrac {
		return w.branches[node], true
	}
	if w.spec.Perm != nil {
		return w.uni[int(node)*w.n+int(w.spec.Perm[node])], false
	}
	if w.cdf != nil {
		return w.uni[int(node)*w.n+int(w.weightedDest(rng, node))], false
	}
	dst := w.uniformDest(rng, node)
	if w.spec.HotspotFrac > 0 && node != w.spec.HotspotNode &&
		rng.Float64() < w.spec.HotspotFrac {
		dst = w.spec.HotspotNode
	}
	return w.uni[int(node)*w.n+int(dst)], false
}

//quarc:hotpath
func (w *Workload) uniformDest(rng *rand.Rand, src topology.NodeID) topology.NodeID {
	d := topology.NodeID(rng.IntN(w.n - 1))
	if d >= src {
		d++
	}
	return d
}

// weightedDest samples a destination from the source's cumulative weight
// row: one uniform draw inverted by binary search. The row's total mass is
// positive (ValidateFor rejects empty rows) and the diagonal carries no
// mass, so the result is never src.
//
//quarc:hotpath
func (w *Workload) weightedDest(rng *rand.Rand, src topology.NodeID) topology.NodeID {
	row := w.cdf[int(src)*w.n : int(src)*w.n+w.n]
	u := rng.Float64() * row[w.n-1]
	lo, hi := 0, w.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return topology.NodeID(lo)
}

// MulticastBranchesOf exposes the cached branches of a source node (used
// by the analytical model to enumerate flows, and by tests).
func (w *Workload) MulticastBranchesOf(src topology.NodeID) []routing.Branch {
	if w.branches == nil {
		return nil
	}
	return w.branches[src]
}
