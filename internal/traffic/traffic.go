// Package traffic generates the workloads the paper evaluates: every node
// produces messages according to a Poisson process; a fraction α of the
// messages are multicasts to a fixed relative destination set and the rest
// are unicasts to uniformly random destinations.
//
// Workload satisfies the wormhole simulator's Traffic interface and is also
// consumed by the analytical model, which enumerates the same routes with
// the same rates — both sides of the validation therefore see exactly the
// same traffic specification.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sync"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// Spec describes a workload independent of any RNG state.
type Spec struct {
	// Rate is the message generation rate per node, messages/cycle.
	Rate float64
	// MulticastFrac is α, the fraction of generated messages that are
	// multicasts (0 disables multicast).
	MulticastFrac float64
	// Set is the relative multicast destination set shared by all nodes.
	Set routing.MulticastSet
	// HotspotFrac skews unicast destinations: with this probability a
	// unicast goes to HotspotNode instead of a uniform destination (the
	// classic hotspot traffic pattern; 0 keeps the paper's uniform
	// assumption). Sources equal to the hotspot fall back to uniform.
	HotspotFrac float64
	// HotspotNode is the hotspot destination.
	HotspotNode topology.NodeID
}

// Validate checks the spec's numeric ranges.
func (s Spec) Validate() error {
	if s.Rate < 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("traffic: invalid rate %v", s.Rate)
	}
	if s.MulticastFrac < 0 || s.MulticastFrac > 1 || math.IsNaN(s.MulticastFrac) {
		return fmt.Errorf("traffic: invalid multicast fraction %v", s.MulticastFrac)
	}
	if s.MulticastFrac > 0 && s.Set.Empty() {
		return fmt.Errorf("traffic: multicast fraction %v with empty destination set", s.MulticastFrac)
	}
	if s.HotspotFrac < 0 || s.HotspotFrac > 1 || math.IsNaN(s.HotspotFrac) {
		return fmt.Errorf("traffic: invalid hotspot fraction %v", s.HotspotFrac)
	}
	return nil
}

// UnicastProb returns the probability that a unicast generated at src is
// destined for dst under this spec (zero for dst == src). The analytical
// model enumerates flows with exactly these probabilities, so model and
// simulator always describe the same traffic.
func (s Spec) UnicastProb(n int, src, dst topology.NodeID) float64 {
	if src == dst {
		return 0
	}
	uniform := 1.0 / float64(n-1)
	if s.HotspotFrac == 0 || src == s.HotspotNode {
		return uniform
	}
	p := (1 - s.HotspotFrac) * uniform
	if dst == s.HotspotNode {
		p += s.HotspotFrac
	}
	return p
}

// Workload is a reproducible Poisson workload over a router. It implements
// the wormhole simulator's Traffic interface.
type Workload struct {
	spec   Spec
	router routing.Router
	n      int
	rngs   []*rand.Rand
	// srcs are the rngs' underlying PCG sources, kept so Reset can reseed
	// in place (a rand.Rand holds no state beyond its source).
	srcs []*rand.PCG
	// branches caches the multicast branches per source (the set is
	// relative, so they are fixed for the whole run); branchSet records
	// the destination set the cache was built from, which can lag behind
	// spec.Set across Resets while MulticastFrac is zero.
	branches  [][]routing.Branch
	branchSet routing.MulticastSet
	// uni caches the single-branch route of every ordered unicast pair at
	// index src*n+dst. Routes are deterministic, so precomputing them once
	// keeps Next allocation-free on the simulator's hot path; callers must
	// treat the returned branches as read-only (the simulator does).
	uni [][]routing.Branch
}

// NewWorkload builds a workload over the given router. Each node gets an
// independent RNG stream derived from seed, so runs are reproducible and
// node processes are mutually independent.
func NewWorkload(router routing.Router, spec Spec, seed uint64) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := router.Graph().Nodes()
	if err := checkHotspot(spec, n); err != nil {
		return nil, err
	}
	w := &Workload{spec: spec, router: router, n: n,
		rngs: make([]*rand.Rand, n), srcs: make([]*rand.PCG, n)}
	for i := 0; i < n; i++ {
		w.srcs[i] = rand.NewPCG(seed, uint64(i)*0x9e3779b97f4a7c15+1)
		w.rngs[i] = rand.New(w.srcs[i])
	}
	if spec.MulticastFrac > 0 {
		b, err := multicastTable(router, spec.Set)
		if err != nil {
			return nil, err
		}
		w.branches = b
		// Clone the bits: MulticastSet.Add mutates in place, so keeping a
		// reference would let a caller-side mutation defeat the Equal check.
		w.branchSet = routing.MulticastSet{Bits: slices.Clone(spec.Set.Bits)}
	}
	uni, err := unicastTable(router)
	if err != nil {
		return nil, err
	}
	w.uni = uni
	return w, nil
}

// Route-table caches. Routes are a pure function of the (immutable)
// router, so every workload over the same router — every point of a
// sweep, every replication — shares one read-only table instead of
// re-deriving it. Keys are router identities, which a long-lived process
// can mint without bound (every noc.NewScenario resolves a fresh
// router), so both caches flush wholesale when they exceed
// maxCachedTables entries: a flush only costs recomputation, never
// correctness.
var (
	routeMu         sync.Mutex
	unicastTables   = map[routing.Router][][]routing.Branch{}
	multicastTables = map[multicastKey][][]routing.Branch{}
)

const maxCachedTables = 64

func unicastTable(router routing.Router) ([][]routing.Branch, error) {
	routeMu.Lock()
	if t, ok := unicastTables[router]; ok {
		routeMu.Unlock()
		return t, nil
	}
	routeMu.Unlock()
	n := router.Graph().Nodes()
	uni := make([][]routing.Branch, n*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			s, d := topology.NodeID(src), topology.NodeID(dst)
			path, err := router.UnicastPath(s, d)
			if err != nil {
				return nil, fmt.Errorf("traffic: unicast path %d->%d: %w", src, dst, err)
			}
			port, err := router.UnicastPort(s, d)
			if err != nil {
				return nil, fmt.Errorf("traffic: unicast port %d->%d: %w", src, dst, err)
			}
			uni[src*n+dst] = []routing.Branch{{Port: port, Path: path, Targets: []topology.NodeID{d}}}
		}
	}
	routeMu.Lock()
	if len(unicastTables) >= maxCachedTables {
		unicastTables = map[routing.Router][][]routing.Branch{}
	}
	unicastTables[router] = uni
	routeMu.Unlock()
	return uni, nil
}

// multicastKey identifies a multicast branch table: the router plus the
// destination-set bits.
type multicastKey struct {
	router routing.Router
	bits   string
}

func setKey(router routing.Router, set routing.MulticastSet) multicastKey {
	var b []byte
	for _, w := range set.Bits {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>s))
		}
	}
	return multicastKey{router: router, bits: string(b)}
}

func multicastTable(router routing.Router, set routing.MulticastSet) ([][]routing.Branch, error) {
	key := setKey(router, set)
	routeMu.Lock()
	if t, ok := multicastTables[key]; ok {
		routeMu.Unlock()
		return t, nil
	}
	routeMu.Unlock()
	n := router.Graph().Nodes()
	branches := make([][]routing.Branch, n)
	for src := 0; src < n; src++ {
		b, err := router.MulticastBranches(topology.NodeID(src), set)
		if err != nil {
			return nil, fmt.Errorf("traffic: multicast branches for node %d: %w", src, err)
		}
		branches[src] = b
	}
	routeMu.Lock()
	if len(multicastTables) >= maxCachedTables {
		multicastTables = map[multicastKey][][]routing.Branch{}
	}
	multicastTables[key] = branches
	routeMu.Unlock()
	return branches, nil
}

// Spec returns the workload specification.
func (w *Workload) Spec() Spec { return w.spec }

// Reset re-derives the workload in place for a new spec and seed over the
// same router. The unicast route cache is always kept (routes depend only
// on the router) and the multicast branch cache is kept whenever the
// destination set is unchanged, so resetting a workload across the points
// of a sweep skips the O(n²) routing work. A reset workload behaves
// bitwise-identically to a fresh NewWorkload(router, spec, seed).
func (w *Workload) Reset(spec Spec, seed uint64) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := checkHotspot(spec, w.n); err != nil {
		return err
	}
	// Compare against the set the cache was actually built from, not
	// spec.Set of the previous reset: a zero-MulticastFrac reset updates
	// the spec without touching the cache, and the cache must not be
	// trusted for a set it never saw.
	if spec.MulticastFrac > 0 && (w.branches == nil || !w.branchSet.Equal(spec.Set)) {
		b, err := multicastTable(w.router, spec.Set)
		if err != nil {
			return err
		}
		w.branches = b
		// Clone the bits: MulticastSet.Add mutates in place, so keeping a
		// reference would let a caller-side mutation defeat the Equal check.
		w.branchSet = routing.MulticastSet{Bits: slices.Clone(spec.Set.Bits)}
	}
	w.spec = spec
	for i := 0; i < w.n; i++ {
		w.srcs[i].Seed(seed, uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return nil
}

// checkHotspot rejects a hotspot destination outside the network: before
// the unicast route cache, an out-of-range node panicked at generation
// time; with the cache the aliased index would silently return another
// source's route, so fail fast at construction instead.
func checkHotspot(spec Spec, n int) error {
	if spec.HotspotFrac > 0 && (spec.HotspotNode < 0 || int(spec.HotspotNode) >= n) {
		return fmt.Errorf("traffic: hotspot node %d outside the %d-node network", spec.HotspotNode, n)
	}
	return nil
}

// Interarrival draws the exponential gap until node's next message.
func (w *Workload) Interarrival(node topology.NodeID) float64 {
	if w.spec.Rate <= 0 {
		return math.Inf(1)
	}
	return w.rngs[node].ExpFloat64() / w.spec.Rate
}

// Next draws the next message generated at node: a multicast with
// probability α, otherwise a unicast to a uniform destination != node.
func (w *Workload) Next(node topology.NodeID) ([]routing.Branch, bool) {
	rng := w.rngs[node]
	if w.spec.MulticastFrac > 0 && rng.Float64() < w.spec.MulticastFrac {
		return w.branches[node], true
	}
	dst := w.uniformDest(rng, node)
	if w.spec.HotspotFrac > 0 && node != w.spec.HotspotNode &&
		rng.Float64() < w.spec.HotspotFrac {
		dst = w.spec.HotspotNode
	}
	return w.uni[int(node)*w.n+int(dst)], false
}

func (w *Workload) uniformDest(rng *rand.Rand, src topology.NodeID) topology.NodeID {
	d := topology.NodeID(rng.IntN(w.n - 1))
	if d >= src {
		d++
	}
	return d
}

// MulticastBranchesOf exposes the cached branches of a source node (used
// by the analytical model to enumerate flows, and by tests).
func (w *Workload) MulticastBranchesOf(src topology.NodeID) []routing.Branch {
	if w.branches == nil {
		return nil
	}
	return w.branches[src]
}
