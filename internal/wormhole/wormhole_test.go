package wormhole

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

func quarcRouter(t *testing.T, n int) *routing.QuarcRouter {
	t.Helper()
	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewQuarcRouter(q)
}

// singleShot injects exactly one message and returns its latency.
type singleShot struct {
	branches []routing.Branch
	node     topology.NodeID
	fired    bool
}

func (s *singleShot) Interarrival(node topology.NodeID) float64 {
	if node == s.node && !s.fired {
		return 5 // inject at t=5, inside the measurement window
	}
	return math.Inf(1)
}

func (s *singleShot) Next(node topology.NodeID) ([]routing.Branch, bool) {
	s.fired = true
	return s.branches, len(s.branches) > 1
}

func TestZeroLoadUnicastLatencyIsExact(t *testing.T) {
	rt := quarcRouter(t, 16)
	msgLen := 20
	for _, dst := range []topology.NodeID{1, 4, 5, 8, 9, 11, 12, 15} {
		path, err := rt.UnicastPath(0, dst)
		if err != nil {
			t.Fatal(err)
		}
		src := &singleShot{
			node:     0,
			branches: []routing.Branch{{Path: path, Targets: []topology.NodeID{dst}}},
		}
		nw, err := New(rt.Graph(), src, Config{MsgLen: msgLen, Warmup: 0, Measure: 1000})
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run()
		if res.Unicast.N() != 1 {
			t.Fatalf("dst %d: recorded %d messages, want 1", dst, res.Unicast.N())
		}
		// Zero-load latency = header pipeline depth + message drain:
		// (len(path)-1) + msgLen.
		want := float64(len(path)-1) + float64(msgLen)
		if got := res.Unicast.Mean(); got != want {
			t.Errorf("dst %d: zero-load latency = %v, want %v (path len %d)", dst, got, want, len(path))
		}
	}
}

func TestZeroLoadBroadcastLatency(t *testing.T) {
	rt := quarcRouter(t, 16)
	msgLen := 20
	branches, err := rt.MulticastBranches(0, rt.BroadcastSet())
	if err != nil {
		t.Fatal(err)
	}
	src := &singleShot{node: 0, branches: branches}
	nw, err := New(rt.Graph(), src, Config{MsgLen: msgLen, Warmup: 0, Measure: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Multicast.N() != 1 {
		t.Fatalf("recorded %d multicasts, want 1", res.Multicast.N())
	}
	// All four branches have path length N/4 + 2 = 6, so the last one
	// finishes at (6-1) + msgLen with no contention: the branches use
	// disjoint channels.
	want := float64(5 + msgLen)
	if got := res.Multicast.Mean(); got != want {
		t.Errorf("zero-load broadcast latency = %v, want %v", got, want)
	}
}

// twoShot injects two identical unicasts back to back on the same port to
// exercise FIFO blocking at the injection channel.
type twoShot struct {
	branches []routing.Branch
	node     topology.NodeID
	count    int
}

func (s *twoShot) Interarrival(node topology.NodeID) float64 {
	if node != s.node || s.count >= 2 {
		return math.Inf(1)
	}
	if s.count == 0 {
		return 1
	}
	return 0.25 // second message 0.25 cycles after the first
}

func (s *twoShot) Next(node topology.NodeID) ([]routing.Branch, bool) {
	s.count++
	return s.branches, false
}

func TestFIFOBlockingAtInjection(t *testing.T) {
	rt := quarcRouter(t, 16)
	msgLen := 10
	path, err := rt.UnicastPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := &twoShot{node: 0, branches: []routing.Branch{{Path: path, Targets: []topology.NodeID{2}}}}
	nw, err := New(rt.Graph(), src, Config{MsgLen: msgLen, Warmup: 0, Measure: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Unicast.N() != 2 {
		t.Fatalf("recorded %d messages, want 2", res.Unicast.N())
	}
	// First message: generated t=1, path len 4 (inj, 2 links, eject),
	// latency 3 + 10 = 13, so it completes at 14. Its injection channel
	// releases at te + msg - (len-1) = 3 + 10 - 3 = 10... the second
	// message (generated t=1.25) is granted injection at release of the
	// injection channel: te(first eject grant)=1+3=4; release(inj) =
	// 4 + 10 - 3 = 11. Header then needs 3 more grants (12,13,14 are free
	// by then since first worm released everything by 14... eject release
	// = 4+10 = 14; second header requests eject at 14; granted at 14.
	// Completion = 24; latency = 24 - 1.25 = 22.75.
	first := res.Unicast.Min()
	second := res.Unicast.Max()
	if first != 13 {
		t.Errorf("first latency = %v, want 13", first)
	}
	if second != 22.75 {
		t.Errorf("second latency = %v, want 22.75", second)
	}
}

func poissonWorkload(t *testing.T, rt *routing.QuarcRouter, rate, alpha float64, set routing.MulticastSet, seed uint64) *traffic.Workload {
	t.Helper()
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLowLoadMatchesZeroLoadApproximately(t *testing.T) {
	rt := quarcRouter(t, 16)
	w := poissonWorkload(t, rt, 0.0005, 0, routing.MulticastSet{}, 42)
	nw, err := New(rt.Graph(), w, Config{MsgLen: 16, Warmup: 2000, Measure: 30000})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatal("low-load run reported saturation")
	}
	if res.Unicast.N() < 50 {
		t.Fatalf("too few samples: %d", res.Unicast.N())
	}
	// Average zero-load unicast latency: mean path depth + msg. Mean
	// unicast distance in a 16-node quarc: sum over r of DistRel / 15.
	q := rt.Quarc()
	var sum float64
	for r := 1; r < 16; r++ {
		sum += float64(q.DistRel(r))
	}
	want := sum/15 + 1 + 16 // +1 injection-to-ejection depth offset, +msg
	got := res.Unicast.Mean()
	if math.Abs(got-want) > 1.0 {
		t.Errorf("low-load latency = %v, want ~%v", got, want)
	}
}

func TestSaturationDetected(t *testing.T) {
	rt := quarcRouter(t, 16)
	// Absurdly high load must saturate.
	w := poissonWorkload(t, rt, 0.5, 0, routing.MulticastSet{}, 7)
	nw, err := New(rt.Graph(), w, Config{MsgLen: 32, Warmup: 1000, Measure: 5000, SatQueue: 200})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if !res.Saturated {
		t.Fatal("overloaded network not flagged as saturated")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		w := poissonWorkload(t, rt, 0.004, 0.05, set, 99)
		nw, err := New(rt.Graph(), w, Config{MsgLen: 16, Warmup: 1000, Measure: 20000})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run()
	}
	a, b := run(), run()
	if a.Unicast.Mean() != b.Unicast.Mean() || a.Multicast.Mean() != b.Multicast.Mean() {
		t.Fatalf("same seed gave different results: %v vs %v, %v vs %v",
			a.Unicast.Mean(), b.Unicast.Mean(), a.Multicast.Mean(), b.Multicast.Mean())
	}
	if a.Generated != b.Generated || a.Completed != b.Completed {
		t.Fatalf("same seed gave different counts: %d/%d vs %d/%d",
			a.Generated, a.Completed, b.Generated, b.Completed)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	rt := quarcRouter(t, 16)
	run := func(seed uint64) float64 {
		w := poissonWorkload(t, rt, 0.004, 0, routing.MulticastSet{}, seed)
		nw, err := New(rt.Graph(), w, Config{MsgLen: 16, Warmup: 1000, Measure: 20000})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run().Unicast.Mean()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical means (suspicious)")
	}
}

func TestConfigValidation(t *testing.T) {
	rt := quarcRouter(t, 16)
	w := poissonWorkload(t, rt, 0.001, 0, routing.MulticastSet{}, 1)
	if _, err := New(rt.Graph(), w, Config{MsgLen: 1, Warmup: 0, Measure: 10}); err == nil {
		t.Error("accepted msgLen 1")
	}
	if _, err := New(rt.Graph(), w, Config{MsgLen: 8, Warmup: -1, Measure: 10}); err == nil {
		t.Error("accepted negative warmup")
	}
	if _, err := New(rt.Graph(), w, Config{MsgLen: 8, Warmup: 0, Measure: 0}); err == nil {
		t.Error("accepted zero measure window")
	}
}

func TestUtilizationReported(t *testing.T) {
	rt := quarcRouter(t, 16)
	w := poissonWorkload(t, rt, 0.003, 0, routing.MulticastSet{}, 3)
	nw, err := New(rt.Graph(), w, Config{MsgLen: 16, Warmup: 1000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if !(res.MaxUtil > 0 && res.MaxUtil < 1) {
		t.Fatalf("MaxUtil = %v, want in (0,1)", res.MaxUtil)
	}
	if res.Events == 0 || res.Time <= 0 {
		t.Fatalf("bookkeeping missing: events=%d time=%v", res.Events, res.Time)
	}
}
