package wormhole

import (
	"strings"
	"testing"

	"quarc/internal/topology"
	"quarc/internal/traffic"
)

func TestTraceRecordsMessageLifecycle(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.002, MulticastFrac: 0.2, Set: set}, 17)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{
		MsgLen: 16, Warmup: 0, Measure: 20000,
		TraceEnabled: true, TraceNode: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if len(res.Trace) == 0 {
		t.Fatal("no trace events recorded")
	}

	// Each traced message: one generate, then for each branch a sequence
	// of grants (possibly with blocks) and one complete.
	perMsg := map[int64][]TraceEvent{}
	for _, e := range res.Trace {
		perMsg[e.Msg] = append(perMsg[e.Msg], e)
	}
	checked := 0
	for id, events := range perMsg {
		if events[0].Kind != TraceGenerate {
			t.Fatalf("msg %d first event is %v, want generate", id, events[0].Kind)
		}
		grants := map[int]int{}
		completes := 0
		last := events[0].Time
		for _, e := range events[1:] {
			if e.Time < last {
				t.Fatalf("msg %d events out of time order", id)
			}
			last = e.Time
			switch e.Kind {
			case TraceGrant:
				grants[e.Branch]++
			case TraceComplete:
				completes++
			}
		}
		// Completed messages (not cut off by the horizon) must have one
		// complete per branch and at least 3 grants per branch
		// (injection + >=1 link + ejection).
		if completes > 0 && completes == len(grants) {
			for b, g := range grants {
				if g < 3 {
					t.Fatalf("msg %d branch %d has %d grants, want >= 3", id, b, g)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no fully traced messages to check")
	}

	out := FormatTrace(rt.Graph(), res.Trace[:10])
	if !strings.Contains(out, "generate") || !strings.Contains(out, "grant") {
		t.Errorf("trace format incomplete:\n%s", out)
	}
}

func TestTraceOnlyTracesConfiguredNode(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.002}, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{
		MsgLen: 16, Warmup: 0, Measure: 10000,
		TraceEnabled: true, TraceNode: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	// Every traced grant of an injection channel must be at node 5.
	for _, e := range res.Trace {
		if e.Kind != TraceGrant {
			continue
		}
		c := rt.Graph().Channel(e.Channel)
		if c.Kind == topology.Injection && c.Src != 5 {
			t.Fatalf("traced injection grant at node %d, want 5", c.Src)
		}
	}
	// Indirect check: disabling tracing produces no events.
	w2, _ := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.002}, 4)
	nw2, err := New(rt.Graph(), w2, Config{MsgLen: 16, Warmup: 0, Measure: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res2 := nw2.Run(); len(res2.Trace) != 0 {
		t.Fatalf("tracing disabled but %d events recorded", len(res2.Trace))
	}
	if len(res.Trace) == 0 {
		t.Fatal("tracing enabled but no events recorded")
	}
}

func TestTraceLimitRespected(t *testing.T) {
	rt := quarcRouter(t, 16)
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.01}, 8)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{
		MsgLen: 16, Warmup: 0, Measure: 50000,
		TraceEnabled: true, TraceNode: 0, TraceLimit: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if len(res.Trace) != 25 {
		t.Fatalf("trace length %d, want capped at 25", len(res.Trace))
	}
}

func TestLeakCheckAfterDrain(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortR, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.004, MulticastFrac: 0.1, Set: set}, 23)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{MsgLen: 32, Warmup: 1000, Measure: 20000, Drain: true})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatal("unexpected saturation")
	}
	// After the drain, only unmeasured stragglers could remain; run the
	// engine dry and the network must be completely empty.
	nw.Engine().RunAll()
	if err := nw.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceKindStrings(t *testing.T) {
	want := map[TraceKind]string{
		TraceGenerate: "generate", TraceGrant: "grant",
		TraceBlocked: "blocked", TraceComplete: "complete",
		TraceKind(99): "?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
