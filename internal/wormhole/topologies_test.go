package wormhole

import (
	"math/rand/v2"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// runOn drives a moderate-load drained simulation on a router and checks
// liveness: no saturation, all measured messages complete, and the
// network is empty afterwards (no leaked channel holds — which is also a
// deadlock check, since a deadlocked worm never releases).
func runOn(t *testing.T, rt routing.Router, set routing.MulticastSet, alpha, rate float64, msgLen int) Result {
	t.Helper()
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set}, 404)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{MsgLen: msgLen, Warmup: 2000, Measure: 30000, Drain: true})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatalf("%s saturated at rate %v", rt.Graph().Name(), rate)
	}
	if res.Generated != res.Completed {
		t.Fatalf("%s: %d of %d messages missing after drain (possible deadlock)",
			rt.Graph().Name(), res.Generated-res.Completed, res.Generated)
	}
	nw.Engine().RunAll()
	if err := nw.LeakCheck(); err != nil {
		t.Fatalf("%s: %v", rt.Graph().Name(), err)
	}
	if res.Unicast.N() == 0 {
		t.Fatalf("%s: no unicast samples", rt.Graph().Name())
	}
	return res
}

func TestSimulatorLivenessSpidergon(t *testing.T) {
	s, err := topology.NewSpidergon(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewSpidergonRouter(s)
	set, err := rt.RandomSet(rand.New(rand.NewPCG(1, 2)), 4)
	if err != nil {
		t.Fatal(err)
	}
	res := runOn(t, rt, set, 0.05, 0.002, 24)
	if res.Multicast.N() == 0 {
		t.Fatal("no multicast samples")
	}
}

func TestSimulatorLivenessOnePortQuarc(t *testing.T) {
	q, err := topology.NewQuarcOnePort(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	runOn(t, rt, rt.BroadcastSet(), 0.03, 0.0015, 24)
}

func TestSimulatorLivenessMesh(t *testing.T) {
	m, err := topology.NewMesh(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewMeshRouter(m)
	set, err := rt.HighLowSet([]int{1, 4, 7}, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	runOn(t, rt, set, 0.05, 0.003, 16)
}

func TestSimulatorLivenessTorus(t *testing.T) {
	m, err := topology.NewTorus(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewMeshRouter(m)
	set, err := rt.HighLowSet([]int{3}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	runOn(t, rt, set, 0.05, 0.003, 16)
}

func TestSimulatorLivenessHypercube(t *testing.T) {
	h, err := topology.NewHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewHypercubeRouter(h)
	set := routing.NewMulticastSet(1).Add(0, 3).Add(0, 12).Add(0, 21)
	runOn(t, rt, set, 0.05, 0.003, 16)
}

// High-load liveness: close to (but under) saturation the dateline VCs
// must still prevent deadlock on the Quarc rims — every message drains.
func TestSimulatorLivenessQuarcHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation in -short mode")
	}
	q, err := topology.NewQuarc(32)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 5)
	if err != nil {
		t.Fatal(err)
	}
	// ~85% of this configuration's simulated capacity.
	runOn(t, rt, set, 0.05, 0.004, 32)
}
