package wormhole

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// TestSimulatorInvariantsProperty drives randomized sub-saturation
// configurations through a drained run and checks the invariants that
// must hold for any of them:
//
//   - no saturation flag at low load,
//   - every measured message completes (conservation),
//   - every latency is at least the zero-load floor of the shortest
//     possible path (1 link + injection + ejection depth + drain),
//   - the network is empty afterwards (no leaked channel holds).
func TestSimulatorInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulations in -short mode")
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		sizes := []int{8, 16, 32}
		n := sizes[rng.IntN(len(sizes))]
		msgLen := 8 + rng.IntN(40)
		alpha := []float64{0, 0.05, 0.2}[rng.IntN(3)]
		q, err := topology.NewQuarc(n)
		if err != nil {
			return false
		}
		rt := routing.NewQuarcRouter(q)
		var set routing.MulticastSet
		if alpha > 0 {
			set, err = rt.RandomSet(rng, 1+rng.IntN(n/2))
			if err != nil {
				return false
			}
		}
		// Keep well below saturation: aggregate flit rate ~1.
		rate := 1.0 / float64(n) / float64(msgLen)
		w, err := traffic.NewWorkload(rt, traffic.Spec{
			Rate: rate, MulticastFrac: alpha, Set: set,
		}, seed)
		if err != nil {
			return false
		}
		nw, err := New(rt.Graph(), w, Config{
			MsgLen: msgLen, Warmup: 500, Measure: 8000, Drain: true,
		})
		if err != nil {
			return false
		}
		res := nw.Run()
		if res.Saturated {
			t.Logf("seed %d: unexpected saturation (n=%d msg=%d alpha=%v)", seed, n, msgLen, alpha)
			return false
		}
		if res.Generated != res.Completed {
			t.Logf("seed %d: %d generated, %d completed", seed, res.Generated, res.Completed)
			return false
		}
		// inj + 1 link + eject depth is 2, plus the drain; allow float
		// accumulation error from real-valued generation times.
		floor := float64(2+msgLen) - 1e-6
		if res.Unicast.N() > 0 && res.Unicast.Min() < floor {
			t.Logf("seed %d: unicast min %v below floor %v", seed, res.Unicast.Min(), floor)
			return false
		}
		if res.Multicast.N() > 0 && res.Multicast.Min() < floor {
			t.Logf("seed %d: multicast min %v below floor %v", seed, res.Multicast.Min(), floor)
			return false
		}
		nw.Engine().RunAll()
		if err := nw.LeakCheck(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestShortMessagesExactPipeline pins the short-worm release rule: with
// msgLen smaller than the path, a single message's latency is still
// exactly depth + msgLen, and two back-to-back messages on the same route
// are spaced by the injection channel's holding time msgLen (the second
// header follows msgLen cycles behind the first).
func TestShortMessagesExactPipeline(t *testing.T) {
	rt := quarcRouter(t, 32) // diameter 8 > msgLen 4
	path, err := rt.UnicastPath(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(path)-1 <= 4 {
		t.Fatalf("need a path deeper than the message, got depth %d", len(path)-1)
	}
	src := &twoShot{node: 0, branches: []routing.Branch{{Path: path, Targets: []topology.NodeID{8}}}}
	nw, err := New(rt.Graph(), src, Config{MsgLen: 4, Warmup: 0, Measure: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Unicast.N() != 2 {
		t.Fatalf("completed %d messages, want 2", res.Unicast.N())
	}
	depth := float64(len(path) - 1)
	if res.Unicast.Min() != depth+4 {
		t.Errorf("first short-worm latency %v, want %v", res.Unicast.Min(), depth+4)
	}
	// Second message: generated 0.25 cycles after the first (t=1.25); the
	// injection channel frees msgLen cycles after the first grant (t=5),
	// so the second completes at 5 + depth + 4; latency = that - 1.25.
	want := 5 + depth + 4 - 1.25
	if res.Unicast.Max() != want {
		t.Errorf("second short-worm latency %v, want %v", res.Unicast.Max(), want)
	}
}
