package wormhole

// The hook layer is the simulator's first-class instrumentation API: a
// typed replacement for the implicit traffic.(Observer) extension the
// trace recorder used to ride on. Hooks register at explicit positions
// with Network.Attach and receive one HookCtx value per event; the
// registrations live in per-position flat slices guarded by a bitmask,
// so the disabled path costs one uint8 test per site — the hot-path
// functions stay //quarc:hotpath-clean at 0 allocs/op with the layer
// compiled in (pinned by the bench gates and the no-op-hook alloc
// tests).
//
// Hooks observe; they must not mutate the network. A pure recording
// hook leaves the Result bitwise-identical to an unhooked run (pinned
// by TestHookedRunBitwiseIdentical): every HookCtx is passed by value
// and carries only times, identifiers and counts.

import "quarc/internal/topology"

// HookPos is a typed hook position: where in the simulation a hook
// fires.
type HookPos uint8

const (
	// HookWormInjected fires once per message the network actually
	// injects (draws that never materialize get no call), with the
	// injection time, source node and multicast flag.
	HookWormInjected HookPos = iota
	// HookWormEjected fires when a message's last branch completes,
	// with the completion time and the message's end-to-end latency.
	HookWormEjected
	// HookChannelGranted fires when a worm is granted a channel.
	HookChannelGranted
	// HookChannelReleased fires when a worm's tail vacates a channel.
	// For a coalesced span drain the hook fires at the moment the
	// deferred release is applied, but Time carries the exact logical
	// release time — identical to the fine-grained schedule.
	HookChannelReleased
	// HookQueueChanged fires when a channel's wait queue grows (a worm
	// blocked) or shrinks (a queued worm was granted), with the new
	// occupancy.
	HookQueueChanged
	// HookPartitionDone fires once per partition at the end of a
	// parallel run (RunParallel), from the coordinating goroutine after
	// the shards have joined: Node carries the partition index and Msg
	// the partition's flit-level-equivalent event count. Serial runs
	// never fire it. It is the one position whose attachment does not
	// force RunParallel onto the serial fallback.
	HookPartitionDone

	numHookPos
)

// hookPositions enumerates every position, for Attach's attach-at-all
// default.
var hookPositions = [...]HookPos{
	HookWormInjected, HookWormEjected, HookChannelGranted,
	HookChannelReleased, HookQueueChanged, HookPartitionDone,
}

// String names the position for logs and recorder output.
func (p HookPos) String() string {
	switch p {
	case HookWormInjected:
		return "worm-injected"
	case HookWormEjected:
		return "worm-ejected"
	case HookChannelGranted:
		return "channel-granted"
	case HookChannelReleased:
		return "channel-released"
	case HookQueueChanged:
		return "queue-changed"
	case HookPartitionDone:
		return "partition-done"
	}
	return "unknown"
}

// HookCtx is the payload delivered to a hook: one value per firing,
// with the fields meaningful for the position filled in.
type HookCtx struct {
	// Pos is the position this firing came from.
	Pos HookPos
	// Time is the simulated time of the underlying micro-event. For a
	// lazily applied span release this is the logical release time,
	// which can lie before the engine's current time.
	Time float64
	// Node is the injecting node (HookWormInjected only; -1 elsewhere).
	Node topology.NodeID
	// Channel is the channel involved (grant/release/queue positions;
	// topology.None elsewhere).
	Channel topology.ChannelID
	// Msg is the id of the message involved. For HookPartitionDone it
	// carries the partition's event count instead.
	Msg int64
	// Multicast marks the message as a multicast.
	Multicast bool
	// Latency is the message's end-to-end latency (HookWormEjected
	// only).
	Latency float64
	// Occupancy is the channel queue length after the change
	// (HookQueueChanged only).
	Occupancy int
}

// Hook receives simulation events. Func is called synchronously from
// the event loop, so implementations must be cheap and must not mutate
// the network or its traffic source.
type Hook interface {
	Func(HookCtx)
}

// Attach registers h at the given positions (at every position when
// none are named). Registration is additive and ordered: hooks at one
// position fire in attach order. Attach is not safe concurrently with
// Run; attach before running, and re-attach after Reset — a reset
// network is pristine and starts with no hooks.
func (nw *Network) Attach(h Hook, at ...HookPos) {
	if len(at) == 0 {
		at = hookPositions[:]
	}
	for _, p := range at {
		if p >= numHookPos {
			panic("wormhole: Attach at unknown hook position")
		}
		nw.hooks[p] = append(nw.hooks[p], h)
		nw.hookMask |= 1 << p
	}
}

// detachHooks returns the network to its unhooked state, keeping the
// per-position backing arrays for reuse. Reset calls it so a pooled
// network never leaks one run's hooks into the next.
func (nw *Network) detachHooks() {
	for i := range nw.hooks {
		hs := nw.hooks[i]
		for j := range hs {
			hs[j] = nil
		}
		nw.hooks[i] = hs[:0]
	}
	nw.hookMask = 0
}

// fire delivers c to every hook attached at c.Pos. Callers guard with
// the position's hookMask bit, so the disabled path never enters here.
//
//quarc:hotpath
func (nw *Network) fire(c HookCtx) {
	for _, h := range nw.hooks[c.Pos] {
		h.Func(c)
	}
}

// ObserverHook adapts the legacy Observer extension to the hook API:
// the returned hook forwards HookWormInjected firings to o.Injected.
// Attach it at HookWormInjected — the position the implicit
// traffic.(Observer) resolution used to serve.
func ObserverHook(o Observer) Hook { return observerHook{o} }

type observerHook struct{ o Observer }

func (h observerHook) Func(c HookCtx) {
	if c.Pos == HookWormInjected {
		h.o.Injected(c.Node, c.Time, c.Multicast)
	}
}
