package wormhole

import (
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// parCell is one topology cell of the parallel differential battery.
type parCell struct {
	name   string
	rt     routing.Router
	set    func() (routing.MulticastSet, error) // nil: unicast-only cell
	msgLen int
	rate   float64
	alpha  float64
}

// parCells builds the battery's topology axis: the paper's Quarc rings
// at two scales and the mesh extension at two scales, with message
// lengths both above and below the diameter so fused advances (and
// their seam splits) are exercised.
func parCells(t testing.TB) []parCell {
	t.Helper()
	q16, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	qrt16 := routing.NewQuarcRouter(q16)
	q64, err := topology.NewQuarc(64)
	if err != nil {
		t.Fatal(err)
	}
	qrt64 := routing.NewQuarcRouter(q64)
	m4, err := topology.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mrt4 := routing.NewMeshRouter(m4)
	m8, err := topology.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	mrt8 := routing.NewMeshRouter(m8)
	return []parCell{
		{name: "quarc-16", rt: qrt16,
			set:    func() (routing.MulticastSet, error) { return qrt16.LocalizedSet(topology.PortL, 4) },
			msgLen: 32, rate: 0.004, alpha: 0.05},
		{name: "quarc-64", rt: qrt64, // msgLen < diameter: stretched worms cross seams
			set:    func() (routing.MulticastSet, error) { return qrt64.LocalizedSet(topology.PortL, 6) },
			msgLen: 4, rate: 0.002, alpha: 0.05},
		// The mesh cells run unicast-only: the multicast-disjointness leg
		// of the bitwise argument (same-message branches never share a
		// channel) is a Quarc routing property, not a mesh one.
		{name: "mesh-4x4", rt: mrt4, msgLen: 16, rate: 0.003},
		{name: "mesh-8x8", rt: mrt8, msgLen: 8, rate: 0.0015},
	}
}

// parWorkload builds a fresh workload for one battery run — fresh each
// run, so serial and parallel consume identical RNG streams.
func parWorkload(t testing.TB, c parCell, arrival string, seed uint64) *traffic.Workload {
	t.Helper()
	spec := traffic.Spec{Rate: c.rate, Arrival: arrival}
	if arrival == "onoff" {
		spec.BurstLen = 4
		spec.DutyCycle = 0.5
	}
	if c.set != nil {
		set, err := c.set()
		if err != nil {
			t.Fatal(err)
		}
		spec.MulticastFrac = c.alpha
		spec.Set = set
	}
	w, err := traffic.NewWorkload(c.rt, spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func parNetwork(t testing.TB, c parCell, w *traffic.Workload, cfg Config) *Network {
	t.Helper()
	nw, err := New(c.rt.Graph(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestParallelMatchesSerial is the differential battery pinning the
// tentpole claim: for every topology cell, shard count and arrival
// process, RunParallel's Result is bitwise-equal to the serial engine's
// — latencies, batch means, counters, event counts, utilization.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := Config{MsgLen: 0, Warmup: 500, Measure: 5000}
	for _, c := range parCells(t) {
		for _, arrival := range []string{"poisson", "onoff"} {
			t.Run(c.name+"/"+arrival, func(t *testing.T) {
				const seed = 7
				ccfg := cfg
				ccfg.MsgLen = c.msgLen
				nw := parNetwork(t, c, parWorkload(t, c, arrival, seed), ccfg)
				serial := nw.Run()
				if serial.Saturated {
					t.Fatalf("battery cell saturates serially; lower its rate")
				}
				for _, p := range []int{1, 2, 4, 8} {
					nwP := parNetwork(t, c, parWorkload(t, c, arrival, seed), ccfg)
					par, ok := nwP.RunParallel(p)
					if !ok {
						t.Fatalf("p=%d: parallel run aborted on an unsaturated workload", p)
					}
					sameResult(t, c.name+"/p="+string(rune('0'+p)), par, serial)
				}
			})
		}
	}
}

// TestParallelFallsBackSerially pins the fallback contract: every
// ineligible configuration must run serially (ok=true) and reproduce
// the plain serial Result exactly, rather than abort or diverge.
func TestParallelFallsBackSerially(t *testing.T) {
	c := parCells(t)[0]
	base := Config{MsgLen: c.msgLen, Warmup: 500, Measure: 4000}
	serialFor := func(cfg Config) Result {
		return parNetwork(t, c, parWorkload(t, c, "poisson", 3), cfg).Run()
	}
	cases := []struct {
		name string
		cfg  func(Config) Config
		prep func(*Network)
		p    int
	}{
		{name: "p=1", cfg: func(g Config) Config { return g }, p: 1},
		{name: "drain", cfg: func(g Config) Config { g.Drain = true; return g }, p: 4},
		{name: "detail", cfg: func(g Config) Config { g.Detail = true; return g }, p: 4},
		{name: "trace", cfg: func(g Config) Config { g.TraceEnabled = true; g.TraceNode = 2; return g }, p: 4},
		{name: "no-coalesce", cfg: func(g Config) Config { g.NoCoalesce = true; return g }, p: 4},
		{name: "per-event-hook", cfg: func(g Config) Config { return g }, p: 4,
			prep: func(nw *Network) { nw.Attach(nopHook{}, HookWormInjected) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg(base)
			want := serialFor(cfg)
			nw := parNetwork(t, c, parWorkload(t, c, "poisson", 3), cfg)
			if tc.prep != nil {
				tc.prep(nw)
			}
			got, ok := nw.RunParallel(tc.p)
			if !ok {
				t.Fatalf("fallback run aborted")
			}
			sameResult(t, tc.name, got, want)
		})
	}
	t.Run("unsafe-traffic", func(t *testing.T) {
		// A Traffic without the ParallelSafe marker must run serially.
		cfg := base
		w := parWorkload(t, c, "poisson", 3)
		want := parNetwork(t, c, w, cfg).Run()
		w2 := parWorkload(t, c, "poisson", 3)
		nw, err := New(c.rt.Graph(), unsafeTraffic{w2}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := nw.RunParallel(4)
		if !ok {
			t.Fatalf("fallback run aborted")
		}
		sameResult(t, "unsafe-traffic", got, want)
	})
}

type nopHook struct{}

func (nopHook) Func(HookCtx) {}

// unsafeTraffic strips the ParallelSafe marker off a workload.
type unsafeTraffic struct{ w *traffic.Workload }

func (u unsafeTraffic) Interarrival(n topology.NodeID) float64          { return u.w.Interarrival(n) }
func (u unsafeTraffic) Next(n topology.NodeID) ([]routing.Branch, bool) { return u.w.Next(n) }

// partitionHook records HookPartitionDone firings.
type partitionHook struct {
	nodes []topology.NodeID
	evs   []int64
}

func (h *partitionHook) Func(c HookCtx) {
	if c.Pos != HookPartitionDone {
		panic("partitionHook attached elsewhere")
	}
	h.nodes = append(h.nodes, c.Node)
	h.evs = append(h.evs, c.Msg)
}

// TestParallelPartitionHook pins the observability surface: a hook at
// HookPartitionDone (the one position that keeps a run parallel) fires
// once per partition with the partition event counts summing to
// Result.Events, and its presence does not perturb the Result.
func TestParallelPartitionHook(t *testing.T) {
	c := parCells(t)[0]
	cfg := Config{MsgLen: c.msgLen, Warmup: 500, Measure: 4000}
	const p = 4
	serial := parNetwork(t, c, parWorkload(t, c, "poisson", 11), cfg).Run()
	nw := parNetwork(t, c, parWorkload(t, c, "poisson", 11), cfg)
	h := &partitionHook{}
	nw.Attach(h, HookPartitionDone)
	got, ok := nw.RunParallel(p)
	if !ok {
		t.Fatalf("parallel run aborted")
	}
	sameResult(t, "hooked-parallel", got, serial)
	if len(h.evs) != p {
		t.Fatalf("partition hook fired %d times, want %d", len(h.evs), p)
	}
	var sum uint64
	for i, n := range h.nodes {
		if int(n) != i {
			t.Errorf("firing %d reported partition %d", i, n)
		}
		sum += uint64(h.evs[i])
	}
	if sum != got.Events {
		t.Errorf("partition event counts sum to %d, Result.Events is %d", sum, got.Events)
	}
}

// TestParallelSaturationAborts pins the saturation contract: a workload
// the serial engine stops early must abort the parallel attempt
// (ok=false), and a serial re-run from fresh state must still produce
// the truncated saturated Result.
func TestParallelSaturationAborts(t *testing.T) {
	c := parCells(t)[0]
	cfg := Config{MsgLen: c.msgLen, Warmup: 500, Measure: 20000, SatQueue: 20}
	hot := c
	hot.rate = 0.05 // far past the Quarc-16 saturation knee
	serial := parNetwork(t, hot, parWorkload(t, hot, "poisson", 5), cfg).Run()
	if !serial.Saturated {
		t.Fatalf("saturation cell did not saturate serially")
	}
	nw := parNetwork(t, hot, parWorkload(t, hot, "poisson", 5), cfg)
	if res, ok := nw.RunParallel(4); ok {
		// The abort is only required when the stop actually triggers
		// mid-run; if every shard finished, the result must still match.
		sameResult(t, "saturated-complete", res, serial)
		return
	}
	// Aborted: the caller contract is a fresh rebuild and a serial
	// re-run, which must reproduce the truncated result exactly.
	rerun := parNetwork(t, hot, parWorkload(t, hot, "poisson", 5), cfg).Run()
	sameResult(t, "saturated-rerun", rerun, serial)
}
