package wormhole

import (
	"testing"

	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// runPriority executes the same loaded workload with and without
// multicast-priority arbitration and returns both results.
func runPriority(t *testing.T, priority bool) Result {
	t.Helper()
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.008, MulticastFrac: 0.1, Set: set}, 2024)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{
		MsgLen: 32, Warmup: 5000, Measure: 60000, MulticastPriority: priority,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatal("unexpected saturation")
	}
	return res
}

// TestMulticastPriorityShiftsLatency reproduces the effect of reference
// [4]'s priority-on-arbitration: multicast latency drops. The unicast
// side-effect is second order at moderate multicast shares (expediting a
// multicast can even free channels sooner for unicasts), so the test only
// requires that unicast latency does not change drastically.
func TestMulticastPriorityShiftsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	fifo := runPriority(t, false)
	prio := runPriority(t, true)
	if !(prio.Multicast.Mean() < fifo.Multicast.Mean()) {
		t.Errorf("priority did not reduce multicast latency: %v vs fifo %v",
			prio.Multicast.Mean(), fifo.Multicast.Mean())
	}
	if rel := prio.Unicast.Mean() / fifo.Unicast.Mean(); rel < 0.9 || rel > 1.2 {
		t.Errorf("priority changed unicast latency drastically: %v vs fifo %v",
			prio.Unicast.Mean(), fifo.Unicast.Mean())
	}
}

// FIFO within a class must be preserved under priority arbitration: with
// no multicast traffic at all, priority mode is byte-identical to FIFO.
func TestPriorityWithoutMulticastIsFIFO(t *testing.T) {
	rt := quarcRouter(t, 16)
	run := func(priority bool) Result {
		w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.006}, 31)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := New(rt.Graph(), w, Config{
			MsgLen: 16, Warmup: 1000, Measure: 30000, MulticastPriority: priority,
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run()
	}
	a, b := run(false), run(true)
	if a.Unicast.Mean() != b.Unicast.Mean() || a.Completed != b.Completed {
		t.Fatalf("priority mode changed a pure-unicast run: %v vs %v", a.Unicast.Mean(), b.Unicast.Mean())
	}
}
