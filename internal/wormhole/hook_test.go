package wormhole

import (
	"testing"

	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// countingHook tallies firings per position and checks basic payload
// invariants as they stream by.
type countingHook struct {
	t      *testing.T
	counts [numHookPos]int
}

func (h *countingHook) Func(c HookCtx) {
	h.counts[c.Pos]++
	switch c.Pos {
	case HookWormInjected:
		if c.Node < 0 {
			h.t.Errorf("injected firing without a source node: %+v", c)
		}
	case HookChannelGranted, HookChannelReleased:
		if c.Channel == topology.None {
			h.t.Errorf("%v firing without a channel: %+v", c.Pos, c)
		}
	case HookWormEjected:
		if c.Latency <= 0 {
			h.t.Errorf("ejected firing with non-positive latency: %+v", c)
		}
	case HookQueueChanged:
		if c.Occupancy < 0 {
			h.t.Errorf("queue firing with negative occupancy: %+v", c)
		}
	}
}

func hookTestNetwork(t *testing.T) (*Network, *traffic.Workload, Config) {
	t.Helper()
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.004, MulticastFrac: 0.05, Set: set}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Drain lets in-flight worms finish, so grant/release counts balance
	// and no channel is left held at the end of the run.
	cfg := Config{MsgLen: 32, Warmup: 500, Measure: 5000, Drain: true}
	nw, err := New(rt.Graph(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw, w, cfg
}

// TestHookFiresAtEveryPosition pins the hook API's coverage: one run of
// the mid-load configuration fires every position, grants balance
// releases, and injections match the run's generated count.
func TestHookFiresAtEveryPosition(t *testing.T) {
	nw, _, _ := hookTestNetwork(t)
	h := &countingHook{t: t}
	nw.Attach(h)
	r := nw.Run()
	for p := HookPos(0); p < numHookPos; p++ {
		if p == HookPartitionDone {
			// Parallel-only position: a serial run never fires it (its
			// coverage is pinned by TestParallelPartitionHook).
			continue
		}
		if h.counts[p] == 0 {
			t.Errorf("position %v never fired", p)
		}
	}
	if h.counts[HookPartitionDone] != 0 {
		t.Errorf("partition-done fired %d times in a serial run", h.counts[HookPartitionDone])
	}
	if h.counts[HookChannelGranted] != h.counts[HookChannelReleased] {
		t.Errorf("grants %d != releases %d (a drained run balances them)",
			h.counts[HookChannelGranted], h.counts[HookChannelReleased])
	}
	// Hooks observe the whole run — warmup included — so injections are a
	// superset of the measured-window Generated count; in a drained run
	// every injected worm also ejects.
	if got, want := h.counts[HookWormInjected], h.counts[HookWormEjected]; got != want {
		t.Errorf("injected firings %d != ejected firings %d (drained run)", got, want)
	}
	if got, want := int64(h.counts[HookWormInjected]), r.Generated; got < want {
		t.Errorf("injected firings %d < generated messages %d", got, want)
	}
}

// TestHookPositionFilter pins Attach's position list: a hook attached
// at one position sees only that position.
func TestHookPositionFilter(t *testing.T) {
	nw, _, _ := hookTestNetwork(t)
	h := &countingHook{t: t}
	nw.Attach(h, HookWormEjected)
	nw.Run()
	for p := HookPos(0); p < numHookPos; p++ {
		if p == HookWormEjected {
			if h.counts[p] == 0 {
				t.Errorf("filtered position %v never fired", p)
			}
			continue
		}
		if h.counts[p] != 0 {
			t.Errorf("position %v fired %d times through a HookWormEjected-only attachment", p, h.counts[p])
		}
	}
}

// TestResetDetachesHooks pins the pooling contract: a Reset network is
// pristine, so one run's hooks never leak into the next.
func TestResetDetachesHooks(t *testing.T) {
	nw, w, cfg := hookTestNetwork(t)
	h := &countingHook{t: t}
	nw.Attach(h)
	nw.Run()
	fired := h.counts
	if err := w.Reset(w.Spec(), 7); err != nil {
		t.Fatal(err)
	}
	if err := nw.Reset(w, cfg); err != nil {
		t.Fatal(err)
	}
	nw.Run()
	if h.counts != fired {
		t.Errorf("detached hook still fired after Reset: %v -> %v", fired, h.counts)
	}
}

// TestAttachUnknownPositionPanics pins the API's misuse guard.
func TestAttachUnknownPositionPanics(t *testing.T) {
	nw, _, _ := hookTestNetwork(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Attach at an out-of-range position did not panic")
		}
	}()
	nw.Attach(&countingHook{t: t}, numHookPos)
}

// noopHook is the cheapest possible subscriber, for the alloc pin.
type noopHook struct{}

func (noopHook) Func(HookCtx) {}

// TestNoopHookSteadyStateAllocFree extends the PR 2 zero-alloc pin to
// the hooked loop: firing a no-op hook at every position must not
// allocate either — HookCtx is passed by value into a concrete-typed
// parameter, so no boxing happens on the way.
func TestNoopHookSteadyStateAllocFree(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.004, MulticastFrac: 0.05, Set: set}, 7)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, Config{MsgLen: 32, Warmup: 1e9, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	nw.Attach(noopHook{})
	for node := 0; node < rt.Graph().Nodes(); node++ {
		nw.scheduleGeneration(topology.NodeID(node), 0)
	}
	nw.eng.Run(5000) // warm the pools, the wait queues and the event heap
	now := nw.eng.Now()
	avg := testing.AllocsPerRun(50, func() {
		now += 100
		nw.eng.Run(now)
	})
	if avg != 0 {
		t.Fatalf("hooked steady-state loop allocates %v allocs per 100 simulated cycles, want 0", avg)
	}
	if nw.eng.Fired() == 0 {
		t.Fatal("no events fired — the alloc measurement was vacuous")
	}
}

// TestChannelGrantReleaseAlternate pins the record-order invariant the
// series aggregation leans on: per channel, grant and release firings
// strictly alternate in emission order — a lazily drained span applies
// its release (with the logical release time) before the channel's
// next grant is announced.
func TestChannelGrantReleaseAlternate(t *testing.T) {
	nw, _, _ := hookTestNetwork(t)
	held := make(map[topology.ChannelID]bool)
	hook := hookFunc(func(c HookCtx) {
		switch c.Pos {
		case HookChannelGranted:
			if held[c.Channel] {
				t.Fatalf("channel %d granted while already held", c.Channel)
			}
			held[c.Channel] = true
		case HookChannelReleased:
			if !held[c.Channel] {
				t.Fatalf("channel %d released while not held", c.Channel)
			}
			held[c.Channel] = false
		}
	})
	nw.Attach(hook, HookChannelGranted, HookChannelReleased)
	nw.Run()
	for ch, h := range held {
		if h {
			t.Errorf("channel %d still held after the drained run", ch)
		}
	}
}

// hookFunc adapts a closure to the Hook interface for tests.
type hookFunc func(HookCtx)

func (f hookFunc) Func(c HookCtx) { f(c) }
