package wormhole

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// oneAt injects exactly one unicast at a chosen absolute time.
type oneAt struct {
	node     topology.NodeID
	at       float64
	branches []routing.Branch
	fired    bool
}

func (s *oneAt) Interarrival(node topology.NodeID) float64 {
	if node == s.node && !s.fired {
		return s.at
	}
	return math.Inf(1)
}

func (s *oneAt) Next(node topology.NodeID) ([]routing.Branch, bool) {
	s.fired = true
	return s.branches, false
}

// TestWindowBoundaryGrantExcluded pins the half-open measurement window
// [measureStart, windowEnd): a grant exactly at windowEnd used to bump
// c.grants while busySpan clamped its occupancy to zero, skewing
// ChannelStats.Rate and MeanHold. Grant counting, generation accounting
// and busySpan now share the same boundary convention.
func TestWindowBoundaryGrantExcluded(t *testing.T) {
	rt := quarcRouter(t, 16)
	path, err := rt.UnicastPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MsgLen: 8, Warmup: 10, Measure: 90, Detail: true} // windowEnd = 100

	run := func(at float64) Result {
		src := &oneAt{node: 0, at: at,
			branches: []routing.Branch{{Path: path, Targets: []topology.NodeID{2}}}}
		nw, err := New(rt.Graph(), src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nw.Run()
	}

	totalGrants := func(res Result) int64 {
		var n int64
		for _, cs := range res.Detail.Channels {
			n += cs.Grants
		}
		return n
	}

	// Generated exactly at windowEnd: outside the half-open window. The
	// injection grant at t=100 must count nowhere.
	out := run(100)
	if out.Generated != 0 {
		t.Errorf("message generated at windowEnd counted: Generated = %d, want 0", out.Generated)
	}
	if n := totalGrants(out); n != 0 {
		t.Errorf("grants at t=windowEnd counted: total grants = %d, want 0", n)
	}

	// Generated one cycle earlier: inside the window. Exactly one grant
	// (the injection at t=99) lands inside; the next hop's grant at t=100
	// is on the boundary and excluded. Its in-window occupancy is the one
	// remaining cycle, so MeanHold must be exactly 1.
	in := run(99)
	if in.Generated != 1 {
		t.Errorf("message generated inside the window: Generated = %d, want 1", in.Generated)
	}
	if n := totalGrants(in); n != 1 {
		t.Errorf("total in-window grants = %d, want 1", n)
	}
	for _, cs := range in.Detail.Channels {
		if cs.Grants == 1 && cs.MeanHold != 1.0 {
			t.Errorf("channel %d MeanHold = %v, want exactly 1 (occupancy clipped at windowEnd)", cs.ID, cs.MeanHold)
		}
		if cs.Grants == 0 && !math.IsNaN(cs.MeanHold) {
			t.Errorf("channel %d with no grants has MeanHold %v, want NaN", cs.ID, cs.MeanHold)
		}
	}
}

// TestWindowBoundaryGenerationAtWarmupIncluded pins the opening edge of
// the half-open window: a message generated exactly at t=Warmup belongs
// to [Warmup, Warmup+Measure) and must be measured.
func TestWindowBoundaryGenerationAtWarmupIncluded(t *testing.T) {
	rt := quarcRouter(t, 16)
	path, err := rt.UnicastPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := &oneAt{node: 0, at: 10, // exactly the warmup horizon
		branches: []routing.Branch{{Path: path, Targets: []topology.NodeID{2}}}}
	nw, err := New(rt.Graph(), src, Config{MsgLen: 8, Warmup: 10, Measure: 90})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Generated != 1 || res.Completed != 1 {
		t.Errorf("message generated exactly at Warmup: generated/completed = %d/%d, want 1/1",
			res.Generated, res.Completed)
	}
}

// TestMeasurementWindowStartsAtWarmup is the wormhole-level regression for
// the engine horizon bug: with sparse traffic whose events all lie beyond
// the warmup horizon, measurement used to start at the last warmup-phase
// event (or at 0) instead of at Warmup, silently stretching the window.
func TestMeasurementWindowStartsAtWarmup(t *testing.T) {
	rt := quarcRouter(t, 16)
	path, err := rt.UnicastPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One message at t=2000, far beyond Warmup=1000: no event fires inside
	// the warmup phase at all.
	src := &oneAt{node: 0, at: 2000,
		branches: []routing.Branch{{Path: path, Targets: []topology.NodeID{2}}}}
	nw, err := New(rt.Graph(), src, Config{MsgLen: 8, Warmup: 1000, Measure: 2000, Detail: true})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", res.Completed)
	}
	// The injection channel is held for exactly msgLen = 8 cycles (granted
	// at t, released at te+msgLen-(len-1) = t+msgLen). With the window
	// starting exactly at Warmup its length is exactly Measure and the
	// utilization exactly 8/2000; with the old bug the window was [0,
	// 3000) and the figure came out 8/3000.
	want := 8.0 / 2000.0
	var maxUtil float64
	for _, cs := range res.Detail.Channels {
		if cs.Utilization > maxUtil {
			maxUtil = cs.Utilization
		}
	}
	if maxUtil != want {
		t.Errorf("peak channel utilization = %v, want exactly %v (window must be [Warmup, Warmup+Measure))", maxUtil, want)
	}
}

func freshRun(t *testing.T, rt routing.Router, spec traffic.Spec, seed uint64, cfg Config) Result {
	t.Helper()
	w, err := traffic.NewWorkload(rt, spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(rt.Graph(), w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw.Run()
}

func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Unicast != want.Unicast {
		t.Errorf("%s: unicast stats %+v != %+v", label, got.Unicast, want.Unicast)
	}
	if got.Multicast != want.Multicast {
		t.Errorf("%s: multicast stats %+v != %+v", label, got.Multicast, want.Multicast)
	}
	ciG, ciW := got.UnicastBM.HalfWidth(1.96), want.UnicastBM.HalfWidth(1.96)
	if ciG != ciW && !(math.IsNaN(ciG) && math.IsNaN(ciW)) {
		t.Errorf("%s: unicast CI %v != %v", label, ciG, ciW)
	}
	if got.Generated != want.Generated || got.Completed != want.Completed {
		t.Errorf("%s: messages %d/%d != %d/%d", label,
			got.Completed, got.Generated, want.Completed, want.Generated)
	}
	if got.Events != want.Events {
		t.Errorf("%s: events %d != %d", label, got.Events, want.Events)
	}
	if got.Time != want.Time {
		t.Errorf("%s: end time %v != %v", label, got.Time, want.Time)
	}
	if got.MaxUtil != want.MaxUtil {
		t.Errorf("%s: max utilization %v != %v", label, got.MaxUtil, want.MaxUtil)
	}
	if got.Saturated != want.Saturated {
		t.Errorf("%s: saturated %v != %v", label, got.Saturated, want.Saturated)
	}
}

// TestResetReproducesFreshRun is the reuse property test: one Network
// driven through Reset across several workloads and configs must
// reproduce, bitwise, what a freshly constructed Network produces — on
// the paper's Quarc topology and on the mesh extension.
func TestResetReproducesFreshRun(t *testing.T) {
	type point struct {
		seed   uint64
		rate   float64
		msgLen int
		detail bool
		drain  bool
	}
	points := []point{
		{seed: 1, rate: 0.002, msgLen: 32},
		{seed: 99, rate: 0.004, msgLen: 16, detail: true},
		{seed: 7, rate: 0.003, msgLen: 32, drain: true},
		{seed: 1, rate: 0.002, msgLen: 32}, // exact repeat of the first point
	}

	t.Run("quarc-16", func(t *testing.T) {
		rt := quarcRouter(t, 16)
		set, err := rt.LocalizedSet(topology.PortL, 4)
		if err != nil {
			t.Fatal(err)
		}
		var reused *Network
		for i, p := range points {
			spec := traffic.Spec{Rate: p.rate, MulticastFrac: 0.05, Set: set}
			cfg := Config{MsgLen: p.msgLen, Warmup: 1000, Measure: 10000,
				Detail: p.detail, Drain: p.drain}
			want := freshRun(t, rt, spec, p.seed, cfg)
			w, err := traffic.NewWorkload(rt, spec, p.seed)
			if err != nil {
				t.Fatal(err)
			}
			if reused == nil {
				reused, err = New(rt.Graph(), w, cfg)
			} else {
				err = reused.Reset(w, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmtPoint("quarc", i, p.seed), reused.Run(), want)
		}
	})

	t.Run("mesh-4x4", func(t *testing.T) {
		m, err := topology.NewMesh(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		rt := routing.NewMeshRouter(m)
		set, err := rt.HighLowSet([]int{1, 3}, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		var reused *Network
		for i, p := range points {
			spec := traffic.Spec{Rate: p.rate, MulticastFrac: 0.05, Set: set}
			cfg := Config{MsgLen: p.msgLen, Warmup: 1000, Measure: 10000,
				Detail: p.detail, Drain: p.drain}
			want := freshRun(t, rt, spec, p.seed, cfg)
			w, err := traffic.NewWorkload(rt, spec, p.seed)
			if err != nil {
				t.Fatal(err)
			}
			if reused == nil {
				reused, err = New(rt.Graph(), w, cfg)
			} else {
				err = reused.Reset(w, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmtPoint("mesh", i, p.seed), reused.Run(), want)
		}
	})
}

func fmtPoint(topo string, i int, seed uint64) string {
	return topo + " point " + string(rune('0'+i)) + " seed " + string(rune('0'+seed%10))
}

// TestSteadyStateEventLoopAllocFree pins the tentpole: once the pools,
// wait queues and the event heap are warm, the event loop (generation,
// routing, arbitration, release, completion) runs without allocating.
func TestSteadyStateEventLoopAllocFree(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.004, MulticastFrac: 0.05, Set: set}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A huge warmup keeps the run in the pre-measurement phase: the loop
	// under test is the pure event machinery, not the (rarely allocating)
	// batch-means statistics.
	nw, err := New(rt.Graph(), w, Config{MsgLen: 32, Warmup: 1e9, Measure: 1})
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < rt.Graph().Nodes(); node++ {
		nw.scheduleGeneration(topology.NodeID(node), 0)
	}
	nw.eng.Run(5000) // warm the pools, the wait queues and the event heap
	now := nw.eng.Now()
	avg := testing.AllocsPerRun(50, func() {
		now += 100
		nw.eng.Run(now)
	})
	if avg != 0 {
		t.Fatalf("steady-state event loop allocates %v allocs per 100 simulated cycles, want 0", avg)
	}
	if nw.eng.Fired() == 0 {
		t.Fatal("no events fired — the alloc measurement was vacuous")
	}
}

// TestSteadyStateAllocFreeAllArrivals extends the alloc-free pin across
// the arrival-process registry: whichever process paces injection
// (bursty, periodic, discrete), the warm event loop must not allocate.
func TestSteadyStateAllocFreeAllArrivals(t *testing.T) {
	rt := quarcRouter(t, 16)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	specs := []traffic.Spec{
		{Rate: 0.004, MulticastFrac: 0.05, Set: set, Arrival: "bernoulli"},
		{Rate: 0.004, MulticastFrac: 0.05, Set: set, Arrival: "onoff", BurstLen: 8, DutyCycle: 0.25},
		{Rate: 0.004, MulticastFrac: 0.05, Set: set, Arrival: "periodic"},
	}
	for _, spec := range specs {
		w, err := traffic.NewWorkload(rt, spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", spec.Arrival, err)
		}
		nw, err := New(rt.Graph(), w, Config{MsgLen: 32, Warmup: 1e9, Measure: 1})
		if err != nil {
			t.Fatal(err)
		}
		for node := 0; node < rt.Graph().Nodes(); node++ {
			nw.scheduleGeneration(topology.NodeID(node), 0)
		}
		nw.eng.Run(5000) // warm the pools, the wait queues and the event heap
		now := nw.eng.Now()
		avg := testing.AllocsPerRun(50, func() {
			now += 100
			nw.eng.Run(now)
		})
		if avg != 0 {
			t.Errorf("%s: steady-state event loop allocates %v allocs per 100 cycles, want 0", spec.Arrival, avg)
		}
		if nw.eng.Fired() == 0 {
			t.Errorf("%s: no events fired — the alloc measurement was vacuous", spec.Arrival)
		}
	}
}
