package wormhole

import (
	"fmt"
	"strings"

	"quarc/internal/topology"
)

// TraceEvent is one step in the life of a traced message: generation, a
// channel grant or block, and completion. Traces make the wormhole
// pipeline inspectable — the broadcast example prints one to show the
// four branches racing.
type TraceEvent struct {
	Time    float64
	Msg     int64
	Branch  int
	Kind    TraceKind
	Channel topology.ChannelID
}

// TraceKind labels trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceGenerate TraceKind = iota
	TraceGrant
	TraceBlocked
	TraceComplete
)

func (k TraceKind) String() string {
	switch k {
	case TraceGenerate:
		return "generate"
	case TraceGrant:
		return "grant"
	case TraceBlocked:
		return "blocked"
	case TraceComplete:
		return "complete"
	}
	return "?"
}

// FormatTrace renders trace events with channel names resolved against the
// graph.
func FormatTrace(g *topology.Graph, events []TraceEvent) string {
	var b strings.Builder
	for _, e := range events {
		ch := ""
		if e.Kind == TraceGrant || e.Kind == TraceBlocked {
			ch = " " + g.Channel(e.Channel).String()
		}
		fmt.Fprintf(&b, "t=%9.2f msg=%d branch=%d %-9s%s\n", e.Time, e.Msg, e.Branch, e.Kind, ch)
	}
	return b.String()
}

// LeakCheck verifies that the network is empty: no channel held, no worm
// queued. Valid after a drained run at sub-saturation load; a non-nil
// error indicates a simulator bug (a leaked channel hold) or an
// incomplete drain.
func (nw *Network) LeakCheck() error {
	for i := range nw.channels {
		c := &nw.channels[i]
		if c.holder != nil {
			return fmt.Errorf("wormhole: channel %v still held after drain",
				nw.g.Channel(topology.ChannelID(i)))
		}
		if len(c.queue) != 0 {
			return fmt.Errorf("wormhole: channel %v still has %d queued worms after drain",
				nw.g.Channel(topology.ChannelID(i)), len(c.queue))
		}
	}
	return nil
}
