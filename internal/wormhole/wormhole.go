// Package wormhole is a discrete-event simulator of wormhole-switched
// direct networks with multi-port routers. It replaces the OMNET++
// flit-level simulator the paper used for validation.
//
// # Fidelity
//
// The simulator works at worm granularity but is event-equivalent to a
// flit-level simulation of wormhole switching with single-flit channel
// buffers and non-preemptive FIFO arbitration:
//
//   - A worm's header acquires the channels of its path one by one; a busy
//     channel queues the worm FIFO, exactly like the paper's router that
//     records blocked messages and serves them in FIFO order when the
//     resource is released.
//   - All flits of a worm advance in lock-step with the header, so the
//     tail vacates the channel at path index j-msgLen+1 in the same cycle
//     the header is granted index j (worms stretched over short messages),
//     and once the header is granted the ejection channel at time te the
//     remaining flits drain at one per cycle: the channel k positions
//     before the ejection is released at te + msgLen − k. Because the
//     whole message is buffered at the source, these release times are
//     exact for any message length (see Network.grant).
//
// Multicast streams follow the Quarc absorb-and-forward semantics: one
// independent worm per injection port (no synchronization between ports),
// intermediate targets clone the flits at the ingress multiplexer without
// extra arbitration, and the branch terminates at its last target. The
// multicast message latency is the absorption time of the last flit at the
// last destination over all branches, matching the paper's definition.
package wormhole

import (
	"fmt"
	"math"
	"slices"

	"quarc/internal/routing"
	"quarc/internal/sim"
	"quarc/internal/stats"
	"quarc/internal/topology"
)

// Traffic supplies the workload: interarrival gaps and message routes.
// Implementations own their RNG so runs are reproducible for a fixed seed.
type Traffic interface {
	// Interarrival returns the gap (in cycles) until node generates its
	// next message. Returning +Inf disables generation at the node.
	Interarrival(node topology.NodeID) float64
	// Next returns the branches of the next message generated at node and
	// whether the message is a multicast. A unicast is a single branch
	// whose only target is its destination.
	Next(node topology.NodeID) ([]routing.Branch, bool)
}

// Observer is the legacy injection-observation interface: Injected is
// called once per message the network actually injects, with the
// simulated injection time. Draws that never materialize (the horizon
// or a saturation stop intervened) get no call, so observers see ground
// truth rather than the RNG stream — the workload trace recorder uses
// this to stamp absolute injection times into its records. It is now a
// thin adapter over the hook API: wrap with ObserverHook and register
// with Network.Attach at HookWormInjected. (The network no longer
// resolves it implicitly out of the traffic source.)
type Observer interface {
	Injected(node topology.NodeID, t float64, multicast bool)
}

// Config controls a simulation run.
type Config struct {
	// MsgLen is the message length in flits (at least 2). The paper
	// assumes messages longer than the network diameter; the simulator
	// also handles shorter worms exactly.
	MsgLen int
	// Warmup is the number of cycles simulated before statistics are
	// collected.
	Warmup float64
	// Measure is the number of cycles in the measurement window.
	Measure float64
	// SatQueue is the per-injection-channel backlog at which the run is
	// declared saturated and stopped early (default 1000).
	SatQueue int
	// Detail enables fine-grained instrumentation (per-port and
	// per-distance latency breakdowns, histograms, per-channel rates).
	Detail bool
	// Drain lets messages generated inside the measurement window finish
	// after the window closes (generation stops, the network empties, up
	// to one extra window of simulated time). This removes the censoring
	// bias against long-latency messages near the window end.
	Drain bool
	// TraceNode selects the node whose messages are traced when
	// TraceEnabled is set.
	TraceNode topology.NodeID
	// TraceEnabled turns on per-event tracing of TraceNode's messages.
	TraceEnabled bool
	// TraceLimit caps the number of recorded events (default 10000).
	TraceLimit int
	// MulticastPriority changes channel arbitration from pure FIFO to
	// multicast-first: when a channel is released, waiting multicast
	// worms are granted before unicast worms (FIFO within each class).
	// This reproduces the priority-on-arbitration idea of
	// connection-oriented NoC multicast (the paper's reference [4]); the
	// paper's own validation uses pure FIFO, the default.
	MulticastPriority bool
	// NoCoalesce disables worm-level event coalescing, forcing one event
	// per flit-step as in the pre-coalescing simulator. Coalescing is
	// semantically exact (see DESIGN.md §10), so this knob exists for
	// differential tests and performance comparisons, not for fidelity.
	NoCoalesce bool
}

// Result summarizes a run.
type Result struct {
	// Unicast and Multicast hold the latency estimators over messages
	// that completed inside the measurement window.
	Unicast   stats.Running
	Multicast stats.Running
	// UnicastBM and MulticastBM provide batch-means confidence intervals.
	UnicastBM   *stats.BatchMeans
	MulticastBM *stats.BatchMeans
	// Generated and Completed count messages in the measurement window.
	Generated int64
	Completed int64
	// Saturated is set when an injection backlog exceeded Config.SatQueue
	// or fewer than 90% of generated messages completed.
	Saturated bool
	// Time is the simulated time at the end of the run.
	Time float64
	// Events is the number of flit-level-equivalent discrete events: a
	// coalesced span event (see DESIGN.md §10) counts once per micro-event
	// it absorbs, so the figure is identical with coalescing on or off
	// and stays comparable across the BENCH_*.json trajectory.
	Events uint64
	// MaxUtil is the highest channel utilization observed during the
	// measurement window.
	MaxUtil float64
	// Detail holds the fine-grained measurements; nil unless
	// Config.Detail was set.
	Detail *Instrumentation
	// Trace holds the traced events; empty unless Config.TraceEnabled.
	Trace []TraceEvent
}

type channel struct {
	holder    *worm
	queue     []*worm
	grantTime float64
	busy      float64
	grants    int64
	// spanRelease and spanSeq are the precomputed logical release time of
	// the channel and the reserved event sequence number of that release
	// while the holder is in span (coalesced-drain) mode; meaningful only
	// when holder != nil && holder.spanning.
	spanRelease float64
	spanSeq     uint64
	// spanDeferred is the parallel engine's explicit deferral marker
	// (parallel.go). Serially, "holder is spanning and the queue is
	// empty" implies this channel's release was deferred, but a parallel
	// shard can hold a channel whose worm spans in another shard (the
	// release then arrives as a materialized event), so deferral is
	// recorded per channel. The serial path never reads it.
	spanDeferred bool
}

type message struct {
	id        int64
	gen       float64
	multicast bool
	pending   int32
	lastDone  float64
	measured  bool
	traced    bool
	// port and depth describe a unicast's route for the per-port and
	// per-distance breakdowns (unused for multicasts).
	port  int
	depth int
	// src is the injecting node, kept for the canonical sample fold's
	// tie-break key (see foldSamples).
	src topology.NodeID
	// lastDoneBits is the parallel engine's field (parallel.go): the
	// float64 bit pattern of the latest branch completion, maintained by
	// CAS so branches completing in different shards fold commutatively.
	// The serial path never touches it (it uses lastDone directly).
	lastDoneBits uint64
}

// latSample is one measured message completion. Latency estimators are
// folded from buffered samples at the end of the run, in the canonical
// (completion, generation, source) order, rather than inline in event
// order: event order and canonical order differ only where completion
// times tie exactly — which blocking makes routine, since a worm granted
// at its blocker's release inherits the blocker's time base — and the
// canonical order is the one a parallel run can reproduce, because it is
// a function of sample content rather than of the global event sequence
// (see parallel.go).
type latSample struct {
	t, gen    float64
	src       topology.NodeID
	multicast bool
	// port and depth carry the unicast breakdown coordinates for Detail
	// runs (zero otherwise; the parallel engine never records them, as
	// Detail runs fall back to the serial path).
	port  int
	depth int
}

// sortSamples orders samples canonically: by completion time, then
// generation time, then source node. Two distinct messages can share a
// completion time (inherited time bases) and, in principle, a generation
// time; no two share all three, since one node generates at most one
// message per instant.
func sortSamples(s []latSample) {
	slices.SortFunc(s, func(a, b latSample) int {
		switch {
		case a.t != b.t:
			if a.t < b.t {
				return -1
			}
			return 1
		case a.gen != b.gen:
			if a.gen < b.gen {
				return -1
			}
			return 1
		default:
			return int(a.src) - int(b.src)
		}
	})
}

type worm struct {
	msg    *message
	branch int
	path   routing.Path
	hop    int // index of the next channel to acquire
	// held counts the channels the worm currently occupies and done marks
	// that its ejection grant happened; when done && held == 0 no event or
	// queue references the worm and it returns to the pool.
	held int
	done bool
	// pstate packs the same occupancy state for the parallel engine
	// (parallel.go): a held count in the low bits plus done/spanning flag
	// bits, maintained with atomic adds because a stretched worm's
	// channels can be released from several shards. Serial and parallel
	// runs use disjoint worm populations, so each mode reads only its own
	// fields.
	pstate int32
	// spanning marks a worm draining in coalesced span mode: its remaining
	// channel releases are deferred to their precomputed times (each
	// channel's spanRelease) and applied lazily, by one evSpanDone event,
	// or by a materialized evRelease when contention de-coalesces a
	// channel. A spanning worm is referenced by its pending evSpanDone and
	// must not return to the pool before that event fires.
	spanning bool
}

// Typed event kinds dispatched by Network.Handle. Keeping the hot path on
// typed events (instead of one closure per event) is what makes the
// steady-state event loop allocation-free.
const (
	evGenerate sim.Kind = iota + 1 // Arg = generating node
	evRequest                      // Data = *worm requesting its next channel
	evRelease                      // Arg = channel to release
	evComplete                     // Data = *message, Arg = completing branch
	evAdvance                      // Data = *worm: fused tail-release + header-request
	evSpanDone                     // Data = *worm finishing a coalesced drain
)

// Network is one simulation instance. Create with New, run with Run, and
// reuse across runs with Reset.
type Network struct {
	g       *topology.Graph
	traffic Traffic
	// hooks holds the attached hooks per position (flat slices, fired in
	// attach order) and hookMask caches which positions have any — the
	// hot path pays one uint8 test per site when nothing is attached.
	hooks           [numHookPos][]Hook
	hookMask        uint8
	cfg             Config
	eng             *sim.Engine
	channels        []channel
	res             Result
	measuring       bool
	measureStart    float64
	windowEnd       float64
	stopped         bool
	draining        bool
	pendingMeasured int64
	nextMsgID       int64
	// coalesced counts micro-events absorbed into coalesced events (span
	// drains, fused advances, lazily applied releases), so Result.Events
	// can report flit-level-equivalent event counts.
	coalesced uint64
	// samples buffers the measured completions until finish folds them
	// into the latency estimators in canonical order (see latSample).
	// Reset truncates it in place, so a reused network appends into
	// already-sized backing storage.
	samples []latSample
	// wormPool and msgPool recycle the per-message heap objects; both only
	// ever hold fully dead objects (no event or queue references them).
	wormPool []*worm
	msgPool  []*message
}

// Handle dispatches the network's typed events; it implements sim.Handler
// and is invoked by the engine, never directly.
//
//quarc:hotpath
func (nw *Network) Handle(e *sim.Engine, ev sim.Event) {
	t := e.Now()
	switch ev.Kind {
	case evGenerate:
		if nw.draining {
			return
		}
		node := topology.NodeID(ev.Arg)
		nw.generate(node, t)
		nw.scheduleGeneration(node, t)
	case evRequest:
		nw.request(ev.Data.(*worm), t)
	case evRelease:
		nw.release(topology.ChannelID(ev.Arg), t)
	case evComplete:
		msg := ev.Data.(*message)
		nw.trace(msg, int(ev.Arg), TraceComplete, topology.None, t)
		nw.complete(msg, t)
	case evAdvance:
		// Fused micro-events of a stretched worm: the tail vacated the
		// channel msgLen positions behind the header in the previous
		// cycle; free it, then request the header's next channel. The two
		// were scheduled back to back in the fine-grained simulator, so
		// fusing them preserves the exact event order.
		w := ev.Data.(*worm)
		nw.release(w.path[w.hop-nw.cfg.MsgLen], t)
		nw.coalesced++
		nw.request(w, t)
	case evSpanDone:
		nw.spanDone(ev.Data.(*worm), t)
	default:
		panic(fmt.Sprintf("wormhole: unknown event kind %d", ev.Kind))
	}
}

//quarc:hotpath
func (nw *Network) getWorm(msg *message, branch int, path routing.Path) *worm {
	if n := len(nw.wormPool); n > 0 {
		w := nw.wormPool[n-1]
		nw.wormPool[n-1] = nil
		nw.wormPool = nw.wormPool[:n-1]
		*w = worm{msg: msg, branch: branch, path: path}
		return w
	}
	return &worm{msg: msg, branch: branch, path: path} //quarclint:ignore hotpath pool-miss path: allocates once per pool high-water mark, not per op
}

//quarc:hotpath
func (nw *Network) putWorm(w *worm) {
	w.msg = nil
	w.path = nil
	nw.wormPool = append(nw.wormPool, w)
}

//quarc:hotpath
func (nw *Network) getMessage() *message {
	if n := len(nw.msgPool); n > 0 {
		m := nw.msgPool[n-1]
		nw.msgPool[n-1] = nil
		nw.msgPool = nw.msgPool[:n-1]
		*m = message{}
		return m
	}
	return &message{} //quarclint:ignore hotpath pool-miss path: allocates once per pool high-water mark, not per op
}

//quarc:hotpath
func (nw *Network) putMessage(m *message) {
	nw.msgPool = append(nw.msgPool, m)
}

// trace appends a trace event if tracing is active and under the cap.
//
//quarc:hotpath
func (nw *Network) trace(msg *message, branch int, kind TraceKind, ch topology.ChannelID, t float64) {
	if !msg.traced {
		return
	}
	limit := nw.cfg.TraceLimit
	if limit <= 0 {
		limit = 10000
	}
	if len(nw.res.Trace) >= limit {
		return
	}
	nw.res.Trace = append(nw.res.Trace, TraceEvent{
		Time: t, Msg: msg.id, Branch: branch, Kind: kind, Channel: ch,
	})
}

// checkConfig validates cfg and fills in its defaults.
func checkConfig(cfg *Config) error {
	if cfg.MsgLen < 2 {
		return fmt.Errorf("wormhole: message length %d too short", cfg.MsgLen)
	}
	if cfg.Warmup < 0 || cfg.Measure <= 0 {
		return fmt.Errorf("wormhole: invalid warmup/measure %v/%v", cfg.Warmup, cfg.Measure)
	}
	if cfg.SatQueue <= 0 {
		cfg.SatQueue = 1000
	}
	return nil
}

// New creates a simulator over the given channel graph and traffic source.
func New(g *topology.Graph, traffic Traffic, cfg Config) (*Network, error) {
	if err := checkConfig(&cfg); err != nil {
		return nil, err
	}
	nw := &Network{
		g:        g,
		traffic:  traffic,
		cfg:      cfg,
		eng:      sim.New(),
		channels: make([]channel, g.NumChannels()),
	}
	nw.eng.SetHandler(nw)
	// Seed the scheduler geometry with the workload's shape — a few
	// events in flight per node, scheduled up to a few message-drain
	// times ahead — instead of paying the learning transient every
	// construction. The adaptive resize corrects any mismatch.
	nw.eng.HintSchedule(float64(cfg.MsgLen)*8, g.Nodes()*4)
	return nw, nil
}

// Reset rebinds the network to a new traffic source and configuration and
// returns it to its pre-Run state over the same channel graph, reusing the
// engine's event heap, the channel array, the per-channel wait queues and
// the worm/message pools. A Reset network runs bitwise-identically to a
// freshly constructed one, so one Network can serve every point of a
// sweep without reallocating its hot-path state. Like a fresh network it
// starts with no hooks attached — re-Attach after Reset to keep
// observing.
func (nw *Network) Reset(traffic Traffic, cfg Config) error {
	if err := checkConfig(&cfg); err != nil {
		return err
	}
	nw.traffic = traffic
	nw.detachHooks()
	nw.cfg = cfg
	nw.eng.Reset()
	for i := range nw.channels {
		c := &nw.channels[i]
		c.holder = nil
		for j := range c.queue {
			c.queue[j] = nil
		}
		c.queue = c.queue[:0]
		c.grantTime = 0
		c.busy = 0
		c.grants = 0
		c.spanRelease = 0
		c.spanDeferred = false
	}
	nw.res = Result{}
	nw.measuring = false
	nw.measureStart = 0
	nw.windowEnd = 0
	nw.stopped = false
	nw.draining = false
	nw.pendingMeasured = 0
	nw.nextMsgID = 0
	nw.coalesced = 0
	nw.samples = nw.samples[:0]
	return nil
}

// Run executes the simulation: Warmup cycles without statistics, then
// Measure cycles with statistics (plus an optional drain phase), and
// returns the result.
func (nw *Network) Run() Result {
	nw.res.UnicastBM = stats.NewBatchMeans(200)
	nw.res.MulticastBM = stats.NewBatchMeans(50)
	if nw.cfg.Detail {
		nw.res.Detail = newInstrumentation(nw.cfg.MsgLen)
	}
	for node := 0; node < nw.g.Nodes(); node++ {
		nw.scheduleGeneration(topology.NodeID(node), 0)
	}
	horizon := nw.cfg.Warmup + nw.cfg.Measure
	nw.windowEnd = horizon
	// The warmup horizon is exclusive so that the measurement window is
	// half-open on both sides: an event exactly at t=Warmup belongs to
	// [Warmup, Warmup+Measure) and must fire with measurement active.
	nw.eng.RunBefore(nw.cfg.Warmup)
	nw.beginMeasurement()
	if !nw.stopped {
		nw.eng.Run(horizon)
	}
	if nw.cfg.Drain && !nw.stopped {
		// Stop generating and let in-flight measured messages complete,
		// capped at one extra measurement window.
		nw.draining = true
		if nw.pendingMeasured > 0 {
			nw.eng.Run(horizon + nw.cfg.Measure)
		}
	}
	nw.finish()
	return nw.res
}

func (nw *Network) beginMeasurement() {
	nw.measuring = true
	nw.measureStart = nw.eng.Now()
	// Channels whose deferred span release lies before the window must not
	// be counted as occupied into it — the fine-grained release event
	// would have fired during warmup.
	nw.flushSpans(nw.measureStart)
	for i := range nw.channels {
		c := &nw.channels[i]
		c.busy = 0
		c.grants = 0
		if c.holder != nil {
			c.grantTime = nw.measureStart // count only in-window occupancy
		}
	}
}

// busySpan clamps a holding interval to the measurement window. The
// clamps are open-coded: math.Max/Min pay for NaN handling on a very hot
// accounting path that never sees NaN.
//
//quarc:hotpath
func (nw *Network) busySpan(grant, release float64) float64 {
	lo := grant
	if nw.measureStart > lo {
		lo = nw.measureStart
	}
	hi := release
	if nw.windowEnd < hi {
		hi = nw.windowEnd
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// foldSamples sorts the buffered completion samples canonically and
// feeds them to the latency estimators. Order only matters to the
// rounding of the running sums and the batch-means boundaries; sorting
// pins that rounding to a sequence a parallel run can reproduce.
func (nw *Network) foldSamples() {
	sortSamples(nw.samples)
	for _, s := range nw.samples {
		lat := s.t - s.gen
		if s.multicast {
			nw.res.Multicast.Add(lat)
			nw.res.MulticastBM.Add(lat)
			if nw.res.Detail != nil {
				nw.res.Detail.MulticastHist.Add(lat)
			}
		} else {
			nw.res.Unicast.Add(lat)
			nw.res.UnicastBM.Add(lat)
			if nw.res.Detail != nil {
				nw.res.Detail.recordUnicast(s.port, s.depth, lat)
			}
		}
	}
	nw.samples = nw.samples[:0]
}

func (nw *Network) finish() {
	nw.res.Time = nw.eng.Now()
	nw.foldSamples()
	// Deferred releases that logically happened before the end of the run
	// must be applied so the utilization accounting below sees their true
	// release times (their evSpanDone may lie beyond the horizon).
	nw.flushSpans(nw.res.Time)
	nw.res.Events = nw.eng.Fired() + nw.coalesced
	window := math.Min(nw.res.Time, nw.windowEnd) - nw.measureStart
	if window <= 0 {
		window = 1
	}
	for i := range nw.channels {
		c := &nw.channels[i]
		busy := c.busy
		if c.holder != nil {
			busy += nw.busySpan(c.grantTime, nw.res.Time)
		}
		if u := busy / window; u > nw.res.MaxUtil {
			nw.res.MaxUtil = u
		}
		if nw.res.Detail != nil {
			cs := ChannelStats{ID: topology.ChannelID(i), Grants: c.grants}
			cs.Rate = float64(c.grants) / window
			cs.Utilization = busy / window
			if c.grants > 0 {
				cs.MeanHold = busy / float64(c.grants)
			} else {
				cs.MeanHold = math.NaN()
			}
			nw.res.Detail.Channels = append(nw.res.Detail.Channels, cs)
		}
	}
	if nw.res.Generated > 0 && float64(nw.res.Completed) < 0.9*float64(nw.res.Generated) {
		nw.res.Saturated = true
	}
}

//quarc:hotpath
func (nw *Network) scheduleGeneration(node topology.NodeID, from float64) {
	gap := nw.traffic.Interarrival(node)
	if math.IsInf(gap, 1) {
		return
	}
	if gap < 0 || math.IsNaN(gap) {
		panic("wormhole: negative or NaN interarrival gap")
	}
	nw.eng.Schedule(from+gap, sim.Event{Kind: evGenerate, Arg: int32(node)})
}

//quarc:hotpath
func (nw *Network) generate(node topology.NodeID, t float64) {
	if nw.stopped {
		return
	}
	branches, multicast := nw.traffic.Next(node)
	if len(branches) == 0 {
		return
	}
	// The measurement window is half-open, [measureStart, windowEnd):
	// generation exactly at the closing boundary falls outside it, matching
	// the grant accounting and busySpan's clamp.
	measured := nw.measuring && t < nw.windowEnd
	nw.nextMsgID++
	msg := nw.getMessage()
	msg.id = nw.nextMsgID
	msg.gen = t
	msg.src = node
	msg.multicast = multicast
	msg.pending = int32(len(branches))
	msg.measured = measured
	msg.traced = nw.cfg.TraceEnabled && node == nw.cfg.TraceNode
	if !multicast {
		msg.port = branches[0].Port
		msg.depth = len(branches[0].Path) - 1
	}
	if measured {
		nw.res.Generated++
		nw.pendingMeasured++
	}
	nw.trace(msg, -1, TraceGenerate, topology.None, t)
	if nw.hookMask&(1<<HookWormInjected) != 0 {
		nw.fire(HookCtx{Pos: HookWormInjected, Time: t, Node: node, Channel: topology.None, Msg: msg.id, Multicast: multicast})
	}
	for i := range branches {
		nw.request(nw.getWorm(msg, i, branches[i].Path), t)
	}
}

// request asks for the worm's next channel at time t.
//
//quarc:hotpath
func (nw *Network) request(w *worm, t float64) {
	id := w.path[w.hop]
	c := &nw.channels[id]
	if c.holder == nil {
		nw.grant(w, id, t)
		return
	}
	if h := c.holder; h.spanning && len(c.queue) == 0 {
		if c.spanRelease <= t {
			// The holder's tail logically vacated this channel at
			// spanRelease; the release was deferred because nobody needed
			// the channel until now. Apply it, then grant.
			nw.releaseSpanned(id, c)
			nw.grant(w, id, t)
			return
		}
		// Genuinely still held: de-coalesce this channel by materializing
		// its release event — in its reserved sequence slot, restoring
		// exact fine-grained arbitration for the worms queuing behind it.
		nw.eng.ScheduleSeq(c.spanRelease, c.spanSeq, sim.Event{Kind: evRelease, Arg: int32(id)})
	}
	nw.trace(w.msg, w.branch, TraceBlocked, id, t)
	c.queue = append(c.queue, w)
	if nw.hookMask&(1<<HookQueueChanged) != 0 {
		nw.fire(HookCtx{Pos: HookQueueChanged, Time: t, Node: -1, Channel: id, Msg: w.msg.id, Multicast: w.msg.multicast, Occupancy: len(c.queue)})
	}
	if nw.g.Channel(id).Kind == topology.Injection && len(c.queue) > nw.cfg.SatQueue {
		nw.res.Saturated = true
		nw.stopped = true
		nw.eng.Stop()
	}
}

// grant gives channel id to worm w at time t. The header crosses the
// channel during [t, t+1).
//
// Release timing: with single-flit channel buffers a worm of msgLen flits
// spans at most msgLen channels, and all its flits advance in lock-step
// with the header. So when the header is granted the channel at path index
// j, the tail simultaneously vacates the channel at index j-msgLen+1,
// which is free for the next worm one cycle later. Once the header is
// granted the ejection channel at time te, the remaining flits drain at
// one per cycle and the channel k positions before the ejection is freed
// at te + msgLen - k. The first rule covers worms stretched over short
// messages (msgLen < path length); the second covers the paper's usual
// regime of messages longer than the network diameter.
//
//quarc:hotpath
func (nw *Network) grant(w *worm, id topology.ChannelID, t float64) {
	c := &nw.channels[id]
	c.holder = w
	c.grantTime = t
	w.held++
	// Half-open window: a grant exactly at windowEnd contributes no
	// in-window occupancy (busySpan clamps it to zero), so it must not
	// count either — otherwise ChannelStats.Rate and MeanHold skew.
	if nw.measuring && t < nw.windowEnd {
		c.grants++
	}
	nw.trace(w.msg, w.branch, TraceGrant, id, t)
	if nw.hookMask&(1<<HookChannelGranted) != 0 {
		nw.fire(HookCtx{Pos: HookChannelGranted, Time: t, Node: -1, Channel: id, Msg: w.msg.id, Multicast: w.msg.multicast})
	}
	j := w.hop // index of the channel just granted
	w.hop++
	msgLen := nw.cfg.MsgLen
	if w.hop == len(w.path) {
		// The header was granted the ejection channel: the message's last
		// flit is absorbed at t + msgLen. Drain the channels the worm
		// still occupies (at most the last msgLen of the path).
		te := t
		lo := len(w.path) - msgLen
		if lo < 0 {
			lo = 0
		}
		w.done = true
		if !nw.cfg.NoCoalesce {
			nw.spanStart(w, lo, te)
			return
		}
		for i := lo; i < len(w.path); i++ {
			k := float64(len(w.path) - 1 - i)
			nw.eng.Schedule(te+float64(msgLen)-k, sim.Event{Kind: evRelease, Arg: int32(w.path[i])})
		}
		nw.eng.Schedule(te+float64(msgLen),
			sim.Event{Kind: evComplete, Arg: int32(w.branch), Data: w.msg})
		return
	}
	if i := j - msgLen + 1; i >= 0 {
		// The tail crossed path[i] in this cycle; free it next cycle —
		// fused with the header's next request into one advance event
		// unless coalescing is off.
		if nw.cfg.NoCoalesce {
			nw.eng.Schedule(t+1, sim.Event{Kind: evRelease, Arg: int32(w.path[i])})
		} else {
			// Reserve both micro-event slots (release + request) so the
			// sequence counter advances exactly as in fine-grained mode.
			seq := nw.eng.ReserveSeq(2)
			nw.eng.ScheduleSeq(t+1, seq, sim.Event{Kind: evAdvance, Data: w})
			return
		}
	}
	nw.eng.Schedule(t+1, sim.Event{Kind: evRequest, Data: w})
}

// spanStart begins a coalesced drain at the worm's ejection grant (time
// te): instead of one release event per held channel, channels that
// already have waiters get their release materialized as a real event
// (fine-grained arbitration is preserved exactly), while uncontended
// channels merely record their future release time in spanRelease. One
// evSpanDone event at te+msgLen — when the message's last flit is
// absorbed — applies the outstanding releases in closed form and
// completes the message. Requests that hit a deferred channel in the
// meantime de-coalesce it (see request).
//
//quarc:hotpath
func (nw *Network) spanStart(w *worm, lo int, te float64) {
	msgLen := float64(nw.cfg.MsgLen)
	last := len(w.path) - 1
	// Reserve the sequence range the fine-grained drain would have used
	// (one release per held channel plus the completion), so any release
	// materialized later ties exactly where its fine-grained counterpart
	// would have — the coalesced schedule stays bitwise identical.
	seq := nw.eng.ReserveSeq(len(w.path) - lo + 1)
	for i := lo; i < len(w.path); i++ {
		id := w.path[i]
		c := &nw.channels[id]
		rt := te + msgLen - float64(last-i)
		sq := seq + uint64(i-lo)
		if len(c.queue) > 0 {
			nw.eng.ScheduleSeq(rt, sq, sim.Event{Kind: evRelease, Arg: int32(id)})
			continue
		}
		c.spanRelease = rt
		c.spanSeq = sq
	}
	w.spanning = true
	nw.eng.ScheduleSeq(te+msgLen, seq+uint64(len(w.path)-lo), sim.Event{Kind: evSpanDone, Data: w})
}

// releaseSpanned applies a spanning worm's deferred channel release with
// the occupancy accounting the fine-grained release event would have done
// at the recorded time c.spanRelease. The channel's queue is empty by
// construction: a queued worm would have forced a materialized release
// event instead.
//
//quarc:hotpath
func (nw *Network) releaseSpanned(id topology.ChannelID, c *channel) {
	h := c.holder
	if nw.measuring {
		c.busy += nw.busySpan(c.grantTime, c.spanRelease)
	}
	if nw.hookMask&(1<<HookChannelReleased) != 0 {
		// Time is the logical release time the fine-grained simulator
		// would have fired at, not the (later) moment the deferred
		// release is applied.
		nw.fire(HookCtx{Pos: HookChannelReleased, Time: c.spanRelease, Node: -1, Channel: id, Msg: h.msg.id, Multicast: h.msg.multicast})
	}
	c.holder = nil
	h.held--
	nw.coalesced++
}

// spanDone finishes a coalesced drain: the message's last flit was
// absorbed at t, every channel the worm still holds is released at its
// recorded time, and the branch completes — micro-events the fine-grained
// simulator would have fired one by one.
//
//quarc:hotpath
func (nw *Network) spanDone(w *worm, t float64) {
	lo := len(w.path) - nw.cfg.MsgLen
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < len(w.path); i++ {
		c := &nw.channels[w.path[i]]
		if c.holder != w || len(c.queue) > 0 {
			// Already released (lazily, or by a materialized release
			// event), possibly re-granted — or a materialized release is
			// still pending at exactly t and must do the arbitration.
			continue
		}
		nw.releaseSpanned(w.path[i], c)
	}
	w.spanning = false
	nw.trace(w.msg, w.branch, TraceComplete, topology.None, t)
	nw.complete(w.msg, t)
	if w.held == 0 {
		nw.putWorm(w)
	}
	// Otherwise a materialized release pending at exactly t still
	// references the worm's channels; release() pools it when the last
	// hold drops.
}

// flushSpans applies every deferred span release whose logical time lies
// strictly before t, so measurement-boundary and end-of-run accounting
// see the true release times rather than the pending evSpanDone.
//
//quarc:hotpath
func (nw *Network) flushSpans(t float64) {
	for i := range nw.channels {
		c := &nw.channels[i]
		h := c.holder
		if h != nil && h.spanning && len(c.queue) == 0 && c.spanRelease < t {
			nw.releaseSpanned(topology.ChannelID(i), c)
		}
	}
}

//quarc:hotpath
func (nw *Network) release(id topology.ChannelID, t float64) {
	c := &nw.channels[id]
	h := c.holder
	if h == nil {
		panic("wormhole: releasing a free channel")
	}
	if nw.measuring {
		c.busy += nw.busySpan(c.grantTime, t)
	}
	if nw.hookMask&(1<<HookChannelReleased) != 0 {
		nw.fire(HookCtx{Pos: HookChannelReleased, Time: t, Node: -1, Channel: id, Msg: h.msg.id, Multicast: h.msg.multicast})
	}
	c.holder = nil
	h.held--
	if h.done && h.held == 0 && !h.spanning {
		// A spanning worm is still referenced by its pending evSpanDone
		// event; spanDone pools it instead.
		nw.putWorm(h)
	}
	if len(c.queue) > 0 && !nw.stopped {
		next := 0
		if nw.cfg.MulticastPriority {
			// Multicast worms win arbitration; FIFO within each class.
			for i, w := range c.queue {
				if w.msg.multicast {
					next = i
					break
				}
			}
		}
		w := c.queue[next]
		copy(c.queue[next:], c.queue[next+1:])
		c.queue = c.queue[:len(c.queue)-1]
		if nw.hookMask&(1<<HookQueueChanged) != 0 {
			nw.fire(HookCtx{Pos: HookQueueChanged, Time: t, Node: -1, Channel: id, Msg: w.msg.id, Multicast: w.msg.multicast, Occupancy: len(c.queue)})
		}
		nw.grant(w, id, t)
	}
}

//quarc:hotpath
func (nw *Network) complete(msg *message, t float64) {
	msg.pending--
	if t > msg.lastDone {
		msg.lastDone = t
	}
	if msg.pending > 0 {
		return
	}
	if nw.hookMask&(1<<HookWormEjected) != 0 {
		nw.fire(HookCtx{Pos: HookWormEjected, Time: t, Node: -1, Channel: topology.None, Msg: msg.id, Multicast: msg.multicast, Latency: msg.lastDone - msg.gen})
	}
	if nw.measuring && msg.measured {
		nw.res.Completed++
		nw.pendingMeasured--
		// The estimator folds are deferred to finish so they happen in
		// canonical rather than event order (see latSample).
		nw.samples = append(nw.samples, latSample{
			t: msg.lastDone, gen: msg.gen, src: msg.src,
			multicast: msg.multicast, port: msg.port, depth: msg.depth,
		})
		if nw.draining && nw.pendingMeasured <= 0 {
			nw.eng.Stop()
		}
	}
	// The last branch completed: no event or worm references msg anymore.
	nw.putMessage(msg)
}

// Engine exposes the underlying event engine (used by tests).
func (nw *Network) Engine() *sim.Engine { return nw.eng }
