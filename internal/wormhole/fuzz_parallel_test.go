package wormhole

import (
	"testing"
)

// FuzzParallelVsSerial fuzzes the parallel-vs-serial differential over
// the battery's whole input space: topology cell, injection rate,
// arrival process, RNG seed and shard count. Every execution demands
// bitwise equality, so any scheduling order the conservative windows can
// produce that the canonical fold cannot reproduce surfaces as a
// sameResult failure rather than a statistical drift.
//
// Rates stay below each cell's congestion knee (fractions of the
// battery's calibrated rate): heavy phase-locked congestion can tie
// same-channel arbitration across shards, which no fold order repairs —
// the eligibility contract excludes that regime (see RunParallel's doc).
func FuzzParallelVsSerial(f *testing.F) {
	// Seeds: one per topology cell, both arrival processes, the shard
	// counts the battery pins, and a few irregular combinations.
	f.Add(uint8(0), uint8(8), uint8(0), uint64(7), uint8(2))
	f.Add(uint8(1), uint8(8), uint8(1), uint64(7), uint8(4))
	f.Add(uint8(2), uint8(8), uint8(0), uint64(11), uint8(8))
	f.Add(uint8(3), uint8(8), uint8(1), uint64(13), uint8(3))
	f.Add(uint8(0), uint8(2), uint8(1), uint64(1), uint8(7))
	f.Add(uint8(1), uint8(5), uint8(0), uint64(99), uint8(5))
	f.Add(uint8(2), uint8(1), uint8(1), uint64(42), uint8(6))
	f.Add(uint8(3), uint8(7), uint8(0), uint64(1234567), uint8(2))
	f.Fuzz(func(t *testing.T, topo, rate, arrival uint8, seed uint64, p uint8) {
		cells := parCells(t)
		c := cells[int(topo)%len(cells)]
		// rate maps to (0, battery rate]: 1/8..8/8 of the calibrated
		// sub-congestion operating point.
		c.rate *= float64(1+int(rate)%8) / 8
		arr := "poisson"
		if arrival%2 == 1 {
			arr = "onoff"
		}
		shards := 2 + int(p)%7 // 2..8
		cfg := Config{MsgLen: c.msgLen, Warmup: 200, Measure: 2000}
		serial := parNetwork(t, c, parWorkload(t, c, arr, seed), cfg).Run()
		nw := parNetwork(t, c, parWorkload(t, c, arr, seed), cfg)
		par, ok := nw.RunParallel(shards)
		if !ok {
			// Saturation abort: the caller contract is a fresh serial
			// re-run, which must reproduce the truncated result.
			par = parNetwork(t, c, parWorkload(t, c, arr, seed), cfg).Run()
		}
		sameResult(t, c.name+"/"+arr, par, serial)
	})
}
