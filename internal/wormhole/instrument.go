package wormhole

import (
	"fmt"
	"sort"
	"strings"

	"quarc/internal/stats"
	"quarc/internal/topology"
)

// ChannelStats is the per-channel measurement exported after a run, used
// to cross-validate the analytical model's flow enumeration: the measured
// arrival rate of every channel must match the model's λ, and the measured
// mean holding time its x̄.
type ChannelStats struct {
	ID topology.ChannelID
	// Grants is the number of worms granted the channel during the
	// measurement window.
	Grants int64
	// Rate is Grants divided by the window length (messages/cycle).
	Rate float64
	// Utilization is the fraction of the window the channel was held.
	Utilization float64
	// MeanHold is the mean holding time per grant (cycles); NaN if the
	// channel was never granted.
	MeanHold float64
}

// Instrumentation holds the optional fine-grained measurements. Enable
// with Config.Detail; all fields are valid after Run.
type Instrumentation struct {
	// PerPortUnicast breaks unicast latency down by injection port.
	PerPortUnicast map[int]*stats.Running
	// PerDistanceUnicast breaks unicast latency down by header pipeline
	// depth (path channel count - 1), validating the model's D term.
	PerDistanceUnicast map[int]*stats.Running
	// UnicastHist and MulticastHist are latency histograms.
	UnicastHist   *stats.Histogram
	MulticastHist *stats.Histogram
	// Channels is the per-channel measurement table.
	Channels []ChannelStats
}

// newInstrumentation sizes the histograms from the message length: the
// interesting range is a few multiples of the zero-load latency.
func newInstrumentation(msgLen int) *Instrumentation {
	hi := float64(40 * msgLen)
	return &Instrumentation{
		PerPortUnicast:     make(map[int]*stats.Running),
		PerDistanceUnicast: make(map[int]*stats.Running),
		UnicastHist:        stats.NewHistogram(0, hi, 200),
		MulticastHist:      stats.NewHistogram(0, hi, 200),
	}
}

func (ins *Instrumentation) recordUnicast(port, depth int, lat float64) {
	r, ok := ins.PerPortUnicast[port]
	if !ok {
		r = &stats.Running{}
		ins.PerPortUnicast[port] = r
	}
	r.Add(lat)
	r, ok = ins.PerDistanceUnicast[depth]
	if !ok {
		r = &stats.Running{}
		ins.PerDistanceUnicast[depth] = r
	}
	r.Add(lat)
	ins.UnicastHist.Add(lat)
}

// Summary renders the instrumentation as a fixed-width report.
func (ins *Instrumentation) Summary() string {
	var b strings.Builder
	if len(ins.PerPortUnicast) > 0 {
		fmt.Fprintf(&b, "unicast latency by injection port:\n")
		ports := make([]int, 0, len(ins.PerPortUnicast))
		for p := range ins.PerPortUnicast {
			ports = append(ports, p)
		}
		sort.Ints(ports)
		for _, p := range ports {
			r := ins.PerPortUnicast[p]
			fmt.Fprintf(&b, "  port %d: mean %.2f (n=%d)\n", p, r.Mean(), r.N())
		}
	}
	if len(ins.PerDistanceUnicast) > 0 {
		fmt.Fprintf(&b, "unicast latency by header depth:\n")
		depths := make([]int, 0, len(ins.PerDistanceUnicast))
		for d := range ins.PerDistanceUnicast {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		for _, d := range depths {
			r := ins.PerDistanceUnicast[d]
			fmt.Fprintf(&b, "  depth %2d: mean %.2f (n=%d)\n", d, r.Mean(), r.N())
		}
	}
	if ins.UnicastHist.Count() > 0 {
		fmt.Fprintf(&b, "unicast latency percentiles: p50=%.1f p90=%.1f p99=%.1f\n",
			ins.UnicastHist.Percentile(50), ins.UnicastHist.Percentile(90), ins.UnicastHist.Percentile(99))
	}
	if ins.MulticastHist.Count() > 0 {
		fmt.Fprintf(&b, "multicast latency percentiles: p50=%.1f p90=%.1f p99=%.1f\n",
			ins.MulticastHist.Percentile(50), ins.MulticastHist.Percentile(90), ins.MulticastHist.Percentile(99))
	}
	return b.String()
}
