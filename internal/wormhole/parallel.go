package wormhole

// Conservative parallel execution of one Network: the channel graph is
// partitioned spatially (topology.PartitionGraph), each shard runs the
// worm-level event handlers over the channels it owns on its own
// sim.Engine, and the shards advance in lockstep windows coordinated by
// internal/sim/par. The fixed one-cycle flit latency is the lookahead:
// every event one shard schedules on another's channels is at least one
// cycle out, so a window of width one is always safe (DESIGN.md §18).
//
// # Bitwise equality with the serial engine
//
// RunParallel is not an approximation: for eligible runs its Result is
// bit-for-bit the serial Run's, pinned by TestParallelMatchesSerial and
// FuzzParallelVsSerial. The argument has three legs:
//
//   - Per-channel decisions replay exactly. A channel is owned by one
//     shard, its event stream there is ordered by (time, local seq), and
//     with a continuous-time arrival process two events of different
//     message lineages never tie, so the per-channel FIFO order is the
//     serial time order. Same-lineage same-time events (branches of one
//     multicast) act on disjoint channels and commute.
//   - Shared-object updates are commutative. A stretched worm's channels
//     can be released from several shards, so its occupancy lives in a
//     packed atomic (pstate); a multicast's branch completions fold
//     through an atomic countdown and a CAS-max on the completion time.
//     All are order-free, and window width <= lookahead means any two
//     events of one worm (always >= 1 cycle apart) land in different
//     windows anyway.
//   - Statistics fold in a canonical order. Welford means and batch
//     means are order-sensitive, so shards buffer completion samples and
//     the merge folds them sorted by (completion time, generation time,
//     source) — for tie-free workloads exactly the serial completion
//     order. Counters, busy time and MaxUtil merge as exact sums/maxes.
//
// Worm coalescing stays intact inside a shard and de-coalesces at the
// seams: a fused advance whose release and request target different
// shards is split into its two micro-events, and a span drain
// materializes release events for remotely owned channels instead of
// deferring them. Both directions preserve the flit-level-equivalent
// event count, so Result.Events is invariant too.
//
// Ineligible configurations (drain, detail, tracing, per-event hooks,
// NoCoalesce, a non-concurrency-safe traffic source) run serially; a
// saturation stop mid-run aborts the parallel attempt (the truncated
// state is not reproducible conservatively) and the caller re-runs
// serially from a fresh reset.

import (
	"math"
	"sync/atomic"

	"quarc/internal/routing"
	"quarc/internal/sim"
	"quarc/internal/sim/par"
	"quarc/internal/stats"
	"quarc/internal/topology"
)

// ParallelSafe is the marker interface a Traffic source implements to
// declare Interarrival and Next safe for concurrent calls on distinct
// nodes (traffic.Workload qualifies: per-node RNGs and arrival states
// over read-only shared route tables). RunParallel falls back to the
// serial engine for sources without it.
type ParallelSafe interface {
	ParallelSafe()
}

// worm.pstate layout: low 16 bits count held channels, then one bit
// each for "ejection granted" (done) and "span drain in progress".
const (
	pstateDoneBit = 1 << 16
	pstateSpanBit = 1 << 17
)

// remoteEvent is one cross-shard event in a mailbox.
type remoteEvent struct {
	t  float64
	ev sim.Event
}

// maxRetainedMailbox caps the mailbox capacity a shard keeps after a
// drain, so one bursty window does not pin memory for the whole run.
const maxRetainedMailbox = 4096

// parRun is the shared coordination state of one RunParallel call.
type parRun struct {
	nw     *Network
	part   *topology.Partition
	shards []*parShard
}

// parShard is one partition: its own engine and statistics, the shared
// channel array (each entry touched only by its owner) and the outboxes
// toward every other shard.
type parShard struct {
	run *parRun
	idx int32
	eng *sim.Engine

	g        *topology.Graph
	traffic  Traffic
	cfg      Config
	channels []channel // shared array; only owned entries are touched
	owner    []int32   // channel -> owning shard (part.Chan)

	// nodes and owned are this shard's nodes and channels.
	nodes []topology.NodeID
	owned []topology.ChannelID

	measuring    bool
	measureStart float64
	windowEnd    float64
	endTime      float64
	stopped      bool

	generated int64
	completed int64
	coalesced uint64
	nextMsgID int64
	samples   []latSample

	wormPool []*worm
	msgPool  []*message

	// out[d] is the mailbox of events this shard scheduled for shard d
	// (nil at d == idx). Single writer (this shard, during its window),
	// single reader (shard d, during its drain); the barrier between
	// window and drain is the hand-off.
	out [][]remoteEvent
}

// parEligible reports whether cfg and the attached hooks permit a
// parallel run at all. The arrival-process side (continuous
// interarrival times, so event-time ties across message lineages have
// probability zero) is the caller's contract — noc gates on it.
func (nw *Network) parEligible(p int) bool {
	if p < 1 {
		return false
	}
	if nw.cfg.Drain || nw.cfg.Detail || nw.cfg.TraceEnabled || nw.cfg.NoCoalesce {
		return false
	}
	if nw.hookMask&^uint8(1<<HookPartitionDone) != 0 {
		return false
	}
	if _, ok := nw.traffic.(ParallelSafe); !ok {
		return false
	}
	return true
}

// RunParallel executes the simulation partitioned into p shards and
// returns the Result bit-for-bit equal to the serial Run's. It returns
// ok=false when a saturation stop aborted the parallel attempt: the
// network (and its traffic source) are then mid-run and must be Reset
// before a serial re-run — the serial engine reproduces the truncated
// saturated Result exactly, which a conservative parallel run cannot.
//
// Ineligible runs (see parEligible; p < 2 included, since one shard is
// the serial engine with extra steps) fall back to the serial Run and
// report ok=true: the fallback never perturbs results, only speed.
//
// The caller must ensure the workload's arrival process has continuous
// interarrival times (poisson, onoff); integer-lattice processes
// (bernoulli, periodic) tie event times across message lineages, where
// serial tie-breaking depends on the global scheduling order that
// sharded engines do not reproduce.
func (nw *Network) RunParallel(p int) (Result, bool) {
	if p < 2 || !nw.parEligible(p) {
		return nw.Run(), true
	}
	part := topology.PartitionGraph(nw.g, p)
	p = part.P // clamped to the node count
	if p < 2 {
		return nw.Run(), true
	}
	run := &parRun{nw: nw, part: part, shards: make([]*parShard, p)}
	for i := range run.shards {
		sh := &parShard{
			run: run, idx: int32(i), eng: sim.New(),
			g: nw.g, traffic: nw.traffic, cfg: nw.cfg,
			channels: nw.channels, owner: part.Chan,
			out: make([][]remoteEvent, p),
		}
		sh.eng.SetHandler(sh)
		run.shards[i] = sh
	}
	for node := 0; node < nw.g.Nodes(); node++ {
		sh := run.shards[part.Node[node]]
		sh.nodes = append(sh.nodes, topology.NodeID(node))
	}
	for id := range nw.channels {
		sh := run.shards[part.Chan[id]]
		sh.owned = append(sh.owned, topology.ChannelID(id))
	}
	horizon := nw.cfg.Warmup + nw.cfg.Measure
	shards := make([]par.Shard, p)
	for i, sh := range run.shards {
		sh.windowEnd = horizon
		sh.eng.HintSchedule(float64(nw.cfg.MsgLen)*8, len(sh.nodes)*4)
		for _, node := range sh.nodes {
			sh.scheduleGeneration(node, 0)
		}
		shards[i] = sh
	}
	look := part.Lookahead()
	// The same half-open phase split as the serial Run: warmup with an
	// exclusive horizon, then measurement with an inclusive one.
	if !par.Phase(shards, nw.cfg.Warmup, look, false) {
		return Result{}, false
	}
	for _, sh := range run.shards {
		sh.beginMeasurement()
	}
	if !par.Phase(shards, horizon, look, true) {
		return Result{}, false
	}
	res := run.merge(horizon)
	if nw.hookMask&(1<<HookPartitionDone) != 0 {
		for i, sh := range run.shards {
			nw.fire(HookCtx{
				Pos: HookPartitionDone, Time: res.Time,
				Node: topology.NodeID(i), Channel: topology.None,
				Msg: int64(sh.eng.Fired() + sh.coalesced),
			})
		}
	}
	return res, true
}

// merge folds the shard states into the serial Result: counter sums,
// exact per-channel utilization maxima, and the latency estimators fed
// in the canonical (completion, generation, source) sample order — for
// a tie-free workload exactly the order the serial engine used.
func (run *parRun) merge(horizon float64) Result {
	nw := run.nw
	nw.res = Result{
		UnicastBM:   stats.NewBatchMeans(200),
		MulticastBM: stats.NewBatchMeans(50),
		Time:        horizon,
	}
	var all []latSample
	for _, sh := range run.shards {
		sh.finish(horizon)
		nw.res.Generated += sh.generated
		nw.res.Completed += sh.completed
		nw.res.Events += sh.eng.Fired() + sh.coalesced
		all = append(all, sh.samples...)
	}
	sortSamples(all)
	for _, s := range all {
		lat := s.t - s.gen
		if s.multicast {
			nw.res.Multicast.Add(lat)
			nw.res.MulticastBM.Add(lat)
		} else {
			nw.res.Unicast.Add(lat)
			nw.res.UnicastBM.Add(lat)
		}
	}
	for _, sh := range run.shards {
		if u := sh.maxUtil(); u > nw.res.MaxUtil {
			nw.res.MaxUtil = u
		}
	}
	if nw.res.Generated > 0 && float64(nw.res.Completed) < 0.9*float64(nw.res.Generated) {
		nw.res.Saturated = true
	}
	return nw.res
}

// --- par.Shard implementation -----------------------------------------

// Drain moves the events other shards published for this shard into the
// local engine, in fixed sender order so the local sequence assignment
// is deterministic.
func (sh *parShard) Drain() {
	for s, src := range sh.run.shards {
		if int32(s) == sh.idx {
			continue
		}
		box := src.out[sh.idx]
		for i := range box {
			sh.eng.Schedule(box[i].t, box[i].ev)
			box[i] = remoteEvent{} // drop payload references
		}
		if cap(box) > maxRetainedMailbox {
			src.out[sh.idx] = nil
		} else {
			src.out[sh.idx] = box[:0]
		}
	}
}

// NextTime implements par.Shard over the engine's peek.
func (sh *parShard) NextTime() (float64, bool) { return sh.eng.NextTime() }

// Run implements par.Shard: one conservative window.
func (sh *parShard) Run(bound float64, incl bool) {
	if incl {
		sh.eng.Run(bound)
	} else {
		sh.eng.RunBefore(bound)
	}
}

// Aborted implements par.Shard: a saturation stop.
func (sh *parShard) Aborted() bool { return sh.stopped }

// schedule routes an event: locally into the engine, remotely into the
// owner's mailbox (delivered after the next barrier — always soon
// enough, because cross-shard events are at least one lookahead out).
func (sh *parShard) schedule(owner int32, t float64, ev sim.Event) {
	if owner == sh.idx {
		sh.eng.Schedule(t, ev)
		return
	}
	sh.out[owner] = append(sh.out[owner], remoteEvent{t: t, ev: ev})
}

// Handle dispatches this shard's typed events; the cases mirror
// Network.Handle without the serial-only branches (tracing, drain,
// NoCoalesce completions).
func (sh *parShard) Handle(e *sim.Engine, ev sim.Event) {
	t := e.Now()
	switch ev.Kind {
	case evGenerate:
		node := topology.NodeID(ev.Arg)
		sh.generate(node, t)
		sh.scheduleGeneration(node, t)
	case evRequest:
		sh.request(ev.Data.(*worm), t)
	case evRelease:
		sh.release(topology.ChannelID(ev.Arg), t)
	case evAdvance:
		// Fused tail-release + header-request; only scheduled when both
		// channels live in this shard (seams split it in grant).
		w := ev.Data.(*worm)
		sh.release(w.path[w.hop-sh.cfg.MsgLen], t)
		sh.coalesced++
		sh.request(w, t)
	case evSpanDone:
		sh.spanDone(ev.Data.(*worm), t)
	default:
		panic("wormhole: unknown parallel event kind")
	}
}

func (sh *parShard) getWorm(msg *message, branch int, path routing.Path) *worm {
	if n := len(sh.wormPool); n > 0 {
		w := sh.wormPool[n-1]
		sh.wormPool[n-1] = nil
		sh.wormPool = sh.wormPool[:n-1]
		*w = worm{msg: msg, branch: branch, path: path}
		return w
	}
	return &worm{msg: msg, branch: branch, path: path}
}

func (sh *parShard) putWorm(w *worm) {
	w.msg = nil
	w.path = nil
	sh.wormPool = append(sh.wormPool, w)
}

func (sh *parShard) getMessage() *message {
	if n := len(sh.msgPool); n > 0 {
		m := sh.msgPool[n-1]
		sh.msgPool[n-1] = nil
		sh.msgPool = sh.msgPool[:n-1]
		*m = message{}
		return m
	}
	return &message{}
}

func (sh *parShard) putMessage(m *message) {
	sh.msgPool = append(sh.msgPool, m)
}

func (sh *parShard) scheduleGeneration(node topology.NodeID, from float64) {
	gap := sh.traffic.Interarrival(node)
	if math.IsInf(gap, 1) {
		return
	}
	if gap < 0 || math.IsNaN(gap) {
		panic("wormhole: negative or NaN interarrival gap")
	}
	sh.eng.Schedule(from+gap, sim.Event{Kind: evGenerate, Arg: int32(node)})
}

func (sh *parShard) generate(node topology.NodeID, t float64) {
	if sh.stopped {
		return
	}
	branches, multicast := sh.traffic.Next(node)
	if len(branches) == 0 {
		return
	}
	measured := sh.measuring && t < sh.windowEnd
	sh.nextMsgID++
	msg := sh.getMessage()
	// Shard-scoped ids: only observable through tracing and per-event
	// hooks, both of which force the serial fallback.
	msg.id = int64(sh.idx)<<48 | sh.nextMsgID
	msg.gen = t
	msg.src = node
	msg.multicast = multicast
	msg.pending = int32(len(branches))
	msg.measured = measured
	if measured {
		sh.generated++
	}
	for i := range branches {
		sh.request(sh.getWorm(msg, i, branches[i].Path), t)
	}
}

// request mirrors Network.request over owned channels. The event router
// guarantees the requested channel is owned here.
func (sh *parShard) request(w *worm, t float64) {
	id := w.path[w.hop]
	c := &sh.channels[id]
	if c.holder == nil {
		sh.grant(w, id, t)
		return
	}
	// The serial code keys deferral off "holder is spanning and queue
	// empty", but here a holder can span in another shard while this
	// channel was never deferred (its release is a materialized event in
	// flight), so deferral is an explicit per-channel marker. A deferred
	// channel's spanRelease/spanSeq are always this shard's own: only the
	// span-starting shard defers, and only on channels it owns.
	if c.spanDeferred && len(c.queue) == 0 {
		if c.spanRelease <= t {
			sh.releaseSpanned(id, c)
			sh.grant(w, id, t)
			return
		}
		sh.eng.ScheduleSeq(c.spanRelease, c.spanSeq, sim.Event{Kind: evRelease, Arg: int32(id)})
	}
	c.queue = append(c.queue, w)
	if sh.g.Channel(id).Kind == topology.Injection && len(c.queue) > sh.cfg.SatQueue {
		sh.stopped = true
		sh.eng.Stop()
	}
}

// grant mirrors Network.grant; continuation events are routed by the
// owner of the channel they target, and a fused advance whose release
// and request straddle a seam is split into its two micro-events (the
// split fires both, the fuse fires one and coalesces one — the
// flit-level event count is identical either way).
func (sh *parShard) grant(w *worm, id topology.ChannelID, t float64) {
	c := &sh.channels[id]
	c.holder = w
	c.grantTime = t
	atomic.AddInt32(&w.pstate, 1)
	if sh.measuring && t < sh.windowEnd {
		c.grants++
	}
	j := w.hop
	w.hop++
	msgLen := sh.cfg.MsgLen
	if w.hop == len(w.path) {
		te := t
		lo := len(w.path) - msgLen
		if lo < 0 {
			lo = 0
		}
		// The worm still holds the just-granted ejection channel, so a
		// concurrent release from another shard cannot see a zero hold
		// count between these two transitions and pool the worm early.
		atomic.AddInt32(&w.pstate, pstateDoneBit)
		sh.spanStart(w, lo, te)
		return
	}
	if i := j - msgLen + 1; i >= 0 {
		rel := w.path[i]
		req := w.path[w.hop]
		if sh.owner[rel] == sh.owner[req] {
			sh.schedule(sh.owner[rel], t+1, sim.Event{Kind: evAdvance, Data: w})
			return
		}
		// Seam: de-coalesce the advance into its micro-events. Their
		// relative order is free — they act on different channels.
		sh.schedule(sh.owner[rel], t+1, sim.Event{Kind: evRelease, Arg: int32(rel)})
		sh.schedule(sh.owner[req], t+1, sim.Event{Kind: evRequest, Data: w})
		return
	}
	sh.schedule(sh.owner[w.path[w.hop]], t+1, sim.Event{Kind: evRequest, Data: w})
}

// spanStart mirrors Network.spanStart. Remotely owned channels cannot
// defer (their spanRelease would race with the owner), so the span
// de-coalesces at seams: those releases are materialized as real events
// in the owner shard. Locally the reserved-sequence discipline is kept
// so same-time ties against the spanDone resolve exactly as serially.
func (sh *parShard) spanStart(w *worm, lo int, te float64) {
	msgLen := float64(sh.cfg.MsgLen)
	last := len(w.path) - 1
	seq := sh.eng.ReserveSeq(len(w.path) - lo + 1)
	for i := lo; i < len(w.path); i++ {
		id := w.path[i]
		rt := te + msgLen - float64(last-i)
		sq := seq + uint64(i-lo)
		if sh.owner[id] != sh.idx {
			sh.schedule(sh.owner[id], rt, sim.Event{Kind: evRelease, Arg: int32(id)})
			continue
		}
		c := &sh.channels[id]
		if len(c.queue) > 0 {
			sh.eng.ScheduleSeq(rt, sq, sim.Event{Kind: evRelease, Arg: int32(id)})
			continue
		}
		c.spanRelease = rt
		c.spanSeq = sq
		c.spanDeferred = true
	}
	atomic.AddInt32(&w.pstate, pstateSpanBit)
	sh.eng.ScheduleSeq(te+msgLen, seq+uint64(len(w.path)-lo), sim.Event{Kind: evSpanDone, Data: w})
}

// releaseSpanned mirrors Network.releaseSpanned for an owned channel.
func (sh *parShard) releaseSpanned(id topology.ChannelID, c *channel) {
	if sh.measuring {
		c.busy += sh.busySpan(c.grantTime, c.spanRelease)
	}
	h := c.holder
	c.holder = nil
	c.spanDeferred = false
	atomic.AddInt32(&h.pstate, -1)
	sh.coalesced++
}

// spanDone mirrors Network.spanDone over the locally owned channels of
// the span (seam channels were materialized, and their releases — all
// at least one cycle before this event — have already fired in earlier
// windows, so this shard sees their effects).
func (sh *parShard) spanDone(w *worm, t float64) {
	lo := len(w.path) - sh.cfg.MsgLen
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < len(w.path); i++ {
		id := w.path[i]
		if sh.owner[id] != sh.idx {
			continue
		}
		c := &sh.channels[id]
		if c.holder != w || len(c.queue) > 0 {
			continue
		}
		sh.releaseSpanned(id, c)
	}
	nv := atomic.AddInt32(&w.pstate, -pstateSpanBit)
	sh.complete(w.msg, t)
	if nv == pstateDoneBit {
		sh.putWorm(w)
	}
}

// flushSpans mirrors Network.flushSpans over the owned channels.
func (sh *parShard) flushSpans(t float64) {
	for _, id := range sh.owned {
		c := &sh.channels[id]
		if c.spanDeferred && len(c.queue) == 0 && c.spanRelease < t {
			sh.releaseSpanned(id, c)
		}
	}
}

func (sh *parShard) release(id topology.ChannelID, t float64) {
	c := &sh.channels[id]
	h := c.holder
	if h == nil {
		panic("wormhole: releasing a free channel")
	}
	if sh.measuring {
		c.busy += sh.busySpan(c.grantTime, t)
	}
	c.holder = nil
	c.spanDeferred = false
	if nv := atomic.AddInt32(&h.pstate, -1); nv == pstateDoneBit {
		// Held count zero, ejection granted, not spanning: no event or
		// queue references the worm anywhere. Exactly one shard observes
		// this final transition and pools it.
		sh.putWorm(h)
	}
	if len(c.queue) > 0 && !sh.stopped {
		next := 0
		if sh.cfg.MulticastPriority {
			for i, w := range c.queue {
				if w.msg.multicast {
					next = i
					break
				}
			}
		}
		w := c.queue[next]
		copy(c.queue[next:], c.queue[next+1:])
		c.queue = c.queue[:len(c.queue)-1]
		sh.grant(w, id, t)
	}
}

// complete mirrors Network.complete: the completion time folds through
// a CAS-max (bit order equals numeric order for non-negative floats)
// and the branch countdown through an atomic add, so branches finishing
// in different shards within one window commute. The shard that retires
// the last branch buffers the sample; which shard that is can vary from
// run to run, but the sample's content and the canonical fold cannot.
func (sh *parShard) complete(msg *message, t float64) {
	bits := math.Float64bits(t)
	for {
		cur := atomic.LoadUint64(&msg.lastDoneBits)
		if cur >= bits || atomic.CompareAndSwapUint64(&msg.lastDoneBits, cur, bits) {
			break
		}
	}
	if atomic.AddInt32(&msg.pending, -1) > 0 {
		return
	}
	if sh.measuring && msg.measured {
		sh.completed++
		var s latSample
		s.t = math.Float64frombits(atomic.LoadUint64(&msg.lastDoneBits))
		s.gen = msg.gen
		s.src = msg.src
		s.multicast = msg.multicast
		sh.samples = append(sh.samples, s)
	}
	sh.putMessage(msg)
}

// busySpan mirrors Network.busySpan with the shard's window.
func (sh *parShard) busySpan(grant, release float64) float64 {
	lo := grant
	if sh.measureStart > lo {
		lo = sh.measureStart
	}
	hi := release
	if sh.windowEnd < hi {
		hi = sh.windowEnd
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// beginMeasurement mirrors Network.beginMeasurement for the owned
// channels. Called between the phases, with no shard goroutines live.
func (sh *parShard) beginMeasurement() {
	sh.measuring = true
	sh.measureStart = sh.eng.Now()
	sh.flushSpans(sh.measureStart)
	for _, id := range sh.owned {
		c := &sh.channels[id]
		c.busy = 0
		c.grants = 0
		if c.holder != nil {
			c.grantTime = sh.measureStart
		}
	}
}

// finish applies the end-of-run span flush, mirroring Network.finish
// for the owned channels. Called from the merge, serially.
func (sh *parShard) finish(endTime float64) {
	sh.flushSpans(endTime)
	sh.endTime = endTime
}

// maxUtil computes the highest owned-channel utilization, with the
// same clamped busy accounting as Network.finish.
func (sh *parShard) maxUtil() float64 {
	window := math.Min(sh.endTime, sh.windowEnd) - sh.measureStart
	if window <= 0 {
		window = 1
	}
	max := 0.0
	for _, id := range sh.owned {
		c := &sh.channels[id]
		busy := c.busy
		if c.holder != nil {
			busy += sh.busySpan(c.grantTime, sh.endTime)
		}
		if u := busy / window; u > max {
			max = u
		}
	}
	return max
}
