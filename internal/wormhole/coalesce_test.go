package wormhole

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// runPair runs the same workload with coalescing on and off and returns
// both results.
func runPair(t *testing.T, rt routing.Router, spec traffic.Spec, seed uint64, cfg Config) (coalesced, fine Result) {
	t.Helper()
	run := func(noCoalesce bool) Result {
		w, err := traffic.NewWorkload(rt, spec, seed)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.NoCoalesce = noCoalesce
		nw, err := New(rt.Graph(), w, c)
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run()
		if cfg.Drain {
			// A drained run can be leak-checked once the engine empties;
			// without Drain, generation events reschedule forever.
			nw.Engine().RunAll()
			if err := nw.LeakCheck(); err != nil {
				t.Errorf("noCoalesce=%v: %v", noCoalesce, err)
			}
		}
		return res
	}
	return run(false), run(true)
}

// TestCoalescingMatchesFineGrained is the differential test of the
// worm-level coalescing: span drains, fused advances and lazily applied
// releases must reproduce the fine-grained (one event per flit-step)
// simulator bitwise — latencies, message counts, utilization, and the
// flit-level-equivalent event count.
func TestCoalescingMatchesFineGrained(t *testing.T) {
	type tc struct {
		name   string
		rt     routing.Router
		set    func() (routing.MulticastSet, error)
		msgLen int
		rate   float64
		alpha  float64
		detail bool
		drain  bool
	}
	q16, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	qrt := routing.NewQuarcRouter(q16)
	q32, err := topology.NewQuarc(32)
	if err != nil {
		t.Fatal(err)
	}
	qrt32 := routing.NewQuarcRouter(q32)
	m, err := topology.NewMesh(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mrt := routing.NewMeshRouter(m)

	cases := []tc{
		{name: "quarc16-long-low", rt: qrt,
			set:    func() (routing.MulticastSet, error) { return qrt.LocalizedSet(topology.PortL, 4) },
			msgLen: 32, rate: 0.002, alpha: 0.05},
		{name: "quarc16-long-high", rt: qrt,
			set:    func() (routing.MulticastSet, error) { return qrt.LocalizedSet(topology.PortL, 4) },
			msgLen: 32, rate: 0.006, alpha: 0.05, detail: true},
		{name: "quarc32-short-worms", rt: qrt32, // msgLen < diameter: stretched worms, fused advances
			set:    func() (routing.MulticastSet, error) { return qrt32.LocalizedSet(topology.PortL, 6) },
			msgLen: 4, rate: 0.004, alpha: 0.1, drain: true},
		{name: "mesh4x4", rt: mrt,
			set:    func() (routing.MulticastSet, error) { return mrt.HighLowSet([]int{1, 3}, []int{2}) },
			msgLen: 16, rate: 0.004, alpha: 0.05, drain: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			set, err := c.set()
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []uint64{1, 7, 99} {
				spec := traffic.Spec{Rate: c.rate, MulticastFrac: c.alpha, Set: set}
				cfg := Config{MsgLen: c.msgLen, Warmup: 1000, Measure: 10000,
					Detail: c.detail, Drain: c.drain}
				co, fi := runPair(t, c.rt, spec, seed, cfg)
				sameResult(t, c.name+"/coalesced-vs-fine", co, fi)
				if c.detail {
					if len(co.Detail.Channels) != len(fi.Detail.Channels) {
						t.Fatalf("seed %d: channel stats length differs", seed)
					}
					for i := range co.Detail.Channels {
						a, b := co.Detail.Channels[i], fi.Detail.Channels[i]
						if a.Grants != b.Grants || a.Utilization != b.Utilization ||
							!(a.MeanHold == b.MeanHold || (math.IsNaN(a.MeanHold) && math.IsNaN(b.MeanHold))) {
							t.Errorf("seed %d: channel %d stats diverged: %+v vs %+v", seed, i, a, b)
						}
					}
				}
			}
		})
	}
}

// TestCoalescingReducesFiredEvents checks the point of the exercise: with
// coalescing on, the engine dispatches substantially fewer events for the
// same logical (flit-level-equivalent) event count.
func TestCoalescingReducesFiredEvents(t *testing.T) {
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.Spec{Rate: 0.004, MulticastFrac: 0.05, Set: set}
	fired := func(noCoalesce bool) (engine uint64, logical uint64) {
		w, err := traffic.NewWorkload(rt, spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := New(rt.Graph(), w, Config{MsgLen: 32, Warmup: 1000, Measure: 20000, NoCoalesce: noCoalesce})
		if err != nil {
			t.Fatal(err)
		}
		res := nw.Run()
		return nw.Engine().Fired(), res.Events
	}
	coEng, coLog := fired(false)
	fiEng, fiLog := fired(true)
	if coLog != fiLog {
		t.Fatalf("logical event counts diverged: coalesced %d vs fine %d", coLog, fiLog)
	}
	if fiEng != fiLog {
		t.Fatalf("fine-grained run reports %d logical events but fired %d", fiLog, fiEng)
	}
	if float64(coEng) > 0.7*float64(fiEng) {
		t.Errorf("coalescing fired %d engine events vs %d fine-grained (want < 70%%)", coEng, fiEng)
	}
}
