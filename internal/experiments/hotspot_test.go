package experiments

import (
	"math"
	"testing"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// Hotspot traffic breaks the vertex symmetry the paper's uniform setup
// relies on; the model's fixed point is fully general, so it must still
// track the simulator. This guards against accidental symmetry
// assumptions anywhere in the model.
func TestHotspotModelTracksSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	spec := traffic.Spec{Rate: 0.003, HotspotFrac: 0.3, HotspotNode: 5}

	pred, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: 24})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Saturated {
		t.Fatal("model saturated")
	}
	w, err := traffic.NewWorkload(rt, spec, 321)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen: 24, Warmup: 5000, Measure: 120000, Detail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatal("simulator saturated")
	}
	if e := math.Abs(pred.UnicastLatency-res.Unicast.Mean()) / res.Unicast.Mean(); e > 0.08 {
		t.Errorf("hotspot: model %v vs sim %v (err %.3f > 8%%)",
			pred.UnicastLatency, res.Unicast.Mean(), e)
	}

	// The hotspot's ejection channels must carry far more traffic than a
	// typical node's — in both the model and the simulation.
	m, err := core.NewModel(core.Input{Router: rt, Spec: spec, MsgLen: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	ejRate := func(node topology.NodeID) (model, sim float64) {
		for p := 0; p < topology.QuarcPorts; p++ {
			id := rt.Graph().Ejection(node, p)
			model += m.Lambda(id)
			for _, cs := range res.Detail.Channels {
				if cs.ID == id {
					sim += cs.Rate
				}
			}
		}
		return
	}
	hotModel, hotSim := ejRate(5)
	coldModel, coldSim := ejRate(12)
	if !(hotModel > 4*coldModel) {
		t.Errorf("model hotspot ejection %v not >> cold %v", hotModel, coldModel)
	}
	if !(hotSim > 4*coldSim) {
		t.Errorf("sim hotspot ejection %v not >> cold %v", hotSim, coldSim)
	}
	// And the two sides agree on the hotspot's absolute rate.
	if e := math.Abs(hotModel-hotSim) / hotModel; e > 0.05 {
		t.Errorf("hotspot ejection rate: model %v vs sim %v", hotModel, hotSim)
	}
}

func TestHotspotLowersSaturation(t *testing.T) {
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set := routing.NewMulticastSet(topology.QuarcPorts)
	uniform, err := FindSaturationRate(rt, 32, 0, set, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// FindSaturationRate has no hotspot knob; probe directly.
	hotspotSaturated := func(rate float64) bool {
		pred, err := core.Predict(core.Input{
			Router: rt,
			Spec:   traffic.Spec{Rate: rate, HotspotFrac: 0.4, HotspotNode: 0},
			MsgLen: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pred.Saturated
	}
	// The uniform saturation rate must saturate the hotspot workload: the
	// hotspot's ejection channels are the new bottleneck.
	if !hotspotSaturated(uniform) {
		t.Errorf("hotspot workload not saturated at the uniform saturation rate %v", uniform)
	}
	if hotspotSaturated(uniform / 8) {
		t.Errorf("hotspot workload saturated even at rate %v", uniform/8)
	}
}
