package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"quarc/internal/routing"
)

// RunPanels evaluates several figure panels concurrently using a bounded
// worker pool. Each panel is still internally sequential (its points share
// nothing), so results are bitwise identical to sequential runs — the
// simulator and model are deterministic per seed and panels do not share
// mutable state. workers <= 0 selects GOMAXPROCS.
//
// The returned slice is ordered like the input regardless of completion
// order. The first error encountered is returned after all workers stop.
func RunPanels(panels []Panel, sim SimConfig, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(panels) {
		workers = len(panels)
	}
	if len(panels) == 0 {
		return nil, nil
	}

	results := make([]Result, len(panels))
	errs := make([]error, len(panels))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = RunPanel(panels[i], sim)
			}
		}()
	}
	for i := range panels {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: panel %s: %w", panels[i].ID, err)
		}
	}
	return results, nil
}

// RunPointsParallel evaluates the sweep points of one configuration
// concurrently. Unlike RunPanels this parallelizes within a panel; each
// point owns its workload RNG (seeded identically to the sequential path),
// so results are again deterministic. The router is shared across workers,
// which is safe: routers are read-only after construction.
func RunPointsParallel(rt routing.Router, set routing.MulticastSet, msgLen int, alpha float64, rates []float64, sim SimConfig, workers int) ([]Point, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	points := make([]Point, len(rates))
	errs := make([]error, len(rates))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				points[i], errs[i] = RunPoint(rt, set, msgLen, alpha, rates[i], sim)
			}
		}()
	}
	for i := range rates {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}
