package experiments

import (
	"math"
	"strings"
	"testing"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// TestModelChannelRatesMatchSimulator is the strongest structural
// cross-check between the two halves of the reproduction: the analytical
// model's flow enumeration assigns every channel an arrival rate λ, and
// the simulator independently counts grants per channel. Summed over each
// channel class, the two must agree — if they do not, model and simulator
// are not describing the same network.
func TestModelChannelRatesMatchSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortCL, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.Spec{Rate: 0.003, MulticastFrac: 0.08, Set: set}
	const msgLen = 16

	m, err := core.NewModel(core.Input{Router: rt, Spec: spec, MsgLen: msgLen})
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, spec, 1234)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen: msgLen, Warmup: 5000, Measure: 150000, Detail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatal("unexpected saturation")
	}

	// Aggregate per channel class to average out per-channel noise.
	type agg struct{ model, sim float64 }
	byClass := map[string]*agg{}
	key := func(c topology.Channel) string {
		switch c.Kind {
		case topology.Injection:
			return "inj"
		case topology.Ejection:
			return "ej"
		default:
			return map[int]string{
				topology.RimPlus: "rim+", topology.RimMinus: "rim-",
				topology.CrossL: "crossL", topology.CrossR: "crossR",
			}[c.Class]
		}
	}
	for _, cs := range res.Detail.Channels {
		c := rt.Graph().Channel(cs.ID)
		k := key(c)
		a, ok := byClass[k]
		if !ok {
			a = &agg{}
			byClass[k] = a
		}
		a.model += m.Lambda(cs.ID)
		a.sim += cs.Rate
	}
	for k, a := range byClass {
		if a.model == 0 && a.sim == 0 {
			continue
		}
		if a.model == 0 || a.sim == 0 {
			t.Errorf("class %s: model total %v, sim total %v — one side is zero", k, a.model, a.sim)
			continue
		}
		if e := math.Abs(a.model-a.sim) / a.model; e > 0.03 {
			t.Errorf("class %s: model rate %v vs sim %v (err %.3f > 3%%)", k, a.model, a.sim, e)
		}
	}
}

// TestPerDistanceLatencyMatchesModel checks the model's hop term: the
// simulator's zero-load mean latency at header depth d must be exactly
// d + msgLen, and at light load stay within a cycle of the model's
// per-path prediction.
func TestPerDistanceLatencyMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	spec := traffic.Spec{Rate: 0.0004}
	const msgLen = 24
	w, err := traffic.NewWorkload(rt, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen: msgLen, Warmup: 2000, Measure: 120000, Detail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	for depth, r := range res.Detail.PerDistanceUnicast {
		if r.N() < 30 {
			continue
		}
		zeroLoad := float64(depth + msgLen)
		if r.Mean() < zeroLoad {
			t.Errorf("depth %d: mean %.3f below the zero-load floor %.0f", depth, r.Mean(), zeroLoad)
		}
		if r.Mean() > zeroLoad+1.5 {
			t.Errorf("depth %d: mean %.3f too far above zero-load %.0f for rate %v",
				depth, r.Mean(), zeroLoad, spec.Rate)
		}
		// The minimum observed latency at a depth is exactly the
		// zero-load latency (some message always gets a clear path at
		// this load).
		if r.Min() != zeroLoad {
			t.Errorf("depth %d: min %.3f, want exactly %.0f", depth, r.Min(), zeroLoad)
		}
	}
	if len(res.Detail.PerDistanceUnicast) < 4 {
		t.Fatalf("only %d distinct depths observed", len(res.Detail.PerDistanceUnicast))
	}
}

// TestDrainRemovesCensoring verifies the drain option: with Drain, every
// measured message completes, so Generated == Completed.
func TestDrainRemovesCensoring(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.004}, 9)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen: 32, Warmup: 2000, Measure: 20000, Drain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	if res.Saturated {
		t.Fatal("unexpected saturation")
	}
	if res.Generated != res.Completed {
		t.Fatalf("drain left %d of %d messages incomplete", res.Generated-res.Completed, res.Generated)
	}
	// Drained runs may extend past the window, but not past one extra
	// window length.
	if res.Time > 2000+20000+20000+1 {
		t.Fatalf("drain ran too long: %v", res.Time)
	}
}

// TestInstrumentationSummaryRenders exercises the report path.
func TestInstrumentationSummaryRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, traffic.Spec{Rate: 0.002, MulticastFrac: 0.1, Set: set}, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen: 16, Warmup: 1000, Measure: 20000, Detail: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Run()
	sum := res.Detail.Summary()
	for _, want := range []string{"injection port", "header depth", "percentiles"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	if len(res.Detail.Channels) != rt.Graph().NumChannels() {
		t.Errorf("channel stats for %d channels, want %d",
			len(res.Detail.Channels), rt.Graph().NumChannels())
	}
}
