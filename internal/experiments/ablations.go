package experiments

import (
	"fmt"
	"strings"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// Series is a labelled sweep of one configuration, used by the ablation
// studies to compare architectures under identical workloads.
type Series struct {
	Label  string
	Points []Point
}

// RunSeries evaluates model and simulation on the given router for each
// rate.
func RunSeries(label string, rt routing.Router, set routing.MulticastSet, msgLen int, alpha float64, rates []float64, sim SimConfig) (Series, error) {
	s := Series{Label: label}
	for _, rate := range rates {
		pt, err := RunPoint(rt, set, msgLen, alpha, rate, sim)
		if err != nil {
			return Series{}, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// OnePortAblation compares the all-port Quarc against a one-port variant
// with identical network links under a broadcast-heavy workload — the
// design choice the paper's introduction motivates with Fig. 1 (multi-port
// routers remove the injection serialization of collective operations).
func OnePortAblation(n, msgLen int, alpha float64, rates []float64, sim SimConfig) ([]Series, error) {
	all, err := topology.NewQuarc(n)
	if err != nil {
		return nil, err
	}
	one, err := topology.NewQuarcOnePort(n)
	if err != nil {
		return nil, err
	}
	rtAll := routing.NewQuarcRouter(all)
	rtOne := routing.NewQuarcRouter(one)

	sAll, err := RunSeries("all-port", rtAll, rtAll.BroadcastSet(), msgLen, alpha, rates, sim)
	if err != nil {
		return nil, err
	}
	sOne, err := RunSeries("one-port", rtOne, rtOne.BroadcastSet(), msgLen, alpha, rates, sim)
	if err != nil {
		return nil, err
	}
	return []Series{sAll, sOne}, nil
}

// SpidergonComparison compares the Quarc's true hardware broadcast against
// the Spidergon's broadcast-by-consecutive-unicasts at the same size,
// message length and rates (Sec. 3.2 of the paper: "the latency for
// broadcast/multicast traffic is dramatically reduced").
func SpidergonComparison(n, msgLen int, alpha float64, rates []float64, sim SimConfig) ([]Series, error) {
	q, err := topology.NewQuarc(n)
	if err != nil {
		return nil, err
	}
	sp, err := topology.NewSpidergon(n)
	if err != nil {
		return nil, err
	}
	rtQ := routing.NewQuarcRouter(q)
	rtS := routing.NewSpidergonRouter(sp)

	sQ, err := RunSeries("quarc-broadcast", rtQ, rtQ.BroadcastSet(), msgLen, alpha, rates, sim)
	if err != nil {
		return nil, err
	}
	sS, err := RunSeries("spidergon-bcast-by-unicast", rtS, rtS.BroadcastSet(), msgLen, alpha, rates, sim)
	if err != nil {
		return nil, err
	}
	return []Series{sQ, sS}, nil
}

// MeshExtension checks the model's validity beyond the Quarc — the
// paper's stated future work — by comparing model and simulation on an
// all-port mesh and torus with Hamilton-path multicast.
func MeshExtension(w, h, msgLen int, alpha float64, rates []float64, sim SimConfig) ([]Series, error) {
	var out []Series
	for _, wrap := range []bool{false, true} {
		var m *topology.Mesh
		var err error
		label := fmt.Sprintf("mesh-%dx%d", w, h)
		if wrap {
			m, err = topology.NewTorus(w, h)
			label = fmt.Sprintf("torus-%dx%d", w, h)
		} else {
			m, err = topology.NewMesh(w, h)
		}
		if err != nil {
			return nil, err
		}
		rt := routing.NewMeshRouter(m)
		set, err := rt.HighLowSet([]int{2, 4}, []int{1, 3})
		if err != nil {
			return nil, err
		}
		s, err := RunSeries(label, rt, set, msgLen, alpha, rates, sim)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ServicePoint is one sample of the service-formula ablation: both model
// variants against the same simulation.
type ServicePoint struct {
	Rate         float64
	Eq6Unicast   float64
	TailUnicast  float64
	SimUnicast   float64
	Eq6Saturated bool
}

// ServiceFormulaAblation compares the paper's Eq. 6 service recurrence
// (with its +1 cycle per downstream hop) against the tail-release variant
// that models the physical channel holding time exactly. Eq. 6 is
// conservative: it predicts higher utilization and saturates earlier; the
// ablation quantifies by how much against the simulator.
func ServiceFormulaAblation(n, msgLen int, rates []float64, sim SimConfig) ([]ServicePoint, error) {
	q, err := topology.NewQuarc(n)
	if err != nil {
		return nil, err
	}
	rt := routing.NewQuarcRouter(q)
	var out []ServicePoint
	for _, rate := range rates {
		spec := traffic.Spec{Rate: rate}
		eq6, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: msgLen})
		if err != nil {
			return nil, err
		}
		tail, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: msgLen,
			ServiceFormula: core.TailRelease})
		if err != nil {
			return nil, err
		}
		w, err := traffic.NewWorkload(rt, spec, sim.Seed)
		if err != nil {
			return nil, err
		}
		nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
			MsgLen: msgLen, Warmup: sim.Warmup, Measure: sim.Measure,
		})
		if err != nil {
			return nil, err
		}
		res := nw.Run()
		out = append(out, ServicePoint{
			Rate:         rate,
			Eq6Unicast:   eq6.UnicastLatency,
			TailUnicast:  tail.UnicastLatency,
			SimUnicast:   res.Unicast.Mean(),
			Eq6Saturated: eq6.Saturated,
		})
	}
	return out, nil
}

// ServiceTable renders the service-formula ablation.
func ServiceTable(points []ServicePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "rate", "eq6-uni", "tail-uni", "sim-uni")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10.5g %12.2f %12.2f %12.2f\n",
			p.Rate, p.Eq6Unicast, p.TailUnicast, p.SimUnicast)
	}
	return b.String()
}

// SeriesTable renders one or more series side by side.
func SeriesTable(series []Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s:\n", s.Label)
		fmt.Fprintf(&b, "  %-10s %12s %12s %12s %12s %5s\n",
			"rate", "model-uni", "sim-uni", "model-mc", "sim-mc", "sat")
		for _, p := range s.Points {
			sat := ""
			if p.ModelSaturated {
				sat += "M"
			}
			if p.SimSaturated {
				sat += "S"
			}
			fmt.Fprintf(&b, "  %-10.5g %12.2f %12.2f %12.2f %12.2f %5s\n",
				p.Rate, p.ModelUnicast, p.SimUnicast, p.ModelMulticast, p.SimMulticast, sat)
		}
	}
	return b.String()
}
