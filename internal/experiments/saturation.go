package experiments

import (
	"fmt"
	"strings"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// SatRow is one configuration of the saturation study: the model's
// stability boundary as a function of network size, message length and
// multicast rate. The paper's figures encode this implicitly (larger N, M
// and α saturate at lower generation rates); the study makes it explicit.
type SatRow struct {
	N       int
	MsgLen  int
	Alpha   float64
	SetSize int
	// SatRate is the highest per-node generation rate the model's fixed
	// point tolerates.
	SatRate float64
	// Capacity is SatRate x N x MsgLen: the aggregate flit rate the
	// network sustains, in flits/cycle, a size-independent way to compare
	// configurations.
	Capacity float64
}

// SaturationStudy sweeps the model's saturation rate over the cartesian
// product of the given sizes, message lengths and multicast rates, using a
// localized destination set of the given size on the L rim (clipped to
// the quadrant for small networks).
func SaturationStudy(sizes, msgs []int, alphas []float64, setSize int) ([]SatRow, error) {
	var rows []SatRow
	for _, n := range sizes {
		q, err := topology.NewQuarc(n)
		if err != nil {
			return nil, err
		}
		rt := routing.NewQuarcRouter(q)
		k := setSize
		if quad := q.Quadrant(); k > quad {
			k = quad
		}
		set, err := rt.LocalizedSet(topology.PortL, k)
		if err != nil {
			return nil, err
		}
		for _, msg := range msgs {
			for _, alpha := range alphas {
				sat, err := FindSaturationRate(rt, msg, alpha, set, 1e-3)
				if err != nil {
					return nil, err
				}
				rows = append(rows, SatRow{
					N: n, MsgLen: msg, Alpha: alpha, SetSize: k,
					SatRate:  sat,
					Capacity: sat * float64(n) * float64(msg),
				})
			}
		}
	}
	return rows, nil
}

// SatTable renders the saturation study.
func SatTable(rows []SatRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-5s %-6s %-5s %14s %16s\n",
		"N", "M", "alpha", "dests", "sat-rate", "flits/cycle")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %-5d %-6.2f %-5d %14.6g %16.4f\n",
			r.N, r.MsgLen, r.Alpha, r.SetSize, r.SatRate, r.Capacity)
	}
	return b.String()
}
