package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestWriteJSONRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	p, err := PanelByID("fig7-a")
	if err != nil {
		t.Fatal(err)
	}
	p.Points = 3
	res, err := RunPanel(p, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d results, want 1", len(decoded))
	}
	d := decoded[0]
	if d["panel"] != "fig7-a" || d["figure"] != "7" || d["regime"] != "localized" {
		t.Errorf("metadata wrong: %v", d)
	}
	pts, ok := d["points"].([]any)
	if !ok || len(pts) != 3 {
		t.Fatalf("points wrong: %v", d["points"])
	}
	first := pts[0].(map[string]any)
	if _, ok := first["model_unicast"].(float64); !ok {
		t.Errorf("model_unicast not numeric: %v", first["model_unicast"])
	}
	if _, ok := d["agreement_core"].(map[string]any); !ok {
		t.Errorf("agreement_core missing: %v", d["agreement_core"])
	}
}

func TestWriteJSONEncodesNonFiniteAsNull(t *testing.T) {
	res := Result{
		Panel: Panel{ID: "x", Figure: "6", N: 16, MsgLen: 16, Random: true},
		Points: []Point{{
			Rate:           0.5,
			ModelUnicast:   math.Inf(1),
			ModelMulticast: math.NaN(),
			ModelSaturated: true,
			SimUnicast:     math.NaN(),
			SimMulticast:   math.NaN(),
			SimUnicastCI:   math.NaN(),
			SimMulticastCI: math.NaN(),
			SimSaturated:   true,
		}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Result{res}); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Points []struct {
			ModelUnicast *float64 `json:"model_unicast"`
			SimUnicast   *float64 `json:"sim_unicast"`
		} `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0].Points[0].ModelUnicast != nil || decoded[0].Points[0].SimUnicast != nil {
		t.Error("non-finite values not encoded as null")
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var decoded []any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 0 {
		t.Fatalf("decoded %d, want 0", len(decoded))
	}
}
