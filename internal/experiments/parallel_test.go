package experiments

import (
	"math"
	"testing"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

func TestRunPanelsMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps in -short mode")
	}
	panels := []Panel{}
	for _, id := range []string{"fig6-a", "fig7-a"} {
		p, err := PanelByID(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Points = 3
		panels = append(panels, p)
	}
	cfg := tinySim()

	par, err := RunPanels(panels, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(panels) {
		t.Fatalf("results = %d, want %d", len(par), len(panels))
	}
	for i, p := range panels {
		seq, err := RunPanel(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Panel.ID != p.ID {
			t.Fatalf("result %d is panel %s, want %s (ordering lost)", i, par[i].Panel.ID, p.ID)
		}
		for j := range seq.Points {
			a, b := par[i].Points[j], seq.Points[j]
			if a.SimUnicast != b.SimUnicast || a.ModelUnicast != b.ModelUnicast {
				t.Fatalf("panel %s point %d differs between parallel and sequential: %+v vs %+v",
					p.ID, j, a, b)
			}
		}
	}
}

func TestRunPanelsEmpty(t *testing.T) {
	res, err := RunPanels(nil, tinySim(), 2)
	if err != nil || res != nil {
		t.Fatalf("empty input: res=%v err=%v", res, err)
	}
}

func TestRunPanelsPropagatesErrors(t *testing.T) {
	bad := Panel{ID: "bad", N: 7, MsgLen: 16, Alpha: 0, Points: 2} // invalid N
	if _, err := RunPanels([]Panel{bad}, tinySim(), 2); err == nil {
		t.Fatal("invalid panel did not error")
	}
}

func TestRunPointsParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps in -short mode")
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, 3)
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.003, 0.004}
	cfg := tinySim()
	par, err := RunPointsParallel(rt, set, 32, 0.05, rates, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		seq, err := RunPoint(rt, set, 32, 0.05, rate, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if par[i].SimUnicast != seq.SimUnicast || par[i].SimMulticast != seq.SimMulticast {
			t.Fatalf("rate %v: parallel %+v != sequential %+v", rate, par[i], seq)
		}
	}
}

func TestSaturationStudyMonotone(t *testing.T) {
	rows, err := SaturationStudy([]int{16, 32, 64}, []int{16, 32}, []float64{0.0, 0.05}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2*2 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byKey := map[[3]any]float64{}
	for _, r := range rows {
		if !(r.SatRate > 0) || math.IsInf(r.SatRate, 0) {
			t.Fatalf("bad saturation rate %v for %+v", r.SatRate, r)
		}
		byKey[[3]any{r.N, r.MsgLen, r.Alpha}] = r.SatRate
	}
	// Saturation rate decreases with network size...
	if !(byKey[[3]any{16, 16, 0.0}] > byKey[[3]any{32, 16, 0.0}]) ||
		!(byKey[[3]any{32, 16, 0.0}] > byKey[[3]any{64, 16, 0.0}]) {
		t.Error("saturation rate not decreasing in N")
	}
	// ... with message length ...
	if !(byKey[[3]any{16, 16, 0.0}] > byKey[[3]any{16, 32, 0.0}]) {
		t.Error("saturation rate not decreasing in message length")
	}
	// ... and with multicast share.
	if !(byKey[[3]any{16, 16, 0.0}] > byKey[[3]any{16, 16, 0.05}]) {
		t.Error("saturation rate not decreasing in alpha")
	}
	if out := SatTable(rows); len(out) == 0 {
		t.Error("empty table")
	}
}
