package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinySim keeps test runtime low while still giving stable means.
func tinySim() SimConfig { return SimConfig{Warmup: 3000, Measure: 25000, Seed: 7} }

func TestPanelDefinitionsCoverPaperGrid(t *testing.T) {
	panels := AllPanels()
	if len(panels) != 8 {
		t.Fatalf("panels = %d, want 8", len(panels))
	}
	sizes := map[int]bool{}
	msgs := map[int]bool{}
	alphas := map[float64]bool{}
	for _, p := range panels {
		sizes[p.N] = true
		msgs[p.MsgLen] = true
		alphas[p.Alpha] = true
		if p.Figure != "6" && p.Figure != "7" {
			t.Errorf("panel %s has figure %q", p.ID, p.Figure)
		}
		if p.Random != (p.Figure == "6") {
			t.Errorf("panel %s: regime/figure mismatch", p.ID)
		}
	}
	for _, n := range []int{16, 32, 64, 128} {
		if !sizes[n] {
			t.Errorf("network size %d not covered", n)
		}
	}
	for _, m := range []int{16, 32, 48, 64} {
		if !msgs[m] {
			t.Errorf("message length %d not covered", m)
		}
	}
	for _, a := range []float64{0.03, 0.05, 0.10} {
		if !alphas[a] {
			t.Errorf("multicast rate %v not covered", a)
		}
	}
}

func TestPanelByID(t *testing.T) {
	p, err := PanelByID("fig7-c")
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 64 || p.Figure != "7" {
		t.Fatalf("wrong panel: %+v", p)
	}
	if _, err := PanelByID("fig9-z"); err == nil {
		t.Fatal("unknown panel accepted")
	}
}

func TestFindSaturationRate(t *testing.T) {
	p, _ := PanelByID("fig6-a")
	rt, err := p.Router()
	if err != nil {
		t.Fatal(err)
	}
	set, err := p.DestinationSet(rt)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := FindSaturationRate(rt, p.MsgLen, p.Alpha, set, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !(sat > 0 && sat < 1.0/float64(p.MsgLen)) {
		t.Fatalf("saturation rate %v out of plausible range", sat)
	}
}

// The headline reproduction check: on a small panel, the analytical model
// must track the simulator within 10% (mean over the sweep's stable
// region) for both unicast and multicast latency. The paper reports "an
// excellent approximation ... in a wide range of configurations".
func TestModelTracksSimulatorFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	p, _ := PanelByID("fig6-a")
	p.Points = 5
	res, err := RunPanel(p, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	a := res.AgreementCore()
	if a.Compared < 3 {
		t.Fatalf("only %d comparable points", a.Compared)
	}
	if a.MeanUnicastErr > 0.10 {
		t.Errorf("mean unicast error %.3f > 10%%", a.MeanUnicastErr)
	}
	if a.MeanMulticastErr > 0.12 {
		t.Errorf("mean multicast error %.3f > 12%%", a.MeanMulticastErr)
	}
}

func TestModelTracksSimulatorFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	p, _ := PanelByID("fig7-a")
	p.Points = 5
	res, err := RunPanel(p, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	a := res.AgreementCore()
	if a.Compared < 3 {
		t.Fatalf("only %d comparable points", a.Compared)
	}
	if a.MeanUnicastErr > 0.10 || a.MeanMulticastErr > 0.12 {
		t.Errorf("model does not track simulator: %+v", a)
	}
}

func TestRunPanelOutputsWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	p, _ := PanelByID("fig7-a")
	p.Points = 3
	res, err := RunPanel(p, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for i, pt := range res.Points {
		if i > 0 && pt.Rate <= res.Points[i-1].Rate {
			t.Error("rates not increasing")
		}
		if !pt.ModelSaturated && (pt.ModelUnicast <= 0 || math.IsNaN(pt.ModelUnicast)) {
			t.Errorf("point %d has bad model latency %v", i, pt.ModelUnicast)
		}
		if !pt.SimSaturated && pt.SimMessages <= 0 {
			t.Errorf("point %d has no simulated messages", i)
		}
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("CSV has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "panel,n,msglen") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}

	plot := AsciiPlot(res, 60, 12)
	if !strings.Contains(plot, "fig7-a") || !strings.Contains(plot, "latency") {
		t.Errorf("plot missing labels:\n%s", plot)
	}

	table := SummaryTable([]Result{res})
	if !strings.Contains(table, "fig7-a") {
		t.Errorf("summary missing panel: %s", table)
	}
}

func TestAsciiPlotHandlesNoData(t *testing.T) {
	res := Result{Panel: Panel{ID: "x"}, Points: []Point{{
		Rate: 1, ModelUnicast: math.Inf(1), ModelMulticast: math.Inf(1),
		SimUnicast: math.NaN(), SimMulticast: math.NaN(),
	}}}
	out := AsciiPlot(res, 40, 10)
	if !strings.Contains(out, "no finite data") {
		t.Errorf("degenerate plot output: %q", out)
	}
}

func TestOnePortAblationShowsInjectionSerialization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	series, err := OnePortAblation(16, 32, 0.05, []float64{0.002}, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	all := series[0].Points[0]
	one := series[1].Points[0]
	// The all-port router's four parallel broadcast branches must beat the
	// one-port router's serialized injection by a wide margin (sim side),
	// and the extended model must predict both within 25%.
	if !(one.SimMulticast > 2*all.SimMulticast) {
		t.Errorf("one-port broadcast %v not clearly slower than all-port %v",
			one.SimMulticast, all.SimMulticast)
	}
	for _, pt := range []Point{all, one} {
		if e := math.Abs(pt.ModelMulticast-pt.SimMulticast) / pt.SimMulticast; e > 0.25 {
			t.Errorf("model multicast %v vs sim %v: err %.2f > 25%%",
				pt.ModelMulticast, pt.SimMulticast, e)
		}
	}
}

func TestSpidergonComparisonShowsTrueBroadcastWin(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	series, err := SpidergonComparison(16, 32, 0.05, []float64{0.0005}, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	q := series[0].Points[0]
	s := series[1].Points[0]
	// Paper Sec. 3.2: the Quarc's true broadcast dramatically beats the
	// Spidergon's N-1 consecutive unicasts.
	if !(s.SimMulticast > 5*q.SimMulticast) {
		t.Errorf("spidergon broadcast %v not dramatically slower than quarc %v",
			s.SimMulticast, q.SimMulticast)
	}
}

func TestMeshExtensionModelValidity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	series, err := MeshExtension(4, 4, 16, 0.05, []float64{0.004}, tinySim())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		pt := s.Points[0]
		if pt.ModelSaturated || pt.SimSaturated {
			t.Fatalf("%s unexpectedly saturated", s.Label)
		}
		for _, pair := range [][2]float64{
			{pt.ModelUnicast, pt.SimUnicast},
			{pt.ModelMulticast, pt.SimMulticast},
		} {
			if e := math.Abs(pair[0]-pair[1]) / pair[1]; e > 0.10 {
				t.Errorf("%s: model %v vs sim %v (err %.3f > 10%%)", s.Label, pair[0], pair[1], e)
			}
		}
	}
	if out := SeriesTable(series); !strings.Contains(out, "mesh-4x4") || !strings.Contains(out, "torus-4x4") {
		t.Errorf("series table incomplete:\n%s", out)
	}
}
