// Package experiments regenerates the paper's evaluation artifacts:
// every panel of Figures 6 and 7 (model-vs-simulation latency curves for
// the Quarc NoC) plus the ablation studies DESIGN.md calls out.
//
// A Panel fixes a network size, message length, multicast fraction and
// destination regime; RunPanel sweeps the message generation rate across
// the configuration's stable region and reports, for every rate, the
// analytical prediction and the simulation measurement for both unicast
// and multicast traffic.
package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/stats"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// Panel is one figure panel: a single latency-vs-generation-rate graph.
type Panel struct {
	// ID names the panel, e.g. "fig6-a".
	ID string
	// Figure is "6" (random destinations) or "7" (localized destinations).
	Figure string
	// N is the Quarc network size.
	N int
	// MsgLen is the message length in flits (the paper's M).
	MsgLen int
	// Alpha is the multicast fraction of traffic (the paper's α).
	Alpha float64
	// Random selects Fig. 6-style random destination sets; otherwise the
	// set is localized on one rim (Fig. 7).
	Random bool
	// SetSize is the number of multicast destinations.
	SetSize int
	// LocalPort is the rim used for localized sets.
	LocalPort int
	// SetSeed seeds the random destination selection ("selected randomly
	// by the authors at the beginning of the simulation").
	SetSeed uint64
	// Points is the number of rate samples across the stable region
	// (default 8).
	Points int
}

// SimConfig bundles the simulation effort knobs so tests and benchmarks
// can trade accuracy for time.
type SimConfig struct {
	Warmup  float64
	Measure float64
	Seed    uint64
}

// DefaultSimConfig is used by the figure CLI: long enough for tight
// confidence intervals on every panel.
func DefaultSimConfig() SimConfig {
	return SimConfig{Warmup: 20000, Measure: 200000, Seed: 0xC0FFEE}
}

// QuickSimConfig is a cheaper setting for tests and benchmarks.
func QuickSimConfig() SimConfig {
	return SimConfig{Warmup: 5000, Measure: 40000, Seed: 0xC0FFEE}
}

// Point is one rate sample of a panel.
type Point struct {
	Rate           float64
	ModelUnicast   float64
	ModelMulticast float64
	ModelSaturated bool
	ModelMaxRho    float64
	SimUnicast     float64
	SimMulticast   float64
	SimUnicastCI   float64 // 95% batch-means half-width
	SimMulticastCI float64
	SimSaturated   bool
	SimMessages    int64
}

// Result is a completed panel.
type Result struct {
	Panel   Panel
	Set     routing.MulticastSet
	SatRate float64 // model saturation rate the sweep was scaled to
	Points  []Point
}

// Router builds the panel's topology and router.
func (p Panel) Router() (*routing.QuarcRouter, error) {
	q, err := topology.NewQuarc(p.N)
	if err != nil {
		return nil, err
	}
	return routing.NewQuarcRouter(q), nil
}

// DestinationSet materializes the panel's multicast destination set.
func (p Panel) DestinationSet(rt *routing.QuarcRouter) (routing.MulticastSet, error) {
	if p.Random {
		return rt.RandomSet(rand.New(rand.NewPCG(p.SetSeed, 0x5e7)), p.SetSize)
	}
	return rt.LocalizedSet(p.LocalPort, p.SetSize)
}

// FindSaturationRate bisects for the highest generation rate at which the
// analytical model is stable, within relative tolerance tol. The sweep
// grids of all panels are scaled to this rate so every figure covers its
// configuration's interesting region without hand tuning.
func FindSaturationRate(rt routing.Router, msgLen int, alpha float64, set routing.MulticastSet, tol float64) (float64, error) {
	stable := func(rate float64) (bool, error) {
		pred, err := core.Predict(core.Input{
			Router: rt,
			Spec:   traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set},
			MsgLen: msgLen,
		})
		if err != nil {
			return false, err
		}
		return !pred.Saturated, nil
	}
	lo := 0.0
	hi := 1.0 / float64(msgLen) // one message per drain time is far beyond capacity
	for hi-lo > tol*hi {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, fmt.Errorf("experiments: no stable rate found below %v", hi)
	}
	return lo, nil
}

// RunPanel evaluates the analytical model and runs the simulator for each
// rate in the panel's sweep.
func RunPanel(p Panel, sim SimConfig) (Result, error) {
	rt, err := p.Router()
	if err != nil {
		return Result{}, err
	}
	set, err := p.DestinationSet(rt)
	if err != nil {
		return Result{}, err
	}
	sat, err := FindSaturationRate(rt, p.MsgLen, p.Alpha, set, 1e-3)
	if err != nil {
		return Result{}, err
	}
	points := p.Points
	if points <= 0 {
		points = 8
	}
	res := Result{Panel: p, Set: set, SatRate: sat}
	for i := 1; i <= points; i++ {
		// Sample 10%..95% of the model's stable region.
		frac := 0.10 + (0.95-0.10)*float64(i-1)/float64(points-1)
		rate := sat * frac
		pt, err := RunPoint(rt, set, p.MsgLen, p.Alpha, rate, sim)
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunPoint evaluates model and simulation at a single generation rate.
func RunPoint(rt routing.Router, set routing.MulticastSet, msgLen int, alpha, rate float64, sim SimConfig) (Point, error) {
	spec := traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set}
	pred, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: msgLen})
	if err != nil {
		return Point{}, err
	}
	w, err := traffic.NewWorkload(rt, spec, sim.Seed)
	if err != nil {
		return Point{}, err
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{
		MsgLen:  msgLen,
		Warmup:  sim.Warmup,
		Measure: sim.Measure,
	})
	if err != nil {
		return Point{}, err
	}
	r := nw.Run()
	return Point{
		Rate:           rate,
		ModelUnicast:   pred.UnicastLatency,
		ModelMulticast: pred.MulticastLatency,
		ModelSaturated: pred.Saturated,
		ModelMaxRho:    pred.MaxRho,
		SimUnicast:     r.Unicast.Mean(),
		SimMulticast:   r.Multicast.Mean(),
		SimUnicastCI:   r.UnicastBM.HalfWidth(1.96),
		SimMulticastCI: r.MulticastBM.HalfWidth(1.96),
		SimSaturated:   r.Saturated,
		SimMessages:    r.Completed,
	}, nil
}

// Agreement summarizes model-vs-simulation error over the points where
// both sides are stable.
type Agreement struct {
	// MeanUnicastErr and MeanMulticastErr are mean relative errors of the
	// model against the simulation.
	MeanUnicastErr   float64
	MeanMulticastErr float64
	MaxUnicastErr    float64
	MaxMulticastErr  float64
	// Compared is the number of points entering the comparison.
	Compared int
}

// Agreement computes the error summary over every stable point of the
// sweep, including the knee region just below the model's saturation rate
// where this model family overshoots (visible in the paper's own figures
// as the analytical curve bending up before the simulation's).
func (r Result) Agreement() Agreement { return r.agreement(math.Inf(1)) }

// AgreementCore restricts the comparison to rates at most 70% of the
// model's saturation rate — the low-to-medium-load region over which the
// paper claims (and this reproduction confirms) an excellent
// approximation. Above that the service-time fixed point approaches its
// divergence and over-predicts, exactly as the analytical curves in the
// paper's own figures bend up before the simulation's.
func (r Result) AgreementCore() Agreement { return r.agreement(0.7 * r.SatRate) }

func (r Result) agreement(rateCap float64) Agreement {
	var a Agreement
	var sumU, sumM float64
	for _, pt := range r.Points {
		if pt.ModelSaturated || pt.SimSaturated || pt.Rate > rateCap ||
			math.IsNaN(pt.SimUnicast) || math.IsNaN(pt.SimMulticast) {
			continue
		}
		eu := stats.RelErr(pt.ModelUnicast, pt.SimUnicast)
		em := stats.RelErr(pt.ModelMulticast, pt.SimMulticast)
		sumU += eu
		sumM += em
		if eu > a.MaxUnicastErr {
			a.MaxUnicastErr = eu
		}
		if em > a.MaxMulticastErr {
			a.MaxMulticastErr = em
		}
		a.Compared++
	}
	if a.Compared > 0 {
		a.MeanUnicastErr = sumU / float64(a.Compared)
		a.MeanMulticastErr = sumM / float64(a.Compared)
	}
	return a
}

// Fig6Panels returns the representative configurations for Figure 6
// (random multicast destinations), covering every network size, the
// message-length range and the multicast rates the paper's evaluation
// names (N ∈ 16..128, M ∈ 16..64 flits, α ∈ 3..10%).
func Fig6Panels() []Panel {
	return []Panel{
		{ID: "fig6-a", Figure: "6", N: 16, MsgLen: 32, Alpha: 0.05, Random: true, SetSize: 5, SetSeed: 61},
		{ID: "fig6-b", Figure: "6", N: 32, MsgLen: 16, Alpha: 0.10, Random: true, SetSize: 6, SetSeed: 62},
		{ID: "fig6-c", Figure: "6", N: 64, MsgLen: 48, Alpha: 0.05, Random: true, SetSize: 8, SetSeed: 63},
		{ID: "fig6-d", Figure: "6", N: 128, MsgLen: 64, Alpha: 0.03, Random: true, SetSize: 10, SetSeed: 64},
	}
}

// Fig7Panels returns the configurations for Figure 7 (localized
// destinations: all targets on the same rim).
func Fig7Panels() []Panel {
	return []Panel{
		{ID: "fig7-a", Figure: "7", N: 16, MsgLen: 32, Alpha: 0.05, SetSize: 3, LocalPort: topology.PortL},
		{ID: "fig7-b", Figure: "7", N: 32, MsgLen: 64, Alpha: 0.03, SetSize: 5, LocalPort: topology.PortR},
		{ID: "fig7-c", Figure: "7", N: 64, MsgLen: 16, Alpha: 0.10, SetSize: 6, LocalPort: topology.PortCL},
		{ID: "fig7-d", Figure: "7", N: 128, MsgLen: 32, Alpha: 0.05, SetSize: 8, LocalPort: topology.PortL},
	}
}

// AllPanels returns every figure panel in order.
func AllPanels() []Panel {
	return append(Fig6Panels(), Fig7Panels()...)
}

// PanelByID finds a panel by its ID.
func PanelByID(id string) (Panel, error) {
	for _, p := range AllPanels() {
		if p.ID == id {
			return p, nil
		}
	}
	return Panel{}, fmt.Errorf("experiments: unknown panel %q", id)
}
