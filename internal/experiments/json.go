package experiments

import (
	"encoding/json"
	"io"
	"math"
)

// jsonPoint mirrors Point with JSON-safe numbers (NaN/Inf encoded as
// null, since JSON has no representation for them).
type jsonPoint struct {
	Rate           float64  `json:"rate"`
	ModelUnicast   *float64 `json:"model_unicast"`
	ModelMulticast *float64 `json:"model_multicast"`
	ModelSaturated bool     `json:"model_saturated"`
	ModelMaxRho    float64  `json:"model_max_rho"`
	SimUnicast     *float64 `json:"sim_unicast"`
	SimMulticast   *float64 `json:"sim_multicast"`
	SimUnicastCI   *float64 `json:"sim_unicast_ci95"`
	SimMulticastCI *float64 `json:"sim_multicast_ci95"`
	SimSaturated   bool     `json:"sim_saturated"`
	SimMessages    int64    `json:"sim_messages"`
}

type jsonResult struct {
	Panel   string      `json:"panel"`
	Figure  string      `json:"figure"`
	N       int         `json:"n"`
	MsgLen  int         `json:"msglen"`
	Alpha   float64     `json:"alpha"`
	Regime  string      `json:"regime"`
	Set     string      `json:"multicast_set"`
	SatRate float64     `json:"model_saturation_rate"`
	Points  []jsonPoint `json:"points"`
	Core    Agreement   `json:"agreement_core"`
	Full    Agreement   `json:"agreement_full"`
}

func jsonNum(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

// WriteJSON emits one or more panel results as a JSON array, the
// machine-readable companion of WriteCSV (NaN and Inf become null).
func WriteJSON(w io.Writer, results []Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		regime := "localized"
		if r.Panel.Random {
			regime = "random"
		}
		jr := jsonResult{
			Panel:   r.Panel.ID,
			Figure:  r.Panel.Figure,
			N:       r.Panel.N,
			MsgLen:  r.Panel.MsgLen,
			Alpha:   r.Panel.Alpha,
			Regime:  regime,
			Set:     r.Set.String(),
			SatRate: r.SatRate,
			Core:    r.AgreementCore(),
			Full:    r.Agreement(),
		}
		for _, pt := range r.Points {
			jr.Points = append(jr.Points, jsonPoint{
				Rate:           pt.Rate,
				ModelUnicast:   jsonNum(pt.ModelUnicast),
				ModelMulticast: jsonNum(pt.ModelMulticast),
				ModelSaturated: pt.ModelSaturated,
				ModelMaxRho:    pt.ModelMaxRho,
				SimUnicast:     jsonNum(pt.SimUnicast),
				SimMulticast:   jsonNum(pt.SimMulticast),
				SimUnicastCI:   jsonNum(pt.SimUnicastCI),
				SimMulticastCI: jsonNum(pt.SimMulticastCI),
				SimSaturated:   pt.SimSaturated,
				SimMessages:    pt.SimMessages,
			})
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
