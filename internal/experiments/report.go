package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits a panel result as CSV with one row per rate sample. The
// column set matches the four curves of a paper figure panel plus the
// confidence intervals and saturation flags.
func WriteCSV(w io.Writer, r Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"panel", "n", "msglen", "alpha", "regime", "rate",
		"model_unicast", "model_multicast", "model_saturated", "model_max_rho",
		"sim_unicast", "sim_multicast", "sim_unicast_ci95", "sim_multicast_ci95",
		"sim_saturated", "sim_messages",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	regime := "localized"
	if r.Panel.Random {
		regime = "random"
	}
	f := func(x float64) string {
		if math.IsNaN(x) {
			return "nan"
		}
		if math.IsInf(x, 1) {
			return "inf"
		}
		return strconv.FormatFloat(x, 'g', 8, 64)
	}
	for _, pt := range r.Points {
		row := []string{
			r.Panel.ID,
			strconv.Itoa(r.Panel.N),
			strconv.Itoa(r.Panel.MsgLen),
			f(r.Panel.Alpha),
			regime,
			f(pt.Rate),
			f(pt.ModelUnicast), f(pt.ModelMulticast),
			strconv.FormatBool(pt.ModelSaturated), f(pt.ModelMaxRho),
			f(pt.SimUnicast), f(pt.SimMulticast),
			f(pt.SimUnicastCI), f(pt.SimMulticastCI),
			strconv.FormatBool(pt.SimSaturated),
			strconv.FormatInt(pt.SimMessages, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// AsciiPlot renders the four curves of a panel as a fixed-size ASCII
// scatter plot, the terminal stand-in for the paper's figure panel.
// Legend: u = simulated unicast, U = model unicast, m = simulated
// multicast, M = model multicast ('#' marks overstrikes).
func AsciiPlot(r Result, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 18
	}
	type series struct {
		mark byte
		get  func(Point) float64
	}
	curves := []series{
		{'u', func(p Point) float64 { return p.SimUnicast }},
		{'U', func(p Point) float64 { return p.ModelUnicast }},
		{'m', func(p Point) float64 { return p.SimMulticast }},
		{'M', func(p Point) float64 { return p.ModelMulticast }},
	}
	// Axis ranges over finite values only.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, pt := range r.Points {
		if pt.Rate < minX {
			minX = pt.Rate
		}
		if pt.Rate > maxX {
			maxX = pt.Rate
		}
		for _, c := range curves {
			v := c.get(pt)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < minY {
				minY = v
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if math.IsInf(minY, 1) {
		return fmt.Sprintf("%s: no finite data\n", r.Panel.ID)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, mark byte) {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		if grid[row][col] != ' ' && grid[row][col] != mark {
			grid[row][col] = '#'
		} else {
			grid[row][col] = mark
		}
	}
	for _, pt := range r.Points {
		for _, c := range curves {
			v := c.get(pt)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			put(pt.Rate, v, c.mark)
		}
	}
	var b strings.Builder
	regime := "localized"
	if r.Panel.Random {
		regime = "random"
	}
	fmt.Fprintf(&b, "%s: N=%d M=%d alpha=%.0f%% (%s destinations)   [u/U sim/model unicast, m/M sim/model multicast]\n",
		r.Panel.ID, r.Panel.N, r.Panel.MsgLen, r.Panel.Alpha*100, regime)
	fmt.Fprintf(&b, "latency (cycles), %.4g .. %.4g\n", minY, maxY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " rate %.3g .. %.3g msg/cycle/node (model saturation %.3g)\n", minX, maxX, r.SatRate)
	return b.String()
}

// SummaryTable renders the model-vs-simulation agreement of several panel
// results as a fixed-width table. Two regions are reported: "core" covers
// the points with peak channel utilization at most 0.5 (the region the
// paper's "excellent approximation" claim addresses), "full" additionally
// includes the knee just below the model's saturation rate, where this
// model family over-predicts (visible in the paper's own figures).
func SummaryTable(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-5s %-4s %-5s %-7s %-6s %-10s %-10s %-6s %-10s %-10s\n",
		"panel", "N", "M", "alpha", "regime", "core#", "core-uni", "core-mc",
		"full#", "full-uni", "full-mc")
	for _, r := range results {
		core := r.AgreementCore()
		full := r.Agreement()
		regime := "local"
		if r.Panel.Random {
			regime = "random"
		}
		fmt.Fprintf(&b, "%-8s %-5d %-4d %-5.2f %-7s %-6d %-10.4f %-10.4f %-6d %-10.4f %-10.4f\n",
			r.Panel.ID, r.Panel.N, r.Panel.MsgLen, r.Panel.Alpha, regime,
			core.Compared, core.MeanUnicastErr, core.MeanMulticastErr,
			full.Compared, full.MeanUnicastErr, full.MeanMulticastErr)
	}
	return b.String()
}
