// Package lint implements quarclint, the repo's own static-analysis
// pass. It machine-checks the invariants the simulator's guarantees rest
// on — bitwise-deterministic replications, record/replay fidelity,
// content-addressed cache hits that are pure memoization, 0-allocs/op
// hot paths — at the source level, so a regression is a build failure
// rather than a reviewer catch or a flaky golden diff.
//
// Eight checkers run over every loaded package. Four are syntactic
// passes:
//
//   - determinism: packages on the simulation result path may not import
//     "time" or "math/rand", may not call package-level math/rand/v2
//     functions (seeded PCG instances only), may not range over maps
//     without sorting, spawn goroutines, or select over multiple ready
//     channels.
//   - hotpath: functions marked //quarc:hotpath — and the pinned
//     0-allocs/op bench list must be so marked — may not call fmt,
//     build heap-escaping or slice/map composite literals, box
//     non-pointer values into interfaces, or capture closures.
//   - errdiscipline: sentinel errors are compared with errors.Is, never
//     ==/!=, and fmt.Errorf wraps error operands with %w, never %v.
//   - registryhygiene: registry names are lowercase, registration
//     happens in init or package-level var declarations, and every
//     map-derived enumeration is sorted before it is returned.
//
// Four more — the quarcflow layer — run a forward may-analysis over
// per-function control-flow graphs (cfg.go, dataflow.go):
//
//   - poollifetime: a value that flowed into a free-list put (the
//     wormhole worm/message pools, sync.Pool.Put) may not be read,
//     written through, or scheduled afterward in the same function.
//   - rngprovenance: every generator a determinism package seeds must
//     take its seed from data flowing out of a function parameter —
//     never a package-level var or a bare literal.
//   - floatorder: no float accumulation inside a loop ranging a map or
//     a slice collected from a map without sorting.
//   - sharedstate: inventories every package-level var and every struct
//     field written at runtime in the configured packages into the
//     lint/sharedstate.json artifact; a runtime-mutated global without
//     a //quarcflow:shared justification is a finding.
//
// A finding can be silenced case by case with a trailing
// "//quarclint:ignore <checker> <reason>" comment on the offending line;
// the reason is mandatory so the waiver documents itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, addressed by file position. File is
// relative to the Config.BaseDir the run was rooted at, so output is
// stable across machines.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Checker, d.Message)
}

// Config selects which packages each checker applies to. The zero value
// runs the universally applicable checkers (errdiscipline,
// registryhygiene) everywhere and the scoped ones nowhere.
type Config struct {
	// BaseDir is the directory diagnostics' file paths are made relative
	// to (typically the module root).
	BaseDir string
	// DeterminismPackages lists the import paths whose source must be
	// free of nondeterminism: everything reachable from a simulation
	// Result.
	DeterminismPackages []string
	// Hotpaths maps a package import path to the functions the
	// 0-allocs/op benchmarks pin ("Engine.run", "geometric"): each must
	// carry the //quarc:hotpath directive, and no function outside the
	// list may carry it — the directive placement is itself checked.
	Hotpaths map[string][]string
	// SharedStatePackages lists the import paths the sharedstate audit
	// inventories — the packages the future parallel engine would shard
	// across cores. Defaults to the determinism closure.
	SharedStatePackages []string
	// Checkers restricts the run to the named checkers; empty means all.
	// Names must come from Checkers() — the caller validates.
	Checkers []string
}

// DefaultConfig returns the repository's enforced invariant surface: the
// determinism closure named in ISSUE 6 and the hot-path list pinned by
// TestSteadyStateEventLoopAllocFree, TestArrivalAndDestAllocFree and the
// noc/bench 0-allocs/op gates.
func DefaultConfig() Config {
	det := []string{
		"quarc/internal/routing",
		"quarc/internal/sim",
		"quarc/internal/stats",
		"quarc/internal/traffic",
		"quarc/internal/wormhole",
	}
	return Config{
		DeterminismPackages: det,
		Hotpaths:            defaultHotpaths(),
		SharedStatePackages: det,
	}
}

func (c *Config) isDeterminism(path string) bool {
	for _, p := range c.DeterminismPackages {
		if path == p {
			return true
		}
	}
	return false
}

// checker is one analysis pass. Checkers are pure functions of a loaded
// package; they report findings through the context and never mutate it.
type checker struct {
	name string
	doc  string
	run  func(cx *context)
}

// checkers holds every pass, sorted by name — the registry the linter
// itself is subject to.
var checkers = []checker{
	{"determinism", "no wall clocks, global RNGs, map-order or goroutine nondeterminism on the result path", checkDeterminism},
	{"errdiscipline", "sentinel errors compared with errors.Is and wrapped with %w", checkErrDiscipline},
	{"floatorder", "no float accumulation in map-ordered loops (directly or via unsorted collected slices)", checkFloatOrder},
	{"hotpath", "//quarc:hotpath functions stay fmt-free, closure-free and allocation-free", checkHotpath},
	{"poollifetime", "values returned to a free list are dead: no later read, write or schedule", checkPoolLifetime},
	{"registryhygiene", "lowercase registry names, init-time registration, sorted enumerations", checkRegistryHygiene},
	{"rngprovenance", "every generator seed on the result path data-flows from the replication seed parameter", checkRNGProvenance},
	{"sharedstate", "inventory of runtime-mutated package state; undocumented globals are findings", checkSharedState},
}

// Checkers returns the checker names, sorted.
func Checkers() []string {
	names := make([]string, 0, len(checkers))
	for _, c := range checkers {
		names = append(names, c.name)
	}
	sort.Strings(names)
	return names
}

// context carries one (package, checker) pass's state.
type context struct {
	pkg    *Package
	cfg    *Config
	name   string
	out    *[]Diagnostic
	shared *SharedStateReport
}

func (cx *context) reportf(pos token.Pos, format string, args ...any) {
	p := cx.pkg.Fset.Position(pos)
	file := p.Filename
	if cx.cfg.BaseDir != "" {
		if rel, err := filepath.Rel(cx.cfg.BaseDir, file); err == nil {
			file = filepath.ToSlash(rel)
		}
	}
	*cx.out = append(*cx.out, Diagnostic{
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Checker: cx.name,
		Message: fmt.Sprintf(format, args...),
	})
}

// typeOf resolves an expression's type, or nil.
func (cx *context) typeOf(e ast.Expr) types.Type { return cx.pkg.TypesInfo.TypeOf(e) }

// CheckerTiming records one checker's cumulative wall time across all
// packages of a run.
type CheckerTiming struct {
	Checker string  `json:"checker"`
	Millis  float64 `json:"millis"`
}

// Report is the full result of one linter run.
type Report struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// SharedState is the mutable-state inventory the sharedstate checker
	// accumulated (empty unless that checker ran over in-scope packages).
	SharedState *SharedStateReport
	// Timing lists per-checker wall time in registry order.
	Timing []CheckerTiming
}

// Run executes every checker over every package and returns the
// surviving findings sorted by position. Findings on a line carrying a
// matching //quarclint:ignore directive are dropped.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	return RunReport(pkgs, cfg).Diagnostics
}

// RunReport executes the configured checkers (all of them when
// cfg.Checkers is empty) over every package and returns the diagnostics
// together with the sharedstate inventory and per-checker timing.
func RunReport(pkgs []*Package, cfg Config) Report {
	selected := checkers
	if len(cfg.Checkers) > 0 {
		want := make(map[string]bool, len(cfg.Checkers))
		for _, name := range cfg.Checkers {
			want[name] = true
		}
		selected = nil
		for _, c := range checkers {
			if want[c.name] {
				selected = append(selected, c)
			}
		}
	}
	var diags []Diagnostic
	shared := &SharedStateReport{Globals: []SharedGlobal{}, Fields: []SharedField{}}
	elapsed := make(map[string]time.Duration, len(selected))
	for _, pkg := range pkgs {
		for _, c := range selected {
			start := time.Now()
			c.run(&context{pkg: pkg, cfg: &cfg, name: c.name, out: &diags, shared: shared})
			elapsed[c.name] += time.Since(start)
		}
		diags = filterIgnored(pkg, &cfg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Checker < b.Checker
	})
	sortSharedState(shared)
	timing := make([]CheckerTiming, 0, len(selected))
	for _, c := range selected {
		timing = append(timing, CheckerTiming{Checker: c.name, Millis: float64(elapsed[c.name]) / float64(time.Millisecond)})
	}
	return Report{Diagnostics: diags, SharedState: shared, Timing: timing}
}

// sortSharedState puts the inventory in its canonical order: globals by
// (package, name), fields by (package, type, field). Per-package
// emission already sorts within a package; this fixes the cross-package
// order regardless of load order.
func sortSharedState(r *SharedStateReport) {
	sort.Slice(r.Globals, func(i, j int) bool {
		a, b := r.Globals[i], r.Globals[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	sort.Slice(r.Fields, func(i, j int) bool {
		a, b := r.Fields[i], r.Fields[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Field < b.Field
	})
}

// hotpathDirective marks a function as a pinned allocation-free hot
// path; ignoreDirective waives one checker on one line.
const (
	hotpathDirective = "//quarc:hotpath"
	ignoreDirective  = "//quarclint:ignore"
)

// hasHotpathDirective reports whether the function's doc comment carries
// the //quarc:hotpath directive.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// ignoreSpec is one parsed //quarclint:ignore directive.
type ignoreSpec struct {
	checker string
	reason  string
}

// parseIgnore parses "//quarclint:ignore <checker> <reason>"; ok is
// false for comments that are not ignore directives at all.
func parseIgnore(text string) (spec ignoreSpec, ok bool, err error) {
	if !strings.HasPrefix(text, ignoreDirective) {
		return ignoreSpec{}, false, nil
	}
	rest := strings.TrimPrefix(text, ignoreDirective)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return ignoreSpec{}, true, fmt.Errorf("malformed %s: need a checker name and a reason", ignoreDirective)
	}
	name := fields[0]
	known := false
	for _, c := range checkers {
		if c.name == name {
			known = true
			break
		}
	}
	if !known {
		return ignoreSpec{}, true, fmt.Errorf("unknown checker %q in %s (known: %s)", name, ignoreDirective, strings.Join(Checkers(), ", "))
	}
	return ignoreSpec{checker: name, reason: strings.Join(fields[1:], " ")}, true, nil
}

// filterIgnored drops this package's diagnostics that are waived by an
// ignore directive on the same line. Malformed directives are themselves
// diagnostics: a waiver without a reason, or naming an unknown checker,
// fails the run instead of silently ignoring nothing.
func filterIgnored(pkg *Package, cfg *Config, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	ignores := make(map[key]map[string]bool)
	cx := &context{pkg: pkg, cfg: cfg, name: "directive", out: &diags}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				spec, isIgnore, err := parseIgnore(c.Text)
				if !isIgnore {
					continue
				}
				if err != nil {
					cx.reportf(c.Pos(), "%v", err)
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				k := key{file: p.Filename, line: p.Line}
				if ignores[k] == nil {
					ignores[k] = make(map[string]bool)
				}
				ignores[k][spec.checker] = true
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		abs := d.File
		if cfg.BaseDir != "" && !filepath.IsAbs(abs) {
			abs = filepath.Join(cfg.BaseDir, filepath.FromSlash(d.File))
		}
		if ignores[key{file: abs, line: d.Line}][d.Checker] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
