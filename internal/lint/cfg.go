package lint

import (
	"go/ast"
	"go/token"
)

// This file builds the per-function control-flow graphs the quarcflow
// dataflow checkers (poollifetime, rngprovenance, floatorder) run over.
// The graph is deliberately small: basic blocks hold statement-level AST
// nodes in evaluation order, edges over-approximate control flow (a
// conditional always has both edges, a loop always has a back edge and
// an exit edge), and constructs the analyses cannot model precisely fall
// back to conservative fall-through. Over-approximation is the safe
// direction for every quarcflow pass: they are forward *may*-analyses,
// so an impossible path can only add facts, never hide one.

// block is one basic block: a maximal straight-line run of nodes.
type block struct {
	// nodes holds the statements and control expressions evaluated in
	// this block, in order. Control expressions (an if condition, a
	// switch tag, a range operand) appear as bare ast.Expr nodes before
	// the branch they guard.
	nodes []ast.Node
	// succs are the possible control-flow successors.
	succs []*block
	// index is the block's position in graph.blocks (construction order,
	// which approximates reverse post-order for structured code).
	index int
}

// graph is the CFG of one function body.
type graph struct {
	entry  *block
	blocks []*block
}

// cfgBuilder incrementally grows a graph. cur is the block new nodes are
// appended to; nil means the current path is terminated (after a return,
// break, continue or panic) and subsequent statements are unreachable
// until a new join point starts a block.
type cfgBuilder struct {
	g   *graph
	cur *block
	// breakTargets and continueTargets stack the jump destinations of the
	// enclosing breakable/continuable statements, innermost last. Labeled
	// break/continue jump to the matching labeled entry.
	breakTargets    []jumpTarget
	continueTargets []jumpTarget
}

type jumpTarget struct {
	label string
	block *block
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *graph {
	g := &graph{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	return g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// startBlock begins a new block and links the current one to it (if the
// current path is live).
func (b *cfgBuilder) startBlock() *block {
	blk := b.newBlock()
	if b.cur != nil {
		b.link(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) link(from, to *block) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends a node to the current block; a dead path (cur == nil)
// silently drops it — unreachable code cannot produce flow facts.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the label attached to this
// statement (loops and switches record it as a break/continue target).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		if condBlk == nil {
			return
		}
		// then branch
		thenBlk := b.newBlock()
		b.link(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		// else branch
		var elseEnd *block
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.link(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		// join
		join := b.newBlock()
		if thenEnd != nil {
			b.link(thenEnd, join)
		}
		if s.Else == nil {
			b.link(condBlk, join)
		} else if elseEnd != nil {
			b.link(elseEnd, join)
		}
		if thenEnd == nil && elseEnd == nil && s.Else != nil {
			b.cur = nil // both arms terminated
			return
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if head == nil {
			return
		}
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			b.link(head, exit) // condition false
		}
		post := b.newBlock() // continue target: post statement, then back to head
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		b.link(post, head)
		b.pushTargets(label, exit, post)
		body := b.newBlock()
		b.link(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, post)
		}
		b.popTargets()
		b.cur = exit

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock()
		if head == nil {
			return
		}
		// The range assignment itself defines the iteration variables once
		// per iteration; record the whole statement so analyses see the
		// definitions, then branch to body or exit.
		head.nodes = append(head.nodes, rangeIter{s})
		exit := b.newBlock()
		b.link(head, exit)
		b.pushTargets(label, exit, head)
		body := b.newBlock()
		b.link(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.popTargets()
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, body = sw.Init, sw.Tag, sw.Body
		case *ast.TypeSwitchStmt:
			init, tag, body = sw.Init, sw.Assign, sw.Body
		}
		if init != nil {
			b.add(init)
		}
		if tag != nil {
			b.add(tag)
		}
		condBlk := b.cur
		if condBlk == nil {
			return
		}
		exit := b.newBlock()
		b.pushTargets(label, exit, nil)
		hasDefault := false
		for _, cl := range body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			caseBlk := b.newBlock()
			b.link(condBlk, caseBlk)
			b.cur = caseBlk
			for _, e := range cc.List {
				b.add(e)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.link(b.cur, exit)
			}
			// fallthrough is rare in this codebase; over-approximate by
			// ignoring it (the next case is entered from the switch head
			// anyway, so facts still flow there).
		}
		if !hasDefault {
			b.link(condBlk, exit)
		}
		b.popTargets()
		b.cur = exit

	case *ast.SelectStmt:
		condBlk := b.cur
		if condBlk == nil {
			return
		}
		exit := b.newBlock()
		b.pushTargets(label, exit, nil)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			caseBlk := b.newBlock()
			b.link(condBlk, caseBlk)
			b.cur = caseBlk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.link(b.cur, exit)
			}
		}
		b.popTargets()
		b.cur = exit

	case *ast.LabeledStmt:
		// Start a fresh block so the label is a jump target, then translate
		// the labeled statement with the label attached.
		b.startBlock()
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breakTargets, labelName(s.Label)); t != nil && b.cur != nil {
				b.link(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findTarget(b.continueTargets, labelName(s.Label)); t != nil && b.cur != nil {
				b.link(b.cur, t)
			}
			b.cur = nil
		case token.GOTO:
			// goto is not used in this codebase; terminate the path
			// conservatively (facts cannot flow along an unmodeled edge,
			// which for a may-analysis only loses findings, never invents
			// them).
			b.cur = nil
		case token.FALLTHROUGH:
			// handled structurally in the switch translation
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
				b.add(s)
				b.cur = nil
				return
			}
		}
		b.add(s)

	case *ast.DeferStmt:
		// Deferred calls run at function exit in reverse order; modeling
		// that precisely needs an exit block per defer. Record the call at
		// its lexical position — for may-analyses the approximation errs
		// toward extra facts, the sound direction.
		b.add(s)

	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// rangeIter wraps a range statement when it appears as a loop-head node:
// the analyses see the iteration-variable definitions without re-walking
// the loop body (which is translated into its own blocks).
type rangeIter struct {
	stmt *ast.RangeStmt
}

// Pos/End make rangeIter an ast.Node.
func (r rangeIter) Pos() token.Pos { return r.stmt.Pos() }
func (r rangeIter) End() token.Pos { return r.stmt.TokPos }

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

func (b *cfgBuilder) pushTargets(label string, brk, cont *block) {
	b.breakTargets = append(b.breakTargets, jumpTarget{label, brk})
	b.continueTargets = append(b.continueTargets, jumpTarget{label, cont})
}

func (b *cfgBuilder) popTargets() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// findTarget resolves a break/continue destination: the innermost target
// for an unlabeled jump, the matching labeled one otherwise. Switch and
// select statements push a nil continue target, which an unlabeled
// continue skips over (it belongs to the enclosing loop).
func (b *cfgBuilder) findTarget(stack []jumpTarget, label string) *block {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.block == nil {
			continue
		}
		if label == "" || t.label == label {
			return t.block
		}
	}
	return nil
}
