package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFloatOrder generalizes the map-order float-sum bug quarclint's
// dogfooding found in core.NewModel: float addition and multiplication
// are not associative, so accumulating float64 values in an order the
// runtime randomizes makes the low bits differ from process to process —
// which every golden test, cache fingerprint and record/replay diff then
// trips over. The checker flags a float accumulation (+=, -=, *=, /=, or
// x = x ⊕ ...) inside a loop whose iteration order is unordered:
//
//   - ranging a map directly (sorting elsewhere in the function does not
//     help: the accumulation itself still runs in hash order), or
//   - ranging a slice that dataflow shows was built by collecting map
//     keys/values without an intervening sort.
//
// Unlike the determinism checker's map-range rule this pass runs over
// every package: a float folded in map order is wrong wherever it
// happens, result path or not.
func checkFloatOrder(cx *context) {
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cx.flowFloatOrder(fd)
		}
	}
}

// flowFloatOrder tracks which slices are map-derived-and-unsorted
// through one function, flagging float accumulations in ranges over
// maps or such slices.
func (cx *context) flowFloatOrder(fd *ast.FuncDecl) {
	// Pre-pass: for every range-over-map in the function, the slices its
	// body appends iteration-derived values into. These assignments gen
	// the map-derived fact; a sort call on the slice kills it.
	collected := cx.mapCollectTargets(fd)

	tf := func(n ast.Node, f facts, report bool) {
		if ri, ok := n.(rangeIter); ok {
			_ = ri
			return
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					obj := cx.objectOf(lhs)
					if obj == nil {
						continue
					}
					if collected[obj] {
						f.set(obj, factMapDerived)
					} else {
						f.clear(obj, factMapDerived)
					}
				}
			}
		case *ast.ExprStmt, *ast.DeferStmt:
			// Sort calls kill the fact for their slice argument.
			cx.killSorted(n, f)
		}
	}

	// The accumulation check needs the loop structure, not just block
	// order, so it walks ranges directly with the fact states the
	// dataflow pass computed at each range head. Simplest sound route:
	// run the flow to fixpoint recording the state at each RangeStmt.
	rangeFacts := make(map[*ast.RangeStmt]facts)
	wrapped := func(n ast.Node, f facts, report bool) {
		if ri, ok := n.(rangeIter); ok && report {
			rangeFacts[ri.stmt] = f.clone()
		}
		tf(n, f, report)
	}
	forwardMay(fd, nil, wrapped)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		unordered, src := cx.rangeUnordered(rs, rangeFacts[rs])
		if !unordered {
			return true
		}
		cx.reportFloatAccumulations(rs, src)
		return true
	})
}

// mapCollectTargets returns the slice variables some map range in fd
// appends iteration-derived values into — the candidates for the
// "slice built from an unsorted map" half of the check.
func (cx *context) mapCollectTargets(fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := cx.typeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if !cx.rangeAppendsToSlice(rs) {
			return true
		}
		// Find the append targets: x = append(x, ...) inside the body.
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !cx.isBuiltinAppend(call) {
				return true
			}
			if obj := cx.objectOf(as.Lhs[0]); obj != nil {
				out[obj] = true
			}
			return true
		})
		return true
	})
	return out
}

// killSorted clears the map-derived fact from any variable passed to a
// sort or slices package function: the enumeration is ordered from here
// on.
func (cx *context) killSorted(n ast.Node, f facts) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
			for _, arg := range call.Args {
				if obj := cx.objectOf(arg); obj != nil {
					f.clear(obj, factMapDerived)
				}
			}
		}
		return true
	})
}

// rangeUnordered classifies a range statement's iteration order: true
// for maps and for slices carrying the map-derived fact at the loop
// head. src describes the source for the diagnostic.
func (cx *context) rangeUnordered(rs *ast.RangeStmt, f facts) (bool, string) {
	t := cx.typeOf(rs.X)
	if t == nil {
		return false, ""
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		return true, "a map"
	}
	if _, isSlice := t.Underlying().(*types.Slice); isSlice && f != nil {
		if obj := cx.objectOf(rs.X); obj != nil && f.has(obj, factMapDerived) {
			return true, "a slice collected from a map without sorting"
		}
	}
	return false, ""
}

// reportFloatAccumulations flags float64/float32 accumulator updates in
// the loop body whose accumulator is declared outside the loop — the
// defining property of a fold whose result depends on iteration order.
func (cx *context) reportFloatAccumulations(rs *ast.RangeStmt, src string) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		case token.ASSIGN:
			// x = x + v style accumulation.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 || !cx.selfReferential(as.Lhs[0], as.Rhs[0]) {
				return true
			}
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if !cx.isFloat(lhs) {
				continue
			}
			// An accumulator rooted at a loop-local variable (the iteration
			// variable, or anything declared in the body) does not carry
			// across iterations: each iteration folds into a fresh object,
			// so the order cannot reach the result.
			if obj := cx.rootObject(lhs); obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
				continue
			}
			cx.reportf(as.Pos(), "float accumulation over %s: addition is not associative, so the result depends on iteration order — collect and sort before folding", src)
		}
		return true
	})
}

// selfReferential reports whether rhs reads the variable lhs denotes
// (x = x + v), including through a field path (s.total = s.total + v).
func (cx *context) selfReferential(lhs, rhs ast.Expr) bool {
	obj := cx.objectOf(lhs)
	if obj == nil {
		// Field path: compare the selector's field object.
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj = cx.pkg.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return false
		}
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && cx.pkg.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootObject resolves the base variable of an lvalue path: s.total →
// s, m[k].x → m, (*p).f → p.
func (cx *context) rootObject(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return cx.objectOf(e)
		}
	}
}

// isFloat reports whether e has a floating-point type.
func (cx *context) isFloat(e ast.Expr) bool {
	t := cx.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
