package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// checkSharedState is the machine-readable prerequisite audit for the
// conservative parallel engine (ROADMAP item 1): before one simulation
// is sharded across cores, every piece of mutable state two partitions
// could touch must be known. The pass inventories, for each package on
// the result path:
//
//   - every package-level variable, with the functions that mutate it at
//     runtime (outside init functions, package-level var initializers,
//     New*/Reset* constructors and Register* wrappers) — assignment,
//     index/field stores, address-taking, and pointer-receiver method
//     calls (a mutex Lock mutates the mutex) all count;
//   - every struct field written at runtime, with its writers.
//
// The inventory is emitted as the sorted, byte-reproducible JSON
// artifact lint/sharedstate.json via SharedStateJSON. A package-level
// variable with runtime writers is additionally a diagnostic unless its
// declaration carries a "//quarcflow:shared <reason>" justification —
// the audit's way of forcing each global either to registration-time
// immutability or to a documented concurrency story.
const sharedDirective = "//quarcflow:shared"

// SharedGlobal is one package-level variable in the inventory.
type SharedGlobal struct {
	Package string `json:"package"`
	Name    string `json:"name"`
	Type    string `json:"type"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	// Writers lists the functions (funcKey form) that mutate the
	// variable outside init-time contexts, sorted; empty means the
	// variable is registration-time immutable.
	Writers []string `json:"writers"`
	// Justification carries the //quarcflow:shared reason when the
	// declaration documents why runtime mutation is safe.
	Justification string `json:"justification,omitempty"`
}

// SharedField is one runtime-written struct field in the inventory.
type SharedField struct {
	Package string `json:"package"`
	Type    string `json:"type"`
	// Field is the written field name; "*" records whole-struct stores
	// (*p = T{...}).
	Field     string   `json:"field"`
	FieldType string   `json:"fieldType,omitempty"`
	Writers   []string `json:"writers"`
}

// SharedStateReport is the full audit across the configured packages.
type SharedStateReport struct {
	Globals []SharedGlobal `json:"globals"`
	Fields  []SharedField  `json:"fields"`
}

// SharedStateJSON renders the report in its canonical byte form: sorted
// entries, two-space indentation, trailing newline. The committed
// lint/sharedstate.json baseline is exactly these bytes.
func SharedStateJSON(r *SharedStateReport) []byte {
	if r == nil {
		r = &SharedStateReport{}
	}
	if r.Globals == nil {
		r.Globals = []SharedGlobal{}
	}
	if r.Fields == nil {
		r.Fields = []SharedField{}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		// The report is plain data; encoding cannot fail.
		panic(fmt.Sprintf("lint: encoding sharedstate report: %v", err))
	}
	return buf.Bytes()
}

func (c *Config) isSharedState(path string) bool {
	for _, p := range c.SharedStatePackages {
		if path == p {
			return true
		}
	}
	return false
}

func checkSharedState(cx *context) {
	if !cx.cfg.isSharedState(cx.pkg.Path) {
		return
	}
	a := &sharedAudit{
		cx:      cx,
		globals: make(map[types.Object]*SharedGlobal),
		fields:  make(map[string]*SharedField),
		writers: make(map[types.Object]map[string]bool),
		fwriter: make(map[string]map[string]bool),
	}
	a.collectGlobals()
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.scanFunc(fd)
		}
	}
	a.emit()
}

// sharedAudit accumulates one package's inventory.
type sharedAudit struct {
	cx      *context
	globals map[types.Object]*SharedGlobal
	fields  map[string]*SharedField // key: Type + "." + Field
	writers map[types.Object]map[string]bool
	fwriter map[string]map[string]bool
}

// collectGlobals inventories every package-level var declaration,
// capturing any //quarcflow:shared justification. A malformed directive
// (no reason) is itself a diagnostic, like a malformed waiver.
func (a *sharedAudit) collectGlobals() {
	cx := a.cx
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				just, malformedAt := sharedJustification(gd, vs)
				if malformedAt.IsValid() {
					cx.reportf(malformedAt, "malformed %s: a justification reason is required", sharedDirective)
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time interface assertions own no state
					}
					obj := cx.pkg.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					p := cx.pkg.Fset.Position(name.Pos())
					file := p.Filename
					if cx.cfg.BaseDir != "" {
						if rel, err := filepath.Rel(cx.cfg.BaseDir, file); err == nil {
							file = filepath.ToSlash(rel)
						}
					}
					a.globals[obj] = &SharedGlobal{
						Package:       cx.pkg.Path,
						Name:          name.Name,
						Type:          types.TypeString(obj.Type(), types.RelativeTo(cx.pkg.Types)),
						File:          file,
						Line:          p.Line,
						Justification: just,
					}
				}
			}
		}
	}
}

// sharedJustification extracts the //quarcflow:shared reason from a var
// spec's doc or line comments (or the enclosing GenDecl's doc). The
// second result is the position of a malformed (reason-less) directive.
func sharedJustification(gd *ast.GenDecl, vs *ast.ValueSpec) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{vs.Doc, vs.Comment, gd.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, sharedDirective) {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(c.Text, sharedDirective))
			if reason == "" {
				return "", c.Pos()
			}
			return reason, token.NoPos
		}
	}
	return "", token.NoPos
}

// initTimeWriter reports whether writes inside fd count as init-time:
// init functions, New*/new* constructors, Reset* methods, and Register*
// wrappers (registryhygiene separately pins that Register* calls only
// happen at init time).
func initTimeWriter(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	switch {
	case fd.Recv == nil && name == "init":
		return true
	case strings.HasPrefix(name, "New"), strings.HasPrefix(name, "new"):
		return true
	case strings.HasPrefix(name, "Reset"), strings.HasPrefix(name, "reset"):
		return true
	case strings.HasPrefix(name, "Register"):
		return true
	}
	return false
}

// scanFunc records every global and struct-field mutation fd performs.
func (a *sharedAudit) scanFunc(fd *ast.FuncDecl) {
	if initTimeWriter(fd) {
		return
	}
	cx := a.cx
	who := funcKey(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				a.recordWrite(lhs, who)
			}
		case *ast.IncDecStmt:
			a.recordWrite(n.X, who)
		case *ast.UnaryExpr:
			// &global escapes a mutable reference.
			if n.Op == token.AND {
				if obj := cx.objectOf(n.X); obj != nil {
					if _, tracked := a.globals[obj]; tracked {
						a.addGlobalWriter(obj, who)
					}
				}
			}
		case *ast.CallExpr:
			// A pointer-receiver method call on a tracked global mutates
			// it (sync.Mutex.Lock, rand.PCG.Seed, ...).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj := cx.objectOf(sel.X); obj != nil {
					if _, tracked := a.globals[obj]; tracked && cx.isPointerReceiverCall(sel) {
						a.addGlobalWriter(obj, who)
					}
				}
			}
		}
		return true
	})
}

// isPointerReceiverCall reports whether sel resolves to a method with a
// pointer receiver — the shape of a mutating call.
func (cx *context) isPointerReceiverCall(sel *ast.SelectorExpr) bool {
	s, ok := cx.pkg.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	_, isPtr := recv.Type().(*types.Pointer)
	return isPtr
}

// recordWrite attributes one lvalue store. A store whose lvalue path is
// rooted at a tracked global (direct, indexed, or through a field path)
// mutates that global; a store through a named-struct field is
// additionally recorded in the field inventory.
func (a *sharedAudit) recordWrite(lhs ast.Expr, who string) {
	cx := a.cx
	lhs = ast.Unparen(lhs)
	if obj := cx.rootObject(lhs); obj != nil {
		if _, tracked := a.globals[obj]; tracked {
			a.addGlobalWriter(obj, who)
		}
	}
	switch lhs := lhs.(type) {
	case *ast.StarExpr:
		// *p = T{...}: a whole-struct store through a pointer.
		if named := cx.namedStructOf(cx.typeOf(lhs.X)); named != nil {
			a.addFieldWriter(named, "*", "", who)
		}
	case *ast.SelectorExpr:
		// x.f = v: resolve the owning struct type of f.
		if sl, ok := cx.pkg.TypesInfo.Selections[lhs]; ok && sl.Kind() == types.FieldVal {
			if field, ok := sl.Obj().(*types.Var); ok {
				if named := cx.owningStruct(sl, field); named != nil {
					ft := types.TypeString(field.Type(), types.RelativeTo(cx.pkg.Types))
					a.addFieldWriter(named, field.Name(), ft, who)
				}
			}
		}
	}
}

// namedStructOf unwraps pointers to a named struct type declared in the
// audited package, or nil.
func (cx *context) namedStructOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != cx.pkg.Types {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return named
}

// owningStruct resolves the named struct a selected field belongs to,
// walking the selection's receiver type (embedded fields resolve to the
// embedding chain's last named hop).
func (cx *context) owningStruct(sl *types.Selection, field *types.Var) *types.Named {
	t := sl.Recv()
	// Follow the implicit field path of embedded structs.
	idx := sl.Index()
	for i := 0; i < len(idx)-1; i++ {
		st, ok := deref(t).Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		t = st.Field(idx[i]).Type()
	}
	return cx.namedStructOf(t)
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func (a *sharedAudit) addGlobalWriter(obj types.Object, who string) {
	if a.writers[obj] == nil {
		a.writers[obj] = make(map[string]bool)
	}
	a.writers[obj][who] = true
}

func (a *sharedAudit) addFieldWriter(named *types.Named, field, fieldType, who string) {
	key := named.Obj().Name() + "." + field
	if a.fields[key] == nil {
		a.fields[key] = &SharedField{
			Package:   a.cx.pkg.Path,
			Type:      named.Obj().Name(),
			Field:     field,
			FieldType: fieldType,
		}
	}
	if a.fwriter[key] == nil {
		a.fwriter[key] = make(map[string]bool)
	}
	a.fwriter[key][who] = true
}

// emit finalizes the package's slice of the report: globals sorted by
// name, fields by (type, field), writers sorted within each entry —
// and reports the diagnostics for undocumented runtime-mutated globals.
func (a *sharedAudit) emit() {
	cx := a.cx
	objs := make([]types.Object, 0, len(a.globals))
	for obj := range a.globals {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name() < objs[j].Name() })
	for _, obj := range objs {
		g := a.globals[obj]
		g.Writers = sortedKeys(a.writers[obj])
		if len(g.Writers) > 0 && g.Justification == "" {
			cx.reportf(obj.Pos(), "package-level var %s is mutated at runtime on the result path (by %s): document the concurrency story with %s <reason> or refactor to registration-time immutability", g.Name, strings.Join(g.Writers, ", "), sharedDirective)
		}
		cx.shared.Globals = append(cx.shared.Globals, *g)
	}
	keys := make([]string, 0, len(a.fields))
	for k := range a.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fld := a.fields[k]
		fld.Writers = sortedKeys(a.fwriter[k])
		cx.shared.Fields = append(cx.shared.Fields, *fld)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
