package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// checkRegistryHygiene enforces the string-keyed registry conventions
// shared by the topology/router/pattern/spatial/arrival registries:
//
//   - registered names are lowercase, so spec documents and CLI flags
//     never depend on the caller's casing;
//   - registration happens at init time (an init function, a
//     package-level var initializer, or a Register* wrapper), so the
//     registries are immutable by the time any scenario compiles and a
//     concurrent registration can never race an evaluation;
//   - any function deriving a slice from ranging a map sorts it before
//     returning, so List()-style enumerations — and the JSON documents
//     built from them (/v1/registry) — are byte-stable run to run.
func checkRegistryHygiene(cx *context) {
	for _, f := range cx.pkg.Files {
		cx.checkRegistrationSites(f)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				cx.checkSortedEnumeration(fd)
			}
		}
	}
}

// registerCall recognizes calls to functions named Register* whose first
// parameter is a string: the registry-population convention.
func (cx *context) registerCall(call *ast.CallExpr) (name string, ok bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if !strings.HasPrefix(id.Name, "Register") {
		return "", false
	}
	sig, ok := cx.typeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return "", false
	}
	if b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return "", false
	}
	return id.Name, true
}

// checkRegistrationSites walks one file flagging Register* calls with
// non-lowercase literal names or made outside init-time contexts.
func (cx *context) checkRegistrationSites(f *ast.File) {
	// Allowed contexts: init functions, Register* wrappers, and
	// package-level var initializers.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			allowed := (d.Recv == nil && d.Name.Name == "init") || strings.HasPrefix(d.Name.Name, "Register")
			cx.inspectRegistrations(d, allowed)
		case *ast.GenDecl:
			if d.Tok == token.VAR {
				cx.inspectRegistrations(d, true)
			}
		}
	}
}

func (cx *context) inspectRegistrations(root ast.Node, allowed bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && allowed {
			// A closure inside an allowed context runs at some later,
			// unknowable time; registrations inside it are not init-time.
			cx.inspectRegistrations(fl.Body, false)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fname, ok := cx.registerCall(call)
		if !ok {
			return true
		}
		if !allowed {
			cx.reportf(call.Pos(), "%s called outside init, a package-level var or a Register* wrapper: registries must be immutable before any scenario compiles", fname)
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if name, err := strconv.Unquote(lit.Value); err == nil && name != strings.ToLower(name) {
				cx.reportf(lit.Pos(), "registry name %q must be lowercase", name)
			}
		}
		return true
	})
}

// checkSortedEnumeration requires a sort in any function that collects
// map keys or values into a slice by ranging: the collect-then-sort
// idiom's missing half is exactly how unsorted enumerations reach JSON
// output. Ranging a map into another map (or accumulating into a map
// index) is order-independent and exempt.
func (cx *context) checkSortedEnumeration(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	collects := false
	sorts := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure is its own scope
		case *ast.RangeStmt:
			if t := cx.typeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok && cx.rangeAppendsToSlice(n) {
					collects = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName); ok {
						switch pn.Imported().Path() {
						case "sort", "slices":
							sorts = true
						}
					}
				}
			}
		}
		return true
	})
	if collects && !sorts {
		cx.reportf(fd.Pos(), "%s collects map keys into a slice without sorting: enumeration order would vary run to run", funcKey(fd))
	}
}

// rangeAppendsToSlice reports whether the map range's body appends an
// expression derived from the iteration variables into a slice.
func (cx *context) rangeAppendsToSlice(rs *ast.RangeStmt) bool {
	iterObjs := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := cx.pkg.TypesInfo.Defs[id]; obj != nil {
				iterObjs[obj] = true
			}
			if obj := cx.pkg.TypesInfo.Uses[id]; obj != nil {
				iterObjs[obj] = true
			}
		}
	}
	if len(iterObjs) == 0 {
		return false
	}
	usesIter := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && iterObjs[cx.pkg.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	appends := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, builtin := cx.pkg.TypesInfo.Uses[id].(*types.Builtin); builtin {
				for _, arg := range call.Args[1:] {
					if usesIter(arg) {
						appends = true
					}
				}
			}
		}
		return !appends
	})
	return appends
}
