package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// defaultHotpaths is the repository's pinned 0-allocs/op surface: the
// steady-state event loop guarded by TestSteadyStateEventLoopAllocFree
// and TestSteadyStateAllocFreeAllArrivals (internal/wormhole), the
// workload draw guarded by TestArrivalAndDestAllocFree
// (internal/traffic), and the scheduler operations under them. Adding a
// function here requires the matching alloc guard; annotating a function
// not listed here is itself a diagnostic, so directive placement and the
// bench list can never drift apart.
func defaultHotpaths() map[string][]string {
	return map[string][]string{
		"quarc/internal/sim": {
			"Engine.ReserveSeq",
			"Engine.Schedule",
			"Engine.ScheduleSeq",
			"Engine.push",
			"Engine.run",
			"calQueue.dayOf",
			"calQueue.insert",
			"calQueue.migrate",
			"calQueue.pop",
			"calQueue.push",
			"eventHeap.pop",
			"eventHeap.push",
			"lessItem",
		},
		"quarc/internal/traffic": {
			"Workload.Interarrival",
			"Workload.Next",
			"Workload.uniformDest",
			"Workload.weightedDest",
			"bernoulliArrival.Gap",
			"geometric",
			"onoffArrival.Gap",
			"periodicArrival.Gap",
			"poissonArrival.Gap",
		},
		"quarc/internal/wormhole": {
			"Network.Handle",
			"Network.busySpan",
			"Network.complete",
			"Network.fire",
			"Network.flushSpans",
			"Network.generate",
			"Network.getMessage",
			"Network.getWorm",
			"Network.grant",
			"Network.putMessage",
			"Network.putWorm",
			"Network.release",
			"Network.releaseSpanned",
			"Network.request",
			"Network.scheduleGeneration",
			"Network.spanDone",
			"Network.spanStart",
			"Network.trace",
		},
	}
}

// funcKey names a declaration the way the hot-path list does: "Name" for
// plain functions, "Recv.Name" (pointerless receiver type) for methods.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip any type parameters (generic receivers).
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// checkHotpath enforces the //quarc:hotpath contract. The directive is a
// promise the benchmarks hold the function to — 0 allocs/op in steady
// state — so the body may not do anything that defeats it at the source
// level: call fmt (boxes every operand), build composite literals that
// escape to the heap, box non-pointer values into interfaces, or
// allocate a closure. Code on a panic path is exempt: a taken panic ends
// the run, so its allocations are free.
//
// Placement is checked in both directions against the configured bench
// list: a listed function missing the directive and a directive on an
// unlisted function are both diagnostics.
func checkHotpath(cx *context) {
	required := make(map[string]bool)
	for _, name := range cx.cfg.Hotpaths[cx.pkg.Path] {
		required[name] = true
	}
	seen := make(map[string]bool)
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			key := funcKey(fd)
			annotated := hasHotpathDirective(fd.Doc)
			if required[key] {
				seen[key] = true
				if !annotated {
					cx.reportf(fd.Pos(), "%s is on the 0-allocs/op bench list but lacks the %s directive", key, hotpathDirective)
				}
			} else if annotated {
				cx.reportf(fd.Pos(), "%s carries %s but is not on the 0-allocs/op bench list (add it to the lint hot-path list alongside an alloc guard)", key, hotpathDirective)
			}
			if annotated && fd.Body != nil {
				cx.checkPurity(fd)
			}
		}
	}
	missing := make([]string, 0, len(required))
	for name := range required {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		cx.reportf(cx.pkg.Files[0].Package, "hot-path function %s is pinned by the bench list but not declared in %s", name, cx.pkg.Path)
	}
}

// checkPurity walks one annotated function, skipping panic arguments
// (cold by construction).
func (cx *context) checkPurity(fd *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if cx.isPanic(n) {
				return false // panic path: arguments are cold
			}
			cx.checkCallPurity(n)
		case *ast.FuncLit:
			cx.reportf(n.Pos(), "hot path captures a closure: each func literal costs an allocation")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					cx.reportf(n.Pos(), "hot path takes the address of a composite literal: it escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if t := cx.typeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					cx.reportf(n.Pos(), "hot path builds a slice literal: the backing array is heap-allocated")
				case *types.Map:
					cx.reportf(n.Pos(), "hot path builds a map literal: maps are heap-allocated")
				}
			}
			cx.checkCompositeBoxing(n)
		case *ast.AssignStmt:
			cx.checkAssignBoxing(n)
		case *ast.ReturnStmt:
			cx.checkReturnBoxing(fd, n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// isPanic reports whether the call is the builtin panic.
func (cx *context) isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := cx.pkg.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func (cx *context) checkCallPurity(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if _, ok := cx.pkg.TypesInfo.Uses[fun].(*types.Builtin); ok {
				cx.reportf(call.Pos(), "hot path calls make: allocation in steady state")
			}
		case "new":
			if _, ok := cx.pkg.TypesInfo.Uses[fun].(*types.Builtin); ok {
				cx.reportf(call.Pos(), "hot path calls new: allocation in steady state")
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				cx.reportf(call.Pos(), "hot path calls fmt.%s: formatting boxes every operand", fun.Sel.Name)
			}
		}
	}
	cx.checkArgBoxing(call)
}

// pointerShaped reports whether values of t fit an interface's data word
// without a heap copy: pointers, channels, maps, functions and unsafe
// pointers do; everything else (ints, floats, strings, structs, slices)
// is boxed when converted to an interface.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// boxes reports whether assigning src (an expression of type st) to a
// destination of type dt converts a non-interface value into an
// interface and allocates doing so.
func (cx *context) boxes(src ast.Expr, dt types.Type) bool {
	if dt == nil {
		return false
	}
	if _, ok := dt.Underlying().(*types.Interface); !ok {
		return false
	}
	st := cx.typeOf(src)
	if st == nil {
		return false
	}
	if tv, ok := cx.pkg.TypesInfo.Types[src]; ok && tv.IsNil() {
		return false
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return false // interface-to-interface copies, no box
	}
	return !pointerShaped(st)
}

func (cx *context) reportBox(src ast.Expr, dt types.Type) {
	cx.reportf(src.Pos(), "hot path boxes a %s into %s: interface conversion allocates", cx.typeOf(src), dt)
}

func (cx *context) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := cx.typeOf(call.Fun).(*types.Signature)
	if !ok {
		// Conversion, not a call: T(x) boxes when T is an interface.
		if t := cx.typeOf(call); t != nil && len(call.Args) == 1 && cx.boxes(call.Args[0], t) {
			cx.reportBox(call.Args[0], t)
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if cx.boxes(arg, pt) {
			cx.reportBox(arg, pt)
		}
	}
}

func (cx *context) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // comma-ok and multi-value calls: conversions are explicit elsewhere
	}
	for i, rhs := range as.Rhs {
		if cx.boxes(rhs, cx.typeOf(as.Lhs[i])) {
			cx.reportBox(rhs, cx.typeOf(as.Lhs[i]))
		}
	}
}

func (cx *context) checkReturnBoxing(fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := cx.pkg.TypesInfo.Defs[fd.Name]
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if cx.boxes(r, sig.Results().At(i).Type()) {
			cx.reportBox(r, sig.Results().At(i).Type())
		}
	}
}

// checkCompositeBoxing flags struct-literal fields that box: assigning a
// concrete non-pointer value to an interface-typed field (sim.Event's
// Data, for example, is documented to carry pointers precisely so the
// store never allocates).
func (cx *context) checkCompositeBoxing(lit *ast.CompositeLit) {
	t := cx.typeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldByName := func(name string) types.Type {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				return st.Field(i).Type()
			}
		}
		return nil
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				if ft := fieldByName(key.Name); cx.boxes(kv.Value, ft) {
					cx.reportBox(kv.Value, ft)
				}
			}
			continue
		}
		if i < st.NumFields() && cx.boxes(elt, st.Field(i).Type()) {
			cx.reportBox(elt, st.Field(i).Type())
		}
	}
}
