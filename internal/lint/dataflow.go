package lint

import (
	"go/ast"
	"go/types"
)

// This file is quarcflow's analysis engine: a forward may-analysis over
// the CFGs of cfg.go. The lattice is the powerset of (variable, fact)
// pairs — each fact a small named bit like "released to a pool" or
// "derived from a seed parameter" — ordered by inclusion with union as
// join. Heights are tiny (one bit per local variable), so the worklist
// converges in a handful of passes even on the simulator's largest
// functions.

// facts maps a variable (its types.Object) to a fact bitset. The zero
// map is the bottom element.
type facts map[types.Object]factBits

// factBits is a small per-variable bitset; each dataflow checker
// assigns its own meaning to the bits.
type factBits uint8

const (
	// factReleased marks a value that has flowed into a free-list put
	// (poollifetime).
	factReleased factBits = 1 << iota
	// factSeeded marks a value data-flow-derived from a function
	// parameter — the intraprocedural stand-in for "traceable to the
	// replication seed" (rngprovenance).
	factSeeded
	// factMapDerived marks a slice populated by ranging a map without an
	// intervening sort (floatorder).
	factMapDerived
)

func (f facts) clone() facts {
	out := make(facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// join unions other into f, reporting whether f changed.
func (f facts) join(other facts) bool {
	changed := false
	for k, v := range other {
		if f[k]&v != v {
			f[k] |= v
			changed = true
		}
	}
	return changed
}

func (f facts) has(obj types.Object, bit factBits) bool {
	return obj != nil && f[obj]&bit != 0
}

func (f facts) set(obj types.Object, bit factBits) {
	if obj != nil {
		f[obj] |= bit
	}
}

func (f facts) clear(obj types.Object, bit factBits) {
	if obj == nil {
		return
	}
	if rest := f[obj] &^ bit; rest == 0 {
		delete(f, obj)
	} else {
		f[obj] = rest
	}
}

// transferFunc applies one node's effect to the fact set in place.
// report is false during the fixpoint iteration and true on the final
// reporting pass, when the incoming states are stable — diagnostics must
// only be emitted then, so each finding is reported exactly once.
type transferFunc func(n ast.Node, f facts, report bool)

// forwardMay runs a forward may-analysis over fn's body: entry starts
// with init (nil means empty), every node applies tf, block outputs join
// into successor inputs, and once the fixpoint is reached a final pass
// re-applies tf with report=true on each block's stable input state.
func forwardMay(fn *ast.FuncDecl, init facts, tf transferFunc) {
	if fn.Body == nil {
		return
	}
	g := buildCFG(fn.Body)
	in := make([]facts, len(g.blocks))
	for i := range in {
		in[i] = make(facts)
	}
	if init != nil {
		in[g.entry.index].join(init)
	}

	// Chaotic iteration in block order; construction order approximates
	// reverse post-order for structured code, so this converges fast.
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			out := in[blk.index].clone()
			for _, n := range blk.nodes {
				tf(n, out, false)
			}
			for _, succ := range blk.succs {
				if in[succ.index].join(out) {
					changed = true
				}
			}
		}
	}

	// Reporting pass over the stable states.
	for _, blk := range g.blocks {
		f := in[blk.index].clone()
		for _, n := range blk.nodes {
			tf(n, f, true)
		}
	}
}

// objectOf resolves an expression to the variable it denotes, seeing
// through parentheses. Selector and index expressions resolve to nil:
// the dataflow facts track whole local variables, not heap paths.
func (cx *context) objectOf(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := cx.pkg.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return cx.pkg.TypesInfo.Defs[e]
	}
	return nil
}

// exprMentions reports whether expr reads any variable carrying bit in
// f. Function literals are skipped: their bodies execute later, under
// their own flow.
func (cx *context) exprMentions(expr ast.Expr, f facts, bit factBits) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if f.has(cx.pkg.TypesInfo.Uses[n], bit) {
				found = true
			}
		}
		return !found
	})
	return found
}

// paramObjects returns the declared objects of a function's parameters
// and receiver: the taint sources of the rngprovenance analysis.
func (cx *context) paramObjects(fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := cx.pkg.TypesInfo.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	return out
}
