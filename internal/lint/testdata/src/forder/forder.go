// Package forder is the floatorder checker's fixture: float folds whose
// result depends on map iteration order (findings) against the ordered
// and order-independent shapes that must stay clean.
package forder

import "sort"

// SumMap folds floats in hash order: the canonical finding.
func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want: float accumulation over a map
	}
	return s
}

// ProductMap: multiplication is no more associative than addition.
func ProductMap(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want: float accumulation over a map
	}
	return p
}

// SelfAssign is the x = x + v spelling of the same fold.
func SelfAssign(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s = s + v // want: float accumulation over a map
	}
	return s
}

// SumCollected folds a slice that was collected from a map and never
// sorted: the order is still the hash order, one hop removed.
func SumCollected(m map[string]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	var s float64
	for _, v := range vals {
		s += v // want: float accumulation over a slice collected from a map
	}
	return s
}

// SumSorted is the canonical fix: collect, sort, fold.
func SumSorted(m map[string]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// CountMap accumulates an int: integer addition commutes exactly.
func CountMap(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SumSlice folds a parameter slice: the caller fixed the order.
func SumSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

type bucket struct {
	total float64
	count int
}

// Normalize touches each map value exactly once through the loop-local
// pointer: no value carries across iterations, so order cannot reach
// the result. Pins the ClassStats-normalization shape as clean.
func Normalize(m map[string]*bucket) {
	for _, b := range m {
		b.total /= float64(b.count)
	}
}
