// Package rng is the rngprovenance checker's fixture: generators seeded
// from values data-flow-reachable from a parameter (clean) against
// literal and ambient seeds (findings). The package is listed among the
// fixture's determinism packages, so the taint analysis runs here.
package rng

import "math/rand/v2"

// Good seeds straight from the parameter.
func Good(seed uint64) float64 {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)).Float64()
}

// Derived seeds from arithmetic over the parameter through a local: the
// taint must survive assignment chains.
func Derived(seed uint64, rep int) float64 {
	s := seed + uint64(rep)*0x9e37
	stream := s ^ 0xda94
	return rand.New(rand.NewPCG(s, stream)).Float64()
}

// PerWorker hands each worker a seed from a tainted slice: range over a
// seed-derived source taints the iteration variables.
func PerWorker(seeds []uint64) float64 {
	total := 0.0
	for _, s := range seeds {
		total += rand.New(rand.NewPCG(s, 1)).Float64()
	}
	return total
}

// Bad seeds from bare literals: every replication replays one stream.
func Bad() float64 {
	return rand.New(rand.NewPCG(1, 2)).Float64() // want: seeded from a literal
}

// BadLoop reseeds with constants inside the loop.
func BadLoop(n int) uint64 {
	var pcg rand.PCG
	var acc uint64
	for i := 0; i < n; i++ {
		pcg.Seed(42, 43) // want: literal reseed inside a loop
		acc += pcg.Uint64()
	}
	return acc
}

// ambient is package-level generator state: a finding by construction.
var ambient = rand.New(rand.NewPCG(7, 9)) // want: ambient RNG state

// UseAmbient exists so the var is not dead code; the draw itself is the
// determinism checker's business, not this checker's.
func UseAmbient() float64 { return ambient.Float64() }
