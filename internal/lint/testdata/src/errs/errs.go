// Package errs is the errdiscipline checker's known-bad fixture:
// sentinel comparisons and wrapping sites on both sides of the
// convention.
package errs

import (
	"errors"
	"fmt"
)

// ErrBad is the package's sentinel.
var ErrBad = errors.New("bad")

// Check compares the sentinel with ==.
func Check(err error) bool { return err == ErrBad }

// CheckNot compares the sentinel with !=.
func CheckNot(err error) bool { return err != ErrBad }

// CheckIs matches through the chain: allowed.
func CheckIs(err error) bool { return errors.Is(err, ErrBad) }

// NilCheck compares against nil: allowed.
func NilCheck(err error) bool { return err == nil }

// Wrap flattens the error with %v: the chain is lost.
func Wrap(err error) error { return fmt.Errorf("reading spec: %v", err) }

// WrapString flattens with %s.
func WrapString(err error) error { return fmt.Errorf("reading spec: %s", err) }

// WrapOK wraps with %w: allowed.
func WrapOK(err error) error { return fmt.Errorf("reading spec: %w", err) }

// WrapBoth wraps a sentinel and a cause: allowed.
func WrapBoth(err error) error { return fmt.Errorf("%w: %w", ErrBad, err) }

// News builds an error from Sprintf: fmt.Errorf says the same thing.
func News(n int) error { return errors.New(fmt.Sprintf("n=%d", n)) }

// Starred mixes a *-width verb before the error operand: the verb/
// operand mapping must survive the extra argument.
func Starred(err error) error { return fmt.Errorf("pad %*d: %v", 8, 1, err) }
