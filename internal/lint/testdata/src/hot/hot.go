// Package hot is the hotpath checker's known-bad fixture. The test
// configures the bench list as {Cold, Hot, Missing}: Hot carries the
// directive and violates every purity rule, Cold lacks the directive it
// owes, Missing is not declared at all, and Rogue carries a directive
// the list does not sanction.
package hot

import "fmt"

type point struct{ x, y int }

type event struct {
	kind int
	data any
}

func sink(v any) {}

//quarc:hotpath
func Hot(xs []int, flag bool) int {
	fmt.Println(xs)              // fmt call
	f := func() int { return 1 } // closure
	p := &point{1, 2}            // heap-escaping composite literal
	s := []int{1, 2, 3}          // slice literal
	m := make(map[int]int)       // make
	b := any(42)                 // explicit boxing conversion
	sink(7)                      // boxing into a variadic-free any parameter
	e := event{kind: 1, data: 9} // boxing into an interface field
	g := event{kind: 2, data: p} // pointer payload: allowed
	if flag {
		panic(fmt.Sprintf("cold path %d", len(xs))) // panic path: exempt
	}
	return f() + p.x + s[0] + len(m) + b.(int) + e.kind + g.kind
}

// Cold is on the bench list but lacks the directive.
func Cold() {}

// Rogue carries the directive without being on the bench list.
//
//quarc:hotpath
func Rogue() {}

// plain is outside the contract entirely: no diagnostics.
func plain() int {
	q := &point{3, 4}
	return q.y
}

var _ = plain
