package det

import oldrand "math/rand"

// Old uses the frozen math/rand package: the import is the diagnostic.
func Old() int { return oldrand.Int() }
