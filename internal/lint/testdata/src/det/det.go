// Package det is the determinism checker's known-bad fixture: every
// construct that smuggles external state into a simulation run, plus
// the allowed idioms that must stay diagnostic-free.
package det

import (
	"math/rand/v2"
	"sort"
	"time"
)

// Stamp reads the wall clock: the "time" import is the diagnostic.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw uses the process-global generator.
func Draw() float64 { return rand.Float64() }

// Seeded constructs an explicit PCG: allowed.
func Seeded(seed uint64) float64 { return rand.New(rand.NewPCG(seed, 1)).Float64() }

// Keys collects map keys without sorting: flagged by determinism (map
// iteration order) and by registryhygiene (unsorted enumeration).
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys is the canonical collect-then-sort idiom: allowed.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Race resolves whichever channel is ready first: nondeterministic.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Spawn starts a goroutine on the result path.
func Spawn(f func()) { go f() }

// Count ranges a map commutatively under an explicit waiver: the ignore
// directive suppresses the determinism diagnostic.
func Count(m map[string]int) int {
	n := 0
	for range m { //quarclint:ignore determinism integer count is iteration-order independent
		n++
	}
	return n
}

// Bad ranges a map under a malformed waiver (no reason): the directive
// itself becomes the diagnostic, and the determinism finding stands.
func Bad(m map[string]int) int {
	n := 0
	for range m { //quarclint:ignore determinism
		n++
	}
	return n
}
