// Package pool is the poollifetime checker's fixture: every shape of
// use-after-free-list-put the dataflow pass must catch, plus the clean
// lifecycles that must stay diagnostic-free.
package pool

import "sync"

type item struct {
	n    int
	next *item
}

// q owns a slice free list, the wormhole worm/message pool shape.
type q struct {
	pool []*item
	seen int
}

// put is an inferred pool-put function: it appends its pointer
// parameter to a pool-named slice.
func (s *q) put(it *item) {
	it.next = nil
	s.pool = append(s.pool, it)
}

// retire is the free-function flavor of the same.
func retire(s *q, it *item) {
	s.pool = append(s.pool, it)
}

// UseAfterPut reads a field after the value went back to the pool.
func (s *q) UseAfterPut(it *item) int {
	s.put(it)
	return it.n // want: used after being returned to the pool
}

// WriteAfterPut stores through the released value.
func (s *q) WriteAfterPut(it *item) {
	retire(s, it)
	it.n = 1 // want: used after being returned to the pool
}

// MayPut releases on only one path; the later use is still a finding —
// the analysis is a may-analysis.
func (s *q) MayPut(it *item, done bool) {
	if done {
		s.put(it)
	}
	s.seen += it.n // want: used after being returned to the pool
}

// DirectAppend releases without going through a put helper.
func (s *q) DirectAppend(it *item) {
	s.pool = append(s.pool, it)
	it.n = 2 // want: used after being returned to the pool
}

// SyncPoolPut covers the stdlib pool.
func SyncPoolPut(sp *sync.Pool, it *item) int {
	sp.Put(it)
	return it.n // want: used after being returned to the pool
}

// LoopPut releases inside a loop body; the next iteration's read of the
// same variable is a finding via the back edge.
func (s *q) LoopPut(items []*item) int {
	total := 0
	var last *item
	for _, it := range items {
		if last != nil {
			total += last.n // want: used after being returned to the pool
		}
		last = it
		s.put(last)
	}
	return total
}

// CleanLifecycle puts last: nothing after the release.
func (s *q) CleanLifecycle(it *item) {
	it.n = 0
	s.put(it)
}

// Reassigned revives the variable: after rebinding it names a fresh
// object, so the later use is fine.
func (s *q) Reassigned(it *item) int {
	s.put(it)
	it = &item{n: 7}
	return it.n
}

// FreshFromPool pops before pushing a different value: no overlap.
func (s *q) FreshFromPool(old *item) *item {
	s.put(old)
	if n := len(s.pool); n > 0 {
		it := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return it
	}
	return &item{}
}
