module quarclint.example

go 1.22
