// Package reg is the registryhygiene checker's known-bad fixture: a
// string-keyed registry populated and enumerated both correctly and
// incorrectly.
package reg

import "sort"

var things = map[string]func(){}

// RegisterThing adds a named builder; as a Register* wrapper it is
// itself an allowed registration context.
func RegisterThing(name string, f func()) { things[name] = f }

func init() {
	RegisterThing("good", nil)
	RegisterThing("BadName", nil) // uppercase registry name
}

// Sneaky registers outside any init-time context.
func Sneaky() { RegisterThing("late", nil) }

// Deferred registers from a closure: even declared inside a var
// initializer, the call runs at some later, unknowable time.
var Deferred = func() { RegisterThing("later", nil) }

// List enumerates the registry without sorting.
func List() []string {
	out := make([]string, 0, len(things))
	for name := range things {
		out = append(out, name)
	}
	return out
}

// ListSorted enumerates and sorts: allowed.
func ListSorted() []string {
	out := make([]string, 0, len(things))
	for name := range things {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
