// Package shared is the sharedstate audit's fixture: package-level
// state in every justification posture, plus struct fields the field
// inventory must attribute to their writers.
package shared

// counter is runtime-mutated with no justification: the finding.
var counter int // want: document the concurrency story

//quarcflow:shared pure memoization guarded upstream; hits and misses are indistinguishable
var cache = map[string]int{}

//quarcflow:shared
var badDoc int // want: malformed directive (no reason)

// initOnly is written only in init: inventoried with no writers.
var initOnly = 3

// registry is a struct-typed global whose field Rename mutates: the
// field path write must surface as a writer of the global.
var registry Box // want: document the concurrency story

func init() { initOnly = 4 }

// RegisterThing is a Register* wrapper: its writes are init-time by the
// registry-hygiene contract, so they do not count as runtime mutation.
func RegisterThing(name string, v int) {
	cache[name] = v
}

// Bump and Touch are the runtime writers the findings name.
func Bump() { counter++ }

func Touch(v int) { badDoc = v }

// Rename writes a field of the registry global.
func Rename(label string) { registry.Label = label }

// Lookup only reads: reads never make a writer.
func Lookup(k string) int { return cache[k] }

// Box is the field-inventory subject.
type Box struct {
	N     int
	Label string
}

// Fill is a runtime field writer.
func (b *Box) Fill(n int) { b.N = n }

// Clear stores the whole struct: recorded as field "*".
func (b *Box) Clear() { *b = Box{} }

// NewBox is a constructor: its stores are initialization, not shared
// mutation.
func NewBox(n int) *Box {
	b := &Box{}
	b.N = n
	return b
}

// ResetBox is likewise excluded.
func ResetBox(b *Box) { b.N = 0 }
