package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkRNGProvenance enforces seed provenance on the simulation result
// path: every PCG a determinism package constructs or reseeds must be
// data-flow-traceable to a seed handed in by the caller — ultimately the
// Scenario/replication seed — never to an ambient package-level variable
// or a bare literal. The determinism checker already bans draws from the
// process-global generator; this pass closes the remaining hole, where a
// correctly *typed* seeded generator is fed a constant (every
// replication replays the same stream) or a package-level value (runs
// stop being a pure function of the scenario seed).
//
// The analysis is a forward taint pass per function: parameters and the
// receiver are seed-derived; assignments propagate the taint through
// arithmetic, conversions and calls that take tainted operands. At each
// rand.NewPCG / rand.New / (*rand.PCG).Seed call site, at least one
// argument must be seed-derived. Package-level rand generator variables
// are findings outright.
func checkRNGProvenance(cx *context) {
	if !cx.cfg.isDeterminism(cx.pkg.Path) {
		return
	}
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					cx.checkAmbientGenerator(d)
				}
			case *ast.FuncDecl:
				if d.Body != nil {
					cx.flowRNGProvenance(d)
				}
			}
		}
	}
}

// checkAmbientGenerator flags package-level rand generator state: a
// *rand.Rand, *rand.PCG or rand.Source at package scope is ambient RNG
// state by construction — no call path can tie its stream to the
// replication seed, and concurrent sweep workers would share it.
func (cx *context) checkAmbientGenerator(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			obj := cx.pkg.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if kind := randKind(obj.Type()); kind != "" {
				cx.reportf(name.Pos(), "package-level %s %s is ambient RNG state: generators must be constructed from the replication seed and owned by the run", kind, name.Name)
			}
		}
	}
}

// randKind classifies a math/rand/v2 generator type, or returns "".
func randKind(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() != "math/rand/v2" {
		return ""
	}
	switch named.Obj().Name() {
	case "Rand", "PCG", "ChaCha8", "Zipf":
		return "rand." + named.Obj().Name()
	}
	return ""
}

// flowRNGProvenance runs the seed-taint analysis over one function.
func (cx *context) flowRNGProvenance(fd *ast.FuncDecl) {
	init := make(facts)
	for _, p := range cx.paramObjects(fd) {
		init.set(p, factSeeded)
	}
	inLoop := loopPositions(fd)
	tf := func(n ast.Node, f facts, report bool) {
		if ri, ok := n.(rangeIter); ok {
			// Iteration variables of a tainted range source are tainted
			// (ranging a seed slice hands out seeds).
			rs := ri.stmt
			tainted := rs.X != nil && cx.exprTainted(rs.X, f)
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if e == nil {
					continue
				}
				if id, ok := e.(*ast.Ident); ok {
					obj := cx.pkg.TypesInfo.Defs[id]
					if obj == nil {
						obj = cx.pkg.TypesInfo.Uses[id]
					}
					if tainted {
						f.set(obj, factSeeded)
					}
				}
			}
			return
		}
		// Propagate taint through assignments.
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				obj := cx.objectOf(lhs)
				if obj == nil {
					continue
				}
				if cx.exprTainted(as.Rhs[i], f) {
					f.set(obj, factSeeded)
				} else if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
					f.clear(obj, factSeeded)
				}
			}
		}
		// Check seeding sites.
		if !report {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			cx.checkSeedCall(call, f, inLoop)
			return true
		})
	}
	forwardMay(fd, init, tf)
}

// checkSeedCall flags rand.NewPCG / (*rand.PCG).Seed calls whose
// arguments are all literal or ambient — none data-flow-reachable from a
// seed parameter.
func (cx *context) checkSeedCall(call *ast.CallExpr, f facts, inLoop map[token.Pos]bool) {
	name, ok := cx.seedCallName(call)
	if !ok || len(call.Args) == 0 {
		return
	}
	for _, arg := range call.Args {
		if cx.exprTainted(arg, f) {
			return
		}
	}
	detail := "a literal or package-level value"
	if inLoop[call.Pos()] {
		detail = "a literal reseed inside a loop — every iteration replays the same stream"
	}
	cx.reportf(call.Pos(), "%s seeded from %s: the seed must be data-flow-reachable from the Scenario/replication seed parameter", name, detail)
}

// seedCallName recognizes the math/rand/v2 seeding entry points:
// rand.NewPCG, rand.NewChaCha8, and the Seed method of *rand.PCG.
func (cx *context) seedCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "math/rand/v2" {
			switch sel.Sel.Name {
			case "NewPCG", "NewChaCha8":
				return "rand." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	if sel.Sel.Name == "Seed" {
		if kind := randKind(cx.typeOf(sel.X)); kind != "" {
			return kind + ".Seed", true
		}
	}
	return "", false
}

// exprTainted reports whether any identifier read by e carries the
// seed taint, or e contains a call fed by a tainted argument (the
// result of deriving from a seed is seed-derived). Composite selectors
// like w.seed taint through their base: a field of a tainted struct is
// seed-derived.
func (cx *context) exprTainted(e ast.Expr, f facts) bool {
	return cx.exprMentions(e, f, factSeeded)
}

// loopPositions records the positions of call expressions lexically
// inside a for/range body within fd — used only to sharpen the
// diagnostic message for literal reseeds in loops.
func loopPositions(fd *ast.FuncDecl) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	var mark func(n ast.Node)
	mark = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				out[call.Pos()] = true
			}
			return true
		})
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			mark(n.Body)
		case *ast.RangeStmt:
			mark(n.Body)
		}
		return true
	})
	return out
}
