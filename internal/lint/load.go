package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package of the target
// module: the unit every checker operates on.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's source directory on disk.
	Dir string
	// Fset maps AST positions back to file offsets. All packages of one
	// Load call share a single file set.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, in GoFiles order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the resolved types, uses and definitions the
	// checkers query.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load resolves patterns (e.g. "./...") against the module rooted at dir,
// parses every matched package and type-checks it from source. Imports —
// including the standard library — are satisfied from compiler export
// data produced by `go list -export`, so Load needs the go toolchain but
// no third-party machinery: the driver is go/parser + go/types only.
//
// Test files are not loaded: the invariants quarclint enforces concern
// production code, and tests legitimately range over maps, spawn
// goroutines and compare errors ad hoc.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			lp := lp
			targets = append(targets, &lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One shared importer instance caches every imported package, so type
	// identity is consistent across all checked packages.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		p, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList shells out to `go list -deps -export -json`: -deps pulls in the
// whole import graph (std included) and -export compiles each dependency
// to obtain its export data file.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Standard", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list failed: %w\n%s", err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
