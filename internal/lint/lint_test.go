package lint

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current checker output")

// loadCorpus loads the quarclint.example fixture module under
// testdata/src and runs every checker over it with the fixture config.
func loadCorpus(t *testing.T) Report {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture corpus: %v", err)
	}
	cfg := Config{
		BaseDir:             dir,
		DeterminismPackages: []string{"quarclint.example/det", "quarclint.example/rng"},
		Hotpaths: map[string][]string{
			"quarclint.example/hot": {"Cold", "Hot", "Missing"},
		},
		SharedStatePackages: []string{"quarclint.example/shared"},
	}
	return RunReport(pkgs, cfg)
}

// TestCorpusGolden pins the exact diagnostics the fixture corpus must
// produce: every checker's positives fire at the expected file:line:col,
// and none of the deliberately clean idioms are flagged. Regenerate with
//
//	go test ./internal/lint -run TestCorpusGolden -update
func TestCorpusGolden(t *testing.T) {
	report := loadCorpus(t)
	var b strings.Builder
	for _, d := range report.Diagnostics {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("corpus diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestCorpusSharedState pins the sharedstate inventory the fixture
// corpus must produce, in its canonical JSON byte form. Regenerate with
// -update alongside the diagnostics golden.
func TestCorpusSharedState(t *testing.T) {
	report := loadCorpus(t)
	got := SharedStateJSON(report.SharedState)

	goldenPath := filepath.Join("testdata", "sharedstate_golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading sharedstate golden (run with -update to create it): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("sharedstate inventory diverges from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestCorpusCoverage guards the golden file itself: every checker must
// fire at least once on the corpus, and the waived line must not appear.
// A golden regenerated from a broken checker cannot silently pass.
func TestCorpusCoverage(t *testing.T) {
	diags := loadCorpus(t).Diagnostics
	byChecker := make(map[string]int)
	for _, d := range diags {
		byChecker[d.Checker]++
	}
	for _, name := range Checkers() {
		if byChecker[name] == 0 {
			t.Errorf("checker %q produced no diagnostics on the fixture corpus", name)
		}
	}
	if byChecker["directive"] == 0 {
		t.Error("the malformed-waiver fixture produced no directive diagnostic")
	}
	for _, d := range diags {
		// det.Count's map range is waived; det.Bad's (same shape, bad
		// waiver) must survive.
		if d.File == "det/det.go" && d.Line == 58 {
			t.Errorf("waived diagnostic leaked through: %s", d)
		}
	}
}

// TestRepoIsClean is the self-check the CI job relies on: quarclint with
// the default config reports nothing on the repository's own source.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	cfg := DefaultConfig()
	cfg.BaseDir = root
	diags := Run(pkgs, cfg)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestSharedStateBaseline pins the committed lint/sharedstate.json to
// the audit's live output, byte for byte: the artifact is reproducible
// from a clean checkout, and any new shared state shows up as a test
// diff (and a CI growth-gate failure) rather than drifting silently.
// Regenerate with
//
//	go run ./cmd/quarclint -sharedstate lint/sharedstate.json ./...
func TestSharedStateBaseline(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	cfg := DefaultConfig()
	cfg.BaseDir = root
	report := RunReport(pkgs, cfg)
	got := SharedStateJSON(report.SharedState)
	baseline := filepath.Join(root, "lint", "sharedstate.json")
	want, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("reading committed baseline (regenerate with go run ./cmd/quarclint -sharedstate lint/sharedstate.json ./...): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("sharedstate inventory diverges from the committed %s\n--- got ---\n%s--- want ---\n%s", baseline, got, want)
	}
}

func TestCheckersSorted(t *testing.T) {
	names := Checkers()
	want := []string{
		"determinism", "errdiscipline", "floatorder", "hotpath",
		"poollifetime", "registryhygiene", "rngprovenance", "sharedstate",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Checkers() = %v, want %v", names, want)
	}
}

// TestCheckerSubset pins the cfg.Checkers restriction RunReport applies:
// only the named checkers run, and the timing lists exactly those.
func TestCheckerSubset(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture corpus: %v", err)
	}
	cfg := Config{
		BaseDir:             dir,
		DeterminismPackages: []string{"quarclint.example/det", "quarclint.example/rng"},
		Checkers:            []string{"errdiscipline"},
	}
	report := RunReport(pkgs, cfg)
	for _, d := range report.Diagnostics {
		// The directive pseudo-checker still validates waivers.
		if d.Checker != "errdiscipline" && d.Checker != "directive" {
			t.Errorf("checker %q ran despite the subset restriction: %s", d.Checker, d)
		}
	}
	if len(report.Diagnostics) == 0 {
		t.Error("errdiscipline produced no diagnostics on the corpus under the subset restriction")
	}
	if len(report.Timing) != 1 || report.Timing[0].Checker != "errdiscipline" {
		t.Errorf("Timing = %+v, want exactly one errdiscipline entry", report.Timing)
	}
}

func TestParseIgnore(t *testing.T) {
	tests := []struct {
		text    string
		ok      bool
		wantErr bool
		checker string
		reason  string
	}{
		{"// ordinary comment", false, false, "", ""},
		{"//quarclint:ignore determinism integer count is order independent", true, false, "determinism", "integer count is order independent"},
		{"//quarclint:ignore hotpath pool-miss path", true, false, "hotpath", "pool-miss path"},
		{"//quarclint:ignore determinism", true, true, "", ""},
		{"//quarclint:ignore", true, true, "", ""},
		{"//quarclint:ignore nosuchchecker because reasons", true, true, "", ""},
	}
	for _, tt := range tests {
		spec, ok, err := parseIgnore(tt.text)
		if ok != tt.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", tt.text, ok, tt.ok)
			continue
		}
		if (err != nil) != tt.wantErr {
			t.Errorf("parseIgnore(%q) err = %v, wantErr %v", tt.text, err, tt.wantErr)
			continue
		}
		if err == nil && ok {
			if spec.checker != tt.checker || spec.reason != tt.reason {
				t.Errorf("parseIgnore(%q) = {%q %q}, want {%q %q}", tt.text, spec.checker, spec.reason, tt.checker, tt.reason)
			}
		}
	}
}

func TestFormatVerbs(t *testing.T) {
	tests := []struct {
		format string
		want   []verbRef
	}{
		{"no verbs", nil},
		{"%d", []verbRef{{'d', 0}}},
		{"a %s b %v", []verbRef{{'s', 0}, {'v', 1}}},
		{"100%% done: %w", []verbRef{{'w', 0}}},
		{"%+v", []verbRef{{'v', 0}}},
		{"%-8.3f", []verbRef{{'f', 0}}},
		// A * width consumes one argument before the verb's own operand.
		{"pad %*d: %v", []verbRef{{'d', 1}, {'v', 2}}},
		{"%w: %w", []verbRef{{'w', 0}, {'w', 1}}},
	}
	for _, tt := range tests {
		got := formatVerbs(tt.format)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("formatVerbs(%q) = %v, want %v", tt.format, got, tt.want)
		}
	}
}

func TestFuncKey(t *testing.T) {
	src := `package p

func Free()                  {}
func (e Engine) Run()        {}
func (e *Engine) Push()      {}
func (q *queue[T]) Pop()     {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Free", "Engine.Run", "Engine.Push", "queue.Pop"}
	i := 0
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if got := funcKey(fd); got != want[i] {
			t.Errorf("funcKey(%s) = %q, want %q", fd.Name.Name, got, want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("parsed %d functions, want %d", i, len(want))
	}
}
