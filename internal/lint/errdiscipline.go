package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errorIface is the universe error interface, for Implements queries.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// checkErrDiscipline enforces the PR 4/5 sentinel conventions
// everywhere: callers branch on sentinels (ErrInvalidOption,
// ErrModelInapplicable, ...) with errors.Is so wrapped chains keep
// matching, and wrapping sites use %w so the chain exists in the first
// place. A == comparison or a %v-flattened error silently breaks the
// contract one layer away from where it was written.
func checkErrDiscipline(cx *context) {
	for _, f := range cx.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					cx.checkSentinelCompare(n)
				}
			case *ast.CallExpr:
				cx.checkErrorfWrap(n)
				cx.checkErrorsNewSprintf(n)
			}
			return true
		})
	}
}

// checkSentinelCompare flags x == ErrFoo / x != ErrFoo where ErrFoo is a
// package-level error variable following the Err* naming convention.
func (cx *context) checkSentinelCompare(be *ast.BinaryExpr) {
	for _, side := range []ast.Expr{be.X, be.Y} {
		if name, ok := cx.sentinelName(side); ok {
			cx.reportf(be.Pos(), "sentinel %s compared with %s: use errors.Is so wrapped chains keep matching", name, be.Op)
			return
		}
	}
}

// sentinelName resolves an identifier or pkg.Ident to a package-level
// error variable named Err*.
func (cx *context) sentinelName(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := cx.pkg.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") || len(obj.Name()) <= 3 {
		return "", false
	}
	if !types.Implements(obj.Type(), errorIface) {
		return "", false
	}
	return obj.Name(), true
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// with a flattening verb (%v, %s, %q) instead of wrapping it with %w.
func (cx *context) checkErrorfWrap(call *ast.CallExpr) {
	if !cx.isPkgFunc(call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	for _, v := range formatVerbs(format) {
		if v.verb == 'w' {
			continue
		}
		argIdx := 1 + v.arg
		if argIdx >= len(call.Args) {
			continue
		}
		arg := call.Args[argIdx]
		t := cx.typeOf(arg)
		if t == nil || !types.Implements(t, errorIface) {
			continue
		}
		cx.reportf(arg.Pos(), "error formatted with %%%c loses the chain: wrap it with %%w so errors.Is still matches the sentinel", v.verb)
	}
}

// checkErrorsNewSprintf flags errors.New(fmt.Sprintf(...)): fmt.Errorf
// says the same thing and leaves room to wrap.
func (cx *context) checkErrorsNewSprintf(call *ast.CallExpr) {
	if !cx.isPkgFunc(call.Fun, "errors", "New") || len(call.Args) != 1 {
		return
	}
	inner, ok := call.Args[0].(*ast.CallExpr)
	if ok && cx.isPkgFunc(inner.Fun, "fmt", "Sprintf") {
		cx.reportf(call.Pos(), "errors.New(fmt.Sprintf(...)): use fmt.Errorf")
	}
}

// isPkgFunc reports whether fun is a selector pkg.Name for the given
// import path's package name.
func (cx *context) isPkgFunc(fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// verbRef is one formatting verb and the index of the operand it
// consumes (0-based over the variadic arguments).
type verbRef struct {
	verb rune
	arg  int
}

// formatVerbs maps each verb in a Printf-style format string to its
// operand index, accounting for %%, flags, width/precision and
// *-consumed operands. Explicit argument indexes (%[n]d) abort the scan
// — none appear in this codebase and mis-mapping would misfire.
func formatVerbs(format string) []verbRef {
	var out []verbRef
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(rs) {
			c := rs[i]
			if c == '[' {
				return nil // explicit argument index: bail out
			}
			if c == '*' {
				arg++ // width/precision operand
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.", c) || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		out = append(out, verbRef{verb: rs[i], arg: arg})
		arg++
	}
	return out
}
