package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkPoolLifetime enforces the free-list lifecycle the wormhole
// worm/message pools (and any sync.Pool) rely on: once a value flows
// into a pool put it is dead to the putting function — the pool may hand
// it to another message in the same tick, so a later read, field write,
// or event-schedule of the value observes (or corrupts) an unrelated
// in-flight object. This is exactly the returns-to-pool-before-
// evSpanDone bug class the wormhole lifecycle comments guard by hand;
// quarcflow turns it into a build failure.
//
// The pass is intraprocedural and two-phase. Phase one infers the
// package's pool-put functions: a function or method that appends one of
// its pointer parameters to a free-list slice (a field or package var
// whose name contains "pool" or "free"), plus (*sync.Pool).Put. Phase
// two runs a forward may-analysis over every function: a call to a
// recognized put marks the argument released; any later mention of the
// released variable on any path is a finding. Reassigning the variable
// revives it (it names a fresh object).
func checkPoolLifetime(cx *context) {
	puts := cx.poolPutFuncs()
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cx.flowPoolLifetime(fd, puts)
		}
	}
}

// poolPutFuncs infers the package's pool-put functions: for each, the
// index of the parameter that is retired into the free list (receiver
// counts as index -1 and is never a put target here; indexes are over
// Type.Params).
func (cx *context) poolPutFuncs() map[types.Object]int {
	puts := make(map[types.Object]int)
	for _, f := range cx.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			// Parameter objects, in declaration order.
			var params []types.Object
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					params = append(params, cx.pkg.TypesInfo.Defs[name])
				}
			}
			idx := cx.poolPutParam(fd, params)
			if idx < 0 {
				continue
			}
			if obj := cx.pkg.TypesInfo.Defs[fd.Name]; obj != nil {
				puts[obj] = idx
			}
		}
	}
	return puts
}

// poolPutParam returns the index of the parameter fd retires into a
// free list, or -1: the body appends the parameter to a pool-named
// slice, or forwards it to (*sync.Pool).Put.
func (cx *context) poolPutParam(fd *ast.FuncDecl, params []types.Object) int {
	found := -1
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found >= 0 {
			return found < 0
		}
		var candidates []ast.Expr
		switch {
		case cx.isBuiltinAppend(call) && len(call.Args) >= 2 && cx.isPoolSlice(call.Args[0]):
			candidates = call.Args[1:]
		case cx.isSyncPoolPut(call):
			candidates = call.Args
		}
		for _, arg := range candidates {
			obj := cx.objectOf(arg)
			for i, p := range params {
				if p != nil && obj == p {
					if _, ok := p.Type().Underlying().(*types.Pointer); ok {
						found = i
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func (cx *context) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := cx.pkg.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// isPoolSlice reports whether e names a free-list container: a slice
// whose identifier or field name contains "pool" or "free".
func (cx *context) isPoolSlice(e ast.Expr) bool {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	if t := cx.typeOf(e); t != nil {
		if _, ok := t.Underlying().(*types.Slice); !ok {
			return false
		}
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "pool") || strings.Contains(lower, "free")
}

// isSyncPoolPut reports whether call is (*sync.Pool).Put.
func (cx *context) isSyncPoolPut(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	t := cx.typeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// flowPoolLifetime runs the released-value analysis over one function.
func (cx *context) flowPoolLifetime(fd *ast.FuncDecl, puts map[types.Object]int) {
	tf := func(n ast.Node, f facts, report bool) {
		if ri, ok := n.(rangeIter); ok {
			n = ri.stmt.Key // iteration vars; body nodes flow separately
			if n == nil {
				return
			}
		}
		// Reads of released values first: within one statement the uses
		// happen before any put or rebind the statement performs. A plain
		// = or := left-hand identifier is a pure write, not a use — it
		// revives the variable rather than touching the pooled object.
		if report {
			if as, ok := n.(*ast.AssignStmt); ok && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
				for _, rhs := range as.Rhs {
					cx.reportReleasedUses(rhs, f)
				}
				for _, lhs := range as.Lhs {
					if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
						cx.reportReleasedUses(lhs, f)
					}
				}
			} else {
				cx.reportReleasedUses(n, f)
			}
		}
		// Kills: a whole-variable = or := binds a fresh object.
		if as, ok := n.(*ast.AssignStmt); ok && (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) {
			for _, lhs := range as.Lhs {
				if obj := cx.objectOf(lhs); obj != nil {
					f.clear(obj, factReleased)
				}
			}
		}
		// Gens: pool puts release their argument.
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range cx.putArgs(call, puts) {
				if obj := cx.objectOf(arg); obj != nil {
					f.set(obj, factReleased)
				}
			}
			return true
		})
	}
	forwardMay(fd, nil, tf)
}

// putArgs returns the argument expressions call retires into a pool:
// the inferred put parameter of a same-package put function, every
// argument of (*sync.Pool).Put, or the appended values of a direct
// append to a free-list slice.
func (cx *context) putArgs(call *ast.CallExpr, puts map[types.Object]int) []ast.Expr {
	if cx.isSyncPoolPut(call) {
		return call.Args
	}
	if cx.isBuiltinAppend(call) && len(call.Args) >= 2 && cx.isPoolSlice(call.Args[0]) {
		return call.Args[1:]
	}
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = cx.pkg.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		callee = cx.pkg.TypesInfo.Uses[fun.Sel]
	}
	if callee == nil {
		return nil
	}
	idx, ok := puts[callee]
	if !ok || idx >= len(call.Args) {
		return nil
	}
	return call.Args[idx : idx+1]
}

// reportReleasedUses flags every mention of a released variable in n,
// outside the put call that released it (the release itself is not a
// use) and outside nested function literals.
func (cx *context) reportReleasedUses(n ast.Node, f facts) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			obj := cx.pkg.TypesInfo.Uses[m]
			if !f.has(obj, factReleased) {
				return true
			}
			cx.reportf(m.Pos(), "%s is used after being returned to the pool: the free list may have already handed it to another message", m.Name)
			// One report per variable per statement is enough; revive it
			// locally so a long expression does not repeat itself.
			f.clear(obj, factReleased)
		}
		return true
	})
}
