package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkDeterminism enforces the simulation-result purity surface: in the
// configured packages (everything reachable from a wormhole Result) a
// run must be a pure function of (topology, spec, seed). Wall clocks,
// the process-global math/rand state, map iteration order, goroutine
// interleavings and multi-ready selects all smuggle in external state,
// so none of them may appear — a stray one would break bitwise
// replication in ways the golden tests only catch when a topology or
// seed changes.
func checkDeterminism(cx *context) {
	if !cx.cfg.isDeterminism(cx.pkg.Path) {
		return
	}
	for _, f := range cx.pkg.Files {
		for _, imp := range f.Imports {
			switch importPath(imp) {
			case "time":
				cx.reportf(imp.Pos(), `import of "time": wall-clock state on the simulation result path; simulated time is the engine clock`)
			case "math/rand":
				cx.reportf(imp.Pos(), `import of "math/rand": use a seeded math/rand/v2 PCG instance`)
			}
		}
		sorted := cx.sortingFuncs(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				cx.checkGlobalRand(n)
			case *ast.RangeStmt:
				if t := cx.typeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !sorted[enclosingFunc(f, n.Pos())] {
						cx.reportf(n.Pos(), "map iteration order is nondeterministic: collect and sort the keys (or range over a slice)")
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, cl := range n.Body.List {
					if cl.(*ast.CommClause).Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					cx.reportf(n.Pos(), "select over %d channels resolves multi-ready races nondeterministically", comm)
				}
			case *ast.GoStmt:
				cx.reportf(n.Pos(), "goroutine on the simulation result path: interleavings are nondeterministic (parallelism belongs at the replication layer)")
			}
			return true
		})
	}
}

// checkGlobalRand flags package-level math/rand/v2 calls: they share the
// process-global generator, so concurrent sweep workers would interleave
// draws. Only the explicit seeded constructors are allowed.
func (cx *context) checkGlobalRand(sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math/rand/v2" {
		return
	}
	switch sel.Sel.Name {
	case "New", "NewPCG", "Rand", "PCG", "Source":
		return // seeded construction and type names
	}
	cx.reportf(sel.Pos(), "rand.%s draws from the process-global generator: use a seeded *rand.Rand (rand.New(rand.NewPCG(seed, stream)))", sel.Sel.Name)
}

func importPath(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}

// sortingFuncs returns the set of function declarations in f whose body
// calls a recognized sort routine. A map range inside such a function is
// the canonical collect-keys-then-sort idiom and is deterministic once
// sorted, so it is exempt from the map-iteration diagnostic.
func (cx *context) sortingFuncs(f *ast.File) map[*ast.FuncDecl]bool {
	out := make(map[*ast.FuncDecl]bool)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := cx.pkg.TypesInfo.Uses[id].(*types.PkgName); ok {
						switch pn.Imported().Path() {
						case "sort", "slices":
							out[fd] = true
							return false
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// enclosingFunc returns the function declaration containing pos, or nil.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
