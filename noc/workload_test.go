package noc

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// The pre-PR goldens: results of the seed configurations captured on the
// commit before the workload-diversity subsystem landed. The default
// workload (poisson arrivals, uniform destinations) and its explicit
// Arrival("poisson")/Permutation("uniform") spelling must reproduce these
// numbers bitwise — the registries are a pure refactor of the default
// path.
const (
	goldenQuarc16Unicast   = 37.372764155286347
	goldenQuarc16Multicast = 40.923185295421526
	goldenQuarc16CI        = 0.67865456259690327
	goldenQuarc16MaxUtil   = 0.092463159886420135
	goldenQuarc16Generated = 593
	goldenQuarc16Completed = 592
	goldenQuarc16Events    = 6731

	goldenMesh4x4Unicast   = 20.718250617563978
	goldenMesh4x4Multicast = 20.334840974537567
	goldenMesh4x4CI        = 0.062361547848914893
	goldenMesh4x4MaxUtil   = 0.082375199101008281
	goldenMesh4x4Generated = 1306
	goldenMesh4x4Completed = 1304
	goldenMesh4x4Events    = 15181
)

func quarc16Golden(t *testing.T, extra ...Option) Result {
	t.Helper()
	opts := []Option{
		Quarc(16), MsgLen(32), Rate(0.002), Alpha(0.05),
		LocalizedDests(PortL, 4),
		Seed(2024), Warmup(2000), Measure(20000),
	}
	s, err := NewScenario(append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mesh4x4Golden(t *testing.T, extra ...Option) Result {
	t.Helper()
	opts := []Option{
		Mesh(4, 4), MsgLen(16), Rate(0.004), Alpha(0.05),
		HighLowDests([]int{1, 3}, []int{2}),
		Seed(31), Warmup(2000), Measure(20000),
	}
	s, err := NewScenario(append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func checkGolden(t *testing.T, label string, r Result,
	uni, mc, ci, util float64, gen, comp int64, events uint64) {
	t.Helper()
	eq(t, label+" unicast", r.Unicast, uni)
	eq(t, label+" multicast", r.Multicast, mc)
	eq(t, label+" unicast CI", r.UnicastCI, ci)
	eq(t, label+" max util", r.MaxUtil, util)
	if r.Generated != gen || r.Completed != comp {
		t.Errorf("%s messages: (%d/%d), want (%d/%d)", label, r.Completed, r.Generated, comp, gen)
	}
	if r.Events != events {
		t.Errorf("%s events: %d, want %d", label, r.Events, events)
	}
}

// TestPoissonPinnedToPrePRGoldens is the registry-refactor differential:
// the default workload, and the same workload spelled through the new
// arrival/spatial registries, reproduce the pre-PR results bitwise on
// both seed topologies.
func TestPoissonPinnedToPrePRGoldens(t *testing.T) {
	variants := [][]Option{
		nil, // the default path
		{Arrival("poisson")},
		{Permutation("uniform")},
		{Arrival("poisson"), Permutation("uniform")},
	}
	for i, extra := range variants {
		r := quarc16Golden(t, extra...)
		checkGolden(t, "quarc16", r,
			goldenQuarc16Unicast, goldenQuarc16Multicast, goldenQuarc16CI, goldenQuarc16MaxUtil,
			goldenQuarc16Generated, goldenQuarc16Completed, goldenQuarc16Events)
		m := mesh4x4Golden(t, extra...)
		checkGolden(t, "mesh4x4", m,
			goldenMesh4x4Unicast, goldenMesh4x4Multicast, goldenMesh4x4CI, goldenMesh4x4MaxUtil,
			goldenMesh4x4Generated, goldenMesh4x4Completed, goldenMesh4x4Events)
		if t.Failed() {
			t.Fatalf("variant %d diverged from the pre-PR goldens", i)
		}
	}
}

// resultsEqual compares every numeric field of two simulator results
// bitwise (NaN == NaN counts as equal, as in eq).
func resultsEqual(a, b Result) bool {
	feq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return feq(a.Unicast, b.Unicast) && feq(a.Multicast, b.Multicast) &&
		feq(a.UnicastCI, b.UnicastCI) && feq(a.MulticastCI, b.MulticastCI) &&
		feq(a.MaxUtil, b.MaxUtil) && feq(a.Time, b.Time) &&
		a.UnicastN == b.UnicastN && a.MulticastN == b.MulticastN &&
		a.Generated == b.Generated && a.Completed == b.Completed &&
		a.Events == b.Events && a.Saturated == b.Saturated
}

// TestRecordReplayRoundTrip pins the trace subsystem end to end: a run
// recorded under a bursty arrival process and a permutation pattern
// replays to the exact same Result, directly and after a round trip
// through both serialization formats.
func TestRecordReplayRoundTrip(t *testing.T) {
	base, err := NewScenario(
		Quarc(16), MsgLen(16), Rate(0.003), Alpha(0.1),
		LocalizedDests(PortL, 3),
		OnOff(6, 0.3),
		Seed(99), Warmup(1000), Measure(10000),
	)
	if err != nil {
		t.Fatal(err)
	}
	trace := &TraceWorkload{}
	rec, err := base.With(Record(trace))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Simulator{}.Evaluate(rec)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Empty() || trace.Messages() == 0 {
		t.Fatal("recording captured no messages")
	}
	if trace.Nodes() != 16 {
		t.Fatalf("trace nodes = %d, want 16", trace.Nodes())
	}

	replayed, err := base.With(Replay(trace))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Simulator{}.Evaluate(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(orig, again) {
		t.Fatalf("direct replay diverged:\noriginal %+v\nreplayed %+v", orig, again)
	}

	for _, format := range []string{"binary", "jsonl"} {
		var buf bytes.Buffer
		var err error
		if format == "binary" {
			err = trace.WriteBinary(&buf)
		} else {
			err = trace.WriteJSONL(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadTraceWorkload(&buf)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		rs, err := base.With(Replay(loaded))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulator{}.Evaluate(rs)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(orig, res) {
			t.Fatalf("%s round-trip replay diverged:\noriginal %+v\nreplayed %+v", format, orig, res)
		}
	}
}

// TestRecordReplayValidation covers the trace options' fail-fast paths.
func TestRecordReplayValidation(t *testing.T) {
	trace := &TraceWorkload{}
	if _, err := NewScenario(Quarc(16), Rate(0.002), Replay(trace)); err == nil {
		t.Error("replay of an empty trace accepted")
	}
	if _, err := NewScenario(Quarc(16), Rate(0.002), Record(trace), Replay(trace)); err == nil {
		t.Error("record+replay on one scenario accepted")
	}
	if _, err := NewScenario(Quarc(16), Rate(0.002), Record(trace), Replications(4)); err == nil {
		t.Error("recording with replications accepted")
	}
	if _, err := NewScenario(Quarc(16), Rate(0.002), Record(nil)); err == nil {
		t.Error("Record(nil) accepted")
	}

	// Record a real trace, then try to replay it on a different size.
	s, err := NewScenario(Quarc(16), Rate(0.003), Record(trace), Warmup(100), Measure(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Simulator{}).Evaluate(s); err != nil {
		t.Fatal(err)
	}
	// Recording is simulator-only but must not block the model: the
	// generative workload it predicts is unchanged by a Record option.
	if _, err := (Model{}).Evaluate(s); err != nil {
		t.Errorf("model rejected a recording scenario: %v", err)
	}
	if _, err := NewScenario(Quarc(32), Rate(0.003), Replay(trace)); err == nil {
		t.Error("16-node trace accepted on a 32-node network")
	}
	if _, err := NewScenario(Mesh(4, 4), Rate(0.003), Replay(trace)); err == nil {
		t.Error("quarc-16 trace accepted on a 16-node mesh (channel fingerprint)")
	}
	if _, err := NewScenario(Quarc(16), Rate(0.003), MsgLen(8), Replay(trace)); err == nil {
		t.Error("trace recorded at the default message length accepted under MsgLen(8)")
	}
	if _, err := Sweep(s, SweepOptions{Rates: []float64{0.001, 0.002},
		Evaluators: []Evaluator{Simulator{}}}); err == nil {
		t.Error("trace recording inside a sweep accepted")
	}
	// The model has nothing to record or replay.
	sm, err := NewScenario(Quarc(16), Rate(0.003), Replay(trace))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Model{}).Evaluate(sm); err == nil {
		t.Error("model accepted a trace-driven scenario")
	} else if !errors.Is(err, ErrModelInapplicable) {
		t.Errorf("replay rejection does not match ErrModelInapplicable: %v", err)
	}
	if _, err := Sweep(sm, SweepOptions{Rates: []float64{0.001, 0.002},
		Evaluators: []Evaluator{Simulator{}}}); err == nil {
		t.Error("trace replay inside a sweep accepted")
	}
}

// TestPermutationBuilders spot-checks every built-in permutation family
// against hand-computed mappings.
func TestPermutationBuilders(t *testing.T) {
	permOf := func(t *testing.T, s *Scenario) []int {
		t.Helper()
		spec := s.trafficSpec()
		if spec.Perm == nil {
			t.Fatal("scenario has no permutation")
		}
		out := make([]int, len(spec.Perm))
		for i, d := range spec.Perm {
			out[i] = int(d)
		}
		return out
	}
	cases := []struct {
		name string
		opts []Option
		src  int
		want int
	}{
		// mesh-4x4 transpose: node 6 = (2,1) -> (1,2) = node 9.
		{"transpose", []Option{Mesh(4, 4), Permutation("transpose")}, 6, 9},
		// quarc-16 bit transpose: 0b0001 -> swap halves -> 0b0100.
		{"transpose", []Option{Quarc(16), Permutation("transpose")}, 1, 4},
		// bit-reversal on 16 nodes: 0b0001 -> 0b1000.
		{"bit-reversal", []Option{Quarc(16), Permutation("bit-reversal")}, 1, 8},
		// bit-complement: 0b0011 -> 0b1100.
		{"bit-complement", []Option{Quarc(16), Permutation("bit-complement")}, 3, 12},
		// shuffle: rotate left, 0b0101 -> 0b1010.
		{"shuffle", []Option{Quarc(16), Permutation("shuffle")}, 5, 10},
		// ring tornado on 16: src + 7.
		{"tornado", []Option{Quarc(16), Permutation("tornado")}, 2, 9},
		// mesh tornado on 4x4: (0,0) -> (1,1) = node 5.
		{"tornado", []Option{Mesh(4, 4), Permutation("tornado")}, 0, 5},
	}
	for _, c := range cases {
		s, err := NewScenario(append(c.opts, Rate(0.001), MsgLen(8))...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := permOf(t, s)[c.src]; got != c.want {
			t.Errorf("%s: perm[%d] = %d, want %d", c.name, c.src, got, c.want)
		}
		if s.SpatialName() != c.name {
			t.Errorf("SpatialName() = %q, want %q", s.SpatialName(), c.name)
		}
	}
}

// TestSpatialBuilderErrors covers the geometry preconditions.
func TestSpatialBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"transpose non-square", []Option{Mesh(4, 2), Permutation("transpose")}},
		{"bit-reversal non-pow2", []Option{Quarc(12), Permutation("bit-reversal")}},
		{"shuffle non-pow2", []Option{Spidergon(12), Permutation("shuffle")}},
		{"unknown spatial", []Option{Quarc(16), Permutation("spiral")}},
		{"hotspot no nodes", []Option{Quarc(16), HotspotDests(0.5, nil, nil)}},
		{"hotspot bad frac", []Option{Quarc(16), HotspotDests(1.5, []int{1}, nil)}},
		{"hotspot out of range", []Option{Quarc(16), HotspotDests(0.5, []int{40}, nil)}},
		{"hotspot weight mismatch", []Option{Quarc(16), HotspotDests(0.5, []int{1, 2}, []float64{1})}},
		{"hotspot bad weight", []Option{Quarc(16), HotspotDests(0.5, []int{1, 2}, []float64{1, -3})}},
	}
	for _, c := range cases {
		if _, err := NewScenario(append(c.opts, Rate(0.001))...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestHotspotDestsMatchesSingleHotspot pins the generalization: the
// weight-matrix hotspot with one node describes the same distribution as
// the classic single-hotspot option, so the analytical model produces
// (numerically) the same prediction for both.
func TestHotspotDestsMatchesSingleHotspot(t *testing.T) {
	classic, err := NewScenario(Quarc(16), MsgLen(16), Rate(0.002), Hotspot(0.3, 5))
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := NewScenario(Quarc(16), MsgLen(16), Rate(0.002), HotspotDests(0.3, []int{5}, nil))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Model{}.Evaluate(classic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Model{}.Evaluate(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Unicast-b.Unicast) > 1e-9*math.Abs(a.Unicast) {
		t.Errorf("model unicast: classic %v != matrix %v", a.Unicast, b.Unicast)
	}
}

// TestModelRejectsNonPoisson: the M/G/1 model must refuse arrival
// processes that break its Poisson assumption rather than silently
// answering.
func TestModelRejectsNonPoisson(t *testing.T) {
	s, err := NewScenario(Quarc(16), Rate(0.002), OnOff(8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Model{}).Evaluate(s); err == nil {
		t.Fatal("model accepted onoff arrivals")
	} else if !errors.Is(err, ErrModelInapplicable) {
		t.Fatalf("non-poisson rejection does not match ErrModelInapplicable: %v", err)
	}
	sim, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatalf("simulator rejected onoff arrivals: %v", err)
	}
	if sim.Generated == 0 {
		t.Fatal("onoff run generated nothing")
	}
}

// TestModelSimAgreeOnPermutation cross-checks the two evaluators on a
// permutation workload at low load, where the model is essentially
// exact: the deterministic flows must line up with what the simulator
// measures.
func TestModelSimAgreeOnPermutation(t *testing.T) {
	s, err := NewScenario(
		Mesh(4, 4), MsgLen(8), Rate(0.0005),
		Permutation("transpose"),
		Seed(5), Warmup(2000), Measure(40000),
	)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Model{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if sim.UnicastN == 0 {
		t.Fatal("no unicasts measured")
	}
	if re := math.Abs(pred.Unicast-sim.Unicast) / sim.Unicast; re > 0.05 {
		t.Errorf("transpose at low load: model %v vs sim %v (rel err %.2f%%)",
			pred.Unicast, sim.Unicast, 100*re)
	}
}

// TestSweepBitwiseStableWithNewWorkloads extends the sweep's
// worker-count invariance to the new subsystem: pooled workers reset
// per-node arrival state and permutation destinations, so any worker
// count produces bitwise-identical sweeps.
func TestSweepBitwiseStableWithNewWorkloads(t *testing.T) {
	s, err := NewScenario(
		Quarc(16), MsgLen(8), OnOff(4, 0.5), Permutation("tornado"),
		Seed(3), Warmup(500), Measure(5000),
	)
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.003}
	run := func(workers int) []SweepPoint {
		t.Helper()
		res, err := Sweep(s, SweepOptions{Rates: rates, Workers: workers,
			Evaluators: []Evaluator{Simulator{}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Points
	}
	serial, parallel := run(1), run(4)
	for i := range serial {
		a, b := serial[i].Results[0], parallel[i].Results[0]
		if !resultsEqual(a, b) {
			t.Fatalf("rate %v: workers=1 and workers=4 diverged:\n%+v\n%+v",
				serial[i].Rate, a, b)
		}
	}
}

// TestRegistriesListNewFamilies pins the discoverability surface.
func TestRegistriesListNewFamilies(t *testing.T) {
	arr := Arrivals()
	for _, want := range []string{"bernoulli", "onoff", "periodic", "poisson"} {
		if !contains(arr, want) {
			t.Errorf("Arrivals() = %v, missing %q", arr, want)
		}
	}
	sp := Spatials()
	for _, want := range []string{"uniform", "transpose", "bit-reversal",
		"bit-complement", "shuffle", "tornado", "hotspot"} {
		if !contains(sp, want) {
			t.Errorf("Spatials() = %v, missing %q", sp, want)
		}
	}
	if _, err := NewScenario(Quarc(16), Rate(0.001), Arrival("fractal")); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
