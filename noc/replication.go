package noc

import (
	"runtime"
	"sync"

	"quarc/internal/obs"
	"quarc/internal/stats"
)

// replicator is implemented by evaluators whose runs replicate under
// derived seeds (the Simulator). Sweep and simulateReplicated fan the
// replications of such evaluators out as individual jobs and aggregate
// them with aggregateReplications; evaluators without the interface (the
// deterministic Model) run once per point.
type replicator interface {
	evaluateRep(s *Scenario, rep int) (Result, error)
}

// repSeed derives the seed of replication rep from the scenario seed via
// a splitmix64 finalizer. Replication 0 uses the scenario seed itself, so
// a single-replication evaluation is bitwise-identical to the plain
// single-run path.
func repSeed(base uint64, rep int) uint64 {
	if rep == 0 {
		return base
	}
	z := base + uint64(rep)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// simulateReplicated runs the scenario's configured replications and
// aggregates them. Replications fan out over Parallelism(k) workers, each
// with its own pooled network reused across the replications it runs (the
// same Reset path a sweep worker uses); results are aggregated in
// replication order, so the outcome is bitwise-identical for every k.
func simulateReplicated(s *Scenario, pool *networkPool) (Result, error) {
	n := s.cfg.replications
	if n <= 1 {
		return simulate(s, pool, s.cfg.seed)
	}
	k := s.cfg.parallelism
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > n {
		k = n
	}
	results := make([]Result, n)
	errs := make([]error, n)
	if k == 1 {
		// Serial: reuse the caller's pool (or one local pool) across all
		// replications.
		if pool == nil {
			pool = &networkPool{}
		}
		for rep := 0; rep < n; rep++ {
			results[rep], errs[rep] = simulate(s, pool, repSeed(s.cfg.seed, rep))
		}
	} else {
		ch := make(chan int, n)
		for rep := 0; rep < n; rep++ {
			ch <- rep
		}
		close(ch)
		var wg sync.WaitGroup
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var p networkPool // per-worker: reused across its replications
				for rep := range ch {
					results[rep], errs[rep] = simulate(s, &p, repSeed(s.cfg.seed, rep))
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return aggregateReplications(results), nil
}

// aggregateReplications folds per-replication results into one Result by
// the independent-replications method: latencies become grand means over
// the replication means with z=1.96 confidence half-widths from the
// across-replication variance (stats.Replicates); message and event
// counts sum; Time is the total simulated time; Saturated is sticky
// (any saturated replication marks the point); MaxUtil is the worst
// replication's peak. Detail and trace output, which do not aggregate
// meaningfully, are taken from replication 0. The fold runs in
// replication order, so the aggregate is independent of how the
// replications were scheduled.
func aggregateReplications(results []Result) Result {
	var uni, mc stats.Replicates
	agg := Result{
		Evaluator:    results[0].Evaluator,
		Replications: len(results),
	}
	for _, r := range results {
		uni.Add(r.Unicast)
		mc.Add(r.Multicast)
		agg.UnicastN += r.UnicastN
		agg.MulticastN += r.MulticastN
		agg.Generated += r.Generated
		agg.Completed += r.Completed
		agg.Events += r.Events
		agg.Time += r.Time
		if r.Saturated {
			agg.Saturated = true
		}
		if r.MaxUtil > agg.MaxUtil {
			agg.MaxUtil = r.MaxUtil
		}
	}
	agg.Unicast = uni.Mean()
	agg.UnicastCI = uni.HalfWidth(1.96)
	agg.Multicast = mc.Mean()
	agg.MulticastCI = mc.HalfWidth(1.96)
	agg.DetailSummary = results[0].DetailSummary
	agg.TraceText = results[0].TraceText
	if results[0].Series != nil {
		// Combine per-replication series in replication order (each
		// replication records into its own collector, so the combined
		// series is also independent of Parallelism scheduling).
		series := make([]*TimeSeries, 0, len(results))
		for _, r := range results {
			if r.Series != nil {
				series = append(series, r.Series)
			}
		}
		agg.Series = obs.Combine(series)
	}
	return agg
}
