package noc

import (
	"math"
	"math/rand/v2"
	"testing"

	"quarc/internal/core"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// The golden tests pin the refactor down: a scenario evaluated through the
// public API must reproduce, bitwise, what the pre-refactor pipeline
// produced by hand-wiring the internal packages.

func eq(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.IsNaN(got) && math.IsNaN(want) {
		return
	}
	if got != want {
		t.Errorf("%s: noc %v != direct %v (must be bitwise identical)", name, got, want)
	}
}

func TestGoldenQuarc16(t *testing.T) {
	const (
		n      = 16
		msgLen = 32
		rate   = 0.002
		alpha  = 0.05
		dests  = 4
		seed   = 2024
	)
	s, err := NewScenario(
		Quarc(n), MsgLen(msgLen), Rate(rate), Alpha(alpha),
		LocalizedDests(PortL, dests),
		Seed(seed), Warmup(2000), Measure(20000),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Direct pipeline against internal packages.
	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.LocalizedSet(topology.PortL, dests)
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set}
	pred, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: msgLen})
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{MsgLen: msgLen, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	direct := nw.Run()

	model, err := Model{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "model unicast", model.Unicast, pred.UnicastLatency)
	eq(t, "model multicast", model.Multicast, pred.MulticastLatency)
	eq(t, "model max rho", model.MaxRho, pred.MaxRho)
	if model.Iterations != pred.Iterations || model.Converged != pred.Converged {
		t.Errorf("model fixed point: noc (%d, %v) != direct (%d, %v)",
			model.Iterations, model.Converged, pred.Iterations, pred.Converged)
	}

	sim, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "sim unicast", sim.Unicast, direct.Unicast.Mean())
	eq(t, "sim multicast", sim.Multicast, direct.Multicast.Mean())
	eq(t, "sim unicast CI", sim.UnicastCI, direct.UnicastBM.HalfWidth(1.96))
	eq(t, "sim max util", sim.MaxUtil, direct.MaxUtil)
	if sim.Completed != direct.Completed || sim.Generated != direct.Generated {
		t.Errorf("sim messages: noc (%d/%d) != direct (%d/%d)",
			sim.Completed, sim.Generated, direct.Completed, direct.Generated)
	}
	if sim.Events != direct.Events {
		t.Errorf("sim events: noc %d != direct %d", sim.Events, direct.Events)
	}
}

func TestGoldenQuarc16RandomDests(t *testing.T) {
	const (
		n, msgLen = 16, 16
		rate      = 0.003
		alpha     = 0.10
		dests     = 5
		setSeed   = 61
		simSeed   = 7
	)
	s, err := NewScenario(
		Quarc(n), MsgLen(msgLen), Rate(rate), Alpha(alpha),
		RandomDests(dests, setSeed),
		Seed(simSeed), Warmup(2000), Measure(20000),
	)
	if err != nil {
		t.Fatal(err)
	}

	q, err := topology.NewQuarc(n)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	set, err := rt.RandomSet(rand.New(rand.NewPCG(setSeed, 0)), dests)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SetString(); got != set.String() {
		t.Fatalf("random set mismatch: noc {%s} != direct {%s}", got, set.String())
	}
	spec := traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set}
	pred, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: msgLen})
	if err != nil {
		t.Fatal(err)
	}
	w, err := traffic.NewWorkload(rt, spec, simSeed)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), w, wormhole.Config{MsgLen: msgLen, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	direct := nw.Run()

	model, err := Model{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "model unicast", model.Unicast, pred.UnicastLatency)
	eq(t, "model multicast", model.Multicast, pred.MulticastLatency)

	sim, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "sim unicast", sim.Unicast, direct.Unicast.Mean())
	eq(t, "sim multicast", sim.Multicast, direct.Multicast.Mean())
}

func TestGoldenMesh4x4(t *testing.T) {
	const (
		w, h   = 4, 4
		msgLen = 16
		rate   = 0.004
		alpha  = 0.05
		seed   = 31
	)
	high, low := []int{1, 3}, []int{2}
	s, err := NewScenario(
		Mesh(w, h), MsgLen(msgLen), Rate(rate), Alpha(alpha),
		HighLowDests(high, low),
		Seed(seed), Warmup(2000), Measure(20000),
	)
	if err != nil {
		t.Fatal(err)
	}

	m, err := topology.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewMeshRouter(m)
	set, err := rt.HighLowSet(high, low)
	if err != nil {
		t.Fatal(err)
	}
	spec := traffic.Spec{Rate: rate, MulticastFrac: alpha, Set: set}
	pred, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: msgLen})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := traffic.NewWorkload(rt, spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := wormhole.New(rt.Graph(), wl, wormhole.Config{MsgLen: msgLen, Warmup: 2000, Measure: 20000})
	if err != nil {
		t.Fatal(err)
	}
	direct := nw.Run()

	model, err := Model{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "model unicast", model.Unicast, pred.UnicastLatency)
	eq(t, "model multicast", model.Multicast, pred.MulticastLatency)

	sim, err := Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "sim unicast", sim.Unicast, direct.Unicast.Mean())
	eq(t, "sim multicast", sim.Multicast, direct.Multicast.Mean())
	if sim.Events != direct.Events {
		t.Errorf("sim events: noc %d != direct %d", sim.Events, direct.Events)
	}
}

// TestGoldenModelVariants pins the model-knob plumbing: the scenario's
// ModelService/ModelWait options must select the same code paths as the
// core input fields.
func TestGoldenModelVariants(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(32), Rate(0.006))
	if err != nil {
		t.Fatal(err)
	}
	q, err := topology.NewQuarc(16)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewQuarcRouter(q)
	spec := traffic.Spec{Rate: 0.006}

	sTail, err := s.With(ModelService(TailRelease))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Model{}.Evaluate(sTail)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: 32,
		ServiceFormula: core.TailRelease})
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "tail-release unicast", got.Unicast, want.UnicastLatency)

	sEq3, err := s.With(ModelWait(PaperEq3Literal))
	if err != nil {
		t.Fatal(err)
	}
	got3, err := Model{}.Evaluate(sEq3)
	if err != nil {
		t.Fatal(err)
	}
	want3, err := core.Predict(core.Input{Router: rt, Spec: spec, MsgLen: 32,
		WaitFormula: core.PaperEq3Literal})
	if err != nil {
		t.Fatal(err)
	}
	eq(t, "eq3-literal unicast", got3.Unicast, want3.UnicastLatency)
}
