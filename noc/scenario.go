package noc

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"

	"quarc/internal/obs"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// Sentinel errors for scenario construction. Build-time validation wraps
// one of these into every rejection, so callers (and tests) can classify
// failures with errors.Is instead of string-matching.
var (
	// ErrOptionConflict marks option combinations that contradict each
	// other (e.g. Record together with Replay).
	ErrOptionConflict = errors.New("noc: conflicting scenario options")
	// ErrInvalidOption marks out-of-range or nonsensical option values
	// (e.g. a zero measurement window, replications < 1).
	ErrInvalidOption = errors.New("noc: invalid scenario option")
)

// WaitFormula selects the M/G/1 waiting-time formula of the analytical
// model (see DESIGN.md §2).
type WaitFormula int

const (
	// PKStandard is the standard Pollaczek-Khinchine mean wait, the
	// default and the form that reproduces the simulator.
	PKStandard WaitFormula = iota
	// PaperEq3Literal evaluates the paper's Eq. 3 exactly as printed; it
	// exists to demonstrate the printed formula cannot reproduce the
	// paper's own figures.
	PaperEq3Literal
)

// ServiceFormula selects the channel service-time recurrence of the
// analytical model (see DESIGN.md §3).
type ServiceFormula int

const (
	// PaperEq6 is the paper's recurrence (one extra cycle per downstream
	// hop), the default.
	PaperEq6 ServiceFormula = iota
	// TailRelease drops the per-hop cycle, modelling the physical channel
	// holding time exactly.
	TailRelease
)

// config is the declarative description a Scenario is resolved from.
type config struct {
	topoName   string
	topoCfg    TopologyConfig
	routerName string // empty selects the topology's default router
	patName    string
	patCfg     PatternConfig

	msgLen      int
	rate        float64
	alpha       float64
	hotspotFrac float64
	hotspotNode int

	// workload-diversity knobs: the arrival process pacing injection and
	// the spatial pattern choosing unicast destinations (both default to
	// the paper's poisson + uniform), plus trace capture/replay.
	arrival     string // empty selects "poisson"
	burstLen    float64
	dutyCycle   float64
	spatialName string // empty selects "uniform"
	spatialCfg  SpatialConfig
	record      *TraceWorkload
	replay      *TraceWorkload

	// analytical-model knobs (zero selects the core defaults)
	damping float64
	maxIter int
	tol     float64
	wait    WaitFormula
	service ServiceFormula

	// simulator knobs
	seed             uint64
	warmup           float64
	measure          float64
	satQueue         int
	drain            bool
	detail           bool
	mcPriority       bool
	traceEnabled     bool
	traceNode        int
	traceLimit       int
	replications     int
	parallelism      int
	intraParallelism int

	// observability knobs: metricsBuckets > 0 turns the hook recorder on
	// and sizes Result.Series; metricsSink optionally tees the raw record
	// stream into a caller-supplied sink (e.g. an obs.FileSink).
	metricsBuckets int
	metricsSink    obs.Sink
}

// Option mutates a scenario configuration. Options are applied in order;
// later options override earlier ones.
type Option func(*config) error

// Scenario is one fully resolved evaluation configuration: a routed
// topology, a workload and the engine knobs. Build it with NewScenario and
// hand it to any Evaluator; the same Scenario value drives the analytical
// model and the discrete-event simulator, so both sides always see exactly
// the same configuration.
type Scenario struct {
	cfg    config
	router routing.Router
	set    routing.MulticastSet
	dest   traffic.Dest
}

// Topology options.

// Quarc selects the Quarc NoC with n nodes (multiple of 4, at least 8) and
// its all-port BRCP router.
func Quarc(n int) Option { return Topology("quarc", TopologyConfig{N: n}) }

// QuarcOnePort selects the one-port Quarc variant (identical links, a
// single injection/ejection port) — the ablation baseline.
func QuarcOnePort(n int) Option { return Topology("quarc-oneport", TopologyConfig{N: n}) }

// Spidergon selects the Spidergon NoC with n nodes.
func Spidergon(n int) Option { return Topology("spidergon", TopologyConfig{N: n}) }

// Mesh selects a w x h mesh with XY unicast routing and dual-path Hamilton
// multicast.
func Mesh(w, h int) Option { return Topology("mesh", TopologyConfig{W: w, H: h}) }

// Torus selects a w x h torus.
func Torus(w, h int) Option { return Topology("torus", TopologyConfig{W: w, H: h}) }

// Hypercube selects a hypercube with the given number of dimensions.
func Hypercube(dims int) Option { return Topology("hypercube", TopologyConfig{Dims: dims}) }

// Topology selects a registered topology by name — the declarative form
// the named options above reduce to.
func Topology(name string, c TopologyConfig) Option {
	return func(cfg *config) error {
		cfg.topoName = name
		cfg.topoCfg = c
		return nil
	}
}

// Router overrides the topology's default router with a registered one.
func Router(name string) Option {
	return func(cfg *config) error {
		cfg.routerName = name
		return nil
	}
}

// Workload options.

// MsgLen sets the message length in flits (at least 2; default 32).
func MsgLen(flits int) Option {
	return func(cfg *config) error {
		cfg.msgLen = flits
		return nil
	}
}

// Rate sets the per-node Poisson message generation rate (messages/cycle).
func Rate(rate float64) Option {
	return func(cfg *config) error {
		cfg.rate = rate
		return nil
	}
}

// Alpha sets the multicast fraction of generated messages.
func Alpha(alpha float64) Option {
	return func(cfg *config) error {
		cfg.alpha = alpha
		return nil
	}
}

// Hotspot skews unicast destinations: with probability frac a unicast goes
// to node instead of a uniform destination. For several hotspots with
// individual weights use HotspotDests.
func Hotspot(frac float64, node int) Option {
	return func(cfg *config) error {
		cfg.hotspotFrac = frac
		cfg.hotspotNode = node
		return nil
	}
}

// Arrival-process options (when a node injects).

// Arrival selects a registered arrival process by name: "poisson" (the
// default), "bernoulli" (per-cycle coin flips, arrivals on the cycle
// grid), "onoff" (bursts — configure with OnOff) or "periodic"
// (deterministic spacing with a random per-node phase). All processes
// offer the same long-run Rate; they differ in how the load clumps.
func Arrival(name string) Option {
	return func(cfg *config) error {
		cfg.arrival = name
		return nil
	}
}

// OnOff selects the bursty on/off arrival process: bursts of
// geometrically many messages (mean burstLen >= 1) injected at
// Rate/duty, separated by off-periods sized so the long-run rate stays
// Rate. duty in (0,1]; smaller values concentrate the same offered load
// into sharper bursts.
func OnOff(burstLen, duty float64) Option {
	return func(cfg *config) error {
		cfg.arrival = "onoff"
		cfg.burstLen = burstLen
		cfg.dutyCycle = duty
		return nil
	}
}

// Spatial-pattern options (where a unicast goes).

// Permutation selects a registered spatial pattern by name: "transpose",
// "bit-reversal", "bit-complement", "shuffle" or "tornado" (or "uniform",
// the default). Each source then sends all its unicasts to one fixed
// destination; a source the permutation maps to itself falls silent, the
// standard convention. Multicasts (Alpha > 0) still follow the multicast
// destination set.
func Permutation(name string) Option { return Spatial(name, SpatialConfig{}) }

// HotspotDests is the weight-matrix hotspot pattern: fraction frac of
// every source's unicasts is split over the given nodes proportionally to
// weights (nil means equally), the rest is uniform. The single-hotspot
// Hotspot option is the special case of one node.
func HotspotDests(frac float64, nodes []int, weights []float64) Option {
	return Spatial("hotspot", SpatialConfig{Frac: frac, Nodes: nodes, Weights: weights})
}

// Spatial selects a registered spatial (unicast-destination) pattern by
// name — the declarative form Permutation and HotspotDests reduce to.
func Spatial(name string, c SpatialConfig) Option {
	return func(cfg *config) error {
		cfg.spatialName = name
		cfg.spatialCfg = c
		return nil
	}
}

// Traffic-pattern options.

// RandomDests selects k multicast destinations uniformly at random
// (reproducibly, from seed) — the paper's Figure 6 regime.
func RandomDests(k int, seed uint64) Option {
	return Pattern("random", PatternConfig{K: k, Seed: seed})
}

// LocalizedDests puts all k multicast destinations on one rim/port — the
// paper's Figure 7 regime. Quarc ports are PortL, PortCL, PortCR, PortR.
func LocalizedDests(port, k int) Option {
	return Pattern("localized", PatternConfig{Port: port, K: k})
}

// Broadcast targets every node in the network.
func Broadcast() Option { return Pattern("broadcast", PatternConfig{}) }

// HighLowDests selects Hamilton-path offsets for mesh/torus multicast:
// high lists forward offsets, low backward ones.
func HighLowDests(high, low []int) Option {
	return Pattern("highlow", PatternConfig{High: high, Low: low})
}

// Pattern selects a registered traffic pattern by name — the declarative
// form the named options above reduce to.
func Pattern(name string, c PatternConfig) Option {
	return func(cfg *config) error {
		cfg.patName = name
		cfg.patCfg = c
		return nil
	}
}

// Analytical-model options.

// ModelDamping sets the fixed-point damping factor in (0,1].
func ModelDamping(d float64) Option {
	return func(cfg *config) error {
		cfg.damping = d
		return nil
	}
}

// ModelMaxIter bounds the fixed-point iterations.
func ModelMaxIter(n int) Option {
	return func(cfg *config) error {
		cfg.maxIter = n
		return nil
	}
}

// ModelTol sets the fixed-point convergence tolerance.
func ModelTol(tol float64) Option {
	return func(cfg *config) error {
		cfg.tol = tol
		return nil
	}
}

// ModelWait selects the M/G/1 waiting-time formula.
func ModelWait(f WaitFormula) Option {
	return func(cfg *config) error {
		cfg.wait = f
		return nil
	}
}

// ModelService selects the service-time recurrence.
func ModelService(f ServiceFormula) Option {
	return func(cfg *config) error {
		cfg.service = f
		return nil
	}
}

// Simulator options.

// Seed sets the simulation seed (default 1).
func Seed(seed uint64) Option {
	return func(cfg *config) error {
		cfg.seed = seed
		return nil
	}
}

// Warmup sets the number of cycles simulated before statistics are
// collected (default 10000).
func Warmup(cycles float64) Option {
	return func(cfg *config) error {
		cfg.warmup = cycles
		return nil
	}
}

// Measure sets the measurement window in cycles (default 100000).
func Measure(cycles float64) Option {
	return func(cfg *config) error {
		cfg.measure = cycles
		return nil
	}
}

// SatQueue sets the injection backlog at which a run is declared
// saturated.
func SatQueue(n int) Option {
	return func(cfg *config) error {
		cfg.satQueue = n
		return nil
	}
}

// Drain lets messages generated inside the measurement window finish after
// it closes, removing the censoring bias against long-latency messages.
func Drain(on bool) Option {
	return func(cfg *config) error {
		cfg.drain = on
		return nil
	}
}

// Detail enables fine-grained output: the simulator's per-port and
// per-distance breakdowns, and the model's per-branch waits.
func Detail(on bool) Option {
	return func(cfg *config) error {
		cfg.detail = on
		return nil
	}
}

// MulticastPriority switches channel arbitration from pure FIFO to
// multicast-first.
func MulticastPriority(on bool) Option {
	return func(cfg *config) error {
		cfg.mcPriority = on
		return nil
	}
}

// Trace records the simulator events of messages generated at node,
// capped at limit events.
func Trace(node, limit int) Option {
	return func(cfg *config) error {
		cfg.traceEnabled = true
		cfg.traceNode = node
		cfg.traceLimit = limit
		return nil
	}
}

// DefaultMetricsBuckets is the Series resolution Metrics selects when
// the caller does not size it explicitly (via the Spec codec's
// canonical form, which materializes the default).
const DefaultMetricsBuckets = 100

// MaxMetricsBuckets bounds the Series resolution a scenario accepts.
const MaxMetricsBuckets = 4096

// Metrics enables the observability recorder: the simulator attaches a
// batched recording hook at every hook position and aggregates the
// records into Result.Series — per-channel utilization, injection/
// ejection counts, per-worm latency and queue-occupancy series over
// buckets equal time buckets of the run. Recording is purely
// observational: the Result's measurements are bitwise-identical to a
// run without it. The analytical model ignores this option (its result
// has no time axis). Buckets in [1, MaxMetricsBuckets].
func Metrics(buckets int) Option {
	return func(cfg *config) error {
		if buckets < 1 || buckets > MaxMetricsBuckets {
			return fmt.Errorf("%w: metrics buckets %d outside [1, %d]", ErrInvalidOption, buckets, MaxMetricsBuckets)
		}
		cfg.metricsBuckets = buckets
		return nil
	}
}

// MetricsSink additionally streams the raw observability records into
// s while Metrics is enabled — e.g. an obs WAL file sink for offline
// inspection (quarcsim -obs). The sink must be safe for concurrent
// Append when the scenario runs Replications(n > 1): every replication
// shares it. Not part of the declarative Spec surface (sinks are
// process-local, like trace record/replay targets).
func MetricsSink(s Sink) Option {
	return func(cfg *config) error {
		cfg.metricsSink = s
		return nil
	}
}

// Replications sets the number of independent seeded replications the
// simulator runs per evaluation (default 1). Each replication r derives
// its seed deterministically from the scenario seed (replication 0 uses
// the scenario seed itself, so Replications(1) is bitwise-identical to
// the single-run path). Their per-run means are aggregated into one
// Result — mean latencies with across-replication confidence intervals,
// summed counts — by the independent-replications method. The analytical
// model ignores this option (it is deterministic).
func Replications(n int) Option {
	return func(cfg *config) error {
		if n < 1 {
			return fmt.Errorf("%w: replications %d < 1", ErrInvalidOption, n)
		}
		cfg.replications = n
		return nil
	}
}

// Parallelism bounds the worker goroutines used to run replications of a
// single Evaluate call (default, and any k <= 0: GOMAXPROCS). The
// aggregated Result is bitwise-identical for every k — replication
// results are combined in replication order, not completion order. Inside
// a Sweep the option is advisory only: the sweep schedules every
// (point, replication) pair on its own shared worker pool.
func Parallelism(k int) Option {
	return func(cfg *config) error {
		cfg.parallelism = k
		return nil
	}
}

// IntraParallelism partitions a single simulation run across p shards of
// the conservative parallel engine (internal/sim/par): the network is
// split spatially, each shard advances on its own event engine, and the
// shards synchronize in lookahead-wide windows. The Result is
// bitwise-identical to the serial engine's for every p (pinned by
// TestParallelMatchesSerial and FuzzParallelVsSerial) — like Parallelism
// this is execution advice, not content, so it never enters the Spec
// fingerprint. p <= 1 selects the serial engine.
//
// The parallel engine declines configurations it cannot reproduce
// exactly and runs them serially instead: drain, detail, tracing,
// per-event hooks (metrics recording included), trace record/replay,
// and integer-lattice arrival processes ("bernoulli", "periodic") whose
// cross-node event-time ties encode the serial engine's global
// scheduling order. A run that hits saturation mid-flight is also
// rerun serially — the truncated stop is a global-order artifact. In
// every such case the option costs nothing and changes nothing.
func IntraParallelism(p int) Option {
	return func(cfg *config) error {
		cfg.intraParallelism = p
		return nil
	}
}

// Effort bundles the simulation effort knobs (warmup, measurement window,
// seed) so presets can be passed around as one value.
type Effort struct {
	Warmup  float64
	Measure float64
	Seed    uint64
}

// DefaultEffort is long enough for tight confidence intervals on every
// figure panel.
func DefaultEffort() Effort { return Effort{Warmup: 20000, Measure: 200000, Seed: 0xC0FFEE} }

// QuickEffort is a cheaper setting for tests and exploratory runs.
func QuickEffort() Effort { return Effort{Warmup: 5000, Measure: 40000, Seed: 0xC0FFEE} }

// SimEffort applies an effort preset as an option.
func SimEffort(e Effort) Option {
	return func(cfg *config) error {
		cfg.warmup = e.Warmup
		cfg.measure = e.Measure
		cfg.seed = e.Seed
		return nil
	}
}

// NewScenario resolves a declarative configuration into a runnable
// scenario: it applies the options, builds the topology and router through
// the registries and materializes the multicast destination set.
func NewScenario(opts ...Option) (*Scenario, error) {
	cfg := config{
		topoName: "quarc",
		topoCfg:  TopologyConfig{N: 16},
		patName:  "none",
		msgLen:   32,
		seed:     1,
		warmup:   10000,
		measure:  100000,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return resolve(cfg)
}

// With derives a new scenario from an existing one with extra options
// applied — the cheap way to fork a base configuration across rates,
// message lengths or model variants.
func (s *Scenario) With(opts ...Option) (*Scenario, error) {
	cfg := s.cfg
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.topoName == s.cfg.topoName && cfg.topoCfg == s.cfg.topoCfg &&
		cfg.routerName == s.cfg.routerName && cfg.patName == s.cfg.patName &&
		equalPatternConfig(cfg.patCfg, s.cfg.patCfg) &&
		cfg.spatialName == s.cfg.spatialName &&
		equalSpatialConfig(cfg.spatialCfg, s.cfg.spatialCfg) {
		// The routed topology, destination set and spatial pattern are
		// unchanged; share them (all read-only after construction).
		fork := &Scenario{cfg: cfg, router: s.router, set: s.set, dest: s.dest}
		if err := fork.validate(); err != nil {
			return nil, err
		}
		return fork, nil
	}
	return resolve(cfg)
}

func equalSpatialConfig(a, b SpatialConfig) bool {
	return a.Frac == b.Frac && slices.Equal(a.Nodes, b.Nodes) && slices.Equal(a.Weights, b.Weights)
}

func equalPatternConfig(a, b PatternConfig) bool {
	if a.K != b.K || a.Port != b.Port || a.Seed != b.Seed ||
		len(a.High) != len(b.High) || len(a.Low) != len(b.Low) {
		return false
	}
	for i := range a.High {
		if a.High[i] != b.High[i] {
			return false
		}
	}
	for i := range a.Low {
		if a.Low[i] != b.Low[i] {
			return false
		}
	}
	return true
}

func resolve(cfg config) (*Scenario, error) {
	buildTopo, err := topologyReg.lookup(cfg.topoName)
	if err != nil {
		return nil, err
	}
	routerName := cfg.routerName
	if routerName == "" {
		routerName = defaultRouterFor(cfg.topoName)
	}
	buildRouter, err := routerReg.lookup(routerName)
	if err != nil {
		return nil, err
	}
	buildPattern, err := patternReg.lookup(cfg.patName)
	if err != nil {
		return nil, err
	}

	topo, err := buildTopo(cfg.topoCfg)
	if err != nil {
		// Builder rejections (bad sizes, mismatched families) are
		// configuration mistakes like any other option error; wrap them
		// in the sentinel so callers — the quarcd error mapping in
		// particular — can classify them without string matching.
		return nil, fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	routerVal, err := buildRouter(topo)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	router, err := asRouter(routerVal)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	setVal, err := buildPattern(router, cfg.patCfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	set, ok := setVal.(routing.MulticastSet)
	if !ok {
		return nil, fmt.Errorf("noc: pattern %q returned %T, not a multicast set", cfg.patName, setVal)
	}

	spatialName := cfg.spatialName
	if spatialName == "" {
		spatialName = "uniform"
	}
	buildSpatial, err := spatialReg.lookup(spatialName)
	if err != nil {
		return nil, err
	}
	destVal, err := buildSpatial(routerVal, cfg.spatialCfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	dest, ok := destVal.(traffic.Dest)
	if !ok {
		return nil, fmt.Errorf("noc: spatial pattern %q returned %T, not a traffic.Dest", spatialName, destVal)
	}

	s := &Scenario{cfg: cfg, router: router, set: set, dest: dest}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate checks the resolved configuration; both NewScenario and the
// fast path of With run it, so a *Scenario is always well-formed. Every
// rejection wraps ErrInvalidOption or ErrOptionConflict.
func (s *Scenario) validate() error {
	if err := s.trafficSpec().ValidateFor(s.router.Graph().Nodes()); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidOption, err)
	}
	if s.cfg.msgLen < 2 {
		return fmt.Errorf("%w: message length %d too short (need >= 2 flits)", ErrInvalidOption, s.cfg.msgLen)
	}
	if s.cfg.measure <= 0 || math.IsNaN(s.cfg.measure) || math.IsInf(s.cfg.measure, 0) {
		return fmt.Errorf("%w: measurement window %v must be a positive number of cycles", ErrInvalidOption, s.cfg.measure)
	}
	if s.cfg.warmup < 0 || math.IsNaN(s.cfg.warmup) || math.IsInf(s.cfg.warmup, 0) {
		return fmt.Errorf("%w: warmup %v must be a non-negative number of cycles", ErrInvalidOption, s.cfg.warmup)
	}
	if s.cfg.satQueue < 0 {
		return fmt.Errorf("%w: saturation queue threshold %d < 0", ErrInvalidOption, s.cfg.satQueue)
	}
	if s.cfg.traceEnabled {
		if n := s.router.Graph().Nodes(); s.cfg.traceNode < 0 || s.cfg.traceNode >= n {
			return fmt.Errorf("%w: trace node %d outside the %d-node network", ErrInvalidOption, s.cfg.traceNode, n)
		}
		if s.cfg.traceLimit < 0 {
			return fmt.Errorf("%w: trace limit %d < 0", ErrInvalidOption, s.cfg.traceLimit)
		}
	}
	if s.cfg.metricsSink != nil && s.cfg.metricsBuckets == 0 {
		return fmt.Errorf("%w: MetricsSink without Metrics(buckets) would record nothing", ErrOptionConflict)
	}
	if s.cfg.record != nil && s.cfg.replay != nil {
		return fmt.Errorf("%w: a scenario cannot both record and replay a trace", ErrOptionConflict)
	}
	if (s.cfg.record != nil || s.cfg.replay != nil) && s.cfg.replications > 1 {
		return fmt.Errorf("%w: trace record/replay requires Replications(1), got %d", ErrOptionConflict, s.cfg.replications)
	}
	if s.cfg.replay != nil {
		if s.cfg.replay.Empty() {
			return fmt.Errorf("%w: replay of an empty trace (record one first, or read one)", ErrInvalidOption)
		}
		if got, want := s.cfg.replay.Nodes(), s.router.Graph().Nodes(); got != want {
			return fmt.Errorf("%w: replaying a %d-node trace on a %d-node network", ErrOptionConflict, got, want)
		}
		if got, want := s.cfg.replay.tr.Topo, traffic.TopologyFingerprint(s.router.Graph()); got != 0 && got != want {
			return fmt.Errorf("%w: the trace was captured on a different topology than the scenario's", ErrOptionConflict)
		}
		if got := s.cfg.replay.tr.MsgLen; got != 0 && got != s.cfg.msgLen {
			return fmt.Errorf("%w: the trace was recorded with %d-flit messages, the scenario uses %d (set MsgLen(%d) to reproduce the recording)", ErrOptionConflict, got, s.cfg.msgLen, got)
		}
	}
	return nil
}

// trafficSpec assembles the traffic specification both evaluators
// consume (distinct from the public declarative Spec in spec.go).
func (s *Scenario) trafficSpec() traffic.Spec {
	return traffic.Spec{
		Rate:          s.cfg.rate,
		MulticastFrac: s.cfg.alpha,
		Set:           s.set,
		HotspotFrac:   s.cfg.hotspotFrac,
		HotspotNode:   topology.NodeID(s.cfg.hotspotNode),
		Arrival:       s.cfg.arrival,
		BurstLen:      s.cfg.burstLen,
		DutyCycle:     s.cfg.dutyCycle,
		Perm:          s.dest.Perm,
		Weights:       s.dest.Weights,
	}
}

// TopologyName returns the scenario's topology registry name.
func (s *Scenario) TopologyName() string { return s.cfg.topoName }

// PatternName returns the scenario's traffic-pattern registry name.
func (s *Scenario) PatternName() string { return s.cfg.patName }

// ArrivalName returns the scenario's arrival-process registry name
// ("poisson" when defaulted).
func (s *Scenario) ArrivalName() string {
	if s.cfg.arrival == "" {
		return "poisson"
	}
	return s.cfg.arrival
}

// SpatialName returns the scenario's spatial-pattern registry name
// ("uniform" when defaulted).
func (s *Scenario) SpatialName() string {
	if s.cfg.spatialName == "" {
		return "uniform"
	}
	return s.cfg.spatialName
}

// Nodes returns the network size.
func (s *Scenario) Nodes() int { return s.router.Graph().Nodes() }

// Channels returns the number of unidirectional channels in the network.
func (s *Scenario) Channels() int { return s.router.Graph().NumChannels() }

// MsgLen returns the message length in flits.
func (s *Scenario) MsgLen() int { return s.cfg.msgLen }

// Rate returns the per-node message generation rate.
func (s *Scenario) Rate() float64 { return s.cfg.rate }

// Alpha returns the multicast fraction.
func (s *Scenario) Alpha() float64 { return s.cfg.alpha }

// SetString renders the multicast destination set in the paper's per-port
// bitstring notation.
func (s *Scenario) SetString() string { return s.set.String() }

// PortName returns a human-readable label for an injection port: the
// paper's L/LO/RO/R labels on a Quarc, generic "P<i>" labels elsewhere.
func (s *Scenario) PortName(port int) string {
	if strings.HasPrefix(s.cfg.topoName, "quarc") && s.router.Graph().Ports() == topology.QuarcPorts {
		return topology.QuarcPortName(port)
	}
	return fmt.Sprintf("P%d", port)
}

// BranchInfo describes one stream of a multicast operation from a given
// source: the worm injected into one port.
type BranchInfo struct {
	// Port is the injection port index; PortName its human-readable label.
	Port     int    `json:"port"`
	PortName string `json:"port_name"`
	// Hops is the header pipeline depth (channel crossings) of the branch.
	Hops int `json:"hops"`
	// Walk lists the routers the stream visits after the source, in order.
	Walk []int `json:"walk"`
	// Targets lists the absorbing nodes in visit order; the final element
	// is the branch endpoint.
	Targets []int `json:"targets"`
	// Wait is the model's expected total header waiting time along the
	// branch; zero unless filled in by Model with Detail enabled.
	Wait float64 `json:"wait,omitempty"`
}

// Branches returns the multicast streams a message from src spawns under
// the scenario's destination set — the paper's Fig. 3 walk when the set is
// a broadcast.
func (s *Scenario) Branches(src int) ([]BranchInfo, error) {
	infos, _, err := s.branches(src)
	return infos, err
}

// branches additionally returns the raw routed branches, index-aligned
// with the infos, for callers that need the channel paths.
func (s *Scenario) branches(src int) ([]BranchInfo, []routing.Branch, error) {
	if s.set.Empty() {
		return nil, nil, fmt.Errorf("noc: scenario has no multicast destination set")
	}
	branches, err := s.router.MulticastBranches(topology.NodeID(src), s.set)
	if err != nil {
		return nil, nil, err
	}
	g := s.router.Graph()
	out := make([]BranchInfo, 0, len(branches))
	for _, b := range branches {
		info := BranchInfo{
			Port:     b.Port,
			PortName: s.PortName(b.Port),
			Hops:     len(b.Path) - 1,
		}
		for _, id := range b.Path[1 : len(b.Path)-1] {
			info.Walk = append(info.Walk, int(g.Channel(id).Dst))
		}
		for _, t := range b.Targets {
			info.Targets = append(info.Targets, int(t))
		}
		out = append(out, info)
	}
	return out, branches, nil
}
