package noc

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// resultJSON renders a Result for bitwise comparison: equal float64s
// (including the NaN->null cases) encode to equal bytes, and any bit
// difference in any field changes the encoding.
func resultJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSpecMatchesOptions is the cross-construction property test: over a
// matrix of builtin topology x arrival x spatial, a Spec-built scenario
// and its hand-written functional-options twin must produce
// bitwise-identical Results from the simulator (and from the model where
// it applies).
func TestSpecMatchesOptions(t *testing.T) {
	type topoCase struct {
		name string
		opts []Option
		sp   Spec
	}
	topos := []topoCase{
		{
			name: "quarc16-localized",
			opts: []Option{Quarc(16), LocalizedDests(PortL, 4)},
			sp:   Spec{Topology: "quarc", N: 16, Pattern: "localized", Port: PortL, Dests: 4},
		},
		{
			name: "mesh4x4-highlow",
			opts: []Option{Mesh(4, 4), HighLowDests([]int{1, 3}, []int{2})},
			sp:   Spec{Topology: "mesh", W: 4, H: 4, Pattern: "highlow", High: []int{1, 3}, Low: []int{2}},
		},
	}
	type arrCase struct {
		name string
		opts []Option
		mod  func(*Spec)
	}
	arrivals := []arrCase{
		{name: "poisson", opts: nil, mod: func(*Spec) {}},
		{name: "onoff", opts: []Option{OnOff(4, 0.5)}, mod: func(sp *Spec) { sp.Arrival = "onoff"; sp.BurstLen = 4; sp.DutyCycle = 0.5 }},
		{name: "periodic", opts: []Option{Arrival("periodic")}, mod: func(sp *Spec) { sp.Arrival = "periodic" }},
	}
	type spatCase struct {
		name string
		opts []Option
		mod  func(*Spec)
	}
	spatials := []spatCase{
		{name: "uniform", opts: nil, mod: func(*Spec) {}},
		{name: "transpose", opts: []Option{Permutation("transpose")}, mod: func(sp *Spec) { sp.Spatial = "transpose" }},
		{name: "tornado", opts: []Option{Permutation("tornado")}, mod: func(sp *Spec) { sp.Spatial = "tornado" }},
	}

	common := []Option{MsgLen(16), Rate(0.004), Alpha(0.05), Seed(9), Warmup(1000), Measure(8000)}
	for _, tc := range topos {
		for _, ac := range arrivals {
			for _, sc := range spatials {
				t.Run(tc.name+"/"+ac.name+"/"+sc.name, func(t *testing.T) {
					opts := append(append(append(append([]Option{}, tc.opts...), common...), ac.opts...), sc.opts...)
					byOpts, err := NewScenario(opts...)
					if err != nil {
						t.Fatal(err)
					}
					sp := tc.sp
					sp.MsgLen, sp.Rate, sp.Alpha = 16, 0.004, 0.05
					sp.Seed, sp.Warmup, sp.Measure = 9, 1000, 8000
					ac.mod(&sp)
					sc.mod(&sp)
					bySpec, err := sp.Scenario()
					if err != nil {
						t.Fatal(err)
					}

					simOpt, err := Simulator{}.Evaluate(byOpts)
					if err != nil {
						t.Fatal(err)
					}
					simSpec, err := Simulator{}.Evaluate(bySpec)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := resultJSON(t, simSpec), resultJSON(t, simOpt); got != want {
						t.Errorf("simulator results differ:\n spec: %s\n opts: %s", got, want)
					}

					if ac.name == "poisson" {
						modOpt, err := Model{}.Evaluate(byOpts)
						if err != nil {
							t.Fatal(err)
						}
						modSpec, err := Model{}.Evaluate(bySpec)
						if err != nil {
							t.Fatal(err)
						}
						if got, want := resultJSON(t, modSpec), resultJSON(t, modOpt); got != want {
							t.Errorf("model results differ:\n spec: %s\n opts: %s", got, want)
						}
					}

					// The declarative form must also survive Scenario.Spec:
					// re-deriving the spec from either scenario and
					// canonicalizing lands on one fingerprint.
					if got, want := byOpts.Spec().Fingerprint(), bySpec.Spec().Fingerprint(); got != want {
						t.Errorf("scenario fingerprints differ: options %016x != spec %016x", got, want)
					}
				})
			}
		}
	}
}

// TestSpecRoundTrip pins the codec: Spec -> JSON -> ParseSpec preserves
// the fingerprint, and the canonical encoding is a fixed point.
func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Topology: "quarc", N: 16, Rate: 0.002, Alpha: 0.05, Pattern: "localized", Dests: 4},
		{Topology: "mesh", W: 4, H: 4, Pattern: "highlow", High: []int{1}, Low: []int{2}, Arrival: "onoff", BurstLen: 8, DutyCycle: 0.25},
		{Topology: "spidergon", N: 16, Pattern: "random", Dests: 3, SetSeed: 7, Spatial: "hotspot", SpatialFrac: 0.3, SpatialNodes: []int{0, 5}},
		{Topology: "hypercube", Dims: 4, Wait: "eq3", Service: "tail", Replications: 4, Detail: true},
	}
	for i, sp := range specs {
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("spec %d: reparse: %v", i, err)
		}
		if got, want := back.Fingerprint(), sp.Fingerprint(); got != want {
			t.Errorf("spec %d: fingerprint %016x != %016x after JSON round-trip", i, got, want)
		}
		cj, err := sp.CanonicalJSON()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		canon, err := ParseSpec(cj)
		if err != nil {
			t.Fatalf("spec %d: reparse canonical: %v", i, err)
		}
		cj2, err := canon.CanonicalJSON()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if string(cj) != string(cj2) {
			t.Errorf("spec %d: canonical encoding is not a fixed point:\n %s\n %s", i, cj, cj2)
		}
	}
}

// TestSpecCanonicalization pins the content-addressing rules: spellings
// that describe the same scenario share a fingerprint, and fields the
// chosen registries do not read are cleared.
func TestSpecCanonicalization(t *testing.T) {
	base := Spec{Topology: "quarc", N: 16, Rate: 0.002}
	cases := []struct {
		name string
		sp   Spec
		same bool
	}{
		{"explicit defaults", Spec{Topology: "quarc", N: 16, Rate: 0.002, MsgLen: 32, Arrival: "poisson", Spatial: "uniform", Pattern: "none", Seed: 1, Warmup: 10000, Measure: 100000, Wait: "pk", Service: "eq6", Evaluator: "simulator", Router: "quarc"}, true},
		{"parallelism is not content", Spec{Topology: "quarc", N: 16, Rate: 0.002, Parallelism: 8}, true},
		{"one replication is the single-run path", Spec{Topology: "quarc", N: 16, Rate: 0.002, Replications: 1}, true},
		{"onoff knobs cleared under poisson", Spec{Topology: "quarc", N: 16, Rate: 0.002, BurstLen: 9, DutyCycle: 0.5}, true},
		{"pattern params cleared under none", Spec{Topology: "quarc", N: 16, Rate: 0.002, Dests: 4, Port: 2, SetSeed: 5}, true},
		{"unread size fields cleared", Spec{Topology: "quarc", N: 16, Rate: 0.002, W: 9, H: 3, Dims: 5}, true},
		{"ring default size filled", Spec{Topology: "quarc", Rate: 0.002}, true},
		{"different rate", Spec{Topology: "quarc", N: 16, Rate: 0.003}, false},
		{"different seed", Spec{Topology: "quarc", N: 16, Rate: 0.002, Seed: 2}, false},
		{"model evaluator", Spec{Topology: "quarc", N: 16, Rate: 0.002, Evaluator: "model"}, false},
		{"two replications", Spec{Topology: "quarc", N: 16, Rate: 0.002, Replications: 2}, false},
	}
	for _, tc := range cases {
		if got := tc.sp.Fingerprint() == base.Fingerprint(); got != tc.same {
			t.Errorf("%s: fingerprint match = %v, want %v", tc.name, got, tc.same)
		}
	}

	// The default spec and NewScenario() agree exactly.
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Spec(), (Spec{}).Canonical(); !reflect.DeepEqual(got, want) {
		t.Errorf("NewScenario().Spec() = %+v, want %+v", got, want)
	}
}

// TestScenarioWithSharesStructure pins the serving fast path: compiling
// a spec against a structurally identical base must share the base's
// routed topology and still produce a bitwise-identical Result.
func TestScenarioWithSharesStructure(t *testing.T) {
	sp := Spec{Topology: "quarc", N: 16, Pattern: "localized", Dests: 4,
		Rate: 0.002, Alpha: 0.05, MsgLen: 16, Seed: 5, Warmup: 1000, Measure: 8000}
	base, err := sp.Structural().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sp.ScenarioWith(base)
	if err != nil {
		t.Fatal(err)
	}
	if fast.router != base.router {
		t.Error("ScenarioWith did not share the base router")
	}
	cold, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := Simulator{}.Evaluate(fast)
	if err != nil {
		t.Fatal(err)
	}
	rCold, err := Simulator{}.Evaluate(cold)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultJSON(t, rFast), resultJSON(t, rCold); got != want {
		t.Errorf("pooled-base result differs from cold build:\n fast: %s\n cold: %s", got, want)
	}

	// A structurally different base is refused, not silently misused.
	other, err := (Spec{Topology: "mesh", W: 4, H: 4}).Structural().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.ScenarioWith(other); err == nil {
		t.Error("ScenarioWith accepted a structurally different base")
	}
}

// TestSpecValidateRejects pins the hostile-input bounds.
func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
	}{
		{"huge n", Spec{N: 1 << 20}},
		{"negative n", Spec{N: -1}},
		{"huge mesh", Spec{Topology: "mesh", W: 4096, H: 4096}},
		{"huge dims", Spec{Topology: "hypercube", Dims: 40}},
		{"nan rate", Spec{Rate: math.NaN()}},
		{"inf rate", Spec{Rate: math.Inf(1)}},
		{"negative rate", Spec{Rate: -0.5}},
		{"alpha above one", Spec{Alpha: 1.5}},
		{"nan warmup", Spec{Warmup: math.NaN()}},
		{"huge measure", Spec{Measure: 1e18}},
		{"negative duty", Spec{Arrival: "onoff", BurstLen: 2, DutyCycle: -1}},
		{"bad wait", Spec{Wait: "magic"}},
		{"bad service", Spec{Service: "magic"}},
		{"bad evaluator", Spec{Evaluator: "oracle"}},
		{"huge replications", Spec{Replications: 1 << 20}},
		{"negative replications", Spec{Replications: -2}},
		{"record and replay", Spec{Record: "a", Replay: "b"}},
	}
	for _, tc := range cases {
		err := tc.sp.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidSpec) && !errors.Is(err, ErrOptionConflict) {
			t.Errorf("%s: error %v is not ErrInvalidSpec/ErrOptionConflict", tc.name, err)
		}
	}
}

// TestParseSpecStrict pins the wire-format strictness: unknown fields
// and trailing garbage are rejected.
func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"topology":"quarc","n":16,"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	} else if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("unknown field error %v is not ErrInvalidSpec", err)
	}
	if _, err := ParseSpec([]byte(`{"n":16} {"n":8}`)); err == nil {
		t.Error("trailing document accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Error("truncated document accepted")
	}
	sp, err := ParseSpec([]byte(`{"topology":"quarc","n":16,"rate":0.002}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.N != 16 || sp.Rate != 0.002 {
		t.Errorf("parsed spec = %+v", sp)
	}
}

// TestSpecScenarioRejectsUnknownNames ensures registry names are
// resolved (and refused) at compile time with the option sentinels.
func TestSpecScenarioRejectsUnknownNames(t *testing.T) {
	for _, sp := range []Spec{
		{Topology: "ring", N: 16},
		{Topology: "quarc", N: 16, Pattern: "spiral"},
		{Topology: "quarc", N: 16, Arrival: "bursty"},
		{Topology: "quarc", N: 16, Spatial: "swirl"},
		{Topology: "quarc", N: 16, Router: "xy"},
	} {
		if _, err := sp.Scenario(); err == nil {
			t.Errorf("spec %+v compiled", sp)
		} else if !errors.Is(err, ErrInvalidOption) && !strings.Contains(err.Error(), "unknown") {
			t.Errorf("spec %+v: unexpected error %v", sp, err)
		}
	}
}
