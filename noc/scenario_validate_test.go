package noc

import (
	"errors"
	"testing"
)

// TestScenarioValidationSentinels pins the build-time rejection of
// conflicting or nonsensical option combinations: each case must fail
// with the documented sentinel, not silently misbehave.
func TestScenarioValidationSentinels(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"record with replay", []Option{Quarc(16), Record(&TraceWorkload{}), Replay(&TraceWorkload{})}, ErrOptionConflict},
		{"record with replications", []Option{Quarc(16), Record(&TraceWorkload{}), Replications(3)}, ErrOptionConflict},
		{"replications below one", []Option{Quarc(16), Replications(0)}, ErrInvalidOption},
		{"negative replications", []Option{Quarc(16), Replications(-4)}, ErrInvalidOption},
		{"zero measure window", []Option{Quarc(16), Measure(0)}, ErrInvalidOption},
		{"negative measure window", []Option{Quarc(16), Measure(-10)}, ErrInvalidOption},
		{"negative warmup", []Option{Quarc(16), Warmup(-1)}, ErrInvalidOption},
		{"negative saturation queue", []Option{Quarc(16), SatQueue(-1)}, ErrInvalidOption},
		{"message too short", []Option{Quarc(16), MsgLen(1)}, ErrInvalidOption},
		{"trace node out of range", []Option{Quarc(16), Trace(99, 10)}, ErrInvalidOption},
		{"negative trace node", []Option{Quarc(16), Trace(-1, 10)}, ErrInvalidOption},
		{"negative trace limit", []Option{Quarc(16), Trace(0, -1)}, ErrInvalidOption},
		{"negative rate", []Option{Quarc(16), Rate(-0.1)}, ErrInvalidOption},
		{"unknown topology", []Option{Topology("ring", TopologyConfig{N: 16})}, ErrInvalidOption},
		{"unknown router", []Option{Quarc(16), Router("xy")}, ErrInvalidOption},
		{"mesh without size", []Option{Topology("mesh", TopologyConfig{})}, ErrInvalidOption},
		{"quarc size not multiple of 4", []Option{Quarc(10)}, ErrInvalidOption},
		{"dests beyond the rim", []Option{Quarc(16), LocalizedDests(PortL, 12)}, ErrInvalidOption},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewScenario(tc.opts...)
			if err == nil {
				t.Fatal("scenario built")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// TestScenarioValidationAppliesToWith ensures With re-validates: a
// well-formed scenario cannot be forked into an ill-formed one.
func TestScenarioValidationAppliesToWith(t *testing.T) {
	s, err := NewScenario(Quarc(16), Rate(0.002))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.With(Measure(0)); !errors.Is(err, ErrInvalidOption) {
		t.Errorf("With(Measure(0)) error = %v, want ErrInvalidOption", err)
	}
	if _, err := s.With(Record(&TraceWorkload{}), Replay(&TraceWorkload{})); !errors.Is(err, ErrOptionConflict) {
		t.Errorf("With(Record, Replay) error = %v, want ErrOptionConflict", err)
	}
}
