package noc

import (
	"fmt"
	"math"
	"math/rand/v2"

	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
)

// Quarc port indices, re-exported for LocalizedDests. The four injection
// ports of the all-port Quarc router serve one quadrant each; the paper
// labels them L, LO, RO and R.
const (
	PortL  = topology.PortL
	PortCL = topology.PortCL
	PortCR = topology.PortCR
	PortR  = topology.PortR
)

func init() {
	RegisterTopology("quarc", "quarc", func(c TopologyConfig) (any, error) {
		return topology.NewQuarc(c.N)
	})
	RegisterTopology("quarc-oneport", "quarc", func(c TopologyConfig) (any, error) {
		return topology.NewQuarcOnePort(c.N)
	})
	RegisterTopology("spidergon", "spidergon", func(c TopologyConfig) (any, error) {
		return topology.NewSpidergon(c.N)
	})
	RegisterTopology("mesh", "mesh", func(c TopologyConfig) (any, error) {
		return topology.NewMesh(c.W, c.H)
	})
	RegisterTopology("torus", "mesh", func(c TopologyConfig) (any, error) {
		return topology.NewTorus(c.W, c.H)
	})
	RegisterTopology("hypercube", "hypercube", func(c TopologyConfig) (any, error) {
		return topology.NewHypercube(c.Dims)
	})

	RegisterRouter("quarc", func(topo any) (any, error) {
		q, ok := topo.(*topology.Quarc)
		if !ok {
			return nil, fmt.Errorf("noc: quarc router needs a quarc topology, got %T", topo)
		}
		return routing.NewQuarcRouter(q), nil
	})
	RegisterRouter("spidergon", func(topo any) (any, error) {
		s, ok := topo.(*topology.Spidergon)
		if !ok {
			return nil, fmt.Errorf("noc: spidergon router needs a spidergon topology, got %T", topo)
		}
		return routing.NewSpidergonRouter(s), nil
	})
	RegisterRouter("mesh", func(topo any) (any, error) {
		m, ok := topo.(*topology.Mesh)
		if !ok {
			return nil, fmt.Errorf("noc: mesh router needs a mesh or torus topology, got %T", topo)
		}
		return routing.NewMeshRouter(m), nil
	})
	RegisterRouter("hypercube", func(topo any) (any, error) {
		h, ok := topo.(*topology.Hypercube)
		if !ok {
			return nil, fmt.Errorf("noc: hypercube router needs a hypercube topology, got %T", topo)
		}
		return routing.NewHypercubeRouter(h), nil
	})

	RegisterPattern("none", func(router any, c PatternConfig) (any, error) {
		rt, err := asRouter(router)
		if err != nil {
			return nil, err
		}
		return routing.NewMulticastSet(rt.Graph().Ports()), nil
	})
	RegisterPattern("random", func(router any, c PatternConfig) (any, error) {
		rng := rand.New(rand.NewPCG(c.Seed, 0))
		switch rt := router.(type) {
		case *routing.QuarcRouter:
			return rt.RandomSet(rng, c.K)
		case *routing.SpidergonRouter:
			return rt.RandomSet(rng, c.K)
		}
		return nil, fmt.Errorf("noc: pattern \"random\" not supported on %T", router)
	})
	RegisterPattern("localized", func(router any, c PatternConfig) (any, error) {
		switch rt := router.(type) {
		case *routing.QuarcRouter:
			return rt.LocalizedSet(c.Port, c.K)
		case *routing.SpidergonRouter:
			return rt.LocalizedSet(c.K)
		}
		return nil, fmt.Errorf("noc: pattern \"localized\" not supported on %T", router)
	})
	RegisterPattern("broadcast", func(router any, c PatternConfig) (any, error) {
		switch rt := router.(type) {
		case *routing.QuarcRouter:
			return rt.BroadcastSet(), nil
		case *routing.SpidergonRouter:
			return rt.BroadcastSet(), nil
		}
		return nil, fmt.Errorf("noc: pattern \"broadcast\" not supported on %T", router)
	})
	RegisterPattern("highlow", func(router any, c PatternConfig) (any, error) {
		rt, ok := router.(*routing.MeshRouter)
		if !ok {
			return nil, fmt.Errorf("noc: pattern \"highlow\" not supported on %T", router)
		}
		return rt.HighLowSet(c.High, c.Low)
	})

	// Spatial (unicast-destination) patterns: the standard permutation
	// families of NoC evaluation plus the weight-matrix hotspot. The
	// bit-wise permutations interpret node indices as log2(n)-bit words;
	// transpose and tornado use mesh coordinates when the topology is a
	// mesh or torus and fall back to the index forms otherwise.
	RegisterSpatial("uniform", func(router any, c SpatialConfig) (any, error) {
		return traffic.Dest{}, nil
	})
	RegisterSpatial("transpose", func(router any, c SpatialConfig) (any, error) {
		if m, ok := meshOf(router); ok {
			if m.W() != m.H() {
				return nil, fmt.Errorf("noc: transpose needs a square mesh, got %dx%d", m.W(), m.H())
			}
			return permDest(m.W()*m.H(), func(src int) int {
				x, y := m.XY(topology.NodeID(src))
				return int(m.ID(y, x))
			}), nil
		}
		return bitPerm(router, "transpose", func(src, bits int) int {
			// Swap the high and low halves of the index bits — the matrix
			// transpose of a 2^(b/2) x 2^(b/2) grid.
			half := bits / 2
			lo := src & (1<<half - 1)
			return src>>half | lo<<half
		}, true)
	})
	RegisterSpatial("bit-reversal", func(router any, c SpatialConfig) (any, error) {
		return bitPerm(router, "bit-reversal", func(src, bits int) int {
			out := 0
			for i := 0; i < bits; i++ {
				out = out<<1 | src>>i&1
			}
			return out
		}, false)
	})
	RegisterSpatial("bit-complement", func(router any, c SpatialConfig) (any, error) {
		return bitPerm(router, "bit-complement", func(src, bits int) int {
			return ^src & (1<<bits - 1)
		}, false)
	})
	RegisterSpatial("shuffle", func(router any, c SpatialConfig) (any, error) {
		return bitPerm(router, "shuffle", func(src, bits int) int {
			return (src<<1 | src>>(bits-1)) & (1<<bits - 1)
		}, false)
	})
	RegisterSpatial("tornado", func(router any, c SpatialConfig) (any, error) {
		if m, ok := meshOf(router); ok {
			// Per-dimension half-way shift: (x, y) -> (x + ⌈W/2⌉-1, y + ⌈H/2⌉-1).
			dx, dy := (m.W()+1)/2-1, (m.H()+1)/2-1
			return permDest(m.W()*m.H(), func(src int) int {
				x, y := m.XY(topology.NodeID(src))
				return int(m.ID((x+dx)%m.W(), (y+dy)%m.H()))
			}), nil
		}
		rt, err := asRouter(router)
		if err != nil {
			return nil, err
		}
		// Ring form (quarc and spidergon are ring-based): half-way around.
		n := rt.Graph().Nodes()
		shift := (n+1)/2 - 1
		return permDest(n, func(src int) int { return (src + shift) % n }), nil
	})
	RegisterSpatial("hotspot", func(router any, c SpatialConfig) (any, error) {
		rt, err := asRouter(router)
		if err != nil {
			return nil, err
		}
		return hotspotDest(rt.Graph().Nodes(), c)
	})
}

// meshOf unwraps a mesh or torus router's coordinate geometry.
func meshOf(router any) (*topology.Mesh, bool) {
	rt, ok := router.(*routing.MeshRouter)
	if !ok {
		return nil, false
	}
	return rt.Mesh(), true
}

// permDest materializes an index permutation as a traffic destination.
func permDest(n int, f func(int) int) traffic.Dest {
	perm := make([]topology.NodeID, n)
	for src := 0; src < n; src++ {
		perm[src] = topology.NodeID(f(src))
	}
	return traffic.Dest{Perm: perm}
}

// bitPerm builds a bit-wise permutation over node indices; the network
// size must be a power of two (and evenBits additionally requires an even
// bit count, e.g. for transpose).
func bitPerm(router any, name string, f func(src, bits int) int, evenBits bool) (any, error) {
	rt, err := asRouter(router)
	if err != nil {
		return nil, err
	}
	n := rt.Graph().Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	if 1<<bits != n {
		return nil, fmt.Errorf("noc: spatial pattern %q needs a power-of-two network, got %d nodes", name, n)
	}
	if evenBits && bits%2 != 0 {
		return nil, fmt.Errorf("noc: spatial pattern %q needs an even number of index bits, got %d nodes (%d bits)", name, n, bits)
	}
	return permDest(n, func(src int) int { return f(src, bits) }), nil
}

// hotspotDest builds the weight-matrix form of hotspot traffic: each
// source sends fraction Frac of its unicasts to the hotspots (split by
// their weights) and spreads the rest uniformly. A source that is itself
// a hotspot redistributes its own share over the remaining hotspots, or
// falls back to uniform when it is the only one — matching the classic
// single-hotspot convention.
func hotspotDest(n int, c SpatialConfig) (traffic.Dest, error) {
	if c.Frac <= 0 || c.Frac > 1 || math.IsNaN(c.Frac) {
		return traffic.Dest{}, fmt.Errorf("noc: hotspot fraction %v out of (0,1]", c.Frac)
	}
	if len(c.Nodes) == 0 {
		return traffic.Dest{}, fmt.Errorf("noc: hotspot pattern needs at least one node")
	}
	if c.Weights != nil && len(c.Weights) != len(c.Nodes) {
		return traffic.Dest{}, fmt.Errorf("noc: %d hotspot weights for %d nodes", len(c.Weights), len(c.Nodes))
	}
	weight := func(i int) float64 {
		if c.Weights == nil {
			return 1
		}
		return c.Weights[i]
	}
	for i, node := range c.Nodes {
		if node < 0 || node >= n {
			return traffic.Dest{}, fmt.Errorf("noc: hotspot node %d outside the %d-node network", node, n)
		}
		if w := weight(i); w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return traffic.Dest{}, fmt.Errorf("noc: invalid hotspot weight %v for node %d", w, node)
		}
	}
	weights := make([][]float64, n)
	for src := 0; src < n; src++ {
		row := make([]float64, n)
		sw := 0.0
		for i, node := range c.Nodes {
			if node != src {
				sw += weight(i)
			}
		}
		uniform := (1 - c.Frac) / float64(n-1)
		if sw == 0 {
			// The source is the only hotspot: pure uniform row.
			uniform = 1 / float64(n-1)
		}
		for dst := 0; dst < n; dst++ {
			if dst != src {
				row[dst] = uniform
			}
		}
		if sw > 0 {
			for i, node := range c.Nodes {
				if node != src {
					row[node] += c.Frac * weight(i) / sw
				}
			}
		}
		weights[src] = row
	}
	return traffic.Dest{Weights: weights}, nil
}

func asRouter(v any) (routing.Router, error) {
	rt, ok := v.(routing.Router)
	if !ok {
		return nil, fmt.Errorf("noc: %T is not a router", v)
	}
	return rt, nil
}
