package noc

import (
	"fmt"
	"math/rand/v2"

	"quarc/internal/routing"
	"quarc/internal/topology"
)

// Quarc port indices, re-exported for LocalizedDests. The four injection
// ports of the all-port Quarc router serve one quadrant each; the paper
// labels them L, LO, RO and R.
const (
	PortL  = topology.PortL
	PortCL = topology.PortCL
	PortCR = topology.PortCR
	PortR  = topology.PortR
)

func init() {
	RegisterTopology("quarc", "quarc", func(c TopologyConfig) (any, error) {
		return topology.NewQuarc(c.N)
	})
	RegisterTopology("quarc-oneport", "quarc", func(c TopologyConfig) (any, error) {
		return topology.NewQuarcOnePort(c.N)
	})
	RegisterTopology("spidergon", "spidergon", func(c TopologyConfig) (any, error) {
		return topology.NewSpidergon(c.N)
	})
	RegisterTopology("mesh", "mesh", func(c TopologyConfig) (any, error) {
		return topology.NewMesh(c.W, c.H)
	})
	RegisterTopology("torus", "mesh", func(c TopologyConfig) (any, error) {
		return topology.NewTorus(c.W, c.H)
	})
	RegisterTopology("hypercube", "hypercube", func(c TopologyConfig) (any, error) {
		return topology.NewHypercube(c.Dims)
	})

	RegisterRouter("quarc", func(topo any) (any, error) {
		q, ok := topo.(*topology.Quarc)
		if !ok {
			return nil, fmt.Errorf("noc: quarc router needs a quarc topology, got %T", topo)
		}
		return routing.NewQuarcRouter(q), nil
	})
	RegisterRouter("spidergon", func(topo any) (any, error) {
		s, ok := topo.(*topology.Spidergon)
		if !ok {
			return nil, fmt.Errorf("noc: spidergon router needs a spidergon topology, got %T", topo)
		}
		return routing.NewSpidergonRouter(s), nil
	})
	RegisterRouter("mesh", func(topo any) (any, error) {
		m, ok := topo.(*topology.Mesh)
		if !ok {
			return nil, fmt.Errorf("noc: mesh router needs a mesh or torus topology, got %T", topo)
		}
		return routing.NewMeshRouter(m), nil
	})
	RegisterRouter("hypercube", func(topo any) (any, error) {
		h, ok := topo.(*topology.Hypercube)
		if !ok {
			return nil, fmt.Errorf("noc: hypercube router needs a hypercube topology, got %T", topo)
		}
		return routing.NewHypercubeRouter(h), nil
	})

	RegisterPattern("none", func(router any, c PatternConfig) (any, error) {
		rt, err := asRouter(router)
		if err != nil {
			return nil, err
		}
		return routing.NewMulticastSet(rt.Graph().Ports()), nil
	})
	RegisterPattern("random", func(router any, c PatternConfig) (any, error) {
		rng := rand.New(rand.NewPCG(c.Seed, 0))
		switch rt := router.(type) {
		case *routing.QuarcRouter:
			return rt.RandomSet(rng, c.K)
		case *routing.SpidergonRouter:
			return rt.RandomSet(rng, c.K)
		}
		return nil, fmt.Errorf("noc: pattern \"random\" not supported on %T", router)
	})
	RegisterPattern("localized", func(router any, c PatternConfig) (any, error) {
		switch rt := router.(type) {
		case *routing.QuarcRouter:
			return rt.LocalizedSet(c.Port, c.K)
		case *routing.SpidergonRouter:
			return rt.LocalizedSet(c.K)
		}
		return nil, fmt.Errorf("noc: pattern \"localized\" not supported on %T", router)
	})
	RegisterPattern("broadcast", func(router any, c PatternConfig) (any, error) {
		switch rt := router.(type) {
		case *routing.QuarcRouter:
			return rt.BroadcastSet(), nil
		case *routing.SpidergonRouter:
			return rt.BroadcastSet(), nil
		}
		return nil, fmt.Errorf("noc: pattern \"broadcast\" not supported on %T", router)
	})
	RegisterPattern("highlow", func(router any, c PatternConfig) (any, error) {
		rt, ok := router.(*routing.MeshRouter)
		if !ok {
			return nil, fmt.Errorf("noc: pattern \"highlow\" not supported on %T", router)
		}
		return rt.HighLowSet(c.High, c.Low)
	})
}

func asRouter(v any) (routing.Router, error) {
	rt, ok := v.(routing.Router)
	if !ok {
		return nil, fmt.Errorf("noc: %T is not a router", v)
	}
	return rt, nil
}
