package noc

import (
	"errors"
	"fmt"

	"quarc/internal/core"
	"quarc/internal/obs"
	"quarc/internal/routing"
	"quarc/internal/topology"
	"quarc/internal/traffic"
	"quarc/internal/wormhole"
)

// Evaluator turns a scenario into a result. The two implementations are
// Model (the paper's analytical M/G/1 wormhole model) and Simulator (the
// discrete-event wormhole simulator); both consume the same Scenario and
// produce the same Result type, so they are interchangeable everywhere —
// in particular in Sweep.
type Evaluator interface {
	// Name identifies the evaluator in results and tables.
	Name() string
	// Evaluate runs the engine on the scenario.
	Evaluate(s *Scenario) (Result, error)
}

// ErrModelInapplicable marks scenarios the analytical model declines by
// design — trace-driven workloads and non-poisson arrival processes —
// as opposed to genuine evaluation failures. Callers that degrade to
// simulator-only output (e.g. quarcsim -compare) match it with
// errors.Is; any other model error still signals a real problem.
var ErrModelInapplicable = errors.New("the analytical model does not apply to this workload")

// Model evaluates the analytical model: the M/G/1 channel queues, the
// wormhole service-time fixed point and the max-of-exponentials multicast
// combination (paper Eqs. 3-16).
type Model struct{}

// Name implements Evaluator.
func (Model) Name() string { return "model" }

// Evaluate implements Evaluator.
func (Model) Evaluate(s *Scenario) (Result, error) {
	// A Record option is simulator-only but harmless here (the model
	// generates no messages to capture); only a trace-driven workload has
	// no analytical description.
	if s.cfg.replay != nil {
		return Result{}, fmt.Errorf("noc: %w: trace-driven workloads have no analytical description (use the simulator)", ErrModelInapplicable)
	}
	in := core.Input{
		Router:         s.router,
		Spec:           s.trafficSpec(),
		MsgLen:         s.cfg.msgLen,
		Damping:        s.cfg.damping,
		MaxIter:        s.cfg.maxIter,
		Tol:            s.cfg.tol,
		WaitFormula:    core.WaitFormula(s.cfg.wait),
		ServiceFormula: core.ServiceFormula(s.cfg.service),
	}
	m, err := core.NewModel(in)
	if err != nil {
		if errors.Is(err, core.ErrNonPoisson) {
			err = fmt.Errorf("noc: %w: %w", ErrModelInapplicable, err)
		}
		return Result{}, err
	}
	pred, err := m.Solve()
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Evaluator:  "model",
		Unicast:    pred.UnicastLatency,
		Multicast:  pred.MulticastLatency,
		Saturated:  pred.Saturated,
		MaxRho:     pred.MaxRho,
		Iterations: pred.Iterations,
		Converged:  pred.Converged,
	}
	if s.cfg.detail && s.cfg.alpha > 0 && !pred.Saturated {
		branches, raw, err := s.branches(0)
		if err != nil {
			return Result{}, err
		}
		for i := range branches {
			branches[i].Wait = m.PathWait(raw[i].Path)
		}
		res.Branches = branches
	}
	return res, nil
}

// Simulator evaluates the discrete-event wormhole simulator on the same
// scenario, standing in for the paper's OMNET++ model.
type Simulator struct{}

// Name implements Evaluator.
func (Simulator) Name() string { return "simulator" }

// Evaluate implements Evaluator. With Replications(n > 1) it fans the
// replications out over Parallelism(k) workers and aggregates their
// results (see replication.go); otherwise it runs the scenario once.
func (Simulator) Evaluate(s *Scenario) (Result, error) { return simulateReplicated(s, nil) }

// evaluateRep implements replicator: one seeded replication.
func (Simulator) evaluateRep(s *Scenario, rep int) (Result, error) {
	return simulate(s, nil, repSeed(s.cfg.seed, rep))
}

// forkWorker implements workerForker: each Sweep worker gets its own
// stateful copy that keeps one wormhole.Network alive across the points
// it runs, resetting it instead of rebuilding per point.
func (Simulator) forkWorker() Evaluator { return &pooledSimulator{} }

// NewPooledSimulator returns a stateful Simulator that keeps one
// wormhole network and workload alive across Evaluate calls, resetting
// them in place whenever consecutive scenarios share their routed
// topology (as Scenario.With and Spec.ScenarioWith forks do) — the same
// reuse path a Sweep worker gets, exposed for long-lived serving layers
// like noc/service. Results are bitwise-identical to the stateless
// Simulator. The returned evaluator is NOT safe for concurrent use: give
// each worker goroutine its own instance.
func NewPooledSimulator() Evaluator { return &pooledSimulator{} }

// pooledSimulator is the per-worker form of Simulator. It is not safe for
// concurrent use; Sweep gives each worker goroutine its own instance.
type pooledSimulator struct {
	Simulator
	pool networkPool
}

// Evaluate implements Evaluator, reusing the worker's pooled network.
func (p *pooledSimulator) Evaluate(s *Scenario) (Result, error) {
	return simulateReplicated(s, &p.pool)
}

// evaluateRep implements replicator over the worker's pooled network.
func (p *pooledSimulator) evaluateRep(s *Scenario, rep int) (Result, error) {
	return simulate(s, &p.pool, repSeed(s.cfg.seed, rep))
}

// networkPool caches one network plus one workload and the router they
// were built over; both are only reused while the scenario resolves to
// the same router object (Scenario.With shares it across the points of a
// sweep), which implies the same channel graph.
type networkPool struct {
	nw *wormhole.Network
	wl *traffic.Workload
	rt routing.Router
}

// parallelArrival reports whether the arrival process has continuous
// interarrival times — the workload-side precondition of the parallel
// engine's bitwise-equality argument (two message lineages never tie).
func parallelArrival(name string) bool {
	switch name {
	case "", "poisson", "onoff":
		return true
	}
	return false
}

// simulate runs the wormhole simulator on the scenario under an explicit
// seed (the scenario seed, or a replication-derived one). With a pool it
// reuses the pooled network and workload via their Resets when the
// router is unchanged — bitwise identical to a fresh build, but skipping
// the per-point allocation and routing work — and caches what it builds
// otherwise.
func simulate(s *Scenario, pool *networkPool, seed uint64) (Result, error) {
	cfg := wormhole.Config{
		MsgLen:            s.cfg.msgLen,
		Warmup:            s.cfg.warmup,
		Measure:           s.cfg.measure,
		SatQueue:          s.cfg.satQueue,
		Detail:            s.cfg.detail,
		Drain:             s.cfg.drain,
		TraceEnabled:      s.cfg.traceEnabled,
		TraceNode:         topology.NodeID(s.cfg.traceNode),
		TraceLimit:        s.cfg.traceLimit,
		MulticastPriority: s.cfg.mcPriority,
	}
	// Trace capture and replay bypass the pool: both need their own
	// traffic source for exactly one run.
	var recorder *traffic.Recorder
	var nw *wormhole.Network
	var wl *traffic.Workload // set on the workload-driven paths (parallel-capable)
	switch {
	case s.cfg.replay != nil:
		rp, err := traffic.NewReplayer(s.router, s.set, s.cfg.replay.tr)
		if err != nil {
			return Result{}, err
		}
		nw, err = wormhole.New(s.router.Graph(), rp, cfg)
		if err != nil {
			return Result{}, err
		}
	case s.cfg.record != nil:
		w, err := traffic.NewWorkload(s.router, s.trafficSpec(), seed)
		if err != nil {
			return Result{}, err
		}
		recorder = traffic.NewRecorder(w)
		nw, err = wormhole.New(s.router.Graph(), recorder, cfg)
		if err != nil {
			return Result{}, err
		}
		// The recorder stamps absolute injection times through the hook
		// API (the explicit registration that replaced the implicit
		// traffic.(Observer) resolution).
		nw.Attach(wormhole.ObserverHook(recorder), wormhole.HookWormInjected)
	case pool != nil && pool.nw != nil && pool.rt == s.router:
		if err := pool.wl.Reset(s.trafficSpec(), seed); err != nil {
			return Result{}, err
		}
		if err := pool.nw.Reset(pool.wl, cfg); err != nil {
			return Result{}, err
		}
		nw, wl = pool.nw, pool.wl
	default:
		w, err := traffic.NewWorkload(s.router, s.trafficSpec(), seed)
		if err != nil {
			return Result{}, err
		}
		nw, err = wormhole.New(s.router.Graph(), w, cfg)
		if err != nil {
			return Result{}, err
		}
		wl = w
		if pool != nil {
			pool.nw, pool.wl, pool.rt = nw, w, s.router
		}
	}
	// Metrics recording: a batched collector drains every hook position
	// into an in-memory sink (teed into the scenario's extra sink, if
	// any), aggregated into Result.Series after the run. A pure
	// recording attachment — the Result is bitwise-identical to an
	// unhooked run, and a pooled network drops its hooks on Reset, so
	// reuse stays clean.
	var metricsSink *obs.MemorySink
	var metricsColl *obs.Collector
	if s.cfg.metricsBuckets > 0 {
		metricsSink = obs.NewMemorySink()
		sink := obs.Sink(metricsSink)
		if s.cfg.metricsSink != nil {
			sink = obs.Tee(metricsSink, s.cfg.metricsSink)
		}
		metricsColl = obs.NewCollector(sink, 0)
		nw.Attach(metricsColl)
	}
	var r wormhole.Result
	if p := s.cfg.intraParallelism; p > 1 && wl != nil && parallelArrival(s.cfg.arrival) {
		// The conservative parallel engine; bitwise-identical to Run for
		// every configuration it accepts and a silent serial fallback for
		// the rest (metrics hooks included — see parEligible). The
		// arrival gate is the caller-side half of its contract:
		// integer-lattice processes tie event times across nodes, which
		// only a global event order can break the way the serial engine
		// does. ok=false means saturation stopped the run mid-window; the
		// serial engine reproduces the truncated result from a fresh
		// reset.
		var ok bool
		if r, ok = nw.RunParallel(p); !ok {
			if err := wl.Reset(s.trafficSpec(), seed); err != nil {
				return Result{}, err
			}
			if err := nw.Reset(wl, cfg); err != nil {
				return Result{}, err
			}
			if metricsColl != nil { // Reset detaches hooks
				nw.Attach(metricsColl)
			}
			r = nw.Run()
		}
	} else {
		r = nw.Run()
	}
	if recorder != nil {
		tr := recorder.Trace()
		// The workload does not know the message length (it is a
		// simulator knob), so stamp it here: only the recorded length
		// reproduces the recorded results.
		tr.MsgLen = s.cfg.msgLen
		s.cfg.record.tr = tr
	}
	res := Result{
		Evaluator:   "simulator",
		Unicast:     r.Unicast.Mean(),
		Multicast:   r.Multicast.Mean(),
		Saturated:   r.Saturated,
		UnicastCI:   r.UnicastBM.HalfWidth(1.96),
		MulticastCI: r.MulticastBM.HalfWidth(1.96),
		UnicastN:    r.Unicast.N(),
		MulticastN:  r.Multicast.N(),
		Generated:   r.Generated,
		Completed:   r.Completed,
		Time:        r.Time,
		Events:      r.Events,
		MaxUtil:     r.MaxUtil,
	}
	if r.Detail != nil {
		res.DetailSummary = r.Detail.Summary()
	}
	if len(r.Trace) > 0 {
		res.TraceText = wormhole.FormatTrace(s.router.Graph(), r.Trace)
	}
	if metricsColl != nil {
		if err := metricsColl.Flush(); err != nil {
			return Result{}, fmt.Errorf("noc: metrics sink: %w", err)
		}
		res.Series = obs.Aggregate(metricsSink.Records(),
			s.router.Graph().NumChannels(), s.cfg.metricsBuckets, r.Time)
	}
	return res, nil
}
