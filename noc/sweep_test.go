package noc

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSweepExplicitRates(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), LocalizedDests(PortL, 3),
		Warmup(1000), Measure(10000), Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.004}
	res, err := Sweep(s, SweepOptions{Rates: rates, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(rates) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(rates))
	}
	for i, pt := range res.Points {
		if pt.Rate != rates[i] {
			t.Errorf("point %d rate = %v, want %v (input order must be preserved)", i, pt.Rate, rates[i])
		}
		if len(pt.Results) != 2 {
			t.Fatalf("point %d has %d results, want model+simulator", i, len(pt.Results))
		}
		model, ok := pt.Get("model")
		if !ok || model.Saturated || math.IsNaN(model.Unicast) {
			t.Errorf("point %d model result bad: %+v", i, model)
		}
		sim, ok := pt.Get("simulator")
		if !ok || sim.Completed == 0 {
			t.Errorf("point %d simulator result bad: %+v", i, sim)
		}
	}
	// Latency grows with load.
	first, _ := res.Points[0].Get("model")
	last, _ := res.Points[len(res.Points)-1].Get("model")
	if !(last.Unicast > first.Unicast) {
		t.Errorf("model latency did not grow with rate: %v -> %v", first.Unicast, last.Unicast)
	}
}

// TestSweepDeterministicAcrossWorkers pins the bounded pool down: the
// worker count must not change any number.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), LocalizedDests(PortL, 3),
		Warmup(1000), Measure(10000), Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	o := SweepOptions{Rates: []float64{0.001, 0.003}, MsgLens: []int{16, 32}}
	o.Workers = 1
	seq, err := Sweep(s, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := Sweep(s, o)
	if err != nil {
		t.Fatal(err)
	}
	// Compare via JSON so NaN fields (e.g. a CI with too few batches)
	// compare equal; every finite number must still be bitwise identical.
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Error("sweep results differ between 1 and 4 workers")
	}
	if len(seq.Points) != 4 {
		t.Fatalf("rate x size cross product: got %d points, want 4", len(seq.Points))
	}
}

func TestSweepAutoGrid(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(s, SweepOptions{Points: 4, Evaluators: []Evaluator{Model{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SatRate <= 0 {
		t.Fatalf("auto grid did not record a saturation rate: %v", res.SatRate)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	lo, hi := 0.10*res.SatRate, 0.95*res.SatRate
	for _, pt := range res.Points {
		if pt.Rate < lo-1e-12 || pt.Rate > hi+1e-12 {
			t.Errorf("auto rate %v outside [%v, %v]", pt.Rate, lo, hi)
		}
	}
}

func TestSweepSinglePointGrid(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(s, SweepOptions{Points: 1, Evaluators: []Evaluator{Model{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	if r := res.Points[0].Rate; math.IsNaN(r) || r <= 0 {
		t.Fatalf("single-point auto grid rate = %v", r)
	}
}

// faultyEvaluator fails or panics at a chosen rate and counts evaluations.
type faultyEvaluator struct {
	mu      sync.Mutex
	evals   int
	badRate float64
	doPanic bool
}

func (f *faultyEvaluator) Name() string { return "faulty" }

func (f *faultyEvaluator) Evaluate(s *Scenario) (Result, error) {
	f.mu.Lock()
	f.evals++
	f.mu.Unlock()
	if s.Rate() == f.badRate {
		if f.doPanic {
			panic("faulty evaluator exploded")
		}
		return Result{}, errors.New("faulty evaluator failed")
	}
	return Result{Evaluator: "faulty", Unicast: 1}, nil
}

// TestSweepEvaluatorError pins the pool's failure path: an evaluator error
// must surface (with the failing point identified), not hang the sweep,
// and the remaining queued jobs must be skipped after the first failure.
func TestSweepEvaluatorError(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16))
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008}
	f := &faultyEvaluator{badRate: rates[0]}
	// One worker makes the early-cancel deterministic: the first job fails,
	// so exactly one evaluation may happen before the rest are skipped.
	_, err = Sweep(s, SweepOptions{Rates: rates, Workers: 1, Evaluators: []Evaluator{f}})
	if err == nil {
		t.Fatal("sweep with a failing evaluator returned no error")
	}
	if !strings.Contains(err.Error(), "rate=0.001") {
		t.Errorf("error does not identify the failing point: %v", err)
	}
	if f.evals != 1 {
		t.Errorf("%d points evaluated after an immediate failure, want 1 (early-cancel)", f.evals)
	}
}

// TestSweepEvaluatorPanic pins the deadlock fix: before the buffered job
// feed, a panicking evaluator killed its worker goroutine while the feeder
// blocked forever on the unbuffered channel (and the panic itself killed
// the process). Now the panic is recovered into the point's error.
func TestSweepEvaluatorPanic(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16))
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.003, 0.004, 0.005}
	f := &faultyEvaluator{badRate: rates[2], doPanic: true}
	done := make(chan struct{})
	var serr error
	go func() {
		defer close(done)
		_, serr = Sweep(s, SweepOptions{Rates: rates, Workers: 2, Evaluators: []Evaluator{f}})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep with a panicking evaluator did not return (deadlocked feed)")
	}
	if serr == nil {
		t.Fatal("sweep with a panicking evaluator returned no error")
	}
	if !strings.Contains(serr.Error(), "panicked") {
		t.Errorf("panic not surfaced in the error: %v", serr)
	}
}

// TestSweepPoolsNetworkPerWorker checks that the per-worker network reuse
// actually engages and stays bitwise-faithful: a single worker running
// every point through one reused network must match per-point fresh
// evaluation exactly.
func TestSweepPoolsNetworkPerWorker(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), LocalizedDests(PortL, 3),
		Warmup(1000), Measure(10000), Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.004}
	res, err := Sweep(s, SweepOptions{Rates: rates, Workers: 1, Evaluators: []Evaluator{Simulator{}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		sp, err := s.With(Rate(rate))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Simulator{}.Evaluate(sp)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := res.Points[i].Get("simulator")
		if !ok {
			t.Fatalf("point %d missing simulator result", i)
		}
		if got.Unicast != want.Unicast || got.Events != want.Events ||
			got.Completed != want.Completed || got.MaxUtil != want.MaxUtil {
			t.Errorf("point %d: pooled sweep result diverged from fresh evaluation:\n got %+v\nwant %+v",
				i, got, want)
		}
	}
}

func TestSaturationRate(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(32), Alpha(0.05), LocalizedDests(PortL, 4))
	if err != nil {
		t.Fatal(err)
	}
	sat, err := SaturationRate(s)
	if err != nil {
		t.Fatal(err)
	}
	if sat <= 0 || sat >= 1.0/32 {
		t.Fatalf("saturation rate %v out of range", sat)
	}
	// The model must be stable just below and saturated just above.
	below, err := s.With(Rate(0.9 * sat))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Model{}.Evaluate(below)
	if err != nil {
		t.Fatal(err)
	}
	if r.Saturated {
		t.Error("model saturated below the bisected boundary")
	}
	above, err := s.With(Rate(1.1 * sat))
	if err != nil {
		t.Fatal(err)
	}
	r, err = Model{}.Evaluate(above)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Saturated {
		t.Error("model stable above the bisected boundary")
	}
}

func TestRunSeriesTable(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), Broadcast(),
		Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	series, err := RunSeries("bcast", s, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	out := SeriesTable([]Series{series})
	if out == "" || len(series.Points) != 1 {
		t.Fatalf("series table empty or wrong points: %q", out)
	}
}
