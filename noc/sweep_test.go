package noc

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestSweepExplicitRates(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), LocalizedDests(PortL, 3),
		Warmup(1000), Measure(10000), Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.001, 0.002, 0.004}
	res, err := Sweep(s, SweepOptions{Rates: rates, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(rates) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(rates))
	}
	for i, pt := range res.Points {
		if pt.Rate != rates[i] {
			t.Errorf("point %d rate = %v, want %v (input order must be preserved)", i, pt.Rate, rates[i])
		}
		if len(pt.Results) != 2 {
			t.Fatalf("point %d has %d results, want model+simulator", i, len(pt.Results))
		}
		model, ok := pt.Get("model")
		if !ok || model.Saturated || math.IsNaN(model.Unicast) {
			t.Errorf("point %d model result bad: %+v", i, model)
		}
		sim, ok := pt.Get("simulator")
		if !ok || sim.Completed == 0 {
			t.Errorf("point %d simulator result bad: %+v", i, sim)
		}
	}
	// Latency grows with load.
	first, _ := res.Points[0].Get("model")
	last, _ := res.Points[len(res.Points)-1].Get("model")
	if !(last.Unicast > first.Unicast) {
		t.Errorf("model latency did not grow with rate: %v -> %v", first.Unicast, last.Unicast)
	}
}

// TestSweepDeterministicAcrossWorkers pins the bounded pool down: the
// worker count must not change any number.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), LocalizedDests(PortL, 3),
		Warmup(1000), Measure(10000), Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	o := SweepOptions{Rates: []float64{0.001, 0.003}, MsgLens: []int{16, 32}}
	o.Workers = 1
	seq, err := Sweep(s, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := Sweep(s, o)
	if err != nil {
		t.Fatal(err)
	}
	// Compare via JSON so NaN fields (e.g. a CI with too few batches)
	// compare equal; every finite number must still be bitwise identical.
	seqJSON, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Error("sweep results differ between 1 and 4 workers")
	}
	if len(seq.Points) != 4 {
		t.Fatalf("rate x size cross product: got %d points, want 4", len(seq.Points))
	}
}

func TestSweepAutoGrid(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(s, SweepOptions{Points: 4, Evaluators: []Evaluator{Model{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SatRate <= 0 {
		t.Fatalf("auto grid did not record a saturation rate: %v", res.SatRate)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	lo, hi := 0.10*res.SatRate, 0.95*res.SatRate
	for _, pt := range res.Points {
		if pt.Rate < lo-1e-12 || pt.Rate > hi+1e-12 {
			t.Errorf("auto rate %v outside [%v, %v]", pt.Rate, lo, hi)
		}
	}
}

func TestSweepSinglePointGrid(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(s, SweepOptions{Points: 1, Evaluators: []Evaluator{Model{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	if r := res.Points[0].Rate; math.IsNaN(r) || r <= 0 {
		t.Fatalf("single-point auto grid rate = %v", r)
	}
}

func TestSaturationRate(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(32), Alpha(0.05), LocalizedDests(PortL, 4))
	if err != nil {
		t.Fatal(err)
	}
	sat, err := SaturationRate(s)
	if err != nil {
		t.Fatal(err)
	}
	if sat <= 0 || sat >= 1.0/32 {
		t.Fatalf("saturation rate %v out of range", sat)
	}
	// The model must be stable just below and saturated just above.
	below, err := s.With(Rate(0.9 * sat))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Model{}.Evaluate(below)
	if err != nil {
		t.Fatal(err)
	}
	if r.Saturated {
		t.Error("model saturated below the bisected boundary")
	}
	above, err := s.With(Rate(1.1 * sat))
	if err != nil {
		t.Fatal(err)
	}
	r, err = Model{}.Evaluate(above)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Saturated {
		t.Error("model stable above the bisected boundary")
	}
}

func TestRunSeriesTable(t *testing.T) {
	s, err := NewScenario(Quarc(16), MsgLen(16), Alpha(0.05), Broadcast(),
		Warmup(500), Measure(5000))
	if err != nil {
		t.Fatal(err)
	}
	series, err := RunSeries("bcast", s, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	out := SeriesTable([]Series{series})
	if out == "" || len(series.Points) != 1 {
		t.Fatalf("series table empty or wrong points: %q", out)
	}
}
