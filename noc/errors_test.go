package noc

import (
	"errors"
	"testing"

	"quarc/internal/core"
)

// TestSentinelChains pins the error-wrapping discipline for every
// exported sentinel: each one must be reachable with errors.Is through a
// real API path (not a hand-built fmt.Errorf), and must not match any of
// the other sentinels. A %w dropped anywhere along these chains breaks
// this test before it breaks a caller.
func TestSentinelChains(t *testing.T) {
	sentinels := map[string]error{
		"ErrOptionConflict":    ErrOptionConflict,
		"ErrInvalidOption":     ErrInvalidOption,
		"ErrInvalidSpec":       ErrInvalidSpec,
		"ErrModelInapplicable": ErrModelInapplicable,
	}

	cases := []struct {
		name string
		make func(t *testing.T) error
		want error
	}{
		{
			"option validation",
			func(t *testing.T) error {
				_, err := NewScenario(Quarc(16), Replications(0))
				return err
			},
			ErrInvalidOption,
		},
		{
			"registry lookup",
			func(t *testing.T) error {
				_, err := NewScenario(Quarc(16), Router("no-such-router"))
				return err
			},
			ErrInvalidOption,
		},
		{
			"option conflict",
			func(t *testing.T) error {
				_, err := NewScenario(Quarc(16), Record(&TraceWorkload{}), Replay(&TraceWorkload{}))
				return err
			},
			ErrOptionConflict,
		},
		{
			"spec bounds",
			func(t *testing.T) error {
				return Spec{N: 1 << 30}.Validate()
			},
			ErrInvalidSpec,
		},
		{
			"model inapplicability",
			func(t *testing.T) error {
				s, err := NewScenario(Quarc(16), Rate(0.002), OnOff(8, 0.5))
				if err != nil {
					t.Fatal(err)
				}
				_, err = Model{}.Evaluate(s)
				return err
			},
			ErrModelInapplicable,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.make(t)
			if err == nil {
				t.Fatal("no error produced")
			}
			for name, sentinel := range sentinels {
				got := errors.Is(err, sentinel)
				want := sentinel == tc.want
				if got != want {
					t.Errorf("errors.Is(%v, %s) = %v, want %v", err, name, got, want)
				}
			}
		})
	}
}

// TestModelInapplicableKeepsCause pins the double wrap in Model.Evaluate:
// the non-poisson rejection must match both the public sentinel and the
// underlying core.ErrNonPoisson, so callers can degrade gracefully while
// diagnostics keep the root cause.
func TestModelInapplicableKeepsCause(t *testing.T) {
	s, err := NewScenario(Quarc(16), Rate(0.002), OnOff(8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Model{}.Evaluate(s)
	if err == nil {
		t.Fatal("model accepted onoff arrivals")
	}
	if !errors.Is(err, ErrModelInapplicable) {
		t.Errorf("error %v does not match ErrModelInapplicable", err)
	}
	if !errors.Is(err, core.ErrNonPoisson) {
		t.Errorf("error %v lost the core.ErrNonPoisson cause", err)
	}
}
