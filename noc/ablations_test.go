package noc

import (
	"math"
	"strings"
	"testing"
)

var quickAblation = SimEffort(Effort{Warmup: 500, Measure: 4000, Seed: 9})

// TestOnePortAblationQuick drives the one-port study at one rate: the
// one-port router must serialize broadcast injections, so its multicast
// latency exceeds the all-port router's.
func TestOnePortAblationQuick(t *testing.T) {
	series, err := OnePortAblation(8, 8, 0.2, []float64{0.001}, quickAblation)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	all, _ := series[0].Points[0].Get("simulator")
	one, _ := series[1].Points[0].Get("simulator")
	if !(one.Multicast > all.Multicast) {
		t.Errorf("one-port multicast %v not above all-port %v", one.Multicast, all.Multicast)
	}
	if table := SeriesTable(series); !strings.Contains(table, "one-port") {
		t.Errorf("series table missing labels:\n%s", table)
	}
}

// TestSpidergonComparisonQuick covers the Spidergon study wrapper.
func TestSpidergonComparisonQuick(t *testing.T) {
	series, err := SpidergonComparison(8, 8, 0.1, []float64{0.0005}, quickAblation)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) != 1 {
		t.Fatalf("unexpected shape: %+v", series)
	}
}

// TestMeshExtensionQuick covers the mesh/torus study wrapper.
func TestMeshExtensionQuick(t *testing.T) {
	series, err := MeshExtension(4, 4, 8, 0.1, []float64{0.002}, quickAblation)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		sim, ok := s.Points[0].Get("simulator")
		if !ok || sim.Completed == 0 {
			t.Errorf("%s: no simulation output", s.Label)
		}
	}
}

// TestServiceFormulaAblationQuick checks the service-recurrence study:
// Eq. 6 must predict latencies at or above the tail-release variant
// (it adds a cycle per downstream hop).
func TestServiceFormulaAblationQuick(t *testing.T) {
	points, err := ServiceFormulaAblation(8, 8, []float64{0.002, 0.004}, quickAblation)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Eq6Unicast < p.TailUnicast {
			t.Errorf("rate %v: Eq6 %v below tail-release %v", p.Rate, p.Eq6Unicast, p.TailUnicast)
		}
	}
	if table := ServiceTable(points); !strings.Contains(table, "eq6-uni") {
		t.Errorf("service table malformed:\n%s", table)
	}
}

// TestWorkloadAblationQuick drives the workload-diversity study end to
// end at one rate and checks the table renders every variant.
func TestWorkloadAblationQuick(t *testing.T) {
	series, err := WorkloadAblation(16, 8, []float64{0.002}, quickAblation)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 7 {
		t.Fatalf("got %d series, want 7", len(series))
	}
	for _, s := range series {
		sim, ok := s.Points[0].Get("simulator")
		if !ok {
			t.Fatalf("%s: no simulator result", s.Label)
		}
		if sim.Completed == 0 && !sim.Saturated {
			t.Errorf("%s: nothing completed", s.Label)
		}
	}
	table := SimSeriesTable(series)
	for _, label := range []string{"poisson/uniform", "onoff(8,0.25)/tornado", "periodic/uniform"} {
		if !strings.Contains(table, label) {
			t.Errorf("table missing %q:\n%s", label, table)
		}
	}
}

// TestRelErr covers the shared relative-error helper.
func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("RelErr(11, 10) = %v, want 0.1", got)
	}
	if got := RelErr(5, 0); !math.IsNaN(got) && !math.IsInf(got, 0) && got != 0 {
		// Any sentinel is fine; just ensure it does not panic and is
		// deterministic.
		t.Logf("RelErr(5, 0) = %v", got)
	}
}

// TestScenarioOptionSurface exercises the remaining thin options so the
// public surface stays under test: every named topology resolves and the
// simulator knobs apply without error.
func TestScenarioOptionSurface(t *testing.T) {
	s, err := NewScenario(
		Hypercube(3), MsgLen(8), Rate(0.001),
		ModelDamping(0.4), ModelMaxIter(500), ModelTol(1e-8),
		SatQueue(100), Drain(true), MulticastPriority(true),
		Trace(0, 16),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 8 {
		t.Errorf("hypercube(3) has %d nodes, want 8", s.Nodes())
	}
	if _, err := NewScenario(Torus(4, 4), Rate(0.001)); err != nil {
		t.Errorf("torus: %v", err)
	}
	if _, err := NewScenario(QuarcOnePort(8), Rate(0.001)); err != nil {
		t.Errorf("quarc-oneport: %v", err)
	}
	if _, err := NewScenario(Spidergon(8), Rate(0.001)); err != nil {
		t.Errorf("spidergon: %v", err)
	}
	e := DefaultEffort()
	if e.Measure <= QuickEffort().Measure {
		t.Error("default effort not larger than quick effort")
	}
	if _, err := (Simulator{}).Evaluate(s); err != nil {
		t.Errorf("simulator with full knob surface: %v", err)
	}
}
