package noc

import (
	"fmt"
	"sort"
	"sync"

	"quarc/internal/traffic"
)

// TopologyConfig parameterizes a topology builder. Each builder reads only
// the fields its family needs: N for quarc/spidergon, W and H for
// mesh/torus, Dims for hypercube.
type TopologyConfig struct {
	N    int // node count (quarc, spidergon)
	W, H int // grid dimensions (mesh, torus)
	Dims int // dimensions (hypercube)
}

// PatternConfig parameterizes a traffic-pattern builder. Each builder reads
// only the fields its pattern needs: K and Seed for "random", Port and K
// for "localized", High and Low for "highlow".
type PatternConfig struct {
	K         int    // number of multicast destinations
	Port      int    // rim/port for localized sets
	Seed      uint64 // RNG seed for random sets
	High, Low []int  // Hamilton-path offsets for mesh/torus multicast
}

// TopologyBuilder constructs a topology value from its configuration. The
// returned value is opaque to callers; it is consumed by the matching
// RouterBuilder.
type TopologyBuilder func(TopologyConfig) (any, error)

// RouterBuilder wraps a topology value (produced by a TopologyBuilder)
// with its deterministic router. The returned value must implement the
// internal routing.Router interface; external callers treat it as opaque.
type RouterBuilder func(topo any) (any, error)

// PatternBuilder materializes a multicast destination set for a router
// (produced by a RouterBuilder). The returned value must be a
// routing.MulticastSet; external callers treat it as opaque.
type PatternBuilder func(router any, cfg PatternConfig) (any, error)

// SpatialConfig parameterizes a spatial (unicast-destination) pattern
// builder. The permutation families ignore it; "hotspot" reads all three
// fields.
type SpatialConfig struct {
	// Frac is the fraction of unicast traffic directed at the hotspots.
	Frac float64
	// Nodes lists the hotspot nodes.
	Nodes []int
	// Weights gives the hotspots' relative weights (nil means equal);
	// must be index-aligned with Nodes when set.
	Weights []float64
}

// SpatialBuilder materializes a unicast-destination pattern for a router:
// a fixed permutation (transpose, bit-reversal, tornado, ...) or a
// destination weight matrix (hotspot). The returned value must be a
// traffic.Dest; external callers treat it as opaque.
type SpatialBuilder func(router any, cfg SpatialConfig) (any, error)

// registry is a concurrency-safe string-keyed table of builders.
type registry[T any] struct {
	kind string
	mu   sync.RWMutex
	m    map[string]T
}

func (r *registry[T]) register(name string, v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]T)
	}
	r.m[name] = v
}

func (r *registry[T]) lookup(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.m[name]
	if !ok {
		return v, fmt.Errorf("%w: unknown %s %q (known: %v)", ErrInvalidOption, r.kind, name, r.namesLocked())
	}
	return v, nil
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *registry[T]) namesLocked() []string {
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var (
	topologyReg = &registry[TopologyBuilder]{kind: "topology"}
	routerReg   = &registry[RouterBuilder]{kind: "router"}
	patternReg  = &registry[PatternBuilder]{kind: "traffic pattern"}
	spatialReg  = &registry[SpatialBuilder]{kind: "spatial pattern"}

	// defaultRouter maps a topology name to the router used when a
	// scenario does not name one explicitly.
	defaultRouterMu sync.RWMutex
	defaultRouter   = map[string]string{}
)

// RegisterTopology adds (or replaces) a named topology builder and its
// default router name. The built-in names are "quarc", "quarc-oneport",
// "spidergon", "mesh", "torus" and "hypercube".
func RegisterTopology(name, router string, b TopologyBuilder) {
	topologyReg.register(name, b)
	defaultRouterMu.Lock()
	defaultRouter[name] = router
	defaultRouterMu.Unlock()
}

// RegisterRouter adds (or replaces) a named router builder. The built-in
// names are "quarc", "spidergon", "mesh" and "hypercube".
func RegisterRouter(name string, b RouterBuilder) { routerReg.register(name, b) }

// RegisterPattern adds (or replaces) a named traffic-pattern builder. The
// built-in names are "none", "random", "localized", "broadcast" and
// "highlow".
func RegisterPattern(name string, b PatternBuilder) { patternReg.register(name, b) }

// Topologies returns the registered topology names, sorted.
func Topologies() []string { return topologyReg.names() }

// Routers returns the registered router names, sorted.
func Routers() []string { return routerReg.names() }

// Patterns returns the registered traffic-pattern names, sorted.
func Patterns() []string { return patternReg.names() }

// RegisterSpatial adds (or replaces) a named spatial (unicast-destination)
// pattern builder. The built-in names are "uniform", "transpose",
// "bit-reversal", "bit-complement", "shuffle", "tornado" and "hotspot".
func RegisterSpatial(name string, b SpatialBuilder) { spatialReg.register(name, b) }

// Spatials returns the registered spatial-pattern names, sorted.
func Spatials() []string { return spatialReg.names() }

// Arrivals returns the registered arrival-process names, sorted. The
// built-ins are "bernoulli", "onoff", "periodic" and "poisson" (the
// default); register more with traffic.RegisterArrival.
func Arrivals() []string { return traffic.Arrivals() }

func defaultRouterFor(topology string) string {
	defaultRouterMu.RLock()
	defer defaultRouterMu.RUnlock()
	return defaultRouter[topology]
}
