package noc

import (
	"encoding/json"
	"math"
)

// Result is the shared outcome type of every evaluator. Fields that only
// one engine produces are zero for the other; latencies that do not apply
// (e.g. multicast with alpha = 0) are NaN and marshal to JSON null.
type Result struct {
	// Evaluator names the engine that produced the result ("model" or
	// "simulator").
	Evaluator string
	// Unicast and Multicast are the average message latencies in cycles.
	Unicast   float64
	Multicast float64
	// Saturated reports that the configuration is beyond the stable
	// region (model: a channel utilization reached 1; simulator: the
	// injection backlog grew without bound).
	Saturated bool

	// Model-only fields.

	// MaxRho is the largest channel utilization at the fixed point.
	MaxRho float64
	// Iterations counts the fixed-point sweeps; Converged reports whether
	// they met the tolerance.
	Iterations int
	Converged  bool
	// Branches holds per-branch waits; nil unless Detail was enabled.
	Branches []BranchInfo

	// Simulator-only fields.

	// Replications is the number of independent seeded replications
	// aggregated into this result; zero or one means a single run.
	Replications int
	// UnicastCI and MulticastCI are 95% half-widths: batch means within
	// the run for a single run, across-replication otherwise.
	UnicastCI   float64
	MulticastCI float64
	// UnicastN and MulticastN count the measured messages per class;
	// Generated and Completed count all messages in the window.
	UnicastN   int64
	MulticastN int64
	Generated  int64
	Completed  int64
	// Time is the simulated time, Events the number of discrete events.
	Time   float64
	Events uint64
	// MaxUtil is the highest channel utilization observed.
	MaxUtil float64
	// DetailSummary holds the per-port/per-distance breakdown; empty
	// unless Detail was enabled.
	DetailSummary string
	// TraceText holds the formatted event trace; empty unless Trace was
	// enabled.
	TraceText string
	// Series holds the recorded time series; nil unless Metrics was
	// enabled (simulator only).
	Series *TimeSeries
}

// jsonResult mirrors Result with JSON-safe numbers: NaN and Inf have no
// JSON representation and encode as null.
type jsonResult struct {
	Evaluator     string       `json:"evaluator"`
	Unicast       *float64     `json:"unicast"`
	Multicast     *float64     `json:"multicast"`
	Saturated     bool         `json:"saturated"`
	MaxRho        float64      `json:"max_rho,omitempty"`
	Iterations    int          `json:"iterations,omitempty"`
	Converged     bool         `json:"converged,omitempty"`
	Branches      []BranchInfo `json:"branches,omitempty"`
	Replications  int          `json:"replications,omitempty"`
	UnicastCI     *float64     `json:"unicast_ci95,omitempty"`
	MulticastCI   *float64     `json:"multicast_ci95,omitempty"`
	UnicastN      int64        `json:"unicast_messages,omitempty"`
	MulticastN    int64        `json:"multicast_messages,omitempty"`
	Generated     int64        `json:"generated,omitempty"`
	Completed     int64        `json:"completed,omitempty"`
	Time          float64      `json:"time,omitempty"`
	Events        uint64       `json:"events,omitempty"`
	MaxUtil       float64      `json:"max_util,omitempty"`
	DetailSummary string       `json:"detail,omitempty"`
	TraceText     string       `json:"trace,omitempty"`
	Series        *TimeSeries  `json:"series,omitempty"`
}

func jsonNum(x float64) *float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil
	}
	return &x
}

func fromJSONNum(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON encodes the result with NaN/Inf latencies as null.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonResult{
		Evaluator:     r.Evaluator,
		Unicast:       jsonNum(r.Unicast),
		Multicast:     jsonNum(r.Multicast),
		Saturated:     r.Saturated,
		MaxRho:        r.MaxRho,
		Iterations:    r.Iterations,
		Converged:     r.Converged,
		Branches:      r.Branches,
		Replications:  r.Replications,
		UnicastCI:     jsonNum(r.UnicastCI),
		MulticastCI:   jsonNum(r.MulticastCI),
		UnicastN:      r.UnicastN,
		MulticastN:    r.MulticastN,
		Generated:     r.Generated,
		Completed:     r.Completed,
		Time:          r.Time,
		Events:        r.Events,
		MaxUtil:       r.MaxUtil,
		DetailSummary: r.DetailSummary,
		TraceText:     r.TraceText,
		Series:        r.Series,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON; null latencies decode to
// NaN.
func (r *Result) UnmarshalJSON(data []byte) error {
	var jr jsonResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return err
	}
	*r = Result{
		Evaluator:     jr.Evaluator,
		Unicast:       fromJSONNum(jr.Unicast),
		Multicast:     fromJSONNum(jr.Multicast),
		Saturated:     jr.Saturated,
		MaxRho:        jr.MaxRho,
		Iterations:    jr.Iterations,
		Converged:     jr.Converged,
		Branches:      jr.Branches,
		Replications:  jr.Replications,
		UnicastCI:     fromJSONNum(jr.UnicastCI),
		MulticastCI:   fromJSONNum(jr.MulticastCI),
		UnicastN:      jr.UnicastN,
		MulticastN:    jr.MulticastN,
		Generated:     jr.Generated,
		Completed:     jr.Completed,
		Time:          jr.Time,
		Events:        jr.Events,
		MaxUtil:       jr.MaxUtil,
		DetailSummary: jr.DetailSummary,
		TraceText:     jr.TraceText,
		Series:        jr.Series,
	}
	return nil
}

// RelErr returns |a-b| / |b|, the relative error of a prediction a against
// a reference b (NaN when the reference is zero or NaN).
func RelErr(a, b float64) float64 {
	if b == 0 || math.IsNaN(b) {
		return math.NaN()
	}
	return math.Abs(a-b) / math.Abs(b)
}
