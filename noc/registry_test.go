package noc

import (
	"slices"
	"strings"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	for _, want := range []string{"quarc", "quarc-oneport", "spidergon", "mesh", "torus", "hypercube"} {
		if !slices.Contains(Topologies(), want) {
			t.Errorf("Topologies() = %v, missing %q", Topologies(), want)
		}
	}
	for _, want := range []string{"quarc", "spidergon", "mesh", "hypercube"} {
		if !slices.Contains(Routers(), want) {
			t.Errorf("Routers() = %v, missing %q", Routers(), want)
		}
	}
	for _, want := range []string{"none", "random", "localized", "broadcast", "highlow"} {
		if !slices.Contains(Patterns(), want) {
			t.Errorf("Patterns() = %v, missing %q", Patterns(), want)
		}
	}
	if !slices.IsSorted(Topologies()) || !slices.IsSorted(Routers()) || !slices.IsSorted(Patterns()) {
		t.Error("registry name listings must be sorted")
	}
}

// TestRegistryRoundTrip builds one scenario per registered built-in
// topology through the declarative name-based lookup.
func TestRegistryRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		cfg   TopologyConfig
		nodes int
	}{
		{"quarc", TopologyConfig{N: 16}, 16},
		{"quarc-oneport", TopologyConfig{N: 16}, 16},
		{"spidergon", TopologyConfig{N: 16}, 16},
		{"mesh", TopologyConfig{W: 4, H: 4}, 16},
		{"torus", TopologyConfig{W: 4, H: 4}, 16},
		{"hypercube", TopologyConfig{Dims: 4}, 16},
	}
	for _, c := range cases {
		s, err := NewScenario(Topology(c.name, c.cfg), Rate(0.001))
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if s.TopologyName() != c.name {
			t.Errorf("%s: TopologyName() = %q", c.name, s.TopologyName())
		}
		if s.Nodes() != c.nodes {
			t.Errorf("%s: Nodes() = %d, want %d", c.name, s.Nodes(), c.nodes)
		}
		if _, err := (Model{}).Evaluate(s); err != nil {
			t.Errorf("%s: model evaluation: %v", c.name, err)
		}
	}
}

func TestRegistryUnknownNames(t *testing.T) {
	_, err := NewScenario(Topology("ring", TopologyConfig{N: 8}))
	if err == nil || !strings.Contains(err.Error(), `unknown topology "ring"`) {
		t.Errorf("unknown topology error = %v", err)
	}
	// The error must list the known names so the registry is discoverable
	// from the failure alone.
	if err != nil && !strings.Contains(err.Error(), "quarc") {
		t.Errorf("unknown topology error does not list known names: %v", err)
	}

	_, err = NewScenario(Quarc(16), Router("xy"))
	if err == nil || !strings.Contains(err.Error(), `unknown router "xy"`) {
		t.Errorf("unknown router error = %v", err)
	}

	_, err = NewScenario(Quarc(16), Pattern("bitcomp", PatternConfig{}))
	if err == nil || !strings.Contains(err.Error(), `unknown traffic pattern "bitcomp"`) {
		t.Errorf("unknown pattern error = %v", err)
	}
}

func TestPatternTopologyMismatch(t *testing.T) {
	// Hamilton-path offsets only exist on mesh/torus.
	if _, err := NewScenario(Quarc(16), Alpha(0.05), HighLowDests([]int{1}, nil)); err == nil {
		t.Error("highlow pattern on quarc should fail")
	}
	// Rim-localized sets only exist on quarc/spidergon.
	if _, err := NewScenario(Mesh(4, 4), Alpha(0.05), LocalizedDests(0, 3)); err == nil {
		t.Error("localized pattern on mesh should fail")
	}
}

func TestRegisterCustomTopology(t *testing.T) {
	// A custom name can alias an existing builder through the public
	// registration hooks.
	builder, err := topologyReg.lookup("quarc")
	if err != nil {
		t.Fatal(err)
	}
	RegisterTopology("quarc-test-alias", "quarc", builder)
	s, err := NewScenario(Topology("quarc-test-alias", TopologyConfig{N: 16}), Rate(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 16 {
		t.Errorf("aliased topology Nodes() = %d", s.Nodes())
	}
}
