package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"quarc/noc"
)

// testSpec is a small, fast scenario shared by the service tests.
func testSpec() noc.Spec {
	return noc.Spec{
		Topology: "quarc", N: 16, Pattern: "localized", Dests: 4,
		MsgLen: 16, Rate: 0.002, Alpha: 0.05,
		Seed: 5, Warmup: 500, Measure: 4000,
	}
}

func resultJSON(t *testing.T, r noc.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCacheHitBitwise pins the memoization contract: the cached response
// is bitwise-identical to the cold one, which is itself bitwise-identical
// to evaluating the spec directly with the noc engines.
func TestCacheHitBitwise(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()
	sp := testSpec()

	cold, src, err := e.Evaluate(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Errorf("first evaluation source = %s, want computed", src)
	}
	hot, src, err := e.Evaluate(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceCache {
		t.Errorf("second evaluation source = %s, want cache", src)
	}
	if got, want := resultJSON(t, hot), resultJSON(t, cold); got != want {
		t.Errorf("cached result differs from cold:\n hot:  %s\n cold: %s", got, want)
	}

	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultJSON(t, cold), resultJSON(t, direct); got != want {
		t.Errorf("service result differs from direct evaluation:\n svc:    %s\n direct: %s", got, want)
	}

	st := e.Stats()
	if st.Evaluations != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 evaluation, 1 hit, 1 miss", st)
	}
}

// TestSingleflight pins deduplication: N concurrent identical requests
// execute the evaluation exactly once, whatever mix of coalescing and
// cache hits the scheduler produces, and every caller sees the same
// bytes. Run under -race in CI.
func TestSingleflight(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	sp := testSpec()
	sp.Measure = 20000 // long enough that requests overlap

	const n = 8
	results := make([]noc.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = e.Evaluate(context.Background(), sp)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	want := resultJSON(t, results[0])
	for i := 1; i < n; i++ {
		if got := resultJSON(t, results[i]); got != want {
			t.Errorf("request %d result differs:\n %s\n %s", i, got, want)
		}
	}
	st := e.Stats()
	if st.Evaluations != 1 {
		t.Errorf("evaluations = %d, want exactly 1 for %d identical requests", st.Evaluations, n)
	}
	if st.Hits+st.Misses+st.Coalesced != n {
		t.Errorf("hits %d + misses %d + coalesced %d != %d requests", st.Hits, st.Misses, st.Coalesced, n)
	}
}

// TestSweepDedup pins point-wise content addressing inside a sweep:
// duplicate rates coalesce, results come back in rate order, and a
// second overlapping sweep is served from cache.
func TestSweepDedup(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	sp := testSpec()

	rates := []float64{0.001, 0.002, 0.001}
	results, err := e.Sweep(context.Background(), sp, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 rates", len(results))
	}
	if got, want := resultJSON(t, results[0]), resultJSON(t, results[2]); got != want {
		t.Errorf("duplicate rate produced different results:\n %s\n %s", got, want)
	}
	if st := e.Stats(); st.Evaluations != 2 {
		t.Errorf("evaluations = %d, want 2 for rates {0.001, 0.002, 0.001}", st.Evaluations)
	}

	again, err := e.Sweep(context.Background(), sp, rates[:2])
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Evaluations != 2 {
		t.Errorf("overlapping sweep re-evaluated: %d evaluations", st.Evaluations)
	}
	if got, want := resultJSON(t, again[1]), resultJSON(t, results[1]); got != want {
		t.Errorf("cached sweep point differs")
	}

	// Sweeps share the structural base scenario across points.
	if st := e.Stats(); st.CachedScenarios != 1 {
		t.Errorf("cached scenarios = %d, want 1 shared base", st.CachedScenarios)
	}

	for _, bad := range [][]float64{nil, {-1}, make([]float64, MaxSweepPoints+1)} {
		if _, err := e.Sweep(context.Background(), sp, bad); err == nil {
			t.Errorf("sweep accepted rates %v", bad)
		}
	}
}

// TestModelEvaluator routes "evaluator":"model" specs to the analytical
// model and keeps the two engines' cache entries distinct.
func TestModelEvaluator(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	sp := testSpec()
	sp.Evaluator = "model"

	res, _, err := e.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluator != "model" {
		t.Fatalf("evaluator = %q, want model", res.Evaluator)
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := noc.Model{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultJSON(t, res), resultJSON(t, direct); got != want {
		t.Errorf("service model result differs from direct:\n %s\n %s", got, want)
	}

	simSpec := testSpec()
	sim, _, err := e.Evaluate(context.Background(), simSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Evaluator != "simulator" {
		t.Errorf("default evaluator = %q, want simulator", sim.Evaluator)
	}
	if e.Stats().Evaluations != 2 {
		t.Errorf("model and simulator specs shared a cache entry")
	}
}

// TestRejections pins the service-level refusals.
func TestRejections(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	ctx := context.Background()

	if _, _, err := e.Evaluate(ctx, noc.Spec{Record: "x.trace"}); !errors.Is(err, ErrTraceSpec) {
		t.Errorf("record spec error = %v, want ErrTraceSpec", err)
	}
	if _, _, err := e.Evaluate(ctx, noc.Spec{Replay: "x.trace"}); !errors.Is(err, ErrTraceSpec) {
		t.Errorf("replay spec error = %v, want ErrTraceSpec", err)
	}
	if _, _, err := e.Evaluate(ctx, noc.Spec{N: 1 << 30}); !errors.Is(err, noc.ErrInvalidSpec) {
		t.Errorf("huge spec error = %v, want ErrInvalidSpec", err)
	}
	if _, _, err := e.Evaluate(ctx, noc.Spec{Topology: "ring", N: 16}); !errors.Is(err, noc.ErrInvalidOption) {
		t.Errorf("unknown topology error = %v, want ErrInvalidOption", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := e.Evaluate(canceled, testSpec()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled context error = %v", err)
	}
}

// TestClose pins shutdown: a closed evaluator refuses new work, and
// Close is idempotent.
func TestClose(t *testing.T) {
	e := New(Config{Workers: 1})
	sp := testSpec()
	if _, _, err := e.Evaluate(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	// The cache outlives the pool, but new evaluations are refused.
	if _, src, err := e.Evaluate(context.Background(), sp); err != nil || src != SourceCache {
		t.Errorf("cached read after close: src=%v err=%v", src, err)
	}
	other := sp
	other.Seed = 99
	if _, _, err := e.Evaluate(context.Background(), other); !errors.Is(err, ErrClosed) {
		t.Errorf("cold evaluate after close error = %v, want ErrClosed", err)
	}
}

// TestReplicationsServed pins that replicated specs work through the
// pool (serially inside one worker) and match the direct aggregate.
func TestReplicationsServed(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	sp := testSpec()
	sp.Replications = 3

	res, _, err := e.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications != 3 {
		t.Fatalf("replications = %d, want 3", res.Replications)
	}
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultJSON(t, res), resultJSON(t, direct); got != want {
		t.Errorf("served replicated result differs from direct:\n %s\n %s", got, want)
	}
}

// TestCacheEviction pins the LRU bound.
func TestCacheEviction(t *testing.T) {
	e := New(Config{Workers: 1, CacheEntries: 2})
	defer e.Close()
	sp := testSpec()
	sp.Evaluator = "model" // fast: no simulation needed
	for _, rate := range []float64{0.001, 0.002, 0.003} {
		pt := sp
		pt.Rate = rate
		if _, _, err := e.Evaluate(context.Background(), pt); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CachedResults != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 cached results and 1 eviction", st)
	}
	// The evicted (oldest) point re-evaluates; the newest is still hot.
	pt := sp
	pt.Rate = 0.003
	if _, src, _ := e.Evaluate(context.Background(), pt); src != SourceCache {
		t.Errorf("newest entry source = %s, want cache", src)
	}
	pt.Rate = 0.001
	if _, src, _ := e.Evaluate(context.Background(), pt); src != SourceComputed {
		t.Errorf("evicted entry source = %s, want computed", src)
	}
}

// BenchmarkEvaluateCacheHit measures the served latency of a content
// address that is already cached.
func BenchmarkEvaluateCacheHit(b *testing.B) {
	e := New(Config{Workers: 1})
	defer e.Close()
	sp := testSpec()
	if _, _, err := e.Evaluate(context.Background(), sp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, src, err := e.Evaluate(context.Background(), sp); err != nil || src != SourceCache {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}

// BenchmarkEvaluateCold measures the full pipeline — compile against the
// shared base, schedule, simulate — by giving every iteration a fresh
// content address (the seed), which also exercises the workers' pooled
// network reuse across requests.
func BenchmarkEvaluateCold(b *testing.B) {
	e := New(Config{Workers: 1})
	defer e.Close()
	sp := testSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Seed = uint64(i + 1)
		if _, src, err := e.Evaluate(context.Background(), sp); err != nil || src != SourceComputed {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}
