package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"quarc/noc"
)

// fakeBackend scripts Backend behavior for handler-level tests that
// would be awkward to stage through a real evaluator (slow jobs,
// specific health states).
type fakeBackend struct {
	eval   func(ctx context.Context, sp noc.Spec) (noc.Result, Source, error)
	trace  func(ctx context.Context, fp uint64) (noc.Result, Source, error)
	health HealthState
	peers  []PeerHealth
}

func (f *fakeBackend) Evaluate(ctx context.Context, sp noc.Spec) (noc.Result, Source, error) {
	return f.eval(ctx, sp)
}

func (f *fakeBackend) Sweep(ctx context.Context, sp noc.Spec, rates []float64) ([]noc.Result, error) {
	out := make([]noc.Result, len(rates))
	for i := range rates {
		res, _, err := f.eval(ctx, sp)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (f *fakeBackend) Trace(ctx context.Context, fp uint64) (noc.Result, Source, error) {
	if f.trace != nil {
		return f.trace(ctx, fp)
	}
	return noc.Result{}, "", ErrNotFound
}

func (f *fakeBackend) Stats() Stats             { return Stats{} }
func (f *fakeBackend) Healthz() HealthState     { return f.health }
func (f *fakeBackend) PeerHealth() []PeerHealth { return f.peers }

// blockingBackend evaluates by waiting out the context — the shape of a
// stuck or overlong evaluation.
func blockingBackend() *fakeBackend {
	return &fakeBackend{
		eval: func(ctx context.Context, sp noc.Spec) (noc.Result, Source, error) {
			<-ctx.Done()
			return noc.Result{}, "", ctx.Err()
		},
		health: HealthState{Status: StatusOK},
	}
}

// TestHTTPRequestTimeout pins the -request-timeout satellite: an
// evaluation that outlives the server's per-request deadline answers
// 504 Gateway Timeout, on both the evaluate and sweep routes.
func TestHTTPRequestTimeout(t *testing.T) {
	srv := httptest.NewServer(NewHandlerConfig(blockingBackend(), HandlerConfig{RequestTimeout: 30 * time.Millisecond}))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/evaluate", testSpec())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("evaluate status = %d (%s), want 504", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("504 body %q is not {error: ...}", body)
	}

	resp, body = postJSON(t, srv.URL+"/v1/sweep", SweepRequest{Spec: testSpec(), Rates: []float64{0.001}})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("sweep status = %d (%s), want 504", resp.StatusCode, body)
	}
}

// TestHTTPRequestTimeoutNotTriggered pins that a fast evaluation is
// untouched by the deadline machinery.
func TestHTTPRequestTimeoutNotTriggered(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	srv := httptest.NewServer(NewHandlerConfig(e, HandlerConfig{RequestTimeout: time.Minute}))
	defer srv.Close()
	resp, body := postJSON(t, srv.URL+"/v1/evaluate", testSpec())
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d (%s)", resp.StatusCode, body)
	}
}

// TestHTTPHealthzDegraded pins the degraded healthz satellite: a
// draining evaluator answers 503 with a reason while still serving,
// and a scripted degraded backend does the same.
func TestHTTPHealthzDegraded(t *testing.T) {
	srv, e := newTestServer(t, Config{Workers: 1})
	if resp, _ := getHealth(t, srv.URL); resp.StatusCode != http.StatusOK {
		t.Errorf("healthy status = %d", resp.StatusCode)
	}
	e.SetDraining(true)
	resp, h := getHealth(t, srv.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining status = %d, want 503", resp.StatusCode)
	}
	if h.Status != StatusDegraded || h.Reason == "" {
		t.Errorf("draining health = %+v", h)
	}
	// Draining is advisory: the box still answers requests.
	if resp, body := postJSON(t, srv.URL+"/v1/evaluate", testSpec()); resp.StatusCode != http.StatusOK {
		t.Errorf("draining evaluate status = %d (%s)", resp.StatusCode, body)
	}
	e.SetDraining(false)
	if resp, _ := getHealth(t, srv.URL); resp.StatusCode != http.StatusOK {
		t.Errorf("recovered status = %d", resp.StatusCode)
	}
}

// TestHTTPHealthzPeers pins the fleet extension: a Backend that also
// implements PeerReporter gets its breaker states into the healthz
// body.
func TestHTTPHealthzPeers(t *testing.T) {
	b := blockingBackend()
	b.peers = []PeerHealth{{URL: "http://peer-1:8080", State: "open", Failures: 3}}
	srv := httptest.NewServer(NewHandler(b))
	defer srv.Close()
	resp, h := getHealth(t, srv.URL)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if len(h.Peers) != 1 || h.Peers[0].State != "open" || h.Peers[0].Failures != 3 {
		t.Errorf("peers = %+v", h.Peers)
	}
}

func getHealth(t *testing.T, base string) (*http.Response, Health) {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp, h
}
