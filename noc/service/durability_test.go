package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quarc/internal/faultinject"
	"quarc/noc"
	"quarc/noc/service/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreWarmRestart pins the durability contract end to end: an
// evaluator computes and persists, a second evaluator over the same
// directory (a restarted daemon) serves the result from the store,
// bitwise-identical to the cold evaluation and without touching the
// worker pool.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sp := testSpec()

	e1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	cold, src, err := e1.Evaluate(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Fatalf("first evaluation source = %s", src)
	}
	if st := e1.Stats(); st.DurableResults != 1 || st.StoreErrors != 0 {
		t.Errorf("stats after compute = %+v, want 1 durable result", st)
	}
	e1.Close()

	e2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer e2.Close()
	warm, src, err := e2.Evaluate(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceStore {
		t.Fatalf("restarted evaluation source = %s, want store", src)
	}
	if got, want := resultJSON(t, warm), resultJSON(t, cold); got != want {
		t.Errorf("store-served result differs from cold:\n warm: %s\n cold: %s", got, want)
	}
	st := e2.Stats()
	if st.Evaluations != 0 || st.StoreHits != 1 {
		t.Errorf("stats after warm serve = %+v, want 0 evaluations, 1 store hit", st)
	}

	// The store hit is promoted into the LRU: the next request is a
	// plain cache hit without disk I/O.
	if _, src, err := e2.Evaluate(ctx, sp); err != nil || src != SourceCache {
		t.Errorf("post-promotion source = %s, %v, want cache", src, err)
	}
}

// TestStoreCorruptRecompute pins the quarantine path through the
// evaluator: a corrupted on-disk entry is never served — the spec is
// recomputed, the damaged file quarantined, and the fresh result is
// bitwise-identical to the original.
func TestStoreCorruptRecompute(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sp := testSpec()

	e1 := New(Config{Workers: 1, Store: openStore(t, dir)})
	cold, _, err := e1.Evaluate(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Flip a byte in the single stored entry.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".qre") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/3] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
	}
	if !corrupted {
		t.Fatal("no entry file found to corrupt")
	}

	e2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer e2.Close()
	res, src, err := e2.Evaluate(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Errorf("source after corruption = %s, want computed (recompute, never serve corrupt)", src)
	}
	if got, want := resultJSON(t, res), resultJSON(t, cold); got != want {
		t.Errorf("recomputed result differs from original:\n %s\n %s", got, want)
	}
	if st := e2.Stats(); st.Quarantined != 1 || st.DurableResults != 1 {
		t.Errorf("stats = %+v, want 1 quarantined and 1 rewritten durable result", st)
	}
}

// TestStorePutFailureDegradesGracefully pins best-effort persistence:
// an injected write failure is counted, but the response still
// succeeds with the computed result.
func TestStorePutFailureDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1, faultinject.Rule{Point: "store.put", Kind: faultinject.KindError, First: 1})
	st, err := store.Open(store.Config{Dir: dir, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 1, Store: st})
	defer e.Close()

	sp := testSpec()
	res, src, err := e.Evaluate(context.Background(), sp)
	if err != nil {
		t.Fatalf("evaluation failed on a store write error: %v", err)
	}
	if src != SourceComputed {
		t.Errorf("source = %s", src)
	}
	direct, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	want, err := noc.Simulator{}.Evaluate(direct)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, res) != resultJSON(t, want) {
		t.Errorf("result differs under store failure")
	}
	if stats := e.Stats(); stats.StoreErrors != 1 || stats.DurableResults != 0 {
		t.Errorf("stats = %+v, want 1 store error, 0 durable results", stats)
	}
}

// TestHealthzStates pins the degraded-state reporting: ok when idle,
// degraded while draining, degraded when the job queue is saturated.
func TestHealthzStates(t *testing.T) {
	e := New(Config{Workers: 1})
	if hs := e.Healthz(); hs.Status != StatusOK {
		t.Errorf("idle Healthz = %+v, want ok", hs)
	}
	e.SetDraining(true)
	if hs := e.Healthz(); hs.Status != StatusDegraded || !strings.Contains(hs.Reason, "draining") {
		t.Errorf("draining Healthz = %+v", hs)
	}
	e.SetDraining(false)
	e.Close()
	if hs := e.Healthz(); hs.Status != StatusDegraded {
		t.Errorf("closed Healthz = %+v, want degraded", hs)
	}

	// Saturation, white-box: a full job buffer with no workers draining
	// it is exactly the state a stalled pool presents.
	sat := &Evaluator{jobs: make(chan job, 1)}
	if hs := sat.Healthz(); hs.Status != StatusOK {
		t.Errorf("empty queue Healthz = %+v", hs)
	}
	sat.jobs <- job{}
	if hs := sat.Healthz(); hs.Status != StatusDegraded || !strings.Contains(hs.Reason, "saturated") {
		t.Errorf("saturated Healthz = %+v", hs)
	}
}
