package store

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quarc/internal/faultinject"
	"quarc/noc"
)

// testResult is a representative Result, including a NaN latency (the
// JSON-null case) and float values that must survive bitwise.
func testResult() noc.Result {
	return noc.Result{
		Evaluator: "simulator",
		Unicast:   37.219384756201,
		Multicast: math.NaN(),
		UnicastN:  12345,
		Generated: 20000,
		Completed: 19999,
		Time:      1.25e5,
		Events:    987654,
		MaxUtil:   0.731,
	}
}

func resultJSON(t *testing.T, r noc.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func open(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entryFiles lists the live entry files in dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), entryExt) {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestPutGetReopen pins the durability contract: a stored Result is
// served bitwise-identical, both within the writing process and by a
// fresh Open of the same directory.
func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	key, want := `{"topology":"quarc","n":16}`, testResult()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a just-Put key")
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Errorf("round trip differs:\n got:  %s\n want: %s", resultJSON(t, got), resultJSON(t, want))
	}
	if _, ok := s.Get("other"); ok {
		t.Error("Get hit an absent key")
	}

	// Overwrite keeps one entry per key.
	want.Unicast = 38.5
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || len(entryFiles(t, dir)) != 1 {
		t.Errorf("after overwrite: Len=%d, %d files", s.Len(), len(entryFiles(t, dir)))
	}

	// A fresh Open rebuilds the index and serves the same bytes.
	s2 := open(t, Config{Dir: dir})
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	got2, ok := s2.Get(key)
	if !ok || resultJSON(t, got2) != resultJSON(t, want) {
		t.Errorf("reopened Get = %v, %v", got2, ok)
	}
	if q := s2.Quarantined(); q != 0 {
		t.Errorf("clean reopen quarantined %d entries", q)
	}
}

// TestOpenQuarantines pins the rebuild-on-open scan: corrupt,
// truncated, unreadable-frame and duplicate-key entries are all moved
// to quarantine/ and never indexed; tmp debris from interrupted writes
// is deleted.
func TestOpenQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	if err := s.Put("key-a", testResult()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", testResult()); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("files = %v", files)
	}

	// Flip a byte of one entry (on-media corruption).
	target := filepath.Join(dir, files[0])
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate the other (torn write that still got renamed somehow).
	if err := os.Truncate(filepath.Join(dir, files[1]), 7); err != nil {
		t.Fatal(err)
	}
	// Crash debris and a duplicate-key entry.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	dup := encodeEntry("key-c", []byte(`{"evaluator":"model"}`))
	for _, name := range []string{"aaaa.qre", "bbbb.qre"} {
		if err := os.WriteFile(filepath.Join(dir, name), dup, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := open(t, Config{Dir: dir})
	if got := s2.Quarantined(); got != 3 {
		t.Errorf("quarantined = %d, want 3 (corrupt, truncated, duplicate)", got)
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1 (only key-c survives)", s2.Len())
	}
	if _, ok := s2.Get("key-a"); ok {
		t.Error("corrupt entry was served")
	}
	if _, ok := s2.Get("key-c"); !ok {
		t.Error("surviving duplicate key missed")
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(q) != 3 {
		t.Errorf("quarantine dir holds %d files (%v), want 3", len(q), err)
	}
	if ents := entryFiles(t, dir); len(ents) != 1 {
		t.Errorf("live entries after scan = %v", ents)
	}
	for _, e := range q {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Errorf("tmp debris %s was quarantined instead of deleted", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"123")); !os.IsNotExist(err) {
		t.Error("tmp debris survived Open")
	}
}

// TestGetQuarantinesLiveCorruption pins that Get re-validates from
// disk: an entry damaged after Open is quarantined on read, not served.
func TestGetQuarantinesLiveCorruption(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	if err := s.Put("key", testResult()); err != nil {
		t.Fatal(err)
	}
	name := entryFiles(t, dir)[0]
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // break the checksum
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key"); ok {
		t.Fatal("corrupted entry was served")
	}
	if s.Quarantined() != 1 || s.Len() != 0 {
		t.Errorf("quarantined=%d len=%d, want 1, 0", s.Quarantined(), s.Len())
	}
	if _, ok := s.Get("key"); ok {
		t.Error("dropped key still served")
	}
}

// TestCollisionProbing pins the fingerprint-collision path: when a
// key's fingerprint file name is already claimed by a different key,
// Put probes to a suffixed name and both keys stay independently
// servable.
func TestCollisionProbing(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	keyA, keyB := "collision-victim", "squatter"
	// Plant an entry for keyB at keyA's fingerprint name.
	nameA := s.fileFor(keyA)
	other := testResult()
	other.Evaluator = "model"
	val, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, nameA), encodeEntry(keyB, val), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, Config{Dir: dir})
	if err := s2.Put(keyA, testResult()); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
	gotA, okA := s2.Get(keyA)
	gotB, okB := s2.Get(keyB)
	if !okA || !okB {
		t.Fatalf("Get after collision: okA=%v okB=%v", okA, okB)
	}
	if resultJSON(t, gotA) == resultJSON(t, gotB) {
		t.Error("collision aliased two keys onto one result")
	}
	files := entryFiles(t, dir)
	if len(files) != 2 {
		t.Errorf("files = %v, want 2 (probed name)", files)
	}
}

// TestInjectedWriteFaults drives the store.put seam: a clean injected
// error fails Put; torn and corrupted writes succeed but the damaged
// entry is quarantined at next read instead of served.
func TestInjectedWriteFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind faultinject.Kind
	}{
		{"short-write", faultinject.KindShortWrite},
		{"corrupt", faultinject.KindCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultinject.New(1, faultinject.Rule{Point: "store.put", Kind: tc.kind, First: 1})
			s := open(t, Config{Dir: dir, Inject: inj})
			if err := s.Put("key", testResult()); err != nil {
				t.Fatalf("damaged Put failed cleanly: %v", err)
			}
			if _, ok := s.Get("key"); ok {
				t.Fatal("damaged entry was served")
			}
			if s.Quarantined() != 1 {
				t.Errorf("quarantined = %d, want 1", s.Quarantined())
			}
			// The write path has healed (First: 1); the key is servable
			// again.
			if err := s.Put("key", testResult()); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("key"); !ok {
				t.Error("healed Put not served")
			}
		})
	}

	t.Run("error", func(t *testing.T) {
		dir := t.TempDir()
		inj := faultinject.New(1, faultinject.Rule{Point: "store.put", Kind: faultinject.KindError, First: 1})
		s := open(t, Config{Dir: dir, Inject: inj})
		if err := s.Put("key", testResult()); err == nil {
			t.Fatal("injected write error did not surface")
		}
		if len(entryFiles(t, dir)) != 0 {
			t.Error("failed Put left a visible entry")
		}
	})

	t.Run("get-error", func(t *testing.T) {
		dir := t.TempDir()
		inj := faultinject.New(1, faultinject.Rule{Point: "store.get", Kind: faultinject.KindError, First: 1})
		s := open(t, Config{Dir: dir, Inject: inj})
		if err := s.Put("key", testResult()); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("key"); ok {
			t.Fatal("injected read error did not miss")
		}
		// A transient read failure must not quarantine a healthy file.
		if s.Quarantined() != 0 {
			t.Errorf("quarantined = %d, want 0", s.Quarantined())
		}
		if _, ok := s.Get("key"); !ok {
			t.Error("entry lost after transient read failure")
		}
	})
}

// TestOpenErrors pins the config and filesystem error paths.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("Open with no dir succeeded")
	}
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: file}); err == nil {
		t.Error("Open over a plain file succeeded")
	}
}

// TestDecodeEntryRejects pins the framing validation table.
func TestDecodeEntryRejects(t *testing.T) {
	good := encodeEntry("key", []byte("value"))
	cases := map[string][]byte{
		"empty":        {},
		"short":        good[:8],
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)-6],
		"trailing":     append(append([]byte(nil), good...), 0),
		"bad checksum": append(append([]byte(nil), good[:len(good)-1]...), good[len(good)-1]^1),
	}
	hugeKey := append([]byte(nil), good...)
	hugeKey[4], hugeKey[5] = 0xff, 0xff // keyLen beyond maxEntryKey
	cases["huge key length"] = hugeKey
	for name, data := range cases {
		if _, _, err := decodeEntry(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	key, val, err := decodeEntry(good)
	if err != nil || key != "key" || string(val) != "value" {
		t.Errorf("good entry: %q %q %v", key, val, err)
	}
}
