// Package store is the durable layer under the noc/service result
// cache: a directory of checksummed, content-addressed Result entries
// keyed by canonical spec JSON, so a restarted quarcd serves its warm
// set bitwise-identical to the process that computed it.
//
// Durability discipline:
//
//   - writes are atomic: each entry goes to a ".tmp-*" file first,
//     fsynced, then renamed into place, so a crash never leaves a
//     half-visible entry — only tmp debris, which Open deletes;
//   - every entry carries a CRC-32 and its own key; Get and the Open
//     scan re-validate both, and anything that fails — torn writes,
//     flipped bytes, foreign or truncated files — is moved to the
//     quarantine/ subdirectory, never served, and recomputed upstream;
//   - file names are the FNV-1a fingerprint of the key with collision
//     probing, and the embedded key is authoritative, so two specs can
//     never alias one entry.
//
// The store is safe for concurrent use. It deliberately holds no
// package-level state; every mutable structure hangs off one *Store.
package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"quarc/internal/faultinject"
	"quarc/noc"
)

const (
	// entryExt suffixes every live entry file.
	entryExt = ".qre"
	// tmpPrefix marks in-progress writes; leftovers are crash debris.
	tmpPrefix = ".tmp-"
	// quarantineDir collects entries that failed validation.
	quarantineDir = "quarantine"
)

// Injection-point names for the faultinject seams.
const (
	pointGet = "store.get"
	pointPut = "store.put"
)

// Config configures Open.
type Config struct {
	// Dir is the store directory; created if missing.
	Dir string
	// Inject, when non-nil, arms the deterministic fault injector on
	// the read ("store.get") and write ("store.put") seams. Tests only.
	Inject *faultinject.Injector
}

// Store is one open result store. All methods are safe for concurrent
// use.
type Store struct {
	dir string
	inj *faultinject.Injector

	mu    sync.Mutex
	index map[string]string // key -> entry file name
	names map[string]string // entry file name -> key

	quarantined atomic.Uint64
}

// Open scans cfg.Dir, deletes tmp debris from interrupted writes,
// quarantines every entry that fails validation, and indexes the rest.
// The directory (and its quarantine/ subdirectory) is created if
// missing.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: no directory configured")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", cfg.Dir, err)
	}
	s := &Store{
		dir:   cfg.Dir,
		inj:   cfg.Inject,
		index: make(map[string]string),
		names: make(map[string]string),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", cfg.Dir, err)
	}
	for _, e := range entries { // ReadDir sorts, so rebuild order is stable
		name := e.Name()
		switch {
		case e.IsDir():
		case strings.HasPrefix(name, tmpPrefix):
			// An interrupted write: never renamed, so never visible.
			os.Remove(filepath.Join(cfg.Dir, name))
		case strings.HasSuffix(name, entryExt):
			key, _, err := s.readEntry(name)
			if err != nil {
				s.quarantine(name)
				continue
			}
			if _, dup := s.index[key]; dup {
				// Two live files claiming one key (e.g. debris from a
				// former collision chain): keep the first, quarantine
				// the rest.
				s.quarantine(name)
				continue
			}
			s.index[key] = name
			s.names[name] = key
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Quarantined returns how many entries have been quarantined since
// Open, including those caught during the Open scan itself.
func (s *Store) Quarantined() uint64 { return s.quarantined.Load() }

// Keys snapshots the live entry keys (canonical spec encodings),
// sorted. The serving layer's fingerprint lookup scans it to find
// store-warm entries by content address.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the stored Result for key. The entry is re-read and
// re-validated from disk on every call, so corruption that happened
// after Open is still caught here: a damaged entry is quarantined and
// reported as a miss, never served.
func (s *Store) Get(key string) (noc.Result, bool) {
	s.mu.Lock()
	name, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return noc.Result{}, false
	}
	if err := s.inj.Err(pointGet); err != nil {
		// A transient read failure (injected here, an I/O error in
		// life): the file may be fine, so miss without quarantining.
		return noc.Result{}, false
	}
	gotKey, val, err := s.readEntry(name)
	if err != nil || gotKey != key {
		s.drop(key, name)
		return noc.Result{}, false
	}
	var res noc.Result
	if err := json.Unmarshal(val, &res); err != nil {
		s.drop(key, name)
		return noc.Result{}, false
	}
	return res, true
}

// Put durably stores the Result for key, overwriting any previous
// entry: encode, write to a tmp file, fsync, rename into place.
func (s *Store) Put(key string, res noc.Result) error {
	val, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result: %w", err)
	}
	data := encodeEntry(key, val)
	// The injector models torn writes and on-media corruption: the
	// damaged bytes go through the same atomic write path, and only the
	// checksum stands between them and a future Get.
	if data, err = s.inj.Mangle(pointPut, data); err != nil {
		return fmt.Errorf("store: writing entry: %w", err)
	}
	name := s.fileFor(key)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: creating tmp file: %w", err)
	}
	if err := writeSync(tmp, data); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing %s: %w", name, err)
	}
	s.mu.Lock()
	s.index[key] = name
	s.names[name] = key
	s.mu.Unlock()
	return nil
}

// writeSync writes data and forces it to media before closing.
func writeSync(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fileFor picks the entry file name for key: the fingerprint of the
// key, probing a numeric suffix past any name already claimed by a
// different key (an FNV-1a collision).
func (s *Store) fileFor(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name, ok := s.index[key]; ok {
		return name
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	base := fmt.Sprintf("%016x", h.Sum64())
	for i := 0; ; i++ {
		name := base + entryExt
		if i > 0 {
			name = fmt.Sprintf("%s-%d%s", base, i, entryExt)
		}
		if claimed, ok := s.names[name]; !ok || claimed == key {
			return name
		}
	}
}

// readEntry reads and validates one entry file.
func (s *Store) readEntry(name string) (key string, val []byte, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return "", nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return decodeEntry(data)
}

// drop quarantines a failed entry and forgets its index mapping.
func (s *Store) drop(key, name string) {
	s.mu.Lock()
	delete(s.index, key)
	delete(s.names, name)
	s.mu.Unlock()
	s.quarantine(name)
}

// quarantine moves a bad file into the quarantine directory (removing
// it outright if the move fails) so it can never be served again but
// stays available for a post-mortem.
func (s *Store) quarantine(name string) {
	s.quarantined.Add(1)
	src := filepath.Join(s.dir, name)
	if err := os.Rename(src, filepath.Join(s.dir, quarantineDir, name)); err != nil {
		os.Remove(src)
	}
}
