package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk entry layout (all integers big-endian):
//
//	magic   [4]byte  "QRS1"
//	keyLen  uint32
//	key     [keyLen]byte   canonical spec JSON (the cache key)
//	valLen  uint32
//	val     [valLen]byte   the Result's JSON encoding
//	crc     uint32         CRC-32 (IEEE) over everything above
//
// The encoding is canonical: no padding, no trailing bytes, so a
// successful decode re-encodes to the identical file (pinned by
// FuzzStoreDecode). Any framing, bounds or checksum violation is
// ErrCorrupt — the store quarantines such files and never serves them.

// magic identifies a quarc result store entry, version 1.
const magic = "QRS1"

// Bounds on one entry's fields. Keys are canonical noc.Spec documents
// (well under a megabyte by the spec codec's own bounds); values are
// Result JSON, which only trace-bearing results push beyond a few KiB.
// The caps keep a hostile or trashed file from forcing huge allocations
// during the Open scan.
const (
	maxEntryKey = 1 << 20
	maxEntryVal = 1 << 26
)

// ErrCorrupt marks an entry that failed framing or checksum validation.
// Match with errors.Is.
var ErrCorrupt = errors.New("store: corrupt entry")

// encodeEntry frames one (key, value) record with its checksum.
func encodeEntry(key string, val []byte) []byte {
	buf := make([]byte, 0, len(magic)+4+len(key)+4+len(val)+4)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeEntry validates one record and returns its key and value. The
// value aliases data; callers that keep it own the buffer.
func decodeEntry(data []byte) (key string, val []byte, err error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(data) < len(magic)+4+4+4 {
		return "", nil, fail("%d bytes is shorter than an empty entry", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return "", nil, fail("bad magic %q", data[:len(magic)])
	}
	off := len(magic)
	keyLen := binary.BigEndian.Uint32(data[off:])
	off += 4
	if keyLen > maxEntryKey {
		return "", nil, fail("key length %d exceeds the %d bound", keyLen, maxEntryKey)
	}
	if uint64(off)+uint64(keyLen)+4+4 > uint64(len(data)) {
		return "", nil, fail("truncated at key: need %d bytes, have %d", keyLen, len(data)-off)
	}
	key = string(data[off : off+int(keyLen)])
	off += int(keyLen)
	valLen := binary.BigEndian.Uint32(data[off:])
	off += 4
	if valLen > maxEntryVal {
		return "", nil, fail("value length %d exceeds the %d bound", valLen, maxEntryVal)
	}
	if uint64(off)+uint64(valLen)+4 > uint64(len(data)) {
		return "", nil, fail("truncated at value: need %d bytes, have %d", valLen, len(data)-off)
	}
	val = data[off : off+int(valLen)]
	off += int(valLen)
	sum := binary.BigEndian.Uint32(data[off:])
	off += 4
	if off != len(data) {
		return "", nil, fail("%d trailing bytes after checksum", len(data)-off)
	}
	if want := crc32.ChecksumIEEE(data[:len(data)-4]); sum != want {
		return "", nil, fail("checksum %08x, want %08x", sum, want)
	}
	return key, val, nil
}
