package store

import (
	"bytes"
	"testing"
)

// FuzzStoreDecode throws arbitrary bytes at the on-disk entry codec.
// Two properties must hold: decodeEntry never panics whatever the
// input, and the encoding is canonical — any input that decodes
// successfully re-encodes to the identical bytes, so there is exactly
// one file representation per (key, value) and a validated entry can be
// byte-compared without re-parsing.
func FuzzStoreDecode(f *testing.F) {
	f.Add(encodeEntry("", nil))
	f.Add(encodeEntry("key", []byte("value")))
	f.Add(encodeEntry(`{"topology":"quarc","n":16,"rate":0.002}`, []byte(`{"evaluator":"simulator","unicast":37.2,"multicast":null}`)))
	f.Add([]byte("QRS1"))
	f.Add([]byte("QRS1\x00\x00\x00\x04keyx\x00\x00\x00\x01v\xff\xff\xff\xff"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		key, val, err := decodeEntry(data)
		if err != nil {
			return
		}
		if re := encodeEntry(key, val); !bytes.Equal(re, data) {
			t.Fatalf("decode accepted a non-canonical encoding:\n in:  %x\n out: %x", data, re)
		}
	})
}
