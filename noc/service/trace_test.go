package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"quarc/noc"
	"quarc/noc/service/store"
)

// metricsSpec is testSpec with recording turned on — the shape a client
// evaluates when it wants /v1/trace to answer later.
func metricsSpec() noc.Spec {
	sp := testSpec()
	sp.Metrics = true
	return sp
}

func getTrace(t *testing.T, base, fp string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/trace/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestHTTPTraceRoundTrip pins the trace endpoint's core promise: after
// evaluating a spec with "metrics": true, GET /v1/trace/{fp} serves the
// very same Result document, bitwise, with the series attached.
func TestHTTPTraceRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2})
	sp := metricsSpec()

	resp, evalBody := postJSON(t, srv.URL+"/v1/evaluate", sp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, evalBody)
	}
	fp := resp.Header.Get(HeaderFingerprint)
	if fp == "" {
		t.Fatal("evaluate response without a fingerprint header")
	}

	resp, traceBody := getTrace(t, srv.URL, fp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, traceBody)
	}
	if got := resp.Header.Get(HeaderFingerprint); got != fp {
		t.Errorf("trace fingerprint header %q, want %q", got, fp)
	}
	if got := resp.Header.Get(HeaderSource); got != string(SourceCache) {
		t.Errorf("trace source %q, want cache", got)
	}
	if !bytes.Equal(traceBody, evalBody) {
		t.Errorf("trace body differs from evaluate body:\n %s\n %s", traceBody, evalBody)
	}
	var res noc.Result
	if err := json.Unmarshal(traceBody, &res); err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("traced result has no series")
	}
	if res.Series.Buckets != noc.DefaultMetricsBuckets {
		t.Errorf("series buckets = %d, want the default %d", res.Series.Buckets, noc.DefaultMetricsBuckets)
	}
}

// TestHTTPTraceErrors pins the error envelope on the trace route: every
// failure mode answers with a machine-readable code.
func TestHTTPTraceErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})

	// A fingerprint nothing was evaluated under: 404 not_found.
	resp, body := getTrace(t, srv.URL, "00000000deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fp status %d (%s), want 404", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != CodeNotFound {
		t.Errorf("unknown fp body %s, want code %q", body, CodeNotFound)
	}

	// A fingerprint that is not hex: 400 invalid_spec.
	resp, body = getTrace(t, srv.URL, "not-a-fingerprint")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fp status %d (%s), want 400", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != CodeInvalidSpec {
		t.Errorf("malformed fp body %s, want code %q", body, CodeInvalidSpec)
	}

	// A result evaluated WITHOUT metrics: cached, but no series to
	// serve — 404, never a recomputation.
	sp := testSpec()
	if resp, b := postJSON(t, srv.URL+"/v1/evaluate", sp); resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, b)
	}
	resp, body = getTrace(t, srv.URL, fmt.Sprintf("%016x", sp.Fingerprint()))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("metrics-less trace status %d (%s), want 404", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != CodeNotFound {
		t.Errorf("metrics-less trace body %s, want code %q", body, CodeNotFound)
	}
}

// TestHTTPTraceFromStore pins durability: a restarted daemon answers
// trace queries for results computed before the restart, from the
// durable store, without re-simulating.
func TestHTTPTraceFromStore(t *testing.T) {
	dir := t.TempDir()
	sp := metricsSpec()
	fp := fmt.Sprintf("%016x", sp.Fingerprint())

	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 1, Store: st})
	if _, _, err := e.Evaluate(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	e.Close()

	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{Workers: 1, Store: st2})
	defer e2.Close()
	srv := httptest.NewServer(NewHandler(e2))
	defer srv.Close()

	resp, body := getTrace(t, srv.URL, fp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace-after-restart status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderSource); got != string(SourceStore) {
		t.Errorf("trace-after-restart source %q, want store", got)
	}
	if st := e2.Stats(); st.Evaluations != 0 {
		t.Errorf("trace-after-restart ran %d evaluations, want 0", st.Evaluations)
	}
}

// TestErrorCodes pins the error-to-code classification table the fleet
// dispatcher's retry logic reads.
func TestErrorCodes(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{noc.ErrInvalidSpec, CodeInvalidSpec},
		{fmt.Errorf("wrap: %w", noc.ErrInvalidSpec), CodeInvalidSpec},
		{ErrTraceSpec, CodeInvalidSpec},
		{ErrQueueSaturated, CodeQueueSaturated},
		{fmt.Errorf("%w (%v)", ErrQueueSaturated, context.DeadlineExceeded), CodeQueueSaturated},
		{ErrClosed, CodeDraining},
		{ErrNotFound, CodeNotFound},
		{context.DeadlineExceeded, CodeTimeout},
		{context.Canceled, CodeCanceled},
		{errors.New("disk on fire"), CodeInternal},
	}
	for _, c := range cases {
		if got := errorCode(c.err); got != c.code {
			t.Errorf("errorCode(%v) = %q, want %q", c.err, got, c.code)
		}
	}
	// The queue-saturation wrap must NOT read as a deadline error: it
	// would turn an overload 503 into a 504 and defeat retry-elsewhere.
	err := fmt.Errorf("%w (%v)", ErrQueueSaturated, context.DeadlineExceeded)
	if errors.Is(err, context.DeadlineExceeded) {
		t.Error("queue-saturated error wraps the context error; overload would classify as timeout")
	}
}

// TestHTTPErrorEnvelope pins the wire shape of the envelope across the
// status codes a scripted backend can produce.
func TestHTTPErrorEnvelope(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{noc.ErrInvalidSpec, http.StatusBadRequest, CodeInvalidSpec},
		{ErrQueueSaturated, http.StatusServiceUnavailable, CodeQueueSaturated},
		{ErrClosed, http.StatusServiceUnavailable, CodeDraining},
		{ErrNotFound, http.StatusNotFound, CodeNotFound},
		{errors.New("boom"), http.StatusInternalServerError, CodeInternal},
	}
	for _, c := range cases {
		b := &fakeBackend{
			eval: func(ctx context.Context, sp noc.Spec) (noc.Result, Source, error) {
				return noc.Result{}, "", c.err
			},
			health: HealthState{Status: StatusOK},
		}
		srv := httptest.NewServer(NewHandler(b))
		resp, body := postJSON(t, srv.URL+"/v1/evaluate", testSpec())
		srv.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%v: status %d, want %d", c.err, resp.StatusCode, c.status)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != c.code || eb.Error == "" {
			t.Errorf("%v: body %s, want code %q with a message", c.err, body, c.code)
		}
	}
}

// TestHTTPDashboard pins that the embedded dashboard page serves.
func TestHTTPDashboard(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("/v1/trace/")) {
		t.Error("dashboard page does not reference the trace endpoint")
	}
}
