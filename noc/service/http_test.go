package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"quarc/noc"
)

// newTestServer starts an httptest server over a fresh evaluator and
// hands both back.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Evaluator) {
	t.Helper()
	e := New(cfg)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, e
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPEvaluate drives the full evaluate path end to end: a cold
// request computes, an identical request hits the cache with a
// bitwise-identical body, and both match a direct noc evaluation.
func TestHTTPEvaluate(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2})
	sp := testSpec()

	resp, cold := postJSON(t, srv.URL+"/v1/evaluate", sp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get(HeaderSource); got != string(SourceComputed) {
		t.Errorf("cold %s = %q, want computed", HeaderSource, got)
	}
	wantFP := fmt.Sprintf("%016x", sp.Fingerprint())
	if got := resp.Header.Get(HeaderFingerprint); got != wantFP {
		t.Errorf("%s = %q, want %q", HeaderFingerprint, got, wantFP)
	}

	resp2, hot := postJSON(t, srv.URL+"/v1/evaluate", sp)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, hot)
	}
	if got := resp2.Header.Get(HeaderSource); got != string(SourceCache) {
		t.Errorf("hot %s = %q, want cache", HeaderSource, got)
	}
	if !bytes.Equal(cold, hot) {
		t.Errorf("cache-hit body differs from cold body:\n %s\n %s", hot, cold)
	}

	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := noc.Simulator{}.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	var got noc.Result
	if err := json.Unmarshal(cold, &got); err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, got) != resultJSON(t, direct) {
		t.Errorf("wire result differs from direct evaluation:\n wire:   %s\n direct: %s", resultJSON(t, got), resultJSON(t, direct))
	}
}

// TestHTTPSingleflight sends N concurrent identical requests through the
// full HTTP stack and checks the evaluation ran exactly once with every
// client receiving identical bytes (run under -race in CI).
func TestHTTPSingleflight(t *testing.T) {
	srv, e := newTestServer(t, Config{Workers: 4})
	sp := testSpec()
	sp.Measure = 20000

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, srv.URL+"/v1/evaluate", sp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n %s\n %s", i, bodies[i], bodies[0])
		}
	}
	if st := e.Stats(); st.Evaluations != 1 {
		t.Errorf("evaluations = %d, want exactly 1 for %d concurrent identical requests", st.Evaluations, n)
	}
}

// TestHTTPSweep drives the sweep endpoint and cross-checks each point
// against the evaluate endpoint's cache.
func TestHTTPSweep(t *testing.T) {
	srv, e := newTestServer(t, Config{Workers: 2})
	sp := testSpec()
	rates := []float64{0.001, 0.002}

	resp, body := postJSON(t, srv.URL+"/v1/sweep", SweepRequest{Spec: sp, Rates: rates})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 2 || sr.Points[0].Rate != 0.001 || sr.Points[1].Rate != 0.002 {
		t.Fatalf("sweep points = %+v", sr.Points)
	}

	// Each sweep point is content-addressed: the evaluate endpoint now
	// serves it from cache, bitwise identical.
	pt := sp
	pt.Rate = rates[1]
	resp2, body2 := postJSON(t, srv.URL+"/v1/evaluate", pt)
	if got := resp2.Header.Get(HeaderSource); got != string(SourceCache) {
		t.Errorf("sweep point not cached for evaluate: source %q", got)
	}
	var single noc.Result
	if err := json.Unmarshal(body2, &single); err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, single) != resultJSON(t, sr.Points[1].Result) {
		t.Errorf("sweep point differs from evaluate result")
	}
	if st := e.Stats(); st.Evaluations != 2 {
		t.Errorf("evaluations = %d, want 2", st.Evaluations)
	}

	resp3, body3 := postJSON(t, srv.URL+"/v1/sweep", SweepRequest{Spec: sp, Rates: []float64{-1}})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("negative rate: status %d: %s", resp3.StatusCode, body3)
	}

	// The embedded spec is decoded as strictly as /v1/evaluate's: a
	// typo'd field 400s instead of silently sweeping a default.
	for _, body := range []string{
		`{"spec":{"topology":"quarc","n":16,"msg_len":64},"rates":[0.001]}`,
		`{"spec":{"topology":"quarc","n":16},"rates":[0.001],"bogus":1}`,
		`{"rates":[0.001]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("sweep body %q: status %d (%s), want 400", body, resp.StatusCode, out)
		}
	}
}

// TestHTTPEvaluateSizeDefault pins the ring-size default on the wire: a
// spec naming quarc without n serves quarc-16, sharing its content
// address with the explicit form.
func TestHTTPEvaluateSizeDefault(t *testing.T) {
	srv, e := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv.URL+"/v1/evaluate", noc.Spec{
		Topology: "quarc", Rate: 0.002, MsgLen: 16, Warmup: 500, Measure: 4000, Seed: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp2, body2 := postJSON(t, srv.URL+"/v1/evaluate", noc.Spec{
		Topology: "quarc", N: 16, Rate: 0.002, MsgLen: 16, Warmup: 500, Measure: 4000, Seed: 5})
	if got := resp2.Header.Get(HeaderSource); got != string(SourceCache) {
		t.Errorf("explicit n=16 source = %q, want cache (shared content address)", got)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("bodies differ:\n %s\n %s", body, body2)
	}
	if st := e.Stats(); st.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1", st.Evaluations)
	}
}

// TestHTTPRegistry pins the discovery endpoint.
func TestHTTPRegistry(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var reg Registry
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	has := func(list []string, name string) bool {
		for _, v := range list {
			if v == name {
				return true
			}
		}
		return false
	}
	if !has(reg.Topologies, "quarc") || !has(reg.Topologies, "mesh") {
		t.Errorf("topologies = %v", reg.Topologies)
	}
	if !has(reg.Arrivals, "poisson") || !has(reg.Spatials, "transpose") ||
		!has(reg.Patterns, "localized") || !has(reg.Routers, "quarc") {
		t.Errorf("registry = %+v", reg)
	}
	if !has(reg.Evaluators, "model") || !has(reg.Evaluators, "simulator") {
		t.Errorf("evaluators = %v", reg.Evaluators)
	}
}

// TestHTTPHealthz pins the health endpoint and its stats snapshot.
func TestHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 3})
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
	if h.Stats.Workers != 3 {
		t.Errorf("workers = %d, want 3", h.Stats.Workers)
	}
}

// TestHTTPErrors pins the status mapping for hostile or malformed
// requests: client mistakes are 400s, never 500s or panics.
func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	post := func(body string) (*http.Response, string) {
		resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(out)
	}
	badBodies := []string{
		`not json`,
		`{"unknown_field":1}`,
		`{"n":1000000000}`,
		`{"rate":-5}`,
		`{"topology":"ring","n":16}`,
		`{"topology":"mesh"}`, // builder rejection (no size) is a client mistake
		`{"record":"a","replay":"b"}`,
		`{"record":"server-side-file"}`,
		`{"n":16} {"n":8}`,
	}
	for _, body := range badBodies {
		resp, out := post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400", body, resp.StatusCode, out)
		}
		var eb errorBody
		if err := json.Unmarshal([]byte(out), &eb); err != nil || eb.Error == "" {
			t.Errorf("body %q: error response %q is not {error: ...}", body, out)
		}
	}

	// Wrong method on a POST route.
	resp, err := http.Get(srv.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate status %d, want 405", resp.StatusCode)
	}

	// Unknown route.
	resp, err = http.Get(srv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nope status %d, want 404", resp.StatusCode)
	}

	// Oversized body.
	resp, err = http.Post(srv.URL+"/v1/evaluate", "application/json",
		bytes.NewReader(bytes.Repeat([]byte("x"), maxRequestBody+1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body status %d, want 400", resp.StatusCode)
	}
}
