package service

import "container/list"

// lruCache is a plain LRU over string keys. It is not concurrency-safe;
// the Evaluator guards it with its own mutex. Keys are full canonical
// spec encodings, not fingerprints, so hash collisions on hostile input
// cannot alias two different specs onto one entry.
type lruCache[V any] struct {
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lruCache[V] {
	return &lruCache[V]{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lruCache[V]) get(key string) (V, bool) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts (or refreshes) key and returns the number of entries
// evicted to stay within the bound.
func (c *lruCache[V]) add(key string, val V) int {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return 0
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	evicted := 0
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry[V]).key)
		evicted++
	}
	return evicted
}

func (c *lruCache[V]) len() int { return c.ll.Len() }

// keys lists the cached keys, most recently used first. The caller
// holds the Evaluator's mutex.
func (c *lruCache[V]) keys() []string {
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).key)
	}
	return out
}
