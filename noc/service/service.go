// Package service is the engine-resident serving layer of the quarc
// reproduction: a content-addressed result cache, singleflight
// deduplication and a bounded worker pool in front of the noc
// evaluators. One long-lived Evaluator serves many declarative noc.Spec
// requests (the quarcd daemon's backend), with three layers of reuse:
//
//   - identical specs (same canonical encoding) hit the LRU Result cache
//     and never evaluate twice;
//   - identical specs in flight at the same time coalesce onto one
//     evaluation (singleflight);
//   - structurally identical specs (same topology/pattern/spatial
//     sub-spec) share one compiled base scenario, so workers reuse
//     routing tables and their pooled wormhole networks across requests,
//     exactly like a noc.Sweep worker does across points.
//
// With Config.Store set, a durable on-disk layer (noc/service/store)
// sits behind the LRU: computed results are persisted write-through,
// and a restarted evaluator serves its warm set from disk — checksummed
// and bitwise-identical — instead of recomputing it.
//
// Every response is bitwise-identical to evaluating the spec cold with
// noc.Simulator/noc.Model directly — caching, pooling and persistence
// are pure memoization (pinned by the package tests).
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"quarc/noc"
	"quarc/noc/service/store"
)

// Sentinel errors; match with errors.Is.
var (
	// ErrClosed reports an Evaluate/Sweep call against a Close()d
	// evaluator.
	ErrClosed = errors.New("service: evaluator is closed")
	// ErrTraceSpec rejects specs that ask for trace record/replay: both
	// resolve file paths on the server, which a network-facing service
	// must not do on a client's behalf.
	ErrTraceSpec = errors.New("service: trace record/replay specs are not servable")
	// ErrQueueSaturated reports a submission that timed out while the
	// job queue was full: the box is overloaded, not broken, so clients
	// should back off and retry elsewhere.
	ErrQueueSaturated = errors.New("service: job queue saturated")
	// ErrNotFound reports a Trace query for a fingerprint no cached,
	// in-flight or stored evaluation answers to.
	ErrNotFound = errors.New("service: no result for that fingerprint")
)

// MaxSweepPoints bounds one sweep request's rate grid, here and in the
// fleet dispatcher that fans sweeps out.
const MaxSweepPoints = 1024

// Config sizes an Evaluator. The zero value selects the defaults.
type Config struct {
	// CacheEntries bounds the Result cache (default 1024 entries).
	CacheEntries int
	// ScenarioEntries bounds the compiled base-scenario cache (default
	// 64 entries).
	ScenarioEntries int
	// Workers bounds the concurrent evaluations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job buffer (default 4*Workers).
	// Submitters past it block until a worker frees up or their context
	// expires.
	QueueDepth int
	// Store, when non-nil, persists every computed Result and serves
	// warm entries across restarts.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.ScenarioEntries <= 0 {
		c.ScenarioEntries = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	return c
}

// Source reports how a response was produced.
type Source string

const (
	// SourceComputed means this request ran the evaluation.
	SourceComputed Source = "computed"
	// SourceCache means the Result came from the content-addressed cache.
	SourceCache Source = "cache"
	// SourceCoalesced means the request joined an identical in-flight
	// evaluation (singleflight).
	SourceCoalesced Source = "coalesced"
	// SourceStore means the Result was read from the durable on-disk
	// store (a warm restart).
	SourceStore Source = "store"
	// SourceFleet means a fleet dispatcher obtained the Result from a
	// peer quarcd rather than the local pool.
	SourceFleet Source = "fleet"
)

// Stats is a point-in-time snapshot of the evaluator's counters.
type Stats struct {
	// Hits/Misses/Coalesced classify Evaluate calls: cache hit, cold
	// evaluation started, joined an in-flight evaluation.
	Hits      uint64 `json:"cache_hits"`
	Misses    uint64 `json:"cache_misses"`
	Coalesced uint64 `json:"coalesced"`
	// Evaluations counts evaluations actually executed by the pool;
	// Evictions counts cache entries dropped by the LRU bound.
	Evaluations uint64 `json:"evaluations"`
	Evictions   uint64 `json:"evictions"`
	// StoreHits counts Evaluate calls served from the durable store;
	// StoreErrors counts persistence failures (the response still
	// succeeds — durability is best-effort per request).
	StoreHits   uint64 `json:"store_hits,omitempty"`
	StoreErrors uint64 `json:"store_errors,omitempty"`
	// DurableResults/Quarantined snapshot the durable store: live
	// entries and entries rejected by validation since open. Zero when
	// no store is configured.
	DurableResults int    `json:"durable_results,omitempty"`
	Quarantined    uint64 `json:"quarantined,omitempty"`
	// CachedResults/CachedScenarios/InFlight are current occupancy.
	CachedResults   int `json:"cached_results"`
	CachedScenarios int `json:"cached_scenarios"`
	InFlight        int `json:"in_flight"`
	// Workers echoes the pool size.
	Workers int `json:"workers"`
}

// Health statuses.
const (
	// StatusOK means the backend accepts new work.
	StatusOK = "ok"
	// StatusDegraded means the backend still answers but should not
	// receive new work (draining, saturated); healthz maps it to 503.
	StatusDegraded = "degraded"
)

// HealthState is a backend's serviceability verdict, served by
// GET /v1/healthz and consumed by load balancers and the fleet's
// per-peer circuit breakers.
type HealthState struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// flight is one in-progress evaluation; waiters block on done.
type flight struct {
	done chan struct{}
	res  noc.Result
	err  error
}

// job is one queued evaluation. persist marks results the durable
// store has not seen yet (computed, as opposed to read back from it).
type job struct {
	key     string
	sp      noc.Spec
	f       *flight
	persist bool
}

// Evaluator is the engine-resident serving core. It is safe for
// concurrent use by any number of goroutines.
type Evaluator struct {
	cfg  Config
	jobs chan job
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mu      sync.Mutex
	results *lruCache[noc.Result]
	bases   *lruCache[*noc.Scenario]
	flights map[string]*flight

	draining atomic.Bool

	hits, misses, coalesced atomic.Uint64
	evaluations, evictions  atomic.Uint64
	storeHits, storeErrors  atomic.Uint64
}

// New starts an evaluator with cfg.Workers resident workers, each owning
// a pooled Simulator fork. Close it when done.
func New(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{
		cfg:     cfg,
		jobs:    make(chan job, cfg.QueueDepth),
		done:    make(chan struct{}),
		results: newLRU[noc.Result](cfg.CacheEntries),
		bases:   newLRU[*noc.Scenario](cfg.ScenarioEntries),
		flights: make(map[string]*flight),
	}
	for w := 0; w < cfg.Workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops the workers (after their current evaluations finish) and
// fails any jobs still queued with ErrClosed. It is idempotent.
func (e *Evaluator) Close() {
	e.once.Do(func() {
		e.draining.Store(true)
		close(e.done)
		e.wg.Wait()
		for {
			select {
			case j := <-e.jobs:
				e.resolve(j, noc.Result{}, ErrClosed)
			default:
				return
			}
		}
	})
}

// Stats returns a snapshot of the counters.
func (e *Evaluator) Stats() Stats {
	e.mu.Lock()
	cachedResults, cachedScenarios, inFlight := e.results.len(), e.bases.len(), len(e.flights)
	e.mu.Unlock()
	st := Stats{
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		Coalesced:       e.coalesced.Load(),
		Evaluations:     e.evaluations.Load(),
		Evictions:       e.evictions.Load(),
		StoreHits:       e.storeHits.Load(),
		StoreErrors:     e.storeErrors.Load(),
		CachedResults:   cachedResults,
		CachedScenarios: cachedScenarios,
		InFlight:        inFlight,
		Workers:         e.cfg.Workers,
	}
	if e.cfg.Store != nil {
		st.DurableResults = e.cfg.Store.Len()
		st.Quarantined = e.cfg.Store.Quarantined()
	}
	return st
}

// SetDraining flips the drain flag Healthz reports: a draining
// evaluator still serves, but advertises itself degraded so load
// balancers and fleet circuit breakers stop routing new work to it.
// quarcd sets it on SIGTERM before starting the graceful shutdown.
func (e *Evaluator) SetDraining(v bool) { e.draining.Store(v) }

// Healthz reports the evaluator's serviceability: degraded while
// draining (shutdown in progress) or when the job queue is saturated
// (every worker busy and the pending buffer full), ok otherwise.
func (e *Evaluator) Healthz() HealthState {
	if e.draining.Load() {
		return HealthState{Status: StatusDegraded, Reason: "draining: shutdown in progress"}
	}
	if cap(e.jobs) > 0 && len(e.jobs) >= cap(e.jobs) {
		return HealthState{Status: StatusDegraded, Reason: "job queue saturated"}
	}
	return HealthState{Status: StatusOK}
}

// Evaluate serves one spec: from the cache when its canonical encoding
// was evaluated before, by joining an identical in-flight evaluation, or
// by scheduling a fresh evaluation on the worker pool. The returned
// Source says which; cached and cold responses for the same spec are
// bitwise identical.
func (e *Evaluator) Evaluate(ctx context.Context, sp noc.Spec) (noc.Result, Source, error) {
	if err := sp.Validate(); err != nil {
		return noc.Result{}, "", err
	}
	if sp.Record != "" || sp.Replay != "" {
		return noc.Result{}, "", ErrTraceSpec
	}
	cjson, err := sp.CanonicalJSON()
	if err != nil {
		return noc.Result{}, "", fmt.Errorf("service: encoding spec: %w", err)
	}
	key := string(cjson)

	e.mu.Lock()
	if res, ok := e.results.get(key); ok {
		e.mu.Unlock()
		e.hits.Add(1)
		return res, SourceCache, nil
	}
	if f, ok := e.flights[key]; ok {
		e.mu.Unlock()
		e.coalesced.Add(1)
		res, err := e.wait(ctx, f)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The submitting caller gave up before its job reached the
			// queue and failed the shared flight with its own context
			// error; ours is still live, so take over with a fresh
			// attempt instead of propagating a foreign cancellation.
			return e.Evaluate(ctx, sp)
		}
		return res, SourceCoalesced, err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	e.mu.Unlock()

	// Durable layer: a warm restart finds the result on disk. The
	// lookup runs under the flight, so concurrent identical requests
	// coalesce onto one disk read exactly as they do onto one
	// evaluation; resolve() promotes the hit into the LRU.
	if e.cfg.Store != nil {
		if res, ok := e.cfg.Store.Get(key); ok {
			e.storeHits.Add(1)
			e.resolve(job{key: key, f: f}, res, nil)
			return res, SourceStore, nil
		}
	}
	e.misses.Add(1)

	select {
	case e.jobs <- job{key: key, sp: sp, f: f, persist: true}:
	case <-ctx.Done():
		err := ctx.Err()
		if cap(e.jobs) > 0 && len(e.jobs) >= cap(e.jobs) {
			// The context expired while the pending buffer was full: the
			// request died of overload, not of its own deadline, and the
			// typed error lets clients (and fleet peers) retry elsewhere.
			err = fmt.Errorf("%w (%v)", ErrQueueSaturated, ctx.Err()) //quarclint:ignore errdiscipline the context error must NOT join the chain: overload classifies as queue_saturated, not as the caller's timeout
		}
		e.resolve(job{key: key, f: f}, noc.Result{}, err)
		return noc.Result{}, "", err
	case <-e.done:
		e.resolve(job{key: key, f: f}, noc.Result{}, ErrClosed)
		return noc.Result{}, "", ErrClosed
	}
	res, err := e.wait(ctx, f)
	return res, SourceComputed, err
}

// Sweep evaluates the spec across a rate grid on the shared pool — one
// content-addressed job per rate, so repeated and overlapping sweeps
// deduplicate point-wise. Results are returned in rate order.
func (e *Evaluator) Sweep(ctx context.Context, sp noc.Spec, rates []float64) ([]noc.Result, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("%w: a sweep needs at least one rate", noc.ErrInvalidSpec)
	}
	if len(rates) > MaxSweepPoints {
		return nil, fmt.Errorf("%w: %d sweep points exceed the %d-point bound", noc.ErrInvalidSpec, len(rates), MaxSweepPoints)
	}
	for _, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return nil, fmt.Errorf("%w: invalid sweep rate %v", noc.ErrInvalidSpec, r)
		}
	}
	results := make([]noc.Result, len(rates))
	errs := make([]error, len(rates))
	var wg sync.WaitGroup
	for i, r := range rates {
		pt := sp
		pt.Rate = r
		wg.Add(1)
		go func(i int, pt noc.Spec) {
			defer wg.Done()
			results[i], _, errs[i] = e.Evaluate(ctx, pt)
		}(i, pt)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("service: sweep point rate=%g: %w", rates[i], err)
		}
	}
	return results, nil
}

// Trace serves the observability payload of a previous (or in-flight)
// evaluation by content address: the Result whose spec fingerprint is
// fp, searched through the LRU cache, the in-flight table (a live
// evaluation resolves the query when it completes) and the durable
// store. The fingerprint is derivable from the cache key — it is the
// FNV-1a hash of the canonical spec encoding, the same address
// noc.Spec.Fingerprint computes — so no side index is needed; the scan
// is O(entries) per query, far off the evaluation hot path. A result
// evaluated without Metrics resolves to ErrNotFound: the daemon never
// recomputes on a GET.
func (e *Evaluator) Trace(ctx context.Context, fp uint64) (noc.Result, Source, error) {
	e.mu.Lock()
	for _, key := range e.results.keys() {
		if fingerprintOf(key) != fp {
			continue
		}
		res, _ := e.results.get(key)
		e.mu.Unlock()
		return traceResult(res, SourceCache)
	}
	var live *flight
	for key, f := range e.flights {
		if fingerprintOf(key) == fp {
			live = f
			break
		}
	}
	e.mu.Unlock()
	if live != nil {
		res, err := e.wait(ctx, live)
		if err != nil {
			return noc.Result{}, "", err
		}
		return traceResult(res, SourceCoalesced)
	}
	if e.cfg.Store != nil {
		for _, key := range e.cfg.Store.Keys() {
			if fingerprintOf(key) != fp {
				continue
			}
			if res, ok := e.cfg.Store.Get(key); ok {
				e.storeHits.Add(1)
				return traceResult(res, SourceStore)
			}
		}
	}
	return noc.Result{}, "", fmt.Errorf("%w: %016x has not been evaluated here", ErrNotFound, fp)
}

// traceResult finishes a Trace lookup: a hit without a recorded series
// is still ErrNotFound, with a hint at the missing spec field.
func traceResult(res noc.Result, src Source) (noc.Result, Source, error) {
	if res.Series == nil {
		return noc.Result{}, "", fmt.Errorf("%w: the result has no recorded series (evaluate with \"metrics\": true)", ErrNotFound)
	}
	return res, src, nil
}

// fingerprintOf is the FNV-1a content address of a cache key — by
// construction identical to noc.Spec.Fingerprint() of the spec the key
// canonically encodes.
func fingerprintOf(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// wait blocks until the flight resolves, the caller's context expires or
// the evaluator closes. An abandoned flight still completes and caches
// its result for the next request.
func (e *Evaluator) wait(ctx context.Context, f *flight) (noc.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return noc.Result{}, ctx.Err()
	case <-e.done:
		// The pool is shutting down; the flight may never run. Give a
		// resolved flight precedence over the shutdown signal.
		select {
		case <-f.done:
			return f.res, f.err
		default:
			return noc.Result{}, ErrClosed
		}
	}
}

// resolve publishes a flight's outcome (caching successes) and wakes its
// waiters. Freshly computed results are persisted to the durable store
// before the flight resolves, so a result is on disk by the time any
// client has seen it; a persistence failure only degrades durability
// (counted, response unaffected).
func (e *Evaluator) resolve(j job, res noc.Result, err error) {
	if err == nil && j.persist && e.cfg.Store != nil {
		if perr := e.cfg.Store.Put(j.key, res); perr != nil {
			e.storeErrors.Add(1)
		}
	}
	e.mu.Lock()
	if err == nil {
		e.evictions.Add(uint64(e.results.add(j.key, res)))
	}
	delete(e.flights, j.key)
	e.mu.Unlock()
	j.f.res, j.f.err = res, err
	close(j.f.done)
}

// worker is one resident evaluation loop. Each worker owns a pooled
// Simulator fork, so consecutive jobs that share a base scenario reuse
// one wormhole network via its in-place Reset (the PR 2/3 hot path).
func (e *Evaluator) worker() {
	defer e.wg.Done()
	sim := noc.NewPooledSimulator()
	for {
		select {
		case <-e.done:
			return
		case j := <-e.jobs:
			res, err := e.evaluateSpec(j.sp, sim)
			e.evaluations.Add(1)
			e.resolve(j, res, err)
		}
	}
}

// evaluateSpec compiles and runs one spec on this worker. Compilation
// goes through the shared base-scenario cache: the spec's structural
// sub-spec (topology, pattern, spatial) resolves to one base Scenario
// reused by every structurally identical request, and the tuning options
// are layered on top with Scenario.With — bitwise-identical to a cold
// Spec.Scenario build. Replications run serially inside the worker
// (Parallelism(1)), so the pool's Workers bound is the only concurrency;
// the aggregate is bitwise-independent of that choice.
func (e *Evaluator) evaluateSpec(sp noc.Spec, sim noc.Evaluator) (noc.Result, error) {
	base, err := e.baseFor(sp)
	if err != nil {
		return noc.Result{}, err
	}
	s, err := sp.ScenarioWith(base)
	if err != nil {
		return noc.Result{}, err
	}
	if s, err = s.With(noc.Parallelism(1)); err != nil {
		return noc.Result{}, err
	}
	if sp.Canonical().Evaluator == "model" {
		return noc.Model{}.Evaluate(s)
	}
	return sim.Evaluate(s)
}

// baseFor returns the shared compiled scenario for the spec's structural
// sub-spec, compiling and caching it on first use. Two workers racing on
// a cold key may compile twice; the cache keeps one and both builds are
// equivalent, so this is a benign inefficiency, not a correctness issue.
func (e *Evaluator) baseFor(sp noc.Spec) (*noc.Scenario, error) {
	st := sp.Structural()
	cjson, err := st.CanonicalJSON()
	if err != nil {
		return nil, fmt.Errorf("service: encoding structural spec: %w", err)
	}
	key := string(cjson)
	e.mu.Lock()
	base, ok := e.bases.get(key)
	e.mu.Unlock()
	if ok {
		return base, nil
	}
	base, err = st.Scenario()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.bases.add(key, base)
	e.mu.Unlock()
	return base, nil
}
